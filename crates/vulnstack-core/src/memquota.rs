//! Global memory-quota accounting with cooperative, oldest-first reclaim.
//!
//! Campaign-scale streaming (the [`crate::sink`] pipeline) bounds the
//! *record* path by construction — a full channel stalls producers — but
//! the optional payloads around it (lifetime-trace rings, campaign-metrics
//! spans) still grow with campaign size. This module is the arbiter that
//! decides what those payloads may keep in RAM, after the memquota design
//! in arti's memory-limit notes:
//!
//! * one **account** ([`MemQuota`]) holds the global byte budget (from
//!   `VULNSTACK_MEM_QUOTA`, or unlimited when unset);
//! * each component that caches data registers a **participant**
//!   ([`Participation`]) and reports its usage through
//!   [`Participation::claim`] / [`Participation::release`];
//! * when the account goes over budget, reclaim is **cooperative** and
//!   **oldest-data-first**: the sheddable participant holding the oldest
//!   data is flagged ([`Participation::should_shed`]), and — for payloads
//!   that can simply be refused — [`Participation::try_claim`] starts
//!   denying new claims. Either way the owner drops its optional payload
//!   and the campaign *degrades* (counted, logged once on stderr) instead
//!   of aborting.
//!
//! The degradation ladder is fixed by what registers as sheddable:
//! lifetime-trace rings shed first (registered earliest ⇒ oldest data),
//! then metrics spans; record buffers and tallies never register as
//! sheddable — they are bounded by the sink channel and backpressure, not
//! by shedding. Unset quota ⇒ every operation is a cheap no-op and
//! behavior is bit-identical to a build without this module.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use vulnstack_microarch::env_knob;

/// The global memory account: a byte budget plus the registered
/// participants that report usage against it.
#[derive(Debug)]
pub struct MemQuota {
    inner: Arc<QuotaInner>,
}

#[derive(Debug)]
struct QuotaInner {
    /// Byte budget; `usize::MAX` means unlimited (every path short
    /// circuits).
    limit: usize,
    used: AtomicUsize,
    /// Monotonic stamp source for data age (oldest-first victim
    /// selection).
    seq: AtomicU64,
    /// The one-shot "shedding begins" stderr warning.
    warned: AtomicBool,
    shed_events: AtomicU64,
    shed_bytes: AtomicU64,
    parts: Mutex<Vec<Weak<PartInner>>>,
}

#[derive(Debug)]
struct PartInner {
    name: String,
    sheddable: bool,
    used: AtomicUsize,
    /// Age stamp of the oldest data this participant still holds; 0 =
    /// holds nothing.
    oldest: AtomicU64,
    /// Set by the account when this participant was selected as a
    /// reclaim victim; cleared when the owner sheds.
    reclaim: AtomicBool,
}

/// One component's registration with a [`MemQuota`] account. Dropping a
/// participation releases whatever it still had claimed.
#[derive(Debug)]
pub struct Participation {
    part: Arc<PartInner>,
    quota: Arc<QuotaInner>,
}

/// Degradation accounting for one account: how much optional payload was
/// shed instead of kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShedReport {
    /// Individual payloads shed (claims denied + cooperative sheds).
    pub events: u64,
    /// Bytes refused or freed by shedding.
    pub bytes: u64,
}

impl MemQuota {
    /// An account with no budget: every claim succeeds, nothing sheds.
    pub fn unlimited() -> MemQuota {
        MemQuota::new(usize::MAX)
    }

    /// An account with a byte budget.
    pub fn with_limit(bytes: usize) -> MemQuota {
        MemQuota::new(bytes.max(1))
    }

    fn new(limit: usize) -> MemQuota {
        MemQuota {
            inner: Arc::new(QuotaInner {
                limit,
                used: AtomicUsize::new(0),
                seq: AtomicU64::new(1),
                warned: AtomicBool::new(false),
                shed_events: AtomicU64::new(0),
                shed_bytes: AtomicU64::new(0),
                parts: Mutex::new(Vec::new()),
            }),
        }
    }

    /// An account budgeted from `VULNSTACK_MEM_QUOTA` (bytes). Unset ⇒
    /// unlimited; malformed warns on stderr and falls back (the shared
    /// [`env_knob`] contract).
    pub fn from_env() -> MemQuota {
        match env_knob::<usize>("VULNSTACK_MEM_QUOTA", "memory quota in bytes") {
            Some(b) => MemQuota::with_limit(b),
            None => MemQuota::unlimited(),
        }
    }

    /// The process-wide account, budgeted once from the environment.
    /// Everything that caches optional campaign payloads (trace rings,
    /// metrics spans) registers here so one knob governs the process.
    pub fn global() -> &'static MemQuota {
        static GLOBAL: OnceLock<MemQuota> = OnceLock::new();
        GLOBAL.get_or_init(MemQuota::from_env)
    }

    /// Registers a participant. `sheddable` participants may be selected
    /// as reclaim victims and have [`Participation::try_claim`] denied
    /// under pressure; non-sheddable participants only report usage (so
    /// pressure they cause is shed from *other*, sheddable participants).
    pub fn register(&self, name: &str, sheddable: bool) -> Participation {
        let part = Arc::new(PartInner {
            name: name.to_string(),
            sheddable,
            used: AtomicUsize::new(0),
            oldest: AtomicU64::new(0),
            reclaim: AtomicBool::new(false),
        });
        self.inner
            .parts
            .lock()
            .expect("unpoisoned")
            .push(Arc::downgrade(&part));
        Participation {
            part,
            quota: Arc::clone(&self.inner),
        }
    }

    /// Bytes currently claimed across all participants.
    pub fn used(&self) -> usize {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// The byte budget, if one is set.
    pub fn limit(&self) -> Option<usize> {
        (self.inner.limit != usize::MAX).then_some(self.inner.limit)
    }

    /// True once usage has exceeded the budget at least once.
    pub fn shedding_started(&self) -> bool {
        self.inner.warned.load(Ordering::Relaxed)
    }

    /// Degradation accounting so far.
    pub fn shed_report(&self) -> ShedReport {
        ShedReport {
            events: self.inner.shed_events.load(Ordering::Relaxed),
            bytes: self.inner.shed_bytes.load(Ordering::Relaxed),
        }
    }
}

impl QuotaInner {
    fn stamp(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    fn warn_once(&self) {
        if !self.warned.swap(true, Ordering::Relaxed) {
            eprintln!(
                "warning: memory quota exceeded ({} B in use, limit {} B): \
                 shedding optional payloads, oldest data first",
                self.used.load(Ordering::Relaxed),
                self.limit,
            );
        }
    }

    /// Over-budget response: warn once, then flag sheddable participants
    /// as reclaim victims — oldest data first — until their combined
    /// usage covers the overage.
    fn handle_pressure(&self) {
        let used = self.used.load(Ordering::Relaxed);
        if used <= self.limit {
            return;
        }
        self.warn_once();
        let mut overage = used - self.limit;
        let mut parts = self.parts.lock().expect("unpoisoned");
        parts.retain(|w| w.strong_count() > 0);
        let mut victims: Vec<Arc<PartInner>> = parts
            .iter()
            .filter_map(Weak::upgrade)
            .filter(|p| p.sheddable && p.used.load(Ordering::Relaxed) > 0)
            .collect();
        victims.sort_by_key(|p| p.oldest.load(Ordering::Relaxed));
        for v in victims {
            if overage == 0 {
                break;
            }
            v.reclaim.store(true, Ordering::Relaxed);
            overage = overage.saturating_sub(v.used.load(Ordering::Relaxed));
        }
    }
}

impl Participation {
    /// The participant's name (for logs and reports).
    pub fn name(&self) -> &str {
        &self.part.name
    }

    /// Bytes this participant currently holds.
    pub fn used(&self) -> usize {
        self.part.used.load(Ordering::Relaxed)
    }

    /// Reports `bytes` of newly retained data. Always succeeds (the data
    /// is already held); going over budget triggers oldest-first victim
    /// flagging rather than refusal.
    pub fn claim(&self, bytes: usize) {
        if self.quota.limit == usize::MAX || bytes == 0 {
            return;
        }
        if self.part.used.fetch_add(bytes, Ordering::Relaxed) == 0 {
            self.part
                .oldest
                .store(self.quota.stamp(), Ordering::Relaxed);
        }
        self.quota.used.fetch_add(bytes, Ordering::Relaxed);
        self.quota.handle_pressure();
    }

    /// Asks to retain `bytes` of *optional* data. Denied (returning
    /// `false`, with the refusal counted as shed) when the account is
    /// over budget or this participant was flagged for reclaim — the
    /// caller must drop the payload instead of keeping it.
    pub fn try_claim(&self, bytes: usize) -> bool {
        if self.quota.limit == usize::MAX {
            return true;
        }
        let over = self
            .quota
            .used
            .load(Ordering::Relaxed)
            .saturating_add(bytes)
            > self.quota.limit;
        if self.part.sheddable && (over || self.part.reclaim.load(Ordering::Relaxed)) {
            if over {
                self.quota.warn_once();
            }
            self.quota.shed_events.fetch_add(1, Ordering::Relaxed);
            self.quota
                .shed_bytes
                .fetch_add(bytes as u64, Ordering::Relaxed);
            return false;
        }
        self.claim(bytes);
        true
    }

    /// Reports `bytes` of data released back (dropped or written out).
    pub fn release(&self, bytes: usize) {
        if self.quota.limit == usize::MAX || bytes == 0 {
            return;
        }
        let sub = |a: &AtomicUsize| {
            a.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(bytes))
            })
            .expect("fetch_update with Some never fails")
        };
        sub(&self.part.used);
        sub(&self.quota.used);
        if self.part.used.load(Ordering::Relaxed) == 0 {
            self.part.oldest.store(0, Ordering::Relaxed);
        }
    }

    /// True when the account selected this participant as a reclaim
    /// victim: the owner should drop its oldest optional data and report
    /// it via [`Participation::shed`].
    pub fn should_shed(&self) -> bool {
        self.part.reclaim.load(Ordering::Relaxed) && self.used() > 0
    }

    /// Reports `bytes` dropped in response to [`should_shed`]
    /// (counted as degradation and released from the account).
    ///
    /// [`should_shed`]: Participation::should_shed
    pub fn shed(&self, bytes: usize) {
        self.release(bytes);
        self.quota.shed_events.fetch_add(1, Ordering::Relaxed);
        self.quota
            .shed_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.part.reclaim.store(false, Ordering::Relaxed);
    }
}

impl Drop for Participation {
    fn drop(&mut self) {
        let held = self.part.used.swap(0, Ordering::Relaxed);
        if held > 0 && self.quota.limit != usize::MAX {
            self.quota
                .used
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    Some(v.saturating_sub(held))
                })
                .expect("fetch_update with Some never fails");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_account_is_a_no_op() {
        let q = MemQuota::unlimited();
        let p = q.register("traces", true);
        assert!(p.try_claim(usize::MAX / 2));
        p.claim(usize::MAX / 2);
        assert_eq!(q.used(), 0, "unlimited accounts do not track");
        assert!(!p.should_shed());
        assert_eq!(q.shed_report(), ShedReport::default());
        assert_eq!(q.limit(), None);
    }

    #[test]
    fn over_budget_denies_optional_claims_and_counts_them() {
        let q = MemQuota::with_limit(1000);
        let p = q.register("traces", true);
        assert!(p.try_claim(600));
        assert!(p.try_claim(300));
        assert!(!p.try_claim(200), "901..1100 exceeds the 1000 B budget");
        assert!(q.shedding_started());
        let r = q.shed_report();
        assert_eq!(r.events, 1);
        assert_eq!(r.bytes, 200);
        assert_eq!(q.used(), 900, "denied claims must not be accounted");
    }

    #[test]
    fn pressure_flags_the_oldest_sheddable_victim_first() {
        let q = MemQuota::with_limit(1000);
        let traces = q.register("traces", true);
        let spans = q.register("spans", true);
        let records = q.register("records", false);
        traces.claim(300); // oldest data
        spans.claim(300);
        records.claim(300);
        assert!(!traces.should_shed());
        // A non-sheddable claim pushes the account over budget: the
        // oldest sheddable participant is the victim, never `records`.
        records.claim(200);
        assert!(traces.should_shed(), "oldest sheddable data sheds first");
        assert!(!spans.should_shed(), "100 B overage is covered by traces");
        traces.shed(300);
        assert!(!traces.should_shed());
        assert_eq!(q.used(), 800);
        let r = q.shed_report();
        assert_eq!(r.events, 1);
        assert_eq!(r.bytes, 300);
    }

    #[test]
    fn large_overage_flags_several_victims_oldest_first() {
        let q = MemQuota::with_limit(100);
        let a = q.register("a", true);
        let b = q.register("b", true);
        let anchor = q.register("anchor", false);
        a.claim(40);
        b.claim(40);
        anchor.claim(120); // 200 used, 100 over: both victims needed
        assert!(a.should_shed());
        assert!(b.should_shed());
    }

    #[test]
    fn release_and_drop_return_bytes_to_the_account() {
        let q = MemQuota::with_limit(1000);
        let p = q.register("spans", true);
        p.claim(400);
        p.release(150);
        assert_eq!(q.used(), 250);
        assert_eq!(p.used(), 250);
        drop(p);
        assert_eq!(q.used(), 0, "drop releases the remainder");
    }

    #[test]
    fn from_env_defaults_to_unlimited() {
        // The test runner does not set VULNSTACK_MEM_QUOTA.
        assert_eq!(MemQuota::from_env().limit(), None);
    }
}
