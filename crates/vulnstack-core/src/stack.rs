//! The system vulnerability stack: per-structure AVF, size-weighted
//! aggregation (≡ FIT-rate weighting), HVF with fault-propagation-model
//! distributions, and the refined PVF (rPVF).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use vulnstack_microarch::ooo::{Fpm, HwStructure};

use crate::effects::{Tally, VulnFactor};

/// Per-structure AVF measurement: the structure, its bit population (the
/// weighting factor), and the observed effect tally.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StructureAvf {
    /// Injected structure.
    pub structure: HwStructure,
    /// Bit population of the structure (its size).
    pub bits: u64,
    /// Observed effects.
    pub tally: Tally,
}

impl StructureAvf {
    /// The structure's AVF.
    pub fn avf(&self) -> VulnFactor {
        self.tally.vf()
    }
}

/// Size-weighted AVF across structures — equivalent to the processor FIT
/// rate divided by `FIT(bit) × total bits` (see the paper's footnote on
/// FIT computation).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeightedAvf {
    /// The per-structure measurements.
    pub structures: Vec<StructureAvf>,
}

impl WeightedAvf {
    /// Builds from per-structure measurements.
    pub fn new(structures: Vec<StructureAvf>) -> WeightedAvf {
        WeightedAvf { structures }
    }

    /// Total bits across structures.
    pub fn total_bits(&self) -> u64 {
        self.structures.iter().map(|s| s.bits).sum()
    }

    /// The size-weighted AVF.
    pub fn weighted(&self) -> VulnFactor {
        let total = self.total_bits();
        if total == 0 {
            return VulnFactor::default();
        }
        let mut acc = VulnFactor::default();
        for s in &self.structures {
            let w = s.bits as f64 / total as f64;
            acc = acc.plus(&s.avf().scaled(w));
        }
        acc
    }

    /// FIT rate of the modelled structures given a per-bit FIT rate
    /// (`FIT(s) = AVF(s) × FIT(bit) × bits(s)`, summed).
    pub fn fit(&self, fit_per_bit: f64) -> f64 {
        self.structures
            .iter()
            .map(|s| s.avf().total() * fit_per_bit * s.bits as f64)
            .sum()
    }
}

/// A distribution over fault propagation models, from an HVF campaign.
///
/// `masked` counts faults that never became architecturally visible.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpmDist {
    counts: BTreeMap<Fpm, u64>,
    masked: u64,
}

impl FpmDist {
    /// Creates an empty distribution.
    pub fn new() -> FpmDist {
        FpmDist::default()
    }

    /// Records one observation.
    pub fn add(&mut self, fpm: Option<Fpm>) {
        match fpm {
            Some(f) => *self.counts.entry(f).or_insert(0) += 1,
            None => self.masked += 1,
        }
    }

    /// Count for one model.
    pub fn count(&self, fpm: Fpm) -> u64 {
        self.counts.get(&fpm).copied().unwrap_or(0)
    }

    /// Faults that stayed invisible to the architecture.
    pub fn masked(&self) -> u64 {
        self.masked
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.masked + self.counts.values().sum::<u64>()
    }

    /// The HVF: fraction of faults activated or exposed to a higher layer.
    pub fn hvf(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        (t - self.masked) as f64 / t as f64
    }

    /// Share of `fpm` among *all* injections (HVF-scaled).
    pub fn share(&self, fpm: Fpm) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        self.count(fpm) as f64 / t as f64
    }

    /// Share of `fpm` among faults that reached the software layer
    /// (WD/WI/WOI only — ESC by definition bypasses software).
    pub fn software_share(&self, fpm: Fpm) -> f64 {
        let sw: u64 = [Fpm::Wd, Fpm::Wi, Fpm::Woi]
            .iter()
            .map(|&f| self.count(f))
            .sum();
        if sw == 0 {
            return 0.0;
        }
        self.count(fpm) as f64 / sw as f64
    }

    /// Merges another distribution.
    pub fn merge(&mut self, other: &FpmDist) {
        for (&f, &c) in &other.counts {
            *self.counts.entry(f).or_insert(0) += c;
        }
        self.masked += other.masked;
    }

    /// Size-weighted combination across structures: each distribution is
    /// weighted by its structure's bit count (paper Fig. 6).
    pub fn weighted_combine(parts: &[(u64, &FpmDist)]) -> BTreeMap<Fpm, f64> {
        let total_bits: u64 = parts.iter().map(|(b, _)| *b).sum();
        let mut out = BTreeMap::new();
        if total_bits == 0 {
            return out;
        }
        for fpm in Fpm::ALL {
            let mut v = 0.0;
            for (bits, dist) in parts {
                v += (*bits as f64 / total_bits as f64) * dist.share(fpm);
            }
            out.insert(fpm, v);
        }
        out
    }
}

/// Computes the refined PVF (paper §V): per-FPM PVF measurements combined
/// using the HVF-measured FPM distribution. ESC is excluded (it cannot be
/// modelled above the hardware layer); the remaining shares are taken
/// *conditional on reaching software*.
pub fn rpvf(
    dist: &FpmDist,
    pvf_wd: VulnFactor,
    pvf_woi: VulnFactor,
    pvf_wi: VulnFactor,
) -> VulnFactor {
    let mut acc = VulnFactor::default();
    for (fpm, pvf) in [(Fpm::Wd, pvf_wd), (Fpm::Woi, pvf_woi), (Fpm::Wi, pvf_wi)] {
        acc = acc.plus(&pvf.scaled(dist.software_share(fpm)));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::FaultEffect;

    fn tally(masked: u64, sdc: u64, crash: u64) -> Tally {
        let mut t = Tally::default();
        for _ in 0..masked {
            t.add(FaultEffect::Masked);
        }
        for _ in 0..sdc {
            t.add(FaultEffect::Sdc);
        }
        for _ in 0..crash {
            t.add(FaultEffect::Crash);
        }
        t
    }

    #[test]
    fn weighting_favours_large_structures() {
        // Small structure very vulnerable, large structure robust.
        let small = StructureAvf {
            structure: HwStructure::RegisterFile,
            bits: 100,
            tally: tally(0, 10, 0), // AVF 1.0
        };
        let large = StructureAvf {
            structure: HwStructure::L2,
            bits: 9900,
            tally: tally(10, 0, 0), // AVF 0.0
        };
        let w = WeightedAvf::new(vec![small, large]);
        let v = w.weighted();
        assert!((v.total() - 0.01).abs() < 1e-12, "{v:?}");
    }

    #[test]
    fn weighted_equals_fit_normalisation() {
        let a = StructureAvf {
            structure: HwStructure::L1d,
            bits: 1000,
            tally: tally(5, 3, 2),
        };
        let b = StructureAvf {
            structure: HwStructure::L2,
            bits: 3000,
            tally: tally(8, 1, 1),
        };
        let w = WeightedAvf::new(vec![a, b]);
        let fit_bit = 1e-4;
        let fit = w.fit(fit_bit);
        let norm = fit / (fit_bit * w.total_bits() as f64);
        assert!((norm - w.weighted().total()).abs() < 1e-12);
    }

    #[test]
    fn fpm_shares_and_hvf() {
        let mut d = FpmDist::new();
        for _ in 0..50 {
            d.add(None);
        }
        for _ in 0..30 {
            d.add(Some(Fpm::Wd));
        }
        for _ in 0..10 {
            d.add(Some(Fpm::Wi));
        }
        for _ in 0..10 {
            d.add(Some(Fpm::Esc));
        }
        assert_eq!(d.total(), 100);
        assert!((d.hvf() - 0.5).abs() < 1e-12);
        assert!((d.share(Fpm::Wd) - 0.3).abs() < 1e-12);
        assert!((d.software_share(Fpm::Wd) - 0.75).abs() < 1e-12);
        assert!((d.software_share(Fpm::Wi) - 0.25).abs() < 1e-12);
        // ESC participates in shares but not software shares.
        assert!((d.share(Fpm::Esc) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rpvf_mixes_by_software_share() {
        let mut d = FpmDist::new();
        for _ in 0..60 {
            d.add(Some(Fpm::Wd));
        }
        for _ in 0..40 {
            d.add(Some(Fpm::Wi));
        }
        let wd = VulnFactor {
            sdc: 0.5,
            crash: 0.0,
            detected: 0.0,
        };
        let wi = VulnFactor {
            sdc: 0.0,
            crash: 0.5,
            detected: 0.0,
        };
        let woi = VulnFactor::default();
        let r = rpvf(&d, wd, woi, wi);
        assert!((r.sdc - 0.3).abs() < 1e-12);
        assert!((r.crash - 0.2).abs() < 1e-12);
    }

    #[test]
    fn weighted_combine_respects_bits() {
        let mut a = FpmDist::new();
        a.add(Some(Fpm::Wd));
        let mut b = FpmDist::new();
        b.add(Some(Fpm::Esc));
        let out = FpmDist::weighted_combine(&[(1, &a), (3, &b)]);
        assert!((out[&Fpm::Wd] - 0.25).abs() < 1e-12);
        assert!((out[&Fpm::Esc] - 0.75).abs() < 1e-12);
    }
}

#[cfg(test)]
mod rpvf_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// rPVF is a convex combination of the per-FPM PVFs: its total can
        /// never exceed the largest component nor drop below the smallest
        /// (over the software-visible FPMs actually present).
        #[test]
        fn rpvf_is_convex(
            wd_n in 0u64..50, wi_n in 0u64..50, woi_n in 0u64..50,
            pvf_wd in 0.0f64..1.0, pvf_wi in 0.0f64..1.0, pvf_woi in 0.0f64..1.0,
        ) {
            prop_assume!(wd_n + wi_n + woi_n > 0);
            let mut d = FpmDist::new();
            for _ in 0..wd_n { d.add(Some(Fpm::Wd)); }
            for _ in 0..wi_n { d.add(Some(Fpm::Wi)); }
            for _ in 0..woi_n { d.add(Some(Fpm::Woi)); }
            let mk = |t: f64| VulnFactor { sdc: t, crash: 0.0, detected: 0.0 };
            let r = rpvf(&d, mk(pvf_wd), mk(pvf_woi), mk(pvf_wi));
            let mut present = Vec::new();
            if wd_n > 0 { present.push(pvf_wd); }
            if woi_n > 0 { present.push(pvf_woi); }
            if wi_n > 0 { present.push(pvf_wi); }
            let lo = present.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = present.iter().cloned().fold(0.0, f64::max);
            prop_assert!(r.total() <= hi + 1e-9);
            prop_assert!(r.total() >= lo - 1e-9);
        }

        /// Size-weighted AVF lies within the per-structure extremes.
        #[test]
        fn weighted_avf_is_bounded_by_extremes(
            parts in prop::collection::vec((1u64..10_000, 0u64..30, 0u64..30, 0u64..30), 1..6)
        ) {
            let structures: Vec<StructureAvf> = parts.iter().map(|&(bits, m, s, c)| {
                let mut t = crate::effects::Tally::default();
                for _ in 0..m { t.add(crate::effects::FaultEffect::Masked); }
                for _ in 0..s { t.add(crate::effects::FaultEffect::Sdc); }
                for _ in 0..c { t.add(crate::effects::FaultEffect::Crash); }
                StructureAvf { structure: HwStructure::L1d, bits, tally: t }
            }).collect();
            let totals: Vec<f64> = structures.iter().map(|s| s.avf().total()).collect();
            let w = WeightedAvf::new(structures).weighted().total();
            let lo = totals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = totals.iter().cloned().fold(0.0, f64::max);
            prop_assert!(w <= hi + 1e-9, "{w} > {hi}");
            prop_assert!(w >= lo - 1e-9, "{w} < {lo}");
        }
    }
}
