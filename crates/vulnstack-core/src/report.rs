//! Plain-text table rendering for the figure/table reproduction binaries,
//! plus the atomic file-write helper every results artifact goes through.

use std::io::Write;
use std::path::Path;

/// Writes `data` to `path` atomically: the bytes land in a temporary file
/// in the same directory (same filesystem, so the rename is atomic), are
/// fsync'd, and are then renamed over the destination. A crash at any
/// point leaves either the old file or the new one — never a torn
/// half-written artifact. Used for every `results/*` write.
///
/// # Errors
///
/// Propagates filesystem errors; on failure the temporary file is
/// removed (best-effort) and `path` is untouched.
pub fn write_atomic(path: impl AsRef<Path>, data: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other(format!("{} has no file name", path.display())))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        name.to_string_lossy(),
        std::process::id()
    ));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(data)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        // Make the rename itself durable (best-effort: some filesystems
        // reject directory fsync).
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// A simple fixed-width table builder.
///
/// # Example
///
/// ```
/// use vulnstack_core::report::Table;
///
/// let mut t = Table::new(&["bench", "AVF"]);
/// t.row(&["sha".into(), format!("{:.3}", 0.042)]);
/// let s = t.render();
/// assert!(s.contains("sha"));
/// assert!(s.contains("0.042"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cells[i].len());
                line.push_str(&cells[i]);
                line.push_str(&" ".repeat(pad));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats a fraction as a percentage with two decimals (for small AVFs).
pub fn pct2(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn percentage_formatting() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(pct2(0.001234), "0.12%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }
}

/// Writes rows as CSV (RFC-4180 quoting) for downstream plotting.
///
/// # Example
///
/// ```
/// use vulnstack_core::report::to_csv;
///
/// let csv = to_csv(&["bench", "avf"], &[vec!["sha".into(), "0.04".into()]]);
/// assert_eq!(csv, "bench,avf\nsha,0.04\n");
/// ```
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    fn esc(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(&headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for r in rows {
        out.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod atomic_tests {
    use super::write_atomic;

    #[test]
    fn writes_and_replaces_without_leaving_temp_files() {
        let dir = std::env::temp_dir().join(format!("vulnstack-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_atomic(&path, b"{\"v\":1}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"v\":1}");
        write_atomic(&path, b"{\"v\":2}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"v\":2}");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_errors_and_leaves_no_destination() {
        let path = std::env::temp_dir()
            .join("vulnstack-atomic-nonexistent-dir")
            .join("out.json");
        assert!(write_atomic(&path, b"x").is_err());
        assert!(!path.exists());
    }
}

#[cfg(test)]
mod csv_tests {
    use super::to_csv;

    #[test]
    fn quotes_fields_with_commas_and_quotes() {
        let csv = to_csv(&["a", "b"], &[vec!["x,y".into(), "he said \"hi\"".into()]]);
        assert_eq!(csv, "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
    }

    #[test]
    fn empty_rows_are_just_the_header() {
        assert_eq!(to_csv(&["only"], &[]), "only\n");
    }
}
