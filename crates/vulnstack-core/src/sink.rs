//! Streaming record sink: bounded-memory campaign output with
//! backpressure.
//!
//! Every engine used to collect its `InjectionRecord`s into one big
//! `Vec` and write journal/CSV/JSON at the end — fine for 2,000-sample
//! statistical campaigns, fatal for the exhaustive (site, model)
//! enumerations the paper's methodology scales to, where the record
//! vector alone outgrows RAM. This module inverts the flow:
//!
//! * workers push settled sites into a **bounded MPSC channel**
//!   ([`SinkHandle`], capacity [`StreamOpts::channel_cap`]); a full
//!   channel blocks the push, so memory pressure becomes
//!   **backpressure** on the producers instead of unbounded buffering;
//! * one dedicated **sink thread** drains the channel and fans each
//!   record out incrementally — append to the journal (group-committed,
//!   see [`Journal`]), append to the optional on-disk spill file, and
//!   hand the payload to the caller's `fold` closure (which accumulates
//!   tallies, never the records themselves);
//! * the campaign result carries a [`RecordHandle`] — a path plus count
//!   over the spill file — instead of the record vector, so full-record
//!   consumers re-read from disk in streaming fashion too.
//!
//! At any instant the pipeline holds at most `channel_cap` encoded
//! records plus one in flight per worker, independent of campaign size.
//! Completion semantics: [`stream`] returns only after the channel is
//! drained, the journal is flushed ([`Journal::flush`] — the
//! group-commit completion barrier), and the spill file is flushed, so
//! a returned summary is durable. A journal failure mid-stream keeps
//! *draining* the channel (producers must never deadlock against a dead
//! sink) but stops writing and surfaces the first error at the end.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

use vulnstack_microarch::env_knob;

use crate::journal::{escape_field, unescape_field, Journal, JournalError};
use crate::sched::{ClaimGate, Quarantine};

/// Default bound on the worker→sink channel, in encoded records. Small
/// enough that a stalled sink caps buffered memory at a few hundred KB,
/// large enough that group-committed journal writes never starve the
/// workers.
pub const DEFAULT_CHANNEL_CAP: usize = 1024;

/// The channel bound, honouring `VULNSTACK_SINK_CAP` (records; malformed
/// values warn on stderr and fall back to [`DEFAULT_CHANNEL_CAP`]).
pub fn channel_cap_from_env() -> usize {
    env_knob::<usize>("VULNSTACK_SINK_CAP", "sink channel capacity (records)")
        .map_or(DEFAULT_CHANNEL_CAP, |c| c.max(1))
}

/// One settled site travelling from a worker to the sink thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkEvent {
    /// A completed record, engine-encoded.
    Done {
        /// Site index in sampling order.
        index: u64,
        /// Engine-encoded record payload.
        payload: String,
    },
    /// A quarantined site (every attempt panicked).
    Quarantined {
        /// Site index in sampling order.
        index: u64,
        /// Attempts made before giving up.
        attempts: u32,
        /// Panic message of the last attempt.
        message: String,
    },
}

/// Producer side of the sink: shared by reference across the campaign's
/// workers. Pushes **block** when the channel is full — that is the
/// backpressure contract, not an error.
#[derive(Debug)]
pub struct SinkHandle {
    tx: SyncSender<SinkEvent>,
}

impl SinkHandle {
    /// Pushes a completed record; blocks while the channel is full. A
    /// send after the sink hung up (journal failure teardown) is
    /// silently dropped — the stream surfaces the underlying error.
    pub fn push_done(&self, index: u64, payload: String) {
        let _ = self.tx.send(SinkEvent::Done { index, payload });
    }

    /// Pushes a quarantined site; blocks while the channel is full.
    pub fn push_quarantined(&self, index: u64, attempts: u32, message: String) {
        let _ = self.tx.send(SinkEvent::Quarantined {
            index,
            attempts,
            message,
        });
    }
}

/// A subscriber tee over the settled record stream: `(index, payload)`.
pub type RecordTee<'a> = &'a (dyn Fn(u64, &str) + Sync);

/// Configuration for one streaming run.
#[derive(Clone, Copy)]
pub struct StreamOpts<'a> {
    /// Worker→sink channel bound, in encoded records (min 1).
    pub channel_cap: usize,
    /// Optional on-disk spill file: every record payload is appended
    /// here as it settles and the summary returns a [`RecordHandle`]
    /// over it. `None` when tallies (the `fold`) are all the caller
    /// needs.
    pub spill: Option<&'a Path>,
    /// Optional admission gate the scheduler drive consults before each
    /// site claim: this is how a multi-tenant daemon rations one shared
    /// slot pool across concurrent campaigns (see `fair::FairPool`) and
    /// how cancellation stops a campaign at a site boundary. `None`
    /// (single-tenant CLI runs) means every claim is admitted.
    pub gate: Option<&'a dyn ClaimGate>,
    /// Optional subscriber tee: invoked after `fold` for every settled
    /// record (both replayed-from-journal and freshly executed), so live
    /// subscribers observe the same byte stream the journal records.
    pub tee: Option<RecordTee<'a>>,
}

impl std::fmt::Debug for StreamOpts<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamOpts")
            .field("channel_cap", &self.channel_cap)
            .field("spill", &self.spill)
            .field("gate", &self.gate.map(|_| "<dyn ClaimGate>"))
            .field("tee", &self.tee.map(|_| "<dyn Fn>"))
            .finish()
    }
}

impl StreamOpts<'static> {
    /// Environment-tuned defaults: `VULNSTACK_SINK_CAP` (or
    /// [`DEFAULT_CHANNEL_CAP`]), no spill file, no gate, no tee.
    pub fn from_env() -> StreamOpts<'static> {
        StreamOpts {
            channel_cap: channel_cap_from_env(),
            spill: None,
            gate: None,
            tee: None,
        }
    }
}

impl<'a> StreamOpts<'a> {
    /// Environment-tuned defaults plus a spill file for the full record
    /// stream.
    pub fn with_spill(spill: &'a Path) -> StreamOpts<'a> {
        StreamOpts {
            spill: Some(spill),
            ..StreamOpts::from_env()
        }
    }
}

/// A handle to campaign records that live on disk, not in RAM: the
/// streaming replacement for the legacy `records: Vec<_>` field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordHandle {
    path: PathBuf,
    count: u64,
}

impl RecordHandle {
    /// The spill file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records written.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Streams every `(site index, encoded payload)` pair to `f`, in the
    /// order the sites settled, reading line-by-line so the full record
    /// set never materialises in memory.
    ///
    /// # Errors
    ///
    /// I/O failures reading the spill file, or
    /// [`std::io::ErrorKind::InvalidData`] on a malformed line.
    pub fn for_each_payload<F: FnMut(u64, &str)>(&self, mut f: F) -> std::io::Result<()> {
        let reader = BufReader::new(File::open(&self.path)?);
        let bad = |line: &str| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed spill line in {}: {line:?}", self.path.display()),
            )
        };
        for line in reader.lines() {
            let line = line?;
            let (index, payload) = line.split_once('|').ok_or_else(|| bad(&line))?;
            let index: u64 = index.parse().map_err(|_| bad(&line))?;
            f(index, &unescape_field(payload));
        }
        Ok(())
    }

    /// Collects every `(site index, payload)` pair into a vector —
    /// convenience for tests and small campaigns; defeats the streaming
    /// memory bound by construction.
    ///
    /// # Errors
    ///
    /// As [`RecordHandle::for_each_payload`].
    pub fn payloads(&self) -> std::io::Result<Vec<(u64, String)>> {
        let mut out = Vec::new();
        self.for_each_payload(|i, p| out.push((i, p.to_string())))?;
        Ok(out)
    }
}

/// What the sink saw over one streaming run.
#[derive(Debug)]
pub struct SinkSummary {
    /// Completed records that passed through the sink.
    pub done: u64,
    /// Quarantined sites, in settlement order (indices in campaign
    /// sampling coordinates).
    pub quarantined: Vec<Quarantine>,
    /// Handle to the spill file, when [`StreamOpts::spill`] was set.
    pub records: Option<RecordHandle>,
}

/// Runs `body` (the producer side — typically a scheduler drive whose
/// outcome hook pushes into the [`SinkHandle`]) against a dedicated sink
/// thread that fans each event out to the journal, the spill file, and
/// the caller's `fold` accumulator. Returns `body`'s result together
/// with the sink's summary once the channel has fully drained and the
/// journal and spill file are flushed.
///
/// # Errors
///
/// [`JournalError`] from journal appends or spill-file I/O. The first
/// failure stops fan-out but not draining, so producers never block
/// forever against a dead sink.
///
/// # Panics
///
/// Propagates a panic from `body`; panics if the sink thread itself
/// panics (it runs no user code except `fold`).
pub fn stream<T, G, B>(
    journal: Option<&Journal>,
    opts: StreamOpts<'_>,
    fold: G,
    body: B,
) -> Result<(T, SinkSummary), JournalError>
where
    T: Send,
    G: FnMut(u64, &str) + Send,
    B: FnOnce(&SinkHandle) -> T,
{
    let spill = match opts.spill {
        Some(path) => {
            let io = |e| JournalError::Io(path.to_path_buf(), e);
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).map_err(io)?;
                }
            }
            let file = File::create(path).map_err(io)?;
            Some((path.to_path_buf(), BufWriter::new(file)))
        }
        None => None,
    };

    let (tx, rx) = sync_channel(opts.channel_cap.max(1));
    let handle = SinkHandle { tx };
    // Fan each settled record out to the subscriber tee right after the
    // caller's fold, still on the sink thread, so subscribers see the
    // exact settlement order the journal records.
    let tee = opts.tee;
    let mut fold = fold;
    let fold = move |i: u64, p: &str| {
        fold(i, p);
        if let Some(t) = tee {
            t(i, p);
        }
    };
    let (out, summary) = std::thread::scope(|s| {
        let sink = s.spawn(move || consume(&rx, journal, spill, fold));
        let out = body(&handle);
        // Hang up the producer side so the sink sees end-of-stream.
        drop(handle);
        (out, sink.join().expect("sink thread must not panic"))
    });
    let summary = summary?;
    if let Some(j) = journal {
        // Completion barrier for the journal's group commit: everything
        // streamed is durable before the caller sees the summary.
        j.flush()?;
    }
    Ok((out, summary))
}

/// Sink-thread loop: drains the channel, fanning each event out to the
/// journal, the spill file, and `fold`. Keeps draining after the first
/// error (producers block on a full channel, never on a dead sink) and
/// reports that error once the stream closes.
fn consume<G: FnMut(u64, &str)>(
    rx: &Receiver<SinkEvent>,
    journal: Option<&Journal>,
    mut spill: Option<(PathBuf, BufWriter<File>)>,
    mut fold: G,
) -> Result<SinkSummary, JournalError> {
    let mut done = 0u64;
    let mut quarantined = Vec::new();
    let mut err: Option<JournalError> = None;
    for ev in rx {
        if err.is_some() {
            continue;
        }
        let fanout = match ev {
            SinkEvent::Done { index, payload } => (|| {
                if let Some(j) = journal {
                    j.append_done(index, &payload)?;
                }
                if let Some((path, w)) = spill.as_mut() {
                    writeln!(w, "{index}|{}", escape_field(&payload))
                        .map_err(|e| JournalError::Io(path.clone(), e))?;
                }
                fold(index, &payload);
                done += 1;
                Ok(())
            })(),
            SinkEvent::Quarantined {
                index,
                attempts,
                message,
            } => {
                let r = match journal {
                    // Quarantines force a group-commit flush: the marker
                    // is durable before it is ever reported.
                    Some(j) => j.append_quarantined(index, attempts, &message),
                    None => Ok(()),
                };
                quarantined.push(Quarantine {
                    index: usize::try_from(index).unwrap_or(usize::MAX),
                    attempts,
                    message,
                });
                r
            }
        };
        if let Err(e) = fanout {
            err = Some(e);
        }
    }
    if let Some(e) = err {
        return Err(e);
    }
    let records = match spill {
        Some((path, mut w)) => {
            w.flush().map_err(|e| JournalError::Io(path.clone(), e))?;
            Some(RecordHandle { path, count: done })
        }
        None => None,
    };
    Ok(SinkSummary {
        done,
        quarantined,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vulnstack-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn opts(cap: usize) -> StreamOpts<'static> {
        StreamOpts {
            channel_cap: cap,
            spill: None,
            gate: None,
            tee: None,
        }
    }

    #[test]
    fn fold_sees_every_record_without_collecting() {
        let mut sum = 0u64;
        let ((), summary) = stream(
            None,
            opts(4),
            |i, payload| sum += i + payload.parse::<u64>().unwrap(),
            |h| {
                for i in 0..100u64 {
                    h.push_done(i, (i * 3).to_string());
                }
            },
        )
        .unwrap();
        assert_eq!(summary.done, 100);
        assert!(summary.quarantined.is_empty());
        assert!(summary.records.is_none());
        assert_eq!(sum, (0..100).map(|i| i * 4).sum::<u64>());
    }

    #[test]
    fn capacity_one_channel_still_drains_many_producers() {
        // The tightest possible bound exercises backpressure on every
        // push; the count must still come out exact.
        let pushed = AtomicUsize::new(0);
        let mut seen = 0u64;
        let ((), summary) = stream(
            None,
            opts(1),
            |_, _| seen += 1,
            |h| {
                std::thread::scope(|s| {
                    for t in 0..4u64 {
                        let (h, pushed) = (&h, &pushed);
                        s.spawn(move || {
                            for i in 0..50u64 {
                                h.push_done(t * 50 + i, "x".to_string());
                                pushed.fetch_add(1, Ordering::Relaxed);
                            }
                        });
                    }
                });
            },
        )
        .unwrap();
        assert_eq!(pushed.load(Ordering::Relaxed), 200);
        assert_eq!(summary.done, 200);
        assert_eq!(seen, 200);
    }

    #[test]
    fn spill_file_roundtrips_awkward_payloads_in_order() {
        let path = tmp("spill-roundtrip.records");
        let payloads = ["plain", "pipe|pipe", "new\nline", "back\\slash", ""];
        let so = StreamOpts {
            channel_cap: 2,
            spill: Some(&path),
            gate: None,
            tee: None,
        };
        let ((), summary) = stream(
            None,
            so,
            |_, _| {},
            |h| {
                for (i, p) in payloads.iter().enumerate() {
                    h.push_done(i as u64, (*p).to_string());
                }
            },
        )
        .unwrap();
        let handle = summary.records.expect("spill requested");
        assert_eq!(handle.count(), payloads.len() as u64);
        let got = handle.payloads().unwrap();
        for (k, (i, p)) in got.iter().enumerate() {
            assert_eq!(*i, k as u64);
            assert_eq!(p, payloads[k], "payload {k} must roundtrip");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn quarantines_pass_through_with_coordinates_intact() {
        let ((), summary) = stream(
            None,
            opts(4),
            |_, _| {},
            |h| {
                h.push_done(0, "ok".to_string());
                h.push_quarantined(3, 2, "boom".to_string());
            },
        )
        .unwrap();
        assert_eq!(summary.done, 1);
        assert_eq!(
            summary.quarantined,
            vec![Quarantine {
                index: 3,
                attempts: 2,
                message: "boom".to_string()
            }]
        );
    }

    #[test]
    fn journal_receives_streamed_records_durably() {
        use crate::journal::{EntryKind, Fingerprint};
        let path = tmp("sink-journal.journal");
        let _ = std::fs::remove_file(&path);
        let fp = Fingerprint {
            engine: "sink-test".into(),
            workload: "w".into(),
            config: "c".into(),
            structure: "-".into(),
            seed: 1,
            samples: 3,
            params: String::new(),
            version: 1,
        };
        let journal = Journal::create(&path, &fp).unwrap();
        let ((), summary) = stream(
            Some(&journal),
            opts(2),
            |_, _| {},
            |h| {
                h.push_done(0, "a".to_string());
                h.push_quarantined(1, 3, "poison".to_string());
                h.push_done(2, "c".to_string());
            },
        )
        .unwrap();
        drop(journal);
        assert_eq!(summary.done, 2);
        let (_, replay) = Journal::resume(&path, &fp).unwrap();
        assert_eq!(replay.entries.len(), 3);
        assert_eq!(replay.entries[0].kind, EntryKind::Done("a".into()));
        assert_eq!(
            replay.entries[1].kind,
            EntryKind::Quarantined {
                attempts: 3,
                message: "poison".into()
            }
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tee_sees_every_record_after_fold() {
        use std::sync::Mutex;
        let teed: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());
        let tee = |i: u64, p: &str| teed.lock().unwrap().push((i, p.to_string()));
        let mut folded = 0u64;
        let so = StreamOpts {
            tee: Some(&tee),
            ..opts(4)
        };
        let ((), summary) = stream(
            None,
            so,
            |_, _| folded += 1,
            |h| {
                for i in 0..10u64 {
                    h.push_done(i, format!("r{i}"));
                }
            },
        )
        .unwrap();
        assert_eq!(summary.done, 10);
        assert_eq!(folded, 10);
        let teed = teed.into_inner().unwrap();
        assert_eq!(teed.len(), 10);
        for (i, p) in &teed {
            assert_eq!(p, &format!("r{i}"));
        }
    }

    #[test]
    fn channel_cap_env_default_applies_when_unset() {
        assert_eq!(channel_cap_from_env(), DEFAULT_CHANNEL_CAP);
        assert_eq!(StreamOpts::from_env().channel_cap, DEFAULT_CHANNEL_CAP);
    }
}
