//! Statistical fault-sampling calculations (Leveugle et al., the paper's
//! reference \[21\]).

/// z-score for 99% confidence.
pub const Z_99: f64 = 2.576;
/// z-score for 95% confidence.
pub const Z_95: f64 = 1.960;

/// Margin of error for a fault-sampling campaign: `n` samples drawn
/// without replacement from a population of `population` fault sites, with
/// estimated proportion `p` and confidence z-score `z`.
///
/// `e = z * sqrt( p(1-p)/n * (N-n)/(N-1) )`
pub fn error_margin(n: u64, population: u64, p: f64, z: f64) -> f64 {
    if n == 0 || population <= 1 {
        return 1.0;
    }
    let n_f = n as f64;
    let big_n = population as f64;
    let fpc = ((big_n - n_f) / (big_n - 1.0)).max(0.0);
    z * (p * (1.0 - p) / n_f * fpc).sqrt()
}

/// Number of samples needed for margin `e` at confidence `z` with the
/// worst-case proportion `p = 0.5`.
///
/// Degenerate inputs are guarded (mirroring [`error_margin`]): a
/// population of 0 or 1 needs at most `population` samples, and a
/// non-positive (or NaN) margin can only be met by exhaustive sampling —
/// both return `population` instead of dividing by zero and casting
/// NaN/inf to a garbage `u64`.
pub fn samples_for_margin(population: u64, e: f64, z: f64) -> u64 {
    if population <= 1 {
        return population;
    }
    if e.is_nan() || e <= 0.0 {
        // e <= 0 or NaN: no finite sample count reaches it; exhaust.
        return population;
    }
    // Solve n from the finite-population formula.
    let big_n = population as f64;
    let n0 = (z * z * 0.25) / (e * e);
    let n = n0 / (1.0 + (n0 - 1.0) / big_n);
    (n.ceil() as u64).clamp(1, population)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_point() {
        // The paper: 2,000 samples -> 2.88% margin at 99% confidence
        // (large population, p = 0.5).
        let e = error_margin(2000, u64::MAX / 2, 0.5, Z_99);
        assert!((e - 0.0288).abs() < 0.0003, "e = {e}");
    }

    #[test]
    fn margin_shrinks_with_samples() {
        let pop = 1_000_000_000;
        let e1 = error_margin(100, pop, 0.5, Z_99);
        let e2 = error_margin(1000, pop, 0.5, Z_99);
        let e3 = error_margin(10000, pop, 0.5, Z_99);
        assert!(e1 > e2 && e2 > e3);
    }

    #[test]
    fn sample_size_roundtrip() {
        let pop = 500_000_000u64;
        let n = samples_for_margin(pop, 0.0288, Z_99);
        assert!((1900..2100).contains(&n), "n = {n}");
        let e = error_margin(n, pop, 0.5, Z_99);
        assert!(e <= 0.0289);
    }

    #[test]
    fn exhaustive_sampling_has_zero_margin() {
        let e = error_margin(1000, 1000, 0.5, Z_99);
        assert!(e.abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(error_margin(0, 100, 0.5, Z_99), 1.0);
        assert_eq!(error_margin(10, 1, 0.5, Z_99), 1.0);
    }

    #[test]
    fn samples_for_margin_guards_degenerate_inputs() {
        // Zero margin used to divide by zero -> inf -> garbage cast.
        assert_eq!(samples_for_margin(1000, 0.0, Z_99), 1000);
        assert_eq!(samples_for_margin(1000, -0.5, Z_99), 1000);
        assert_eq!(samples_for_margin(1000, f64::NAN, Z_99), 1000);
        // population <= 1 used to divide by big_n with n0 - 1 terms
        // meaningless; now: at most the whole population.
        assert_eq!(samples_for_margin(0, 0.01, Z_99), 0);
        assert_eq!(samples_for_margin(1, 0.01, Z_99), 1);
    }

    #[test]
    fn samples_for_margin_never_exceeds_population() {
        for pop in [2u64, 10, 100, 5000] {
            for e in [1e-6, 0.001, 0.01, 0.1, 10.0] {
                let n = samples_for_margin(pop, e, Z_99);
                assert!((1..=pop).contains(&n), "pop={pop} e={e} n={n}");
            }
        }
    }

    #[test]
    fn samples_for_margin_monotone_in_margin() {
        let pop = 1_000_000u64;
        let n_tight = samples_for_margin(pop, 0.01, Z_99);
        let n_loose = samples_for_margin(pop, 0.05, Z_99);
        assert!(n_tight > n_loose, "{n_tight} vs {n_loose}");
    }
}

/// Convenience: the two-sided margin of error of a measured proportion
/// from a campaign of `n` samples over a large population.
pub fn proportion_margin(p: f64, n: u64, z: f64) -> f64 {
    error_margin(n, u64::MAX / 2, p.clamp(0.0, 1.0), z)
}

#[cfg(test)]
mod proportion_tests {
    use super::*;

    #[test]
    fn margin_is_widest_at_half() {
        let n = 500;
        let mid = proportion_margin(0.5, n, Z_99);
        for p in [0.01, 0.2, 0.8, 0.99] {
            assert!(proportion_margin(p, n, Z_99) < mid, "p={p}");
        }
    }
}
