//! Fair-share execution slots for multi-tenant campaign serving.
//!
//! A daemon multiplexing many concurrent campaigns over one machine
//! cannot let each campaign spawn its own full-width worker pool — ten
//! tenants × sixteen threads oversubscribes every core and the longest
//! campaign starves the rest. [`FairPool`] inverts control: there are
//! exactly `slots` execution slots for the whole process, and a
//! campaign's workers must *admit* through their [`Participant`] (a
//! [`ClaimGate`]) before running each fault site. Admission is granted
//! by **stride scheduling**: every participant carries a `pass` value
//! advanced by `STRIDE_SCALE / weight` per grant, and a freed slot goes
//! to the waiting participant with the smallest pass. The result is
//! proportional-share fairness — a weight-4 tenant gets ~4× the slots of
//! a weight-1 tenant while both are runnable — with no starvation: a
//! waiting participant's pass never advances, so it eventually becomes
//! the minimum.
//!
//! Cancellation rides the same gate: [`Participant::cancel`] makes every
//! subsequent (or blocked) `admit` return [`Admission::Stop`], which
//! ends the campaign's claim loops at the next site boundary; the
//! journal keeps everything already settled, so a cancelled campaign is
//! exactly a resumable one. [`FairPool::shutdown`] does the same for
//! every participant at once.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::sched::{Admission, ClaimGate};

/// Pass-space scale: one grant advances a participant's pass by
/// `STRIDE_SCALE / weight`, so relative throughput is proportional to
/// weight with integer arithmetic error below 1 part in `STRIDE_SCALE`.
const STRIDE_SCALE: u64 = 1 << 20;

/// A process-wide pool of fair-share execution slots.
#[derive(Debug, Clone)]
pub struct FairPool {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    state: Mutex<State>,
    cv: Condvar,
}

#[derive(Debug)]
struct State {
    /// Slots currently free.
    free: usize,
    /// Total slots (so accounting can be asserted).
    slots: usize,
    /// Global virtual time: the pass of the most recent grant. New
    /// participants join at this pass, so they neither monopolise the
    /// pool (joining at 0 with old tenants far ahead) nor wait for
    /// history they were not part of.
    vtime: u64,
    /// Pool-wide stop flag (daemon shutdown).
    shutdown: bool,
    next_id: u64,
    parts: HashMap<u64, PartState>,
}

#[derive(Debug)]
struct PartState {
    weight: u32,
    pass: u64,
    shared: Arc<PartShared>,
}

/// Lock-free participant flags. `waiting` is raised **before** the
/// state mutex is acquired: a worker stuck behind the lock (mutexes
/// barge — a tight admit/release loop can re-acquire indefinitely ahead
/// of a parked thread) still counts as waiting, so the barging thread
/// sees a lower-pass waiter, parks in the condvar, and hands the lock
/// over. Without this, one tenant in a tight loop starves every other
/// tenant at the mutex itself, below the scheduler's visibility.
#[derive(Debug, Default)]
struct PartShared {
    waiting: AtomicU32,
    cancelled: AtomicBool,
    /// Lifetime grant count. Lives here (not in [`PartState`]) so
    /// status reporting still works after the participant retires.
    grants: AtomicU64,
}

impl FairPool {
    /// A pool with `slots` concurrent execution slots (min 1).
    pub fn new(slots: usize) -> FairPool {
        let slots = slots.max(1);
        FairPool {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    free: slots,
                    slots,
                    vtime: 0,
                    shutdown: false,
                    next_id: 0,
                    parts: HashMap::new(),
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Total slots.
    pub fn slots(&self) -> usize {
        self.inner.state.lock().expect("unpoisoned").slots
    }

    /// Registers a participant with the given scheduling `weight`
    /// (min 1): while contended, its long-run slot share is
    /// `weight / Σ weights of runnable participants`.
    pub fn register(&self, weight: u32) -> Participant {
        let mut st = self.inner.state.lock().expect("unpoisoned");
        let id = st.next_id;
        st.next_id += 1;
        let pass = st.vtime;
        let shared = Arc::new(PartShared::default());
        st.parts.insert(
            id,
            PartState {
                weight: weight.max(1),
                pass,
                shared: Arc::clone(&shared),
            },
        );
        Participant {
            inner: Arc::clone(&self.inner),
            id,
            shared,
        }
    }

    /// Stops the pool: every blocked or future `admit` returns
    /// [`Admission::Stop`]. In-flight sites finish and release their
    /// slots normally.
    pub fn shutdown(&self) {
        let mut st = self.inner.state.lock().expect("unpoisoned");
        st.shutdown = true;
        self.inner.cv.notify_all();
    }
}

/// One campaign's handle into the pool: a [`ClaimGate`] granting shared
/// execution slots in stride-scheduled fair order. Clone it once per
/// campaign run; retire it (or cancel it) when the campaign ends.
#[derive(Debug, Clone)]
pub struct Participant {
    inner: Arc<Inner>,
    id: u64,
    shared: Arc<PartShared>,
}

impl Participant {
    /// Cancels the participant: every blocked or future `admit` returns
    /// [`Admission::Stop`]. Idempotent.
    pub fn cancel(&self) {
        // Take the lock before notifying so a concurrent `admit` cannot
        // check the flag and park between our store and our notify.
        let _st = self.inner.state.lock().expect("unpoisoned");
        self.shared.cancelled.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
    }

    /// Whether [`Participant::cancel`] was called.
    pub fn cancelled(&self) -> bool {
        self.shared.cancelled.load(Ordering::SeqCst)
    }

    /// Slots granted to this participant so far. Keeps counting
    /// after retirement — the daemon reports it in `status` for
    /// finished campaigns.
    pub fn grants(&self) -> u64 {
        self.shared.grants.load(Ordering::SeqCst)
    }

    /// Removes the participant from the scheduler (its final state is
    /// discarded). Any still-blocked `admit` returns `Stop`.
    pub fn retire(&self) {
        let mut st = self.inner.state.lock().expect("unpoisoned");
        st.parts.remove(&self.id);
        self.shared.cancelled.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
    }
}

impl ClaimGate for Participant {
    fn admit(&self) -> Admission {
        // Raise the waiting flag BEFORE taking the lock (see
        // [`PartShared`]): a worker queued behind the mutex must already
        // count as a waiter or a tight admit/release loop starves it at
        // the lock itself.
        self.shared.waiting.fetch_add(1, Ordering::SeqCst);
        let mut st = self.inner.state.lock().expect("unpoisoned");
        loop {
            if st.shutdown || self.shared.cancelled.load(Ordering::SeqCst) {
                self.shared.waiting.fetch_sub(1, Ordering::SeqCst);
                return Admission::Stop;
            }
            if st.free > 0 {
                // Grant goes to the waiting participant with the
                // smallest (pass, id); only take the slot if that is us.
                let min = st
                    .parts
                    .iter()
                    .filter(|(_, p)| {
                        p.shared.waiting.load(Ordering::SeqCst) > 0
                            && !p.shared.cancelled.load(Ordering::SeqCst)
                    })
                    .map(|(&id, p)| (p.pass, id))
                    .min();
                if min == Some((st.parts[&self.id].pass, self.id)) {
                    st.free -= 1;
                    let vtime = st.parts[&self.id].pass;
                    st.vtime = st.vtime.max(vtime);
                    let p = st.parts.get_mut(&self.id).expect("present");
                    p.pass += STRIDE_SCALE / u64::from(p.weight);
                    self.shared.grants.fetch_add(1, Ordering::SeqCst);
                    self.shared.waiting.fetch_sub(1, Ordering::SeqCst);
                    // Another waiter may now be the minimum for the
                    // remaining free slots.
                    self.inner.cv.notify_all();
                    return Admission::Run;
                }
            }
            st = self.inner.cv.wait(st).expect("unpoisoned");
        }
    }

    fn release(&self) {
        let mut st = self.inner.state.lock().expect("unpoisoned");
        debug_assert!(st.free < st.slots, "release without a matching admit");
        st.free += 1;
        self.inner.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    #[test]
    fn single_participant_uses_every_slot() {
        let pool = FairPool::new(2);
        let p = pool.register(1);
        for _ in 0..10 {
            assert_eq!(p.admit(), Admission::Run);
            p.release();
        }
        assert_eq!(p.grants(), 10);
    }

    #[test]
    fn equal_weights_share_one_slot_without_starvation() {
        let pool = FairPool::new(1);
        let a = pool.register(1);
        let b = pool.register(1);
        let log = Mutex::new(Vec::new());
        // Start barrier plus a sleep while holding the slot: a site that
        // takes zero time never lets a single-CPU scheduler run the
        // other tenant at all, which would test the OS, not the pool.
        let start = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            for (name, p) in [("a", &a), ("b", &b)] {
                let (log, start) = (&log, &start);
                s.spawn(move || {
                    start.wait();
                    for _ in 0..100 {
                        assert_eq!(p.admit(), Admission::Run);
                        log.lock().unwrap().push(name);
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        p.release();
                    }
                });
            }
        });
        let log = log.into_inner().unwrap();
        assert_eq!(log.len(), 200);
        // Fairness bound: while both are runnable, stride scheduling
        // alternates, so the first half must contain plenty of each
        // (generous margins absorb OS scheduling noise).
        let head = &log[..100];
        let a_head = head.iter().filter(|&&n| n == "a").count();
        assert!(
            (20..=80).contains(&a_head),
            "one participant starved: a got {a_head}/100 early grants"
        );
    }

    #[test]
    fn weights_give_proportional_share() {
        let pool = FairPool::new(1);
        let high = pool.register(4);
        let low = pool.register(1);
        let stop = AtomicBool::new(false);
        let (h, l) = (AtomicU64::new(0), AtomicU64::new(0));
        // Two worker threads per tenant, like a real campaign's worker
        // pool: the wait set then holds both tenants at every grant
        // decision, so the stride weights — not release/re-admit timing
        // — decide who runs.
        let start = std::sync::Barrier::new(4);
        std::thread::scope(|s| {
            for (count, p) in [(&h, &high), (&h, &high), (&l, &low), (&l, &low)] {
                let (stop, start) = (&stop, &start);
                s.spawn(move || {
                    start.wait();
                    while !stop.load(Ordering::Relaxed) {
                        if p.admit() != Admission::Run {
                            break;
                        }
                        count.fetch_add(1, Ordering::Relaxed);
                        // Hold the slot like a real injection site does,
                        // so the other workers get scheduled and queued.
                        std::thread::sleep(std::time::Duration::from_micros(100));
                        p.release();
                    }
                });
            }
            // Let them contend for a fixed number of total grants, then
            // stop all at once so the measured window is the contended
            // one.
            while h.load(Ordering::Relaxed) + l.load(Ordering::Relaxed) < 300 {
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
            pool.shutdown();
        });
        let (h, l) = (h.load(Ordering::Relaxed), l.load(Ordering::Relaxed));
        assert!(l > 10, "low-priority tenant starved: {l} grants vs {h}");
        let ratio = h as f64 / l as f64;
        assert!(
            (2.0..=8.0).contains(&ratio),
            "weight-4 vs weight-1 ratio {ratio:.2} outside [2, 8] ({h} vs {l})"
        );
    }

    #[test]
    fn cancel_unblocks_admit_with_stop() {
        let pool = FairPool::new(1);
        let runner = pool.register(1);
        let blocked = pool.register(1);
        assert_eq!(runner.admit(), Admission::Run); // hold the only slot
        std::thread::scope(|s| {
            let t = s.spawn(|| blocked.admit());
            std::thread::sleep(std::time::Duration::from_millis(20));
            blocked.cancel();
            assert_eq!(t.join().unwrap(), Admission::Stop);
        });
        runner.release();
        assert_eq!(blocked.admit(), Admission::Stop, "cancel is sticky");
    }

    #[test]
    fn shutdown_stops_every_participant() {
        let pool = FairPool::new(2);
        let a = pool.register(1);
        let b = pool.register(3);
        pool.shutdown();
        assert_eq!(a.admit(), Admission::Stop);
        assert_eq!(b.admit(), Admission::Stop);
    }

    #[test]
    fn retired_participant_stops_and_frees_its_state() {
        let pool = FairPool::new(1);
        let p = pool.register(1);
        assert_eq!(p.admit(), Admission::Run);
        p.release();
        p.retire();
        assert_eq!(p.admit(), Admission::Stop);
        assert_eq!(p.grants(), 1, "the grant history survives retirement");
    }

    #[test]
    fn late_joiner_is_not_locked_out_by_history() {
        let pool = FairPool::new(1);
        let old = pool.register(1);
        for _ in 0..50 {
            assert_eq!(old.admit(), Admission::Run);
            old.release();
        }
        // A new tenant joins at the current virtual time: it must get
        // roughly half the subsequent grants, not first refill 50
        // grants of "debt" (that would starve `old`), and not be
        // starved by `old`'s head start either.
        let newcomer = pool.register(1);
        let log = Mutex::new(Vec::new());
        let start = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            for (name, p) in [("old", &old), ("new", &newcomer)] {
                let (log, start) = (&log, &start);
                s.spawn(move || {
                    start.wait();
                    for _ in 0..60 {
                        assert_eq!(p.admit(), Admission::Run);
                        log.lock().unwrap().push(name);
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        p.release();
                    }
                });
            }
        });
        let head = &log.into_inner().unwrap()[..60];
        let newcount = head.iter().filter(|&&n| n == "new").count();
        assert!(
            (12..=48).contains(&newcount),
            "late joiner got {newcount}/60 early grants"
        );
    }
}
