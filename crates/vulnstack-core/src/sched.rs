//! Work-stealing campaign scheduler.
//!
//! Every injection campaign in the workspace has the same shape: a
//! pre-drawn list of fault sites, one expensive independent simulation
//! per site, and a determinism requirement — the same seed must produce
//! the same records at any thread count. The static-chunk pattern the
//! campaigns used to carry (split the sites into `threads` equal slices)
//! satisfies determinism but load-balances badly: faulty-run lifetimes
//! vary by orders of magnitude (a masked fault can exit after a few
//! thousand cycles, a hang burns the whole watchdog budget), so one
//! unlucky chunk routinely serialises the campaign.
//!
//! [`map`] replaces the chunks with an atomic-counter work queue: each
//! worker repeatedly claims the next unclaimed index and runs it, so no
//! worker idles while work remains. Results are scattered back to their
//! input index, which makes the output *identical* to a sequential map
//! regardless of thread count or claim order — determinism is preserved
//! by construction, not by scheduling.
//!
//! [`map_ordered`] additionally decouples the *processing* order from
//! the *result* order: campaigns sort their fault sites by injection
//! cycle and pass the sorted permutation, so neighbouring claims restore
//! from the same warm checkpoint (see `vulnstack-microarch::snapshot`)
//! while the returned records stay in sampling order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::trace::CampaignMetrics;

/// Runs `f` over every item on `threads` workers with work stealing.
///
/// Returns the results in input order: `out[i] == f(i, &items[i])`.
/// Deterministic for deterministic `f` at any thread count.
pub fn map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let order: Vec<usize> = (0..items.len()).collect();
    map_ordered(items, &order, threads, f)
}

/// Runs `f` over every item on `threads` workers with work stealing,
/// *claiming* items in `order` while still returning results in input
/// order (`out[i] == f(i, &items[i])`).
///
/// `order` must be a permutation of `0..items.len()`; campaigns pass the
/// fault sites sorted by injection cycle so that consecutive claims share
/// checkpoint locality.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..items.len()`, or if a
/// worker panics.
pub fn map_ordered<T, R, F>(items: &[T], order: &[usize], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_ordered_metered(items, order, threads, f, None)
}

/// [`map_ordered`] with optional campaign metrics: when `metrics` is
/// given, every claim is recorded as a per-worker timeline span in the
/// collector (worker id = spawn index, or 0 on the sequential path).
/// Instrumentation never affects the results — they stay identical to
/// [`map_ordered`] with `metrics = None`.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..items.len()`, or if a
/// worker panics.
pub fn map_ordered_metered<T, R, F>(
    items: &[T],
    order: &[usize],
    threads: usize,
    f: F,
    metrics: Option<&CampaignMetrics>,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert_permutation(order, items.len());
    let threads = threads.clamp(1, items.len().max(1));
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    let run_one = |worker: usize, i: usize| {
        let start = metrics.map(|m| m.now_us());
        let r = f(i, &items[i]);
        if let (Some(m), Some(s)) = (metrics, start) {
            m.record_span(worker, i, s, m.now_us());
        }
        *slots[i].lock().expect("unpoisoned") = Some(r);
    };
    if threads == 1 {
        for &i in order {
            run_one(0, i);
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for worker in 0..threads {
                let (run_one, next) = (&run_one, &next);
                s.spawn(move || loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= order.len() {
                        break;
                    }
                    run_one(worker, order[k]);
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("unpoisoned")
                .expect("validated permutation")
        })
        .collect()
}

/// Panics with a precise message unless `order` is a permutation of
/// `0..n` — checked up front so a bad order fails before any work runs,
/// not at collect time with an empty slot.
fn assert_permutation(order: &[usize], n: usize) {
    assert_eq!(order.len(), n, "order must cover every item");
    let mut seen = vec![false; n];
    for &i in order {
        assert!(i < n, "order contains out-of-range index {i} (len {n})");
        assert!(!seen[i], "order contains duplicate index {i}");
        seen[i] = true;
    }
}

/// Sorting permutation of `keys`: `out[k]` is the index of the `k`-th
/// smallest key (ties in input order). The standard way to build the
/// claim order for [`map_ordered`] from per-site injection cycles.
pub fn sort_order_by_key<K: Ord>(keys: &[K]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by_key(|&i| &keys[i]);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_matches_sequential_at_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 200] {
            let par = map(&items, threads, |_, &x| x * x + 1);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn map_ordered_claims_in_order_but_returns_in_place() {
        let items: Vec<u64> = vec![30, 10, 20, 40];
        let order = sort_order_by_key(&items);
        assert_eq!(order, vec![1, 2, 0, 3]);
        let claimed = Mutex::new(Vec::new());
        let out = map_ordered(&items, &order, 1, |i, &x| {
            claimed.lock().unwrap().push(x);
            (i, x)
        });
        assert_eq!(*claimed.lock().unwrap(), vec![10, 20, 30, 40]);
        assert_eq!(out, vec![(0, 30), (1, 10), (2, 20), (3, 40)]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let n = 257;
        let items: Vec<usize> = (0..n).collect();
        let calls = AtomicUsize::new(0);
        let out = map(&items, 7, |i, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), n);
        assert_eq!(out, items);
    }

    #[test]
    fn empty_and_tiny_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(map(&[5u32], 4, |_, &x| x + 1), vec![6]);
    }

    #[test]
    #[should_panic(expected = "duplicate index 1")]
    fn duplicate_index_in_order_panics_up_front() {
        let items = [10u32, 20, 30];
        map_ordered(&items, &[0, 1, 1], 2, |_, &x| x);
    }

    #[test]
    #[should_panic(expected = "out-of-range index 3")]
    fn out_of_range_index_in_order_panics_up_front() {
        let items = [10u32, 20, 30];
        map_ordered(&items, &[0, 1, 3], 2, |_, &x| x);
    }

    #[test]
    fn metered_map_records_every_site_and_matches_unmetered() {
        let items: Vec<u64> = (0..40).collect();
        let order = sort_order_by_key(&items);
        let plain = map_ordered(&items, &order, 4, |i, &x| (i as u64) * 1000 + x);
        let metrics = CampaignMetrics::new("sched-test");
        let metered = map_ordered_metered(
            &items,
            &order,
            4,
            |i, &x| (i as u64) * 1000 + x,
            Some(&metrics),
        );
        assert_eq!(metered, plain);
        let report = metrics.report();
        assert_eq!(report.sites, 40);
        assert_eq!(report.spans.len(), 40);
        let mut indices: Vec<usize> = report.spans.iter().map(|s| s.index).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..40).collect::<Vec<_>>());
        assert!(report.per_worker.iter().map(|w| w.sites).sum::<u64>() == 40);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs: with static chunks the first
        // chunk would carry nearly all the work; stealing spreads it.
        let items: Vec<u64> = (0..64).map(|i| if i < 8 { 200_000 } else { 10 }).collect();
        let out = map(&items, 8, |_, &spin| {
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }
}
