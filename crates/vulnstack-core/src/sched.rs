//! Work-stealing campaign scheduler.
//!
//! Every injection campaign in the workspace has the same shape: a
//! pre-drawn list of fault sites, one expensive independent simulation
//! per site, and a determinism requirement — the same seed must produce
//! the same records at any thread count. The static-chunk pattern the
//! campaigns used to carry (split the sites into `threads` equal slices)
//! satisfies determinism but load-balances badly: faulty-run lifetimes
//! vary by orders of magnitude (a masked fault can exit after a few
//! thousand cycles, a hang burns the whole watchdog budget), so one
//! unlucky chunk routinely serialises the campaign.
//!
//! [`map`] replaces the chunks with an atomic-counter work queue: each
//! worker repeatedly claims the next unclaimed index and runs it, so no
//! worker idles while work remains. Results are scattered back to their
//! input index, which makes the output *identical* to a sequential map
//! regardless of thread count or claim order — determinism is preserved
//! by construction, not by scheduling.
//!
//! [`map_ordered`] additionally decouples the *processing* order from
//! the *result* order: campaigns sort their fault sites by injection
//! cycle and pass the sorted permutation, so neighbouring claims restore
//! from the same warm checkpoint (see `vulnstack-microarch::snapshot`)
//! while the returned records stay in sampling order.

//!
//! [`map_ordered_resilient`] adds **fault domains** around the fault
//! injector itself: each site runs under `catch_unwind` with bounded
//! retry, a panicking site degrades to a [`SiteResult::Quarantined`]
//! record instead of killing the campaign, and a worker whose claim loop
//! dies outside the per-site isolation is respawned so the queue always
//! drains.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::trace::CampaignMetrics;

/// What an admission gate tells a worker that is about to claim a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run the site (the gate granted an execution slot).
    Run,
    /// Stop claiming: the campaign was cancelled or the pool is shutting
    /// down. Sites already in flight finish; unclaimed sites stay
    /// unclaimed (a journaled campaign resumes them later).
    Stop,
}

/// Admission control for shared-pool scheduling (see [`crate::fair`]).
///
/// When a campaign runs inside a multi-tenant daemon, its workers must
/// not monopolise the machine: before each site claim the worker calls
/// [`ClaimGate::admit`], which may **block** until the fair scheduler
/// grants one of the shared execution slots, and calls
/// [`ClaimGate::release`] once the site settles (panic included — the
/// drive holds the slot in a drop guard). A gate that returns
/// [`Admission::Stop`] ends the worker's claim loop early, which is how
/// campaign cancellation reaches the scheduler.
pub trait ClaimGate: Sync {
    /// Blocks until the gate grants a slot (`Run`) or tells the worker
    /// to stop claiming (`Stop`).
    fn admit(&self) -> Admission;
    /// Returns the slot taken by the last successful [`ClaimGate::admit`].
    fn release(&self);
}

/// Releases a gate slot when dropped, so a panicking site (or outcome
/// hook) can never leak an execution slot out of the shared pool.
struct SlotGuard<'a>(&'a dyn ClaimGate);

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// Runs `f` over every item on `threads` workers with work stealing.
///
/// Returns the results in input order: `out[i] == f(i, &items[i])`.
/// Deterministic for deterministic `f` at any thread count.
pub fn map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let order: Vec<usize> = (0..items.len()).collect();
    map_ordered(items, &order, threads, f)
}

/// Runs `f` over every item on `threads` workers with work stealing,
/// *claiming* items in `order` while still returning results in input
/// order (`out[i] == f(i, &items[i])`).
///
/// `order` must be a permutation of `0..items.len()`; campaigns pass the
/// fault sites sorted by injection cycle so that consecutive claims share
/// checkpoint locality.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..items.len()`, or if a
/// worker panics.
pub fn map_ordered<T, R, F>(items: &[T], order: &[usize], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_ordered_metered(items, order, threads, f, None)
}

/// [`map_ordered`] with optional campaign metrics: when `metrics` is
/// given, every claim is recorded as a per-worker timeline span in the
/// collector (worker id = spawn index, or 0 on the sequential path).
/// Instrumentation never affects the results — they stay identical to
/// [`map_ordered`] with `metrics = None`.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..items.len()`, or if a
/// worker panics.
pub fn map_ordered_metered<T, R, F>(
    items: &[T],
    order: &[usize],
    threads: usize,
    f: F,
    metrics: Option<&CampaignMetrics>,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert_permutation(order, items.len());
    let threads = threads.clamp(1, items.len().max(1));
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    let run_one = |worker: usize, i: usize| {
        let start = metrics.map(|m| m.now_us());
        let r = f(i, &items[i]);
        if let (Some(m), Some(s)) = (metrics, start) {
            m.record_span(worker, i, s, m.now_us());
        }
        *slots[i].lock().expect("unpoisoned") = Some(r);
    };
    if threads == 1 {
        for &i in order {
            run_one(0, i);
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for worker in 0..threads {
                let (run_one, next) = (&run_one, &next);
                s.spawn(move || loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= order.len() {
                        break;
                    }
                    run_one(worker, order[k]);
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("unpoisoned")
                .expect("validated permutation")
        })
        .collect()
}

/// Retry policy for panic-isolated campaign execution
/// ([`map_ordered_resilient`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPolicy {
    /// How many times a panicking site is re-run before it is
    /// quarantined. `0` quarantines on the first panic; the default
    /// retries twice (three attempts total), which shakes out
    /// scheduling-dependent flakes without letting a deterministic
    /// poison site burn unbounded time.
    pub max_retries: u32,
}

impl Default for RunPolicy {
    fn default() -> RunPolicy {
        RunPolicy { max_retries: 2 }
    }
}

/// Why a fault site produced no result: every attempt panicked (or the
/// site was lost to a worker failure outside the per-site isolation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantine {
    /// Input index of the poisoned site.
    pub index: usize,
    /// Attempts made (`1 + retries`); `0` if the site was claimed but
    /// lost to a worker failure before isolation could classify it.
    pub attempts: u32,
    /// The panic payload of the last attempt, if it was a string.
    pub message: String,
}

/// Outcome of one fault site under panic isolation.
#[derive(Debug, Clone, PartialEq)]
pub enum SiteResult<R> {
    /// The site ran to completion.
    Done(R),
    /// Every attempt panicked; the campaign carried on without it.
    Quarantined(Quarantine),
}

impl<R> SiteResult<R> {
    /// The completed result, if any.
    pub fn done(&self) -> Option<&R> {
        match self {
            SiteResult::Done(r) => Some(r),
            SiteResult::Quarantined(_) => None,
        }
    }

    /// Whether the site was quarantined.
    pub fn is_quarantined(&self) -> bool {
        matches!(self, SiteResult::Quarantined(_))
    }
}

/// Results of a panic-isolated map.
#[derive(Debug)]
pub struct ResilientOutput<R> {
    /// Per-site outcomes in input order (`outcomes[i]` is site `i`).
    pub outcomes: Vec<SiteResult<R>>,
    /// Worker claim loops that died outside the per-site isolation and
    /// were respawned.
    pub respawns: u64,
}

impl<R> ResilientOutput<R> {
    /// The quarantined sites, in input order.
    pub fn quarantined(&self) -> Vec<&Quarantine> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                SiteResult::Quarantined(q) => Some(q),
                SiteResult::Done(_) => None,
            })
            .collect()
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Accounting from [`drive_ordered_resilient`]: what happened to the
/// queue, with no per-site results (those went through `on_outcome`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DriveStats {
    /// Worker claim loops that died outside the per-site isolation and
    /// were respawned.
    pub respawns: u64,
    /// Input indices of sites that were claimed but never settled
    /// (claimed by a worker that died outside the site isolation before
    /// `on_outcome` finished), in ascending order. The caller decides
    /// their fate — the resume layer surfaces them as zero-attempt
    /// quarantines and re-runs them next time.
    pub lost: Vec<usize>,
    /// Input indices of sites never claimed because the admission gate
    /// returned [`Admission::Stop`] (campaign cancelled or pool shut
    /// down), in ascending order. Distinct from `lost`: nothing went
    /// wrong with these sites — a journaled campaign simply resumes
    /// them on the next run.
    pub unclaimed: Vec<usize>,
    /// Whether any worker observed [`Admission::Stop`] — i.e. the drive
    /// ended early rather than draining the queue.
    pub stopped: bool,
}

/// The non-collecting core of [`map_ordered_resilient`]: runs every site
/// under per-site panic isolation with bounded retry and hands each
/// settled [`SiteResult`] to `on_outcome` **by value**, keeping nothing.
/// This is the streaming substrate — `on_outcome` pushes into a bounded
/// [`crate::sink::SinkHandle`] and per-site memory stays O(workers)
/// regardless of campaign size.
///
/// Fault domains are identical to [`map_ordered_resilient`]: a site that
/// panics on every attempt settles as [`SiteResult::Quarantined`]; a
/// worker whose claim loop dies *outside* the site isolation (e.g. a
/// panicking `on_outcome`) is respawned, and the site it held is
/// reported in [`DriveStats::lost`] rather than silently dropped.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..items.len()`.
#[allow(clippy::too_many_arguments)]
pub fn drive_ordered_resilient<T, R, F, C>(
    items: &[T],
    order: &[usize],
    threads: usize,
    policy: RunPolicy,
    f: F,
    on_outcome: C,
    metrics: Option<&CampaignMetrics>,
    gate: Option<&dyn ClaimGate>,
) -> DriveStats
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    C: Fn(usize, SiteResult<R>) + Sync,
{
    assert_permutation(order, items.len());
    let threads = threads.clamp(1, items.len().max(1));
    let settled: Vec<AtomicBool> = (0..items.len()).map(|_| AtomicBool::new(false)).collect();
    let claimed: Vec<AtomicBool> = (0..items.len()).map(|_| AtomicBool::new(false)).collect();
    let respawns = AtomicU64::new(0);
    let stopped = AtomicBool::new(false);
    let run_one = |worker: usize, i: usize| {
        let start = metrics.map(|m| m.now_us());
        let mut attempts = 0u32;
        let outcome = loop {
            attempts += 1;
            match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                Ok(r) => break SiteResult::Done(r),
                Err(payload) => {
                    if attempts > policy.max_retries {
                        break SiteResult::Quarantined(Quarantine {
                            index: i,
                            attempts,
                            message: panic_message(payload.as_ref()),
                        });
                    }
                }
            }
        };
        if let (Some(m), Some(s)) = (metrics, start) {
            m.record_span(worker, i, s, m.now_us());
        }
        on_outcome(i, outcome);
        settled[i].store(true, Ordering::Relaxed);
    };
    // The claim loop shared by the sequential and threaded paths: admit
    // through the gate (blocking for a fair-pool slot), claim the next
    // index, run it while holding the slot in a drop guard so a panic
    // anywhere in `run_one` still releases it.
    let claim_loop = |worker: usize, next: &AtomicUsize| loop {
        // Cheap peek before the (possibly blocking) admission: never
        // wait for a slot when the queue has already drained.
        if next.load(Ordering::Relaxed) >= order.len() {
            break;
        }
        let guard = match gate {
            Some(g) => match g.admit() {
                Admission::Run => Some(SlotGuard(g)),
                Admission::Stop => {
                    stopped.store(true, Ordering::Relaxed);
                    break;
                }
            },
            None => None,
        };
        let k = next.fetch_add(1, Ordering::Relaxed);
        if k >= order.len() {
            drop(guard);
            break;
        }
        claimed[order[k]].store(true, Ordering::Relaxed);
        run_one(worker, order[k]);
        drop(guard);
    };
    if threads == 1 {
        let next = AtomicUsize::new(0);
        claim_loop(0, &next);
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for worker in 0..threads {
                let (claim_loop, next, respawns) = (&claim_loop, &next, &respawns);
                s.spawn(move || loop {
                    // Supervisor: if the claim loop unwinds outside the
                    // per-site isolation, count a respawn and re-enter it.
                    // Progress is guaranteed — every claim advances the
                    // shared counter, so at most `order.len()` claims ever
                    // happen across all workers and respawns.
                    let alive = catch_unwind(AssertUnwindSafe(|| claim_loop(worker, next)));
                    match alive {
                        Ok(()) => break,
                        Err(_) => {
                            respawns.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
    }
    let mut lost = Vec::new();
    let mut unclaimed = Vec::new();
    for i in 0..items.len() {
        if settled[i].load(Ordering::Relaxed) {
            continue;
        }
        if claimed[i].load(Ordering::Relaxed) {
            lost.push(i);
        } else {
            unclaimed.push(i);
        }
    }
    DriveStats {
        respawns: respawns.load(Ordering::Relaxed),
        lost,
        unclaimed,
        stopped: stopped.load(Ordering::Relaxed),
    }
}

/// [`map_ordered_metered`] with per-site panic isolation: each `f` call
/// runs under `catch_unwind` and is retried up to `policy.max_retries`
/// times; a site that panics on every attempt degrades to
/// [`SiteResult::Quarantined`] instead of killing the campaign.
/// `on_outcome` is invoked in-worker right after each site settles
/// (completed or quarantined) — the hook the journal layer uses to make
/// every record durable before the next claim.
///
/// Two further fault domains back the per-site one: a worker whose claim
/// loop dies *outside* the site isolation (e.g. a panicking `on_outcome`)
/// is respawned and the in-flight site is reported as a zero-attempt
/// [`Quarantine`]; and completed outcomes are scattered to their input
/// index exactly like [`map_ordered`], so the surviving results are
/// bit-identical to a run without any poison sites, at any thread count.
///
/// Collects every outcome in RAM; campaigns whose record set can
/// outgrow memory use [`drive_ordered_resilient`] with a streaming sink
/// instead.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..items.len()`.
pub fn map_ordered_resilient<T, R, F, C>(
    items: &[T],
    order: &[usize],
    threads: usize,
    policy: RunPolicy,
    f: F,
    on_outcome: C,
    metrics: Option<&CampaignMetrics>,
) -> ResilientOutput<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    C: Fn(usize, &SiteResult<R>) + Sync,
{
    let slots: Vec<Mutex<Option<SiteResult<R>>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    let stats = drive_ordered_resilient(
        items,
        order,
        threads,
        policy,
        f,
        |i, outcome| {
            // The user hook runs first (it may panic — that is the
            // "worker death outside site isolation" fault domain); only
            // a hook that returns keeps the outcome.
            on_outcome(i, &outcome);
            *slots[i].lock().expect("unpoisoned") = Some(outcome);
        },
        metrics,
        None,
    );
    let outcomes = slots
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            // A site claimed by a worker that then died outside the site
            // isolation never filled its slot: surface it as a
            // zero-attempt quarantine rather than panicking at collect
            // time (the resume layer will re-run it).
            m.into_inner().expect("unpoisoned").unwrap_or_else(|| {
                SiteResult::Quarantined(Quarantine {
                    index: i,
                    attempts: 0,
                    message: "site lost to a worker failure".to_string(),
                })
            })
        })
        .collect();
    ResilientOutput {
        outcomes,
        respawns: stats.respawns,
    }
}

/// Panics with a precise message unless `order` is a permutation of
/// `0..n` — checked up front so a bad order fails before any work runs,
/// not at collect time with an empty slot.
fn assert_permutation(order: &[usize], n: usize) {
    assert_eq!(order.len(), n, "order must cover every item");
    let mut seen = vec![false; n];
    for &i in order {
        assert!(i < n, "order contains out-of-range index {i} (len {n})");
        assert!(!seen[i], "order contains duplicate index {i}");
        seen[i] = true;
    }
}

/// Sorting permutation of `keys`: `out[k]` is the index of the `k`-th
/// smallest key (ties in input order). The standard way to build the
/// claim order for [`map_ordered`] from per-site injection cycles.
pub fn sort_order_by_key<K: Ord>(keys: &[K]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by_key(|&i| &keys[i]);
    order
}

/// Sorting permutation of `items` under a key projection — like
/// [`sort_order_by_key`] but without materialising a separate key
/// vector, for call sites whose keys are a field of a larger site tuple
/// (the temporal sweep's per-site injection cycle, for instance).
pub fn sort_order_by<T, K: Ord, F: Fn(&T) -> K>(items: &[T], key: F) -> Vec<usize> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| key(&items[i]));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_matches_sequential_at_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 200] {
            let par = map(&items, threads, |_, &x| x * x + 1);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn map_ordered_claims_in_order_but_returns_in_place() {
        let items: Vec<u64> = vec![30, 10, 20, 40];
        let order = sort_order_by_key(&items);
        assert_eq!(order, vec![1, 2, 0, 3]);
        let claimed = Mutex::new(Vec::new());
        let out = map_ordered(&items, &order, 1, |i, &x| {
            claimed.lock().unwrap().push(x);
            (i, x)
        });
        assert_eq!(*claimed.lock().unwrap(), vec![10, 20, 30, 40]);
        assert_eq!(out, vec![(0, 30), (1, 10), (2, 20), (3, 40)]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let n = 257;
        let items: Vec<usize> = (0..n).collect();
        let calls = AtomicUsize::new(0);
        let out = map(&items, 7, |i, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), n);
        assert_eq!(out, items);
    }

    #[test]
    fn empty_and_tiny_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(map(&[5u32], 4, |_, &x| x + 1), vec![6]);
    }

    #[test]
    #[should_panic(expected = "duplicate index 1")]
    fn duplicate_index_in_order_panics_up_front() {
        let items = [10u32, 20, 30];
        map_ordered(&items, &[0, 1, 1], 2, |_, &x| x);
    }

    #[test]
    #[should_panic(expected = "out-of-range index 3")]
    fn out_of_range_index_in_order_panics_up_front() {
        let items = [10u32, 20, 30];
        map_ordered(&items, &[0, 1, 3], 2, |_, &x| x);
    }

    #[test]
    fn metered_map_records_every_site_and_matches_unmetered() {
        let items: Vec<u64> = (0..40).collect();
        let order = sort_order_by_key(&items);
        let plain = map_ordered(&items, &order, 4, |i, &x| (i as u64) * 1000 + x);
        let metrics = CampaignMetrics::new("sched-test");
        let metered = map_ordered_metered(
            &items,
            &order,
            4,
            |i, &x| (i as u64) * 1000 + x,
            Some(&metrics),
        );
        assert_eq!(metered, plain);
        let report = metrics.report();
        assert_eq!(report.sites, 40);
        assert_eq!(report.spans.len(), 40);
        let mut indices: Vec<usize> = report.spans.iter().map(|s| s.index).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..40).collect::<Vec<_>>());
        assert!(report.per_worker.iter().map(|w| w.sites).sum::<u64>() == 40);
    }

    #[test]
    fn resilient_map_matches_plain_map_without_panics() {
        let items: Vec<u64> = (0..50).collect();
        let order = sort_order_by_key(&items);
        let plain = map_ordered(&items, &order, 4, |i, &x| (i as u64, x * 3));
        for threads in [1, 4] {
            let out = map_ordered_resilient(
                &items,
                &order,
                threads,
                RunPolicy::default(),
                |i, &x| (i as u64, x * 3),
                |_, _| {},
                None,
            );
            assert_eq!(out.respawns, 0);
            let done: Vec<_> = out
                .outcomes
                .iter()
                .map(|o| *o.done().expect("no panics injected"))
                .collect();
            assert_eq!(done, plain, "threads={threads}");
        }
    }

    #[test]
    fn panicking_site_is_quarantined_and_campaign_completes() {
        let items: Vec<u64> = (0..20).collect();
        let order: Vec<usize> = (0..items.len()).collect();
        let attempts_on_7 = AtomicUsize::new(0);
        let out = map_ordered_resilient(
            &items,
            &order,
            4,
            RunPolicy { max_retries: 2 },
            |i, &x| {
                if i == 7 {
                    attempts_on_7.fetch_add(1, Ordering::Relaxed);
                    panic!("poison site {i}");
                }
                x + 1
            },
            |_, _| {},
            None,
        );
        assert_eq!(out.outcomes.len(), 20);
        assert_eq!(
            attempts_on_7.load(Ordering::Relaxed),
            3,
            "1 try + 2 retries"
        );
        match &out.outcomes[7] {
            SiteResult::Quarantined(q) => {
                assert_eq!(q.index, 7);
                assert_eq!(q.attempts, 3);
                assert!(q.message.contains("poison site 7"), "{q:?}");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        for (i, o) in out.outcomes.iter().enumerate() {
            if i != 7 {
                assert_eq!(o.done(), Some(&(i as u64 + 1)), "site {i}");
            }
        }
        assert_eq!(out.quarantined().len(), 1);
    }

    #[test]
    fn flaky_site_succeeds_within_retry_budget() {
        let items = [0u32; 9];
        let order: Vec<usize> = (0..items.len()).collect();
        let tries = AtomicUsize::new(0);
        let out = map_ordered_resilient(
            &items,
            &order,
            3,
            RunPolicy { max_retries: 2 },
            |i, _| {
                // Site 4 panics on its first two attempts, then succeeds.
                if i == 4 && tries.fetch_add(1, Ordering::Relaxed) < 2 {
                    panic!("transient");
                }
                i
            },
            |_, _| {},
            None,
        );
        assert_eq!(out.outcomes[4].done(), Some(&4));
        assert!(out.quarantined().is_empty());
    }

    #[test]
    fn worker_death_outside_site_isolation_respawns_and_loses_only_that_site() {
        let items: Vec<u64> = (0..30).collect();
        let order: Vec<usize> = (0..items.len()).collect();
        let fired = AtomicUsize::new(0);
        let out = map_ordered_resilient(
            &items,
            &order,
            4,
            RunPolicy::default(),
            |_, &x| x,
            |i, _| {
                // A poisoned outcome hook escapes the per-site isolation
                // exactly once: the supervisor must respawn the worker's
                // claim loop and the campaign must still drain.
                if i == 11 && fired.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("hook failure");
                }
            },
            None,
        );
        assert_eq!(out.respawns, 1);
        match &out.outcomes[11] {
            SiteResult::Quarantined(q) => assert_eq!(q.attempts, 0),
            other => panic!("expected lost site, got {other:?}"),
        }
        for (i, o) in out.outcomes.iter().enumerate() {
            if i != 11 {
                assert_eq!(o.done(), Some(&(i as u64)), "site {i}");
            }
        }
    }

    /// A gate that admits the first `quota` claims, then stops — the
    /// deterministic stand-in for a cancelled fair-pool participant.
    struct QuotaGate {
        left: AtomicUsize,
        released: AtomicUsize,
    }

    impl QuotaGate {
        fn new(quota: usize) -> QuotaGate {
            QuotaGate {
                left: AtomicUsize::new(quota),
                released: AtomicUsize::new(0),
            }
        }
    }

    impl ClaimGate for QuotaGate {
        fn admit(&self) -> Admission {
            loop {
                let left = self.left.load(Ordering::SeqCst);
                if left == 0 {
                    return Admission::Stop;
                }
                if self
                    .left
                    .compare_exchange(left, left - 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    return Admission::Run;
                }
            }
        }

        fn release(&self) {
            self.released.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn gate_stop_ends_drive_with_unclaimed_sites_not_lost() {
        let items: Vec<u64> = (0..20).collect();
        let order: Vec<usize> = (0..20).collect();
        let gate = QuotaGate::new(7);
        let ran = AtomicUsize::new(0);
        for threads in [1, 4] {
            gate.left.store(7, Ordering::SeqCst);
            gate.released.store(0, Ordering::SeqCst);
            ran.store(0, Ordering::SeqCst);
            let stats = drive_ordered_resilient(
                &items,
                &order,
                threads,
                RunPolicy::default(),
                |_, &x| {
                    ran.fetch_add(1, Ordering::SeqCst);
                    x
                },
                |_, _| {},
                None,
                Some(&gate),
            );
            assert!(stats.stopped, "threads={threads}: drive must report stop");
            assert_eq!(ran.load(Ordering::SeqCst), 7, "threads={threads}");
            assert_eq!(stats.unclaimed.len(), 13, "threads={threads}");
            assert!(
                stats.lost.is_empty(),
                "threads={threads}: gate-stopped sites are not failures"
            );
            // Every admitted slot was released — none leaked.
            assert_eq!(gate.released.load(Ordering::SeqCst), 7, "threads={threads}");
        }
    }

    #[test]
    fn gate_slot_released_even_when_site_panics() {
        let items: Vec<u64> = (0..6).collect();
        let order: Vec<usize> = (0..6).collect();
        let gate = QuotaGate::new(usize::MAX);
        let stats = drive_ordered_resilient(
            &items,
            &order,
            2,
            RunPolicy { max_retries: 1 },
            |_, &x| {
                assert!(x != 3, "site 3 always panics");
                x
            },
            |_, _| {},
            None,
            Some(&gate),
        );
        assert!(!stats.stopped);
        assert!(stats.lost.is_empty() && stats.unclaimed.is_empty());
        // 6 sites, one of which retried once under the same slot: each
        // claim released exactly one slot.
        assert_eq!(gate.released.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn permissive_gate_is_equivalent_to_no_gate() {
        let items: Vec<u64> = (0..30).collect();
        let order: Vec<usize> = (0..30).collect();
        let gate = QuotaGate::new(usize::MAX);
        let sum = AtomicUsize::new(0);
        let stats = drive_ordered_resilient(
            &items,
            &order,
            3,
            RunPolicy::default(),
            |_, &x| x * 2,
            |_, o| {
                if let SiteResult::Done(v) = o {
                    sum.fetch_add(v as usize, Ordering::SeqCst);
                }
            },
            None,
            Some(&gate),
        );
        assert!(!stats.stopped);
        assert!(stats.lost.is_empty() && stats.unclaimed.is_empty());
        assert_eq!(sum.load(Ordering::SeqCst), (0..30).map(|x| x * 2).sum());
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs: with static chunks the first
        // chunk would carry nearly all the work; stealing spreads it.
        let items: Vec<u64> = (0..64).map(|i| if i < 8 { 200_000 } else { 10 }).collect();
        let out = map(&items, 8, |_, &spin| {
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }
}
