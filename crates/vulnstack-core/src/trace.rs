//! Campaign observability: throughput metrics and timeline export.
//!
//! PR 2's campaign engine (checkpoint restore + work stealing) made
//! injection campaigns fast; this module makes them **measurable**, which
//! is the precondition for tuning them further. A [`CampaignMetrics`]
//! collector is threaded through the scheduler
//! ([`crate::sched::map_ordered_metered`]) and the injection engines and
//! accumulates, thread-safely:
//!
//! * per-worker site counts and busy time (load-balance visibility);
//! * one timeline **span** per fault site (worker, site index, start/end),
//!   exportable as a Chrome-trace / Perfetto JSON timeline;
//! * a power-of-two histogram of **checkpoint restore distance** (cycles
//!   simulated between the restored snapshot and the injection point —
//!   the quantity the adaptive checkpoint interval trades memory
//!   against);
//! * the **extinct-early-exit rate** (injections classified Masked
//!   without simulating to completion) and **watchdog expiries** (faulty
//!   runs that hung until the commit watchdog fired).
//!
//! Everything serializes by hand (the in-tree `serde` shim derives are
//! no-ops): [`MetricsReport::to_json`] for `results/*.metrics.json`,
//! [`MetricsReport::chrome_trace_json`] for `results/*.trace.json`
//! (load either in `chrome://tracing` or <https://ui.perfetto.dev>).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::memquota::{MemQuota, Participation};

/// One scheduled unit of work (a fault site) on the campaign timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Worker that ran the site.
    pub worker: usize,
    /// Input index of the site (sampling order).
    pub index: usize,
    /// Start, microseconds since the collector was created.
    pub start_us: u64,
    /// End, microseconds since the collector was created.
    pub end_us: u64,
}

/// Thread-safe metrics collector for one campaign (or a sequence of
/// campaigns sharing a timeline).
#[derive(Debug)]
pub struct CampaignMetrics {
    label: String,
    start: Instant,
    sites: AtomicU64,
    extinct_early: AtomicU64,
    watchdog_expiries: AtomicU64,
    pruned_dead: AtomicU64,
    early_terminated: AtomicU64,
    /// Bucket `i` counts restore distances `d` with `bit_length(d) == i`
    /// (i.e. `d == 0` → bucket 0, `1..=1` → 1, `2..=3` → 2, ...).
    restore_hist: Mutex<[u64; 64]>,
    spans: Mutex<Vec<Span>>,
    /// Memory-quota registration for the span timeline — the second
    /// rung of the degradation ladder (after lifetime-trace rings):
    /// under quota pressure new spans are dropped (counted below) while
    /// the scalar counters stay exact.
    spans_quota: Participation,
    spans_shed: AtomicU64,
}

impl CampaignMetrics {
    /// Creates a collector; `label` names the campaign in reports. The
    /// span timeline registers with the global memory quota
    /// ([`MemQuota::global`]) as a sheddable participant.
    pub fn new(label: &str) -> CampaignMetrics {
        CampaignMetrics::with_quota(label, MemQuota::global())
    }

    /// [`CampaignMetrics::new`] against an explicit quota account (tests
    /// use this to exercise shedding without touching the process-global
    /// environment-configured account).
    pub fn with_quota(label: &str, quota: &MemQuota) -> CampaignMetrics {
        CampaignMetrics {
            label: label.to_string(),
            start: Instant::now(),
            sites: AtomicU64::new(0),
            extinct_early: AtomicU64::new(0),
            watchdog_expiries: AtomicU64::new(0),
            pruned_dead: AtomicU64::new(0),
            early_terminated: AtomicU64::new(0),
            restore_hist: Mutex::new([0; 64]),
            spans: Mutex::new(Vec::new()),
            spans_quota: quota.register("metrics-spans", true),
            spans_shed: AtomicU64::new(0),
        }
    }

    /// Microseconds elapsed since the collector was created.
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Records one completed fault-site span. The site *count* is always
    /// exact; the span itself is optional payload — under memory-quota
    /// pressure it is shed (see [`MetricsReport::spans_shed`]) instead of
    /// growing the timeline unboundedly.
    pub fn record_span(&self, worker: usize, index: usize, start_us: u64, end_us: u64) {
        self.sites.fetch_add(1, Ordering::Relaxed);
        if self.spans_quota.should_shed() {
            // Selected as a reclaim victim: drop the retained timeline
            // (the oldest data this collector holds), keep the scalars.
            let mut spans = self.spans.lock().expect("unpoisoned");
            let bytes = spans.capacity() * std::mem::size_of::<Span>();
            self.spans_shed
                .fetch_add(spans.len() as u64, Ordering::Relaxed);
            *spans = Vec::new();
            self.spans_quota.shed(bytes);
        }
        if !self.spans_quota.try_claim(std::mem::size_of::<Span>()) {
            self.spans_shed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.spans.lock().expect("unpoisoned").push(Span {
            worker,
            index,
            start_us,
            end_us,
        });
    }

    /// Records the cycle distance between the restored checkpoint and the
    /// injection cycle of one run.
    pub fn record_restore_distance(&self, cycles: u64) {
        let bucket = (64 - cycles.leading_zeros()) as usize; // bit length
        self.restore_hist.lock().expect("unpoisoned")[bucket.min(63)] += 1;
    }

    /// Records an injection that exited early because the fault went
    /// extinct (classified Masked without simulating to completion).
    pub fn record_extinct_early(&self) {
        self.extinct_early.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a faulty run that hung until the commit watchdog expired.
    pub fn record_watchdog_expiry(&self) {
        self.watchdog_expiries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a site classified Masked by the pruning layer without any
    /// simulation (dead def-use interval or un-armed LSQ entry).
    pub fn record_pruned_dead(&self) {
        self.pruned_dead.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an injection ended early because its architectural state
    /// re-converged with the golden checkpoint at the same cycle.
    pub fn record_early_terminated(&self) {
        self.early_terminated.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots the collected metrics into a serializable report.
    pub fn report(&self) -> MetricsReport {
        let spans = self.spans.lock().expect("unpoisoned").clone();
        let workers = spans.iter().map(|s| s.worker + 1).max().unwrap_or(0);
        let mut per_worker = vec![WorkerReport::default(); workers];
        for s in &spans {
            let w = &mut per_worker[s.worker];
            w.sites += 1;
            w.busy_us += s.end_us.saturating_sub(s.start_us);
        }
        let restore_hist = *self.restore_hist.lock().expect("unpoisoned");
        MetricsReport {
            label: self.label.clone(),
            // At least 1µs: a snapshot taken within the clock's
            // resolution must still yield a finite, nonzero throughput.
            wall_us: self.now_us().max(1),
            sites: self.sites.load(Ordering::Relaxed),
            extinct_early: self.extinct_early.load(Ordering::Relaxed),
            watchdog_expiries: self.watchdog_expiries.load(Ordering::Relaxed),
            pruned_dead: self.pruned_dead.load(Ordering::Relaxed),
            early_terminated: self.early_terminated.load(Ordering::Relaxed),
            spans_shed: self.spans_shed.load(Ordering::Relaxed),
            per_worker,
            restore_hist,
            spans,
        }
    }
}

/// Per-worker accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerReport {
    /// Fault sites this worker ran.
    pub sites: u64,
    /// Microseconds spent inside site simulations.
    pub busy_us: u64,
}

/// An immutable snapshot of one campaign's metrics.
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Campaign label.
    pub label: String,
    /// Wall-clock microseconds from collector creation to the snapshot.
    pub wall_us: u64,
    /// Total fault sites run.
    pub sites: u64,
    /// Sites classified Masked via the extinct early exit.
    pub extinct_early: u64,
    /// Sites whose faulty run expired the commit watchdog.
    pub watchdog_expiries: u64,
    /// Sites classified Masked by the pruning layer with zero simulation.
    pub pruned_dead: u64,
    /// Injections ended early by golden-state re-convergence.
    pub early_terminated: u64,
    /// Timeline spans shed under memory-quota pressure: the per-worker
    /// accounting and the Chrome trace below cover only the *retained*
    /// spans when this is nonzero (the `sites` count stays exact).
    pub spans_shed: u64,
    /// Per-worker accounting, indexed by worker id.
    pub per_worker: Vec<WorkerReport>,
    /// Restore-distance histogram (bucket `i` = bit length of distance).
    pub restore_hist: [u64; 64],
    /// Every site span, in completion order.
    pub spans: Vec<Span>,
}

impl MetricsReport {
    /// Sites per second over the wall clock.
    pub fn throughput(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        self.sites as f64 / (self.wall_us as f64 / 1e6)
    }

    /// Fraction of sites that exited via the extinct early exit.
    pub fn extinct_rate(&self) -> f64 {
        if self.sites == 0 {
            return 0.0;
        }
        self.extinct_early as f64 / self.sites as f64
    }

    /// Mean restore distance in cycles, approximated from the histogram
    /// (each bucket contributes its geometric midpoint).
    pub fn mean_restore_distance(&self) -> f64 {
        let mut n = 0u64;
        let mut acc = 0.0;
        for (b, &c) in self.restore_hist.iter().enumerate() {
            if c == 0 {
                continue;
            }
            n += c;
            let mid = if b == 0 {
                0.0
            } else {
                1.5 * f64::powi(2.0, b as i32 - 1)
            };
            acc += mid * c as f64;
        }
        if n == 0 {
            0.0
        } else {
            acc / n as f64
        }
    }

    /// Serializes the report as a JSON object (the `*.metrics.json`
    /// schema; see DESIGN.md).
    pub fn to_json(&self) -> String {
        let workers: Vec<String> = self
            .per_worker
            .iter()
            .enumerate()
            .map(|(i, w)| {
                format!(
                    "{{\"id\":{i},\"sites\":{},\"busy_secs\":{:.6}}}",
                    w.sites,
                    w.busy_us as f64 / 1e6
                )
            })
            .collect();
        let hist: Vec<String> = self
            .restore_hist
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                let lo = if b == 0 { 0u64 } else { 1u64 << (b - 1) };
                let hi = if b == 0 { 0u64 } else { (1u64 << b) - 1 };
                format!("{{\"lo\":{lo},\"hi\":{hi},\"n\":{c}}}")
            })
            .collect();
        format!(
            "{{\"label\":{},\"wall_secs\":{:.6},\"sites\":{},\
             \"throughput_per_sec\":{:.3},\"extinct_early\":{},\
             \"extinct_early_rate\":{:.6},\"watchdog_expiries\":{},\
             \"pruned_dead\":{},\"early_terminated\":{},\"spans_shed\":{},\
             \"mean_restore_distance_cycles\":{:.1},\
             \"restore_distance_hist\":[{}],\"workers\":[{}]}}",
            json_string(&self.label),
            self.wall_us as f64 / 1e6,
            self.sites,
            self.throughput(),
            self.extinct_early,
            self.extinct_rate(),
            self.watchdog_expiries,
            self.pruned_dead,
            self.early_terminated,
            self.spans_shed,
            self.mean_restore_distance(),
            hist.join(","),
            workers.join(","),
        )
    }

    /// Serializes the campaign timeline in the Chrome trace event format
    /// (Perfetto-compatible): one complete (`"ph":"X"`) event per fault
    /// site, one named thread per worker.
    pub fn chrome_trace_json(&self) -> String {
        let mut events: Vec<String> = Vec::with_capacity(self.spans.len() + 8);
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            json_string(&format!("vulnstack campaign: {}", self.label))
        ));
        for w in 0..self.per_worker.len() {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{w},\
                 \"args\":{{\"name\":\"worker {w}\"}}}}"
            ));
        }
        for s in &self.spans {
            events.push(format!(
                "{{\"name\":\"site {}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{{\"index\":{}}}}}",
                s.index,
                s.worker,
                s.start_us,
                s.end_us.saturating_sub(s.start_us).max(1),
                s.index,
            ));
        }
        format!("{{\"traceEvents\":[{}]}}", events.join(","))
    }

    /// Writes `<stem>.metrics.json` and `<stem>.trace.json` under `dir`.
    /// Both writes are atomic (temp file + rename,
    /// [`crate::report::write_atomic`]): a crash mid-write can never leave
    /// torn JSON in `results/`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (directory creation or writes).
    pub fn write_files(&self, dir: &str, stem: &str) -> std::io::Result<(String, String)> {
        std::fs::create_dir_all(dir)?;
        let metrics_path = format!("{dir}/{stem}.metrics.json");
        let trace_path = format!("{dir}/{stem}.trace.json");
        crate::report::write_atomic(&metrics_path, self.to_json().as_bytes())?;
        crate::report::write_atomic(&trace_path, self.chrome_trace_json().as_bytes())?;
        Ok((metrics_path, trace_path))
    }
}

/// Minimal JSON string escaping (labels are ASCII in practice).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_aggregate_per_worker() {
        let m = CampaignMetrics::new("test");
        m.record_span(0, 0, 0, 100);
        m.record_span(1, 1, 0, 250);
        m.record_span(0, 2, 100, 150);
        let r = m.report();
        assert_eq!(r.sites, 3);
        assert_eq!(r.per_worker.len(), 2);
        assert_eq!(r.per_worker[0].sites, 2);
        assert_eq!(r.per_worker[0].busy_us, 150);
        assert_eq!(r.per_worker[1].busy_us, 250);
    }

    #[test]
    fn restore_histogram_buckets_by_bit_length() {
        let m = CampaignMetrics::new("test");
        for d in [0u64, 1, 2, 3, 4, 1000] {
            m.record_restore_distance(d);
        }
        let r = m.report();
        assert_eq!(r.restore_hist[0], 1); // 0
        assert_eq!(r.restore_hist[1], 1); // 1
        assert_eq!(r.restore_hist[2], 2); // 2, 3
        assert_eq!(r.restore_hist[3], 1); // 4
        assert_eq!(r.restore_hist[10], 1); // 1000 (512..=1023)
        assert!(r.mean_restore_distance() > 0.0);
    }

    #[test]
    fn rates_and_throughput() {
        let m = CampaignMetrics::new("test");
        for i in 0..4 {
            m.record_span(0, i, 0, 10);
        }
        m.record_extinct_early();
        m.record_watchdog_expiry();
        let r = m.report();
        assert!((r.extinct_rate() - 0.25).abs() < 1e-12);
        assert_eq!(r.watchdog_expiries, 1);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn json_outputs_are_well_formed_enough() {
        let m = CampaignMetrics::new("qsort \"A72\" RF");
        m.record_span(0, 0, 5, 25);
        m.record_restore_distance(300);
        let r = m.report();
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\\\"A72\\\""), "label must be escaped: {j}");
        assert!(j.contains("\"sites\":1"));
        let ct = r.chrome_trace_json();
        assert!(ct.contains("\"traceEvents\""));
        assert!(ct.contains("\"ph\":\"X\""));
        assert!(ct.contains("\"ph\":\"M\""));
        // Balanced braces is a cheap sanity proxy for JSON validity here.
        for s in [&j, &ct] {
            let open = s.matches('{').count();
            let close = s.matches('}').count();
            assert_eq!(open, close, "unbalanced braces");
        }
    }

    #[test]
    fn span_timeline_sheds_under_quota_pressure_but_counts_stay_exact() {
        // Budget fits only a couple of spans; the rest must shed.
        let quota = MemQuota::with_limit(3 * std::mem::size_of::<Span>());
        let m = CampaignMetrics::with_quota("shed", &quota);
        for i in 0..100 {
            m.record_span(0, i, 0, 10);
        }
        let r = m.report();
        assert_eq!(r.sites, 100, "site count is never shed");
        assert!(r.spans_shed > 0, "pressure must shed spans");
        assert!(
            (r.spans.len() as u64) + r.spans_shed >= 100,
            "every span is either retained or counted shed"
        );
        assert!(quota.shedding_started());
        assert!(r.to_json().contains("\"spans_shed\":"));
    }

    #[test]
    fn write_files_produces_both_artifacts() {
        let m = CampaignMetrics::new("unit");
        m.record_span(0, 0, 0, 10);
        let dir = std::env::temp_dir().join("vulnstack-trace-test");
        let dir = dir.to_str().unwrap();
        let (mp, tp) = m.report().write_files(dir, "unit").unwrap();
        assert!(std::fs::metadata(&mp).unwrap().len() > 0);
        assert!(std::fs::metadata(&tp).unwrap().len() > 0);
        let _ = std::fs::remove_dir_all(dir);
    }
}
