//! Durable, crash-resumable campaign journals.
//!
//! A statistical campaign at paper scale (2,000 injections per structure
//! × workload × core) runs for a long time, and until this module existed
//! it was all-or-nothing: one OOM kill, machine preemption, or panicking
//! injection run lost every completed record. The journal makes each
//! record durable the moment its site settles:
//!
//! * **Append-only record journal** ([`Journal`]) — one checksummed line
//!   per settled fault site, fsync'd before the worker claims its next
//!   site. A crash (even `SIGKILL`) loses at most the sites that were
//!   in flight; a torn final line is detected by its checksum and
//!   truncated away on the next open.
//! * **Campaign fingerprint** ([`Fingerprint`]) — the journal header
//!   records what campaign the records belong to (engine, workload, core
//!   config, structure, seed, sample count, engine schema version).
//!   Resuming against a journal whose fingerprint differs is *refused*:
//!   mixing records from two different campaigns would silently corrupt
//!   the statistics.
//! * **Resumable orchestration** ([`ResumableCampaign`]) — replays the
//!   journal's completed sites instantly, runs only the missing ones
//!   (under the panic isolation and quarantine/retry of
//!   [`sched::map_ordered_resilient`]), and journals each new outcome
//!   in-worker. The merged outcome vector is bit-identical to an
//!   uninterrupted run at any thread count — the contract
//!   `tests/resume_equivalence.rs` enforces for both injection engines.
//!
//! ## File format
//!
//! Plain UTF-8 lines, fields separated by `|` (field values are escaped
//! so they never contain `|` or newlines), each line ending in the
//! FNV-1a-64 checksum of everything before it:
//!
//! ```text
//! vulnstack-journal|1|<fingerprint digest>|<canonical fingerprint>|<cksum>
//! M|<key>|<payload>|<cksum>
//! R|<site index>|<record payload>|<cksum>
//! Q|<site index>|<attempts>|<panic message>|<cksum>
//! ```
//!
//! `M` lines carry campaign **metadata** — engine-derived identity that
//! is too large for the fingerprint proper (e.g. the pruning layer's
//! equivalence-class-table digest). They are written right after the
//! header on create; on resume the engine's expected metadata must match
//! what the journal replays, or the resume is refused
//! ([`JournalError::MetaMismatch`]) — a pruned campaign must never be
//! resumed against records pruned with a different class table.
//! `R` lines carry an engine-encoded record; `Q` lines record a
//! quarantined site (every attempt panicked). Entries may appear in any
//! order (workers append as sites complete) and duplicates keep the
//! first occurrence. On open, the first line that fails its checksum —
//! or an unterminated final line — marks the torn tail: the file is
//! truncated back to the last good line and the campaign re-runs
//! everything from there.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use vulnstack_microarch::env_knob;

use crate::sched::{self, Quarantine, RunPolicy, SiteResult};
use crate::sink::{self, RecordHandle, StreamOpts};
use crate::trace::CampaignMetrics;

/// Journal file-format version (the `1` in the header line).
pub const FORMAT_VERSION: u32 = 1;

/// Default group-commit interval: records appended between `fsync`s.
/// Small enough that a crash between flushes loses at most a handful of
/// in-flight records (the resume layer simply re-runs them — the
/// *write* still lands per record, so only power loss, not `SIGKILL`,
/// can lose a flushed-but-unsynced line); large enough to amortise the
/// dominant per-record fsync cost at streaming rates. Overridable via
/// `VULNSTACK_JOURNAL_FLUSH`.
pub const DEFAULT_FLUSH_INTERVAL: u32 = 8;

/// The group-commit interval, honouring `VULNSTACK_JOURNAL_FLUSH`
/// (records per fsync, min 1; malformed values warn on stderr and fall
/// back to [`DEFAULT_FLUSH_INTERVAL`]).
pub fn flush_interval_from_env() -> u32 {
    env_knob::<u32>(
        "VULNSTACK_JOURNAL_FLUSH",
        "journal flush interval (records)",
    )
    .map_or(DEFAULT_FLUSH_INTERVAL, |n| n.max(1))
}

/// FNV-1a 64-bit hash — the journal's line checksum and fingerprint
/// digest. Not cryptographic; it detects torn writes and bit rot, which
/// is all a single-writer journal needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn checksum(body: &str) -> String {
    format!("{:016x}", fnv1a64(body.as_bytes()))
}

/// Escapes a field value so it contains neither the `|` separator nor
/// line terminators.
pub(crate) fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '|' => out.push_str("\\p"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_field`] (lenient: unknown escapes pass through).
pub(crate) fn unescape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('p') => out.push('|'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Identity of one campaign: everything that determines its record
/// stream. Two runs with equal fingerprints draw the same sites and
/// produce bit-identical records, so their journals are interchangeable;
/// any difference makes resuming unsound and is refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Engine / campaign kind, e.g. `gefin-avf`, `llfi-svf`.
    pub engine: String,
    /// Workload name.
    pub workload: String,
    /// Core model or ISA name.
    pub config: String,
    /// Target structure (`-` for engines without one).
    pub structure: String,
    /// Campaign seed.
    pub seed: u64,
    /// Sample (fault-site) count.
    pub samples: u64,
    /// Extra engine parameters (PVF mode, sweep windows, …); empty if
    /// none.
    pub params: String,
    /// Engine record-schema version: bump when the record encoding or
    /// the injection semantics change, so stale journals are refused.
    pub version: u32,
}

impl Fingerprint {
    /// The canonical single-line rendering stored in the journal header
    /// and compared verbatim on resume.
    pub fn canonical(&self) -> String {
        format!(
            "engine={};workload={};config={};structure={};seed={};samples={};params={};version={}",
            escape_field(&self.engine),
            escape_field(&self.workload),
            escape_field(&self.config),
            escape_field(&self.structure),
            self.seed,
            self.samples,
            escape_field(&self.params),
            self.version,
        )
    }

    /// FNV-1a-64 digest of the canonical rendering.
    pub fn digest(&self) -> u64 {
        fnv1a64(self.canonical().as_bytes())
    }
}

/// Why a journal could not be created, resumed, or appended to. Every
/// variant names the offending path.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(PathBuf, std::io::Error),
    /// Resume was required but the journal file does not exist.
    Missing(PathBuf),
    /// The journal belongs to a different campaign.
    Mismatch {
        /// Journal path.
        path: PathBuf,
        /// Canonical fingerprint of the campaign being run.
        expected: String,
        /// Canonical fingerprint found in the journal header.
        found: String,
    },
    /// The journal is structurally unusable (bad header, out-of-range
    /// entry, undecodable payload).
    Corrupt {
        /// Journal path.
        path: PathBuf,
        /// What was wrong.
        why: String,
    },
    /// A metadata record required for sound resumption (e.g. the pruning
    /// layer's class-table digest) is missing from the journal or
    /// disagrees with the campaign being run.
    MetaMismatch {
        /// Journal path.
        path: PathBuf,
        /// Metadata key.
        key: String,
        /// Payload the running campaign derived.
        expected: String,
        /// Payload the journal replayed (`None` if the key is absent —
        /// e.g. its line was truncated away as corrupt).
        found: Option<String>,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(p, e) => write!(f, "journal {}: {e}", p.display()),
            JournalError::Missing(p) => {
                write!(f, "journal {}: not found (nothing to resume)", p.display())
            }
            JournalError::Mismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "journal {}: fingerprint mismatch — refusing to resume a different campaign\n  \
                 running: {expected}\n  journal: {found}",
                path.display()
            ),
            JournalError::Corrupt { path, why } => {
                write!(f, "journal {}: corrupt: {why}", path.display())
            }
            JournalError::MetaMismatch {
                path,
                key,
                expected,
                found,
            } => write!(
                f,
                "journal {}: metadata `{key}` mismatch — refusing to resume\n  \
                 running: {expected}\n  journal: {}",
                path.display(),
                found.as_deref().unwrap_or("<missing>"),
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// One replayed journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Site index within the campaign (sampling order).
    pub index: u64,
    /// What the journal recorded for the site.
    pub kind: EntryKind,
}

/// The two durable outcomes a site can have.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryKind {
    /// Completed record, engine-encoded.
    Done(String),
    /// Quarantined site (every attempt panicked).
    Quarantined {
        /// Attempts made before giving up.
        attempts: u32,
        /// Panic message of the last attempt.
        message: String,
    },
}

/// What [`Journal::resume`] recovered from disk.
#[derive(Debug, Default)]
pub struct Replay {
    /// Valid entries, duplicates removed (first occurrence wins).
    pub entries: Vec<Entry>,
    /// Valid metadata records, in file order (duplicate keys keep the
    /// first occurrence when looked up via [`Replay::meta`]).
    pub metas: Vec<(String, String)>,
    /// Bytes of torn/corrupt tail truncated away.
    pub truncated_bytes: u64,
    /// Complete lines discarded because they followed the first bad line.
    pub dropped_lines: usize,
}

impl Replay {
    /// The payload of the first metadata record with `key`, if any.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.metas
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// An open, append-only campaign journal. Appends are thread-safe and
/// **group-committed**: every append is its own `write` syscall (so it
/// survives `SIGKILL` via the page cache and a torn write stays within
/// one line), but the `fsync` that makes it power-loss durable is
/// batched every [`flush_interval_from_env`] records. Quarantine
/// markers, metadata, and [`Journal::flush`] (called at campaign
/// completion and by the streaming sink) force the sync immediately.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: Mutex<JournalWriter>,
}

/// The journal's write-side state, guarded by one mutex so appends stay
/// atomic per line and the pending-record count stays consistent with
/// the file contents.
#[derive(Debug)]
struct JournalWriter {
    file: File,
    /// Records written since the last fsync.
    pending: u32,
    /// Group-commit interval: fsync once `pending` reaches this.
    flush_every: u32,
}

impl JournalWriter {
    fn new(file: File) -> JournalWriter {
        JournalWriter {
            file,
            pending: 0,
            flush_every: flush_interval_from_env(),
        }
    }
}

impl Journal {
    /// Creates (or truncates) the journal at `path` and writes the
    /// fingerprint header durably.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failure.
    pub fn create(path: &Path, fp: &Fingerprint) -> Result<Journal, JournalError> {
        let io = |e| JournalError::Io(path.to_path_buf(), e);
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(io)?;
            }
        }
        let mut file = File::create(path).map_err(io)?;
        let body = format!(
            "vulnstack-journal|{FORMAT_VERSION}|{:016x}|{}",
            fp.digest(),
            fp.canonical()
        );
        let line = format!("{body}|{}\n", checksum(&body));
        file.write_all(line.as_bytes()).map_err(io)?;
        file.sync_all().map_err(io)?;
        sync_parent_dir(path);
        Ok(Journal {
            path: path.to_path_buf(),
            writer: Mutex::new(JournalWriter::new(file)),
        })
    }

    /// Opens an existing journal, verifies its fingerprint against `fp`,
    /// replays every valid entry, and truncates any torn or corrupt tail
    /// so subsequent appends restart from the last good line.
    ///
    /// # Errors
    ///
    /// [`JournalError::Missing`] if the file does not exist,
    /// [`JournalError::Mismatch`] if it records a different campaign,
    /// [`JournalError::Corrupt`] if the header itself is unusable,
    /// [`JournalError::Io`] on filesystem failure.
    pub fn resume(path: &Path, fp: &Fingerprint) -> Result<(Journal, Replay), JournalError> {
        let io = |e| JournalError::Io(path.to_path_buf(), e);
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(JournalError::Missing(path.to_path_buf()))
            }
            Err(e) => return Err(io(e)),
        };
        let corrupt = |why: String| JournalError::Corrupt {
            path: path.to_path_buf(),
            why,
        };

        // Split into complete lines, tracking the byte offset of each so
        // the torn tail can be truncated precisely.
        let mut lines: Vec<(usize, &[u8])> = Vec::new();
        let mut pos = 0usize;
        let mut torn_at: Option<usize> = None;
        while pos < bytes.len() {
            match bytes[pos..].iter().position(|&b| b == b'\n') {
                Some(rel) => {
                    lines.push((pos, &bytes[pos..pos + rel]));
                    pos += rel + 1;
                }
                None => {
                    torn_at = Some(pos);
                    break;
                }
            }
        }

        let (_, header) = *lines
            .first()
            .ok_or_else(|| corrupt("missing header line".to_string()))?;
        let header =
            std::str::from_utf8(header).map_err(|_| corrupt("header is not UTF-8".to_string()))?;
        let found = parse_header(header).ok_or_else(|| corrupt("unparsable header".to_string()))?;
        let expected = fp.canonical();
        if found != expected {
            return Err(JournalError::Mismatch {
                path: path.to_path_buf(),
                expected,
                found,
            });
        }

        // Replay entries up to the first bad line; everything at and
        // after it is conservatively discarded.
        let mut replay = Replay::default();
        let mut seen = std::collections::HashSet::new();
        let mut truncate_at: Option<usize> = torn_at;
        for (j, &(offset, raw)) in lines.iter().enumerate().skip(1) {
            let parsed = std::str::from_utf8(raw).ok().and_then(parse_line);
            match parsed {
                Some(ParsedLine::Entry(e)) => {
                    if seen.insert(e.index) {
                        replay.entries.push(e);
                    }
                }
                Some(ParsedLine::Meta(key, payload)) => replay.metas.push((key, payload)),
                None => {
                    truncate_at = Some(offset);
                    replay.dropped_lines = lines.len() - j - 1;
                    break;
                }
            }
        }

        if let Some(at) = truncate_at {
            replay.truncated_bytes = (bytes.len() - at) as u64;
            let f = OpenOptions::new().write(true).open(path).map_err(io)?;
            f.set_len(at as u64).map_err(io)?;
            f.sync_all().map_err(io)?;
        }

        let file = OpenOptions::new().append(true).open(path).map_err(io)?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                writer: Mutex::new(JournalWriter::new(file)),
            },
            replay,
        ))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durably appends a campaign metadata record (written right after
    /// the header on create; verified against the engine's expectation
    /// on resume). Metadata is campaign identity, so it always forces a
    /// sync rather than riding the group commit.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on write or sync failure.
    pub fn append_meta(&self, key: &str, payload: &str) -> Result<(), JournalError> {
        self.append_line(
            &format!("M|{}|{}", escape_field(key), escape_field(payload)),
            true,
        )
    }

    /// Appends a completed record for site `index`. The write lands
    /// immediately; the fsync rides the group commit (forced at latest
    /// by [`Journal::flush`] at campaign completion).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on write or sync failure.
    pub fn append_done(&self, index: u64, payload: &str) -> Result<(), JournalError> {
        self.append_line(&format!("R|{index}|{}", escape_field(payload)), false)
    }

    /// Durably appends a quarantine marker for site `index`, forcing a
    /// group-commit flush: a quarantine is about to be *reported* (it
    /// names a poison site an operator may act on), so it never waits in
    /// the unsynced window.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on write or sync failure.
    pub fn append_quarantined(
        &self,
        index: u64,
        attempts: u32,
        message: &str,
    ) -> Result<(), JournalError> {
        self.append_line(
            &format!("Q|{index}|{attempts}|{}", escape_field(message)),
            true,
        )
    }

    /// Syncs any appends still waiting in the group-commit window. The
    /// completion barrier: campaigns call this before reporting success.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on sync failure.
    pub fn flush(&self) -> Result<(), JournalError> {
        let mut w = self.writer.lock().expect("unpoisoned");
        if w.pending > 0 {
            w.file
                .sync_data()
                .map_err(|e| JournalError::Io(self.path.clone(), e))?;
            w.pending = 0;
        }
        Ok(())
    }

    /// Overrides the group-commit interval (records per fsync, min 1)
    /// for this journal. `1` restores the pre-batching fsync-per-record
    /// behavior; tests use explicit intervals instead of the racy
    /// process-global `VULNSTACK_JOURNAL_FLUSH` variable.
    pub fn set_flush_interval(&self, every: u32) {
        self.writer.lock().expect("unpoisoned").flush_every = every.max(1);
    }

    fn append_line(&self, body: &str, force_sync: bool) -> Result<(), JournalError> {
        let line = format!("{body}|{}\n", checksum(body));
        let mut w = self.writer.lock().expect("unpoisoned");
        let io = |e| JournalError::Io(self.path.clone(), e);
        // One write call per line keeps a torn append to a prefix of a
        // single line — exactly what checksum-truncation recovers from.
        w.file.write_all(line.as_bytes()).map_err(io)?;
        w.pending += 1;
        if force_sync || w.pending >= w.flush_every {
            w.file.sync_data().map_err(io)?;
            w.pending = 0;
        }
        Ok(())
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        // Best-effort close barrier: never let pending appends lose
        // their durability just because the campaign errored out before
        // reaching its explicit `flush`.
        if let Ok(w) = self.writer.get_mut() {
            if w.pending > 0 {
                let _ = w.file.sync_data();
                w.pending = 0;
            }
        }
    }
}

/// Best-effort directory fsync so a freshly created journal survives a
/// crash of the directory entry itself.
fn sync_parent_dir(path: &Path) {
    if let Some(dir) = path.parent() {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

/// Parses and checksum-verifies the header line, returning the canonical
/// fingerprint it records.
fn parse_header(line: &str) -> Option<String> {
    let (body, ck) = line.rsplit_once('|')?;
    if checksum(body) != ck {
        return None;
    }
    let mut parts = body.split('|');
    if parts.next()? != "vulnstack-journal" {
        return None;
    }
    let version: u32 = parts.next()?.parse().ok()?;
    if version != FORMAT_VERSION {
        return None;
    }
    let digest = parts.next()?;
    let canonical = parts.next()?.to_string();
    if parts.next().is_some() || format!("{:016x}", fnv1a64(canonical.as_bytes())) != digest {
        return None;
    }
    Some(canonical)
}

/// One parsed journal body line.
enum ParsedLine {
    /// A site entry (`R` or `Q`).
    Entry(Entry),
    /// A metadata record (`M`): `(key, payload)`.
    Meta(String, String),
}

/// Parses and checksum-verifies one entry or metadata line.
fn parse_line(line: &str) -> Option<ParsedLine> {
    let (body, ck) = line.rsplit_once('|')?;
    if checksum(body) != ck {
        return None;
    }
    let mut parts = body.split('|');
    let kind = parts.next()?;
    let parsed = match kind {
        "M" => ParsedLine::Meta(unescape_field(parts.next()?), unescape_field(parts.next()?)),
        "R" => ParsedLine::Entry(Entry {
            index: parts.next()?.parse().ok()?,
            kind: EntryKind::Done(unescape_field(parts.next()?)),
        }),
        "Q" => ParsedLine::Entry(Entry {
            index: parts.next()?.parse().ok()?,
            kind: EntryKind::Quarantined {
                attempts: parts.next()?.parse().ok()?,
                message: unescape_field(parts.next()?),
            },
        }),
        _ => return None,
    };
    if parts.next().is_some() {
        return None;
    }
    Some(parsed)
}

/// Caller-facing journaling options threaded through the engine-level
/// resumable campaign wrappers (`vulnstack-gefin`, `vulnstack-llfi`):
/// where the journal lives, how an existing file is treated, the panic
/// retry policy, and the workload label recorded in the campaign
/// fingerprint. Engines derive the rest of the fingerprint themselves
/// (core config, structure, seed, sample count, schema version).
#[derive(Debug, Clone, Copy)]
pub struct JournalOpts<'a> {
    /// Journal file path.
    pub path: &'a Path,
    /// Treatment of an existing journal file.
    pub mode: ResumeMode,
    /// Panic retry/quarantine policy.
    pub policy: RunPolicy,
    /// Workload label for the fingerprint.
    pub workload: &'a str,
}

/// How an existing journal file at the target path is treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeMode {
    /// Start a new journal, truncating any existing file.
    Fresh,
    /// Resume if a journal exists (refusing a fingerprint mismatch),
    /// otherwise start a new one.
    ResumeOrStart,
    /// Require an existing journal; error if the file is missing.
    ResumeRequired,
}

/// Accounting for one resumable run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResumeStats {
    /// Sites replayed instantly from the journal.
    pub replayed: usize,
    /// Sites actually executed this run.
    pub executed: usize,
    /// Sites quarantined in the final outcome (replayed or new).
    pub quarantined: usize,
    /// Worker claim loops respawned after dying outside site isolation.
    pub respawns: u64,
    /// Torn/corrupt bytes truncated from the journal tail on open.
    pub truncated_bytes: u64,
    /// Complete-but-suspect lines discarded after the first bad line.
    pub dropped_lines: usize,
    /// The run ended early because the admission gate returned `Stop`
    /// (cancellation or pool shutdown); unfinished sites stay
    /// un-journaled and a later resume picks them up.
    pub stopped: bool,
}

/// Outcome of a resumable run: the merged per-site results (replayed +
/// freshly executed, in sampling order) and the resume accounting.
#[derive(Debug)]
pub struct ResumedCampaign<R> {
    /// `outcomes[i]` is site `i` of the campaign.
    pub outcomes: Vec<SiteResult<R>>,
    /// What was replayed vs executed.
    pub stats: ResumeStats,
}

impl<R> ResumedCampaign<R> {
    /// The completed records in sampling order, skipping quarantined
    /// sites.
    pub fn records(&self) -> Vec<&R> {
        self.outcomes.iter().filter_map(SiteResult::done).collect()
    }

    /// The quarantined sites, in sampling order.
    pub fn quarantined(&self) -> Vec<&Quarantine> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                SiteResult::Quarantined(q) => Some(q),
                SiteResult::Done(_) => None,
            })
            .collect()
    }
}

/// A journaled, crash-resumable, panic-isolated campaign over a fixed
/// site list. The engine-specific wrappers (`vulnstack-gefin`,
/// `vulnstack-llfi`) construct one of these with their drawn sites and
/// record codecs; everything durable and resumable lives here.
#[derive(Debug)]
pub struct ResumableCampaign<'a, T> {
    /// Journal file path.
    pub path: &'a Path,
    /// Campaign identity (checked against the journal header on resume).
    pub fingerprint: Fingerprint,
    /// Treatment of an existing journal file.
    pub mode: ResumeMode,
    /// The campaign's fault sites, in sampling order.
    pub items: &'a [T],
    /// Claim order (a permutation of `0..items.len()`, usually
    /// injection-cycle-sorted for checkpoint locality).
    pub order: &'a [usize],
    /// Worker threads.
    pub threads: usize,
    /// Panic retry/quarantine policy.
    pub policy: RunPolicy,
    /// Campaign metadata `(key, payload)` pairs: engine-derived identity
    /// too large for the fingerprint proper (e.g. a pruning class-table
    /// digest). Written after the header on create; on resume, each pair
    /// must match what the journal replays or the resume is refused with
    /// [`JournalError::MetaMismatch`]. Empty for engines without extra
    /// identity.
    pub meta: &'a [(String, String)],
}

impl<T: Sync> ResumableCampaign<'_, T> {
    /// Runs the campaign: replays journaled sites, executes the missing
    /// ones with `runner` (journaling each settled outcome in-worker via
    /// `encode`), and returns the merged outcomes in sampling order.
    /// `decode` must invert `encode`; a journal whose payloads do not
    /// decode is reported corrupt rather than silently dropped.
    ///
    /// # Errors
    ///
    /// Any [`JournalError`]: filesystem failures, a missing journal in
    /// [`ResumeMode::ResumeRequired`], a fingerprint mismatch, or a
    /// corrupt/out-of-range entry.
    ///
    /// # Panics
    ///
    /// Panics if the fingerprint's `samples` differs from `items.len()`
    /// or `order` is not a permutation of `0..items.len()` (caller bugs).
    pub fn run<R, F, E, D>(
        &self,
        runner: F,
        encode: E,
        decode: D,
        metrics: Option<&CampaignMetrics>,
    ) -> Result<ResumedCampaign<R>, JournalError>
    where
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        E: Fn(&R) -> String + Sync,
        D: Fn(&str) -> Option<R>,
    {
        let (journal, replay) = self.open()?;

        let corrupt = |why: String| JournalError::Corrupt {
            path: self.path.to_path_buf(),
            why,
        };
        let mut slots: Vec<Option<SiteResult<R>>> = (0..self.items.len()).map(|_| None).collect();
        let mut replayed = 0usize;
        for e in replay.entries {
            let i = usize::try_from(e.index).unwrap_or(usize::MAX);
            if i >= self.items.len() {
                return Err(corrupt(format!(
                    "entry index {} out of range (campaign has {} sites)",
                    e.index,
                    self.items.len()
                )));
            }
            slots[i] = Some(match e.kind {
                EntryKind::Done(payload) => SiteResult::Done(
                    decode(&payload)
                        .ok_or_else(|| corrupt(format!("site {i}: undecodable record payload")))?,
                ),
                EntryKind::Quarantined { attempts, message } => {
                    SiteResult::Quarantined(Quarantine {
                        index: i,
                        attempts,
                        message,
                    })
                }
            });
            replayed += 1;
        }

        // Only the missing sites run, claimed in the caller's order
        // (which preserves checkpoint locality among what remains).
        let missing: Vec<usize> = self
            .order
            .iter()
            .copied()
            .filter(|&i| slots[i].is_none())
            .collect();
        let sub_order: Vec<usize> = (0..missing.len()).collect();
        let append_err: Mutex<Option<JournalError>> = Mutex::new(None);
        let out = sched::map_ordered_resilient(
            &missing,
            &sub_order,
            self.threads,
            self.policy,
            |_, &orig| runner(orig, &self.items[orig]),
            |k, outcome| {
                if append_err.lock().expect("unpoisoned").is_some() {
                    return;
                }
                let orig = missing[k] as u64;
                let res = match outcome {
                    SiteResult::Done(r) => journal.append_done(orig, &encode(r)),
                    SiteResult::Quarantined(q) => {
                        journal.append_quarantined(orig, q.attempts, &q.message)
                    }
                };
                if let Err(e) = res {
                    *append_err.lock().expect("unpoisoned") = Some(e);
                }
            },
            metrics,
        );
        if let Some(e) = append_err.into_inner().expect("unpoisoned") {
            return Err(e);
        }
        // Completion barrier for the group commit: every appended record
        // is durable before the campaign reports success.
        journal.flush()?;

        let executed = missing.len();
        for (k, outcome) in out.outcomes.into_iter().enumerate() {
            let orig = missing[k];
            slots[orig] = Some(match outcome {
                // Quarantine indices come back in sub-list coordinates;
                // restore the campaign's sampling index.
                SiteResult::Quarantined(mut q) => {
                    q.index = orig;
                    SiteResult::Quarantined(q)
                }
                done => done,
            });
        }
        let outcomes: Vec<SiteResult<R>> = slots
            .into_iter()
            .map(|s| s.expect("every site replayed or executed"))
            .collect();
        let quarantined = outcomes.iter().filter(|o| o.is_quarantined()).count();
        Ok(ResumedCampaign {
            outcomes,
            stats: ResumeStats {
                replayed,
                executed,
                quarantined,
                respawns: out.respawns,
                truncated_bytes: replay.truncated_bytes,
                dropped_lines: replay.dropped_lines,
                stopped: false,
            },
        })
    }

    /// Runs the campaign through the streaming sink: replayed and fresh
    /// record payloads are handed to `fold` one at a time (journal
    /// append → spill append → fold, via [`crate::sink::stream`]) and
    /// **never collected** — peak memory is bounded by the sink channel
    /// regardless of campaign size. The journal produced is equivalent
    /// to [`ResumableCampaign::run`]'s (same fingerprint, same entry
    /// set), so the two paths can kill-and-resume each other's journals.
    ///
    /// `fold` observes every *completed* site exactly once as
    /// `(site index, encoded payload)`, in arbitrary order (replayed
    /// sites first, then fresh sites as they settle); quarantined sites
    /// are returned in [`StreamedCampaign::quarantined`] instead.
    ///
    /// # Errors
    ///
    /// As [`ResumableCampaign::run`], plus spill-file I/O errors.
    ///
    /// # Panics
    ///
    /// As [`ResumableCampaign::run`].
    pub fn run_streaming<R, F, E, D, G>(
        &self,
        stream: StreamOpts<'_>,
        runner: F,
        encode: E,
        decode: D,
        mut fold: G,
        metrics: Option<&CampaignMetrics>,
    ) -> Result<StreamedCampaign, JournalError>
    where
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        E: Fn(&R) -> String + Sync,
        D: Fn(&str) -> Option<R>,
        G: FnMut(u64, &str) + Send,
    {
        let (journal, replay) = self.open()?;
        let corrupt = |why: String| JournalError::Corrupt {
            path: self.path.to_path_buf(),
            why,
        };
        let (truncated_bytes, dropped_lines) = (replay.truncated_bytes, replay.dropped_lines);
        let mut have = vec![false; self.items.len()];
        let mut quarantined: Vec<Quarantine> = Vec::new();
        let mut replayed = 0usize;
        for e in replay.entries {
            let i = usize::try_from(e.index).unwrap_or(usize::MAX);
            if i >= self.items.len() {
                return Err(corrupt(format!(
                    "entry index {} out of range (campaign has {} sites)",
                    e.index,
                    self.items.len()
                )));
            }
            match e.kind {
                EntryKind::Done(payload) => {
                    if decode(&payload).is_none() {
                        return Err(corrupt(format!("site {i}: undecodable record payload")));
                    }
                    fold(e.index, &payload);
                    // Subscribers attached after a restart still see the
                    // full stream: replayed records tee out exactly like
                    // fresh ones.
                    if let Some(t) = stream.tee {
                        t(e.index, &payload);
                    }
                }
                EntryKind::Quarantined { attempts, message } => {
                    quarantined.push(Quarantine {
                        index: i,
                        attempts,
                        message,
                    });
                }
            }
            have[i] = true;
            replayed += 1;
        }

        let missing: Vec<usize> = self.order.iter().copied().filter(|&i| !have[i]).collect();
        let sub_order: Vec<usize> = (0..missing.len()).collect();
        let gate = stream.gate;
        let (drive, summary) = sink::stream(Some(&journal), stream, fold, |handle| {
            sched::drive_ordered_resilient(
                &missing,
                &sub_order,
                self.threads,
                self.policy,
                |_, &orig| runner(orig, &self.items[orig]),
                |k, outcome| {
                    let orig = missing[k] as u64;
                    match outcome {
                        SiteResult::Done(r) => handle.push_done(orig, encode(&r)),
                        SiteResult::Quarantined(q) => {
                            handle.push_quarantined(orig, q.attempts, q.message);
                        }
                    }
                },
                metrics,
                gate,
            )
        })?;

        quarantined.extend(summary.quarantined);
        // Sites lost to a worker failure settle as zero-attempt
        // quarantines and are deliberately NOT journaled — the next
        // resume re-runs them, matching `run`'s semantics. Sites the
        // gate never admitted (`drive.unclaimed`) are NOT failures:
        // they stay un-journaled and un-quarantined, exactly the state
        // a later resume expects.
        for k in drive.lost {
            quarantined.push(Quarantine {
                index: missing[k],
                attempts: 0,
                message: "site lost to a worker failure".to_string(),
            });
        }
        quarantined.sort_by_key(|q| q.index);
        Ok(StreamedCampaign {
            stats: ResumeStats {
                replayed,
                executed: missing.len() - drive.unclaimed.len(),
                quarantined: quarantined.len(),
                respawns: drive.respawns,
                truncated_bytes,
                dropped_lines,
                stopped: drive.stopped,
            },
            quarantined,
            records: summary.records,
        })
    }

    /// Opens (or creates) the journal per [`ResumableCampaign::mode`],
    /// writing the campaign metadata on create and verifying it against
    /// the replay on resume — the shared front half of
    /// [`ResumableCampaign::run`] and [`ResumableCampaign::run_streaming`].
    fn open(&self) -> Result<(Journal, Replay), JournalError> {
        assert_eq!(
            self.fingerprint.samples,
            self.items.len() as u64,
            "fingerprint samples must match the site count"
        );
        let (journal, replay, created) = match self.mode {
            ResumeMode::Fresh => (
                Journal::create(self.path, &self.fingerprint)?,
                Replay::default(),
                true,
            ),
            ResumeMode::ResumeOrStart => {
                // A zero-length file means the previous run died before
                // the header write became durable: nothing to resume.
                let has_content = std::fs::metadata(self.path).map(|m| m.len() > 0);
                if matches!(has_content, Ok(true)) {
                    let (j, r) = Journal::resume(self.path, &self.fingerprint)?;
                    (j, r, false)
                } else {
                    (
                        Journal::create(self.path, &self.fingerprint)?,
                        Replay::default(),
                        true,
                    )
                }
            }
            ResumeMode::ResumeRequired => {
                let (j, r) = Journal::resume(self.path, &self.fingerprint)?;
                (j, r, false)
            }
        };

        if created {
            for (key, payload) in self.meta {
                journal.append_meta(key, payload)?;
            }
        } else {
            // Verify every expected metadata pair against the replay. A
            // missing key (e.g. its line was corrupt and truncated away)
            // is as fatal as a mismatch: resuming without agreeing on the
            // engine's derived identity would silently mix records.
            for (key, payload) in self.meta {
                let found = replay.meta(key);
                if found != Some(payload.as_str()) {
                    return Err(JournalError::MetaMismatch {
                        path: self.path.to_path_buf(),
                        key: key.clone(),
                        expected: payload.clone(),
                        found: found.map(String::from),
                    });
                }
            }
        }
        Ok((journal, replay))
    }
}

/// Outcome of a streaming resumable run: degradation-free tallies live
/// in the caller's `fold` state; the campaign result proper carries only
/// the quarantine list, the resume accounting, and (when a spill file
/// was requested) the on-disk [`RecordHandle`] — never the records.
#[derive(Debug)]
pub struct StreamedCampaign {
    /// Quarantined sites in campaign sampling coordinates, sorted by
    /// index (replayed, freshly quarantined, and lost sites merged).
    pub quarantined: Vec<Quarantine>,
    /// Handle to the on-disk record stream, when
    /// [`StreamOpts::spill`] was set.
    pub records: Option<RecordHandle>,
    /// What was replayed vs executed.
    pub stats: ResumeStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(samples: u64) -> Fingerprint {
        Fingerprint {
            engine: "test-engine".into(),
            workload: "crc32".into(),
            config: "A72".into(),
            structure: "RF".into(),
            seed: 7,
            samples,
            params: String::new(),
            version: 1,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vulnstack-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn escape_roundtrips_awkward_strings() {
        for s in [
            "plain",
            "pipe|pipe",
            "back\\slash",
            "new\nline",
            "\r\n|\\",
            "",
        ] {
            assert_eq!(unescape_field(&escape_field(s)), s, "{s:?}");
        }
    }

    #[test]
    fn create_append_resume_roundtrip() {
        let path = tmp("roundtrip.journal");
        let f = fp(4);
        let j = Journal::create(&path, &f).unwrap();
        j.append_done(0, "a,b,c").unwrap();
        j.append_quarantined(2, 3, "panicked: boom | with pipe")
            .unwrap();
        j.append_done(1, "x|y\nz").unwrap();
        drop(j);
        let (_, replay) = Journal::resume(&path, &f).unwrap();
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(replay.entries.len(), 3);
        assert_eq!(replay.entries[0].kind, EntryKind::Done("a,b,c".into()));
        assert_eq!(
            replay.entries[1].kind,
            EntryKind::Quarantined {
                attempts: 3,
                message: "panicked: boom | with pipe".into()
            }
        );
        assert_eq!(replay.entries[2].kind, EntryKind::Done("x|y\nz".into()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let path = tmp("torn.journal");
        let f = fp(8);
        let j = Journal::create(&path, &f).unwrap();
        j.append_done(0, "zero").unwrap();
        j.append_done(1, "one").unwrap();
        drop(j);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // Simulate SIGKILL mid-append: a prefix of a record line with no
        // terminating newline.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"R|2|half-writ");
        std::fs::write(&path, &bytes).unwrap();

        let (j, replay) = Journal::resume(&path, &f).unwrap();
        assert_eq!(replay.entries.len(), 2);
        assert_eq!(replay.truncated_bytes, 13);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        j.append_done(2, "two").unwrap();
        drop(j);
        let (_, replay) = Journal::resume(&path, &f).unwrap();
        assert_eq!(replay.entries.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corruption_mid_file_drops_everything_after_it() {
        let path = tmp("corrupt.journal");
        let f = fp(8);
        let j = Journal::create(&path, &f).unwrap();
        for i in 0..4 {
            j.append_done(i, &format!("r{i}")).unwrap();
        }
        drop(j);
        // Flip a payload byte in the second entry line (line index 2).
        let content = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = content.lines().map(String::from).collect();
        lines[2] = lines[2].replace("r1", "rX");
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();

        let (_, replay) = Journal::resume(&path, &f).unwrap();
        assert_eq!(replay.entries.len(), 1, "only the entry before the damage");
        assert_eq!(replay.dropped_lines, 2);
        assert!(replay.truncated_bytes > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_indices_keep_first() {
        let path = tmp("dup.journal");
        let f = fp(4);
        let j = Journal::create(&path, &f).unwrap();
        j.append_done(1, "first").unwrap();
        j.append_done(1, "second").unwrap();
        drop(j);
        let (_, replay) = Journal::resume(&path, &f).unwrap();
        assert_eq!(replay.entries.len(), 1);
        assert_eq!(replay.entries[0].kind, EntryKind::Done("first".into()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let path = tmp("mismatch.journal");
        let f = fp(4);
        Journal::create(&path, &f).unwrap();
        let other = Fingerprint { seed: 8, ..fp(4) };
        match Journal::resume(&path, &other) {
            Err(JournalError::Mismatch {
                expected, found, ..
            }) => {
                assert!(expected.contains("seed=8"));
                assert!(found.contains("seed=7"));
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_journal_is_a_distinct_error() {
        let path = tmp("never-created.journal");
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            Journal::resume(&path, &fp(1)),
            Err(JournalError::Missing(_))
        ));
    }

    #[test]
    fn resumable_campaign_replays_and_completes() {
        let path = tmp("campaign.journal");
        let _ = std::fs::remove_file(&path);
        let items: Vec<u64> = (0..12).collect();
        let order: Vec<usize> = (0..items.len()).collect();
        let mk = |mode| ResumableCampaign {
            path: &path,
            fingerprint: fp(12),
            mode,
            items: &items,
            order: &order,
            threads: 3,
            policy: RunPolicy::default(),
            meta: &[],
        };
        let runner = |_: usize, &x: &u64| x * 10;
        let encode = |r: &u64| r.to_string();
        let decode = |s: &str| s.parse::<u64>().ok();

        let full = mk(ResumeMode::Fresh)
            .run(runner, encode, decode, None)
            .unwrap();
        assert_eq!(full.stats.executed, 12);
        assert_eq!(full.stats.replayed, 0);
        let expect: Vec<u64> = items.iter().map(|x| x * 10).collect();
        let got: Vec<u64> = full.records().into_iter().copied().collect();
        assert_eq!(got, expect);

        // Drop the last 5 record lines (keep header + 7) to simulate an
        // interrupted run, then require a resume.
        let content = std::fs::read_to_string(&path).unwrap();
        let keep: Vec<&str> = content.lines().take(8).collect();
        std::fs::write(&path, format!("{}\n", keep.join("\n"))).unwrap();
        let resumed = mk(ResumeMode::ResumeRequired)
            .run(runner, encode, decode, None)
            .unwrap();
        assert_eq!(resumed.stats.replayed, 7);
        assert_eq!(resumed.stats.executed, 5);
        let got: Vec<u64> = resumed.records().into_iter().copied().collect();
        assert_eq!(got, expect, "resumed records must be bit-identical");

        // A third run replays everything.
        let noop = mk(ResumeMode::ResumeOrStart)
            .run(runner, encode, decode, None)
            .unwrap();
        assert_eq!(noop.stats.executed, 0);
        assert_eq!(noop.stats.replayed, 12);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn meta_roundtrips_and_verifies_on_resume() {
        let path = tmp("meta.journal");
        let _ = std::fs::remove_file(&path);
        let items: Vec<u64> = (0..6).collect();
        let order: Vec<usize> = (0..items.len()).collect();
        let meta = vec![("class-table".to_string(), "fnv=00ddc0ffee".to_string())];
        let mk = |mode| ResumableCampaign {
            path: &path,
            fingerprint: fp(6),
            mode,
            items: &items,
            order: &order,
            threads: 2,
            policy: RunPolicy::default(),
            meta: &meta,
        };
        let runner = |_: usize, &x: &u64| x + 1;
        let encode = |r: &u64| r.to_string();
        let decode = |s: &str| s.parse::<u64>().ok();
        let full = mk(ResumeMode::Fresh)
            .run(runner, encode, decode, None)
            .unwrap();
        let resumed = mk(ResumeMode::ResumeRequired)
            .run(runner, encode, decode, None)
            .unwrap();
        assert_eq!(resumed.stats.executed, 0);
        assert_eq!(resumed.stats.replayed, 6);
        let a: Vec<u64> = full.records().into_iter().copied().collect();
        let b: Vec<u64> = resumed.records().into_iter().copied().collect();
        assert_eq!(a, b);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_meta_refuses_resume_naming_both_digests() {
        let path = tmp("meta-mismatch.journal");
        let _ = std::fs::remove_file(&path);
        let items: Vec<u64> = (0..4).collect();
        let order: Vec<usize> = (0..items.len()).collect();
        let mk = |mode, payload: &str| {
            let meta = vec![("class-table".to_string(), payload.to_string())];
            let campaign = ResumableCampaign {
                path: &path,
                fingerprint: fp(4),
                mode,
                items: &items,
                order: &order,
                threads: 1,
                policy: RunPolicy::default(),
                meta: &meta,
            };
            campaign.run(
                |_: usize, &x: &u64| x,
                |r| r.to_string(),
                |s| s.parse::<u64>().ok(),
                None,
            )
        };
        mk(ResumeMode::Fresh, "fnv=1111111111111111").unwrap();
        match mk(ResumeMode::ResumeRequired, "fnv=2222222222222222") {
            Err(JournalError::MetaMismatch {
                key,
                expected,
                found,
                ..
            }) => {
                assert_eq!(key, "class-table");
                assert_eq!(expected, "fnv=2222222222222222");
                assert_eq!(found.as_deref(), Some("fnv=1111111111111111"));
            }
            other => panic!("expected MetaMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fuzzed_meta_line_damage_never_resumes_silently() {
        // Fuzz-style: damage the class-table `M` line many different ways
        // (byte flips at every position, truncations at every length).
        // Every damaged journal must either (a) replay the meta intact
        // (damage hit only later lines) or (b) refuse the resume with the
        // key and both payloads named — never silently resume with a
        // different class table.
        let items: Vec<u64> = (0..5).collect();
        let order: Vec<usize> = (0..items.len()).collect();
        let meta = vec![(
            "class-table".to_string(),
            "fnv=deadbeef01234567".to_string(),
        )];
        let path = tmp("meta-fuzz.journal");
        let _ = std::fs::remove_file(&path);
        let campaign = |mode| ResumableCampaign {
            path: &path,
            fingerprint: fp(5),
            mode,
            items: &items,
            order: &order,
            threads: 1,
            policy: RunPolicy::default(),
            meta: &meta,
        };
        let run = |mode| {
            campaign(mode).run(
                |_: usize, &x: &u64| x * 3,
                |r| r.to_string(),
                |s| s.parse::<u64>().ok(),
                None,
            )
        };
        run(ResumeMode::Fresh).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        let text = String::from_utf8(pristine.clone()).unwrap();
        let header_len = text.find('\n').unwrap() + 1;
        let meta_len = text[header_len..].find('\n').unwrap() + 1;

        let mut cases = 0;
        // Byte flips across the M line (excluding its newline).
        for off in 0..meta_len - 1 {
            let mut bytes = pristine.clone();
            bytes[header_len + off] ^= 0x01;
            // Keep the damage on one line: never flip into '\n' or '|',
            // which would change the line structure rather than its
            // content (those are covered by the truncation cases).
            if bytes[header_len + off] == b'\n' || bytes[header_len + off] == b'|' {
                continue;
            }
            std::fs::write(&path, &bytes).unwrap();
            match run(ResumeMode::ResumeRequired) {
                Err(JournalError::MetaMismatch { key, found, .. }) => {
                    assert_eq!(key, "class-table");
                    assert_ne!(found.as_deref(), Some("fnv=deadbeef01234567"));
                }
                Err(other) => panic!("flip at {off}: unexpected error {other}"),
                Ok(_) => panic!("flip at {off}: damaged meta resumed silently"),
            }
            cases += 1;
        }
        // Truncations mid-M-line (torn write of the meta record).
        for keep in 1..meta_len - 1 {
            let mut bytes = pristine.clone();
            bytes.truncate(header_len + keep);
            std::fs::write(&path, &bytes).unwrap();
            match run(ResumeMode::ResumeRequired) {
                Err(JournalError::MetaMismatch { key, found, .. }) => {
                    assert_eq!(key, "class-table");
                    assert!(
                        found.is_none(),
                        "keep={keep}: truncated meta must be absent, got {found:?}"
                    );
                }
                Err(other) => panic!("keep={keep}: unexpected error {other}"),
                Ok(_) => panic!("keep={keep}: truncated meta resumed silently"),
            }
            cases += 1;
        }
        assert!(cases > 20, "fuzz loop must exercise many damage shapes");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resumable_campaign_journals_quarantines() {
        let path = tmp("quarantine.journal");
        let _ = std::fs::remove_file(&path);
        let items: Vec<u64> = (0..8).collect();
        let order: Vec<usize> = (0..items.len()).collect();
        let campaign = ResumableCampaign {
            path: &path,
            fingerprint: fp(8),
            mode: ResumeMode::Fresh,
            items: &items,
            order: &order,
            threads: 2,
            policy: RunPolicy { max_retries: 1 },
            meta: &[],
        };
        let runner = |i: usize, &x: &u64| {
            assert!(i != 5, "site 5 is poisoned");
            x
        };
        let out = campaign
            .run(runner, |r| r.to_string(), |s| s.parse::<u64>().ok(), None)
            .unwrap();
        assert_eq!(out.quarantined().len(), 1);
        assert_eq!(out.quarantined()[0].index, 5);
        assert_eq!(out.quarantined()[0].attempts, 2);
        assert_eq!(out.records().len(), 7);

        // Resume replays the quarantine marker instead of re-running the
        // poison site: the campaign still completes with zero executions.
        let resumed = ResumableCampaign {
            mode: ResumeMode::ResumeRequired,
            ..campaign
        }
        .run(
            |_: usize, &x: &u64| x,
            |r| r.to_string(),
            |s| s.parse::<u64>().ok(),
            None,
        )
        .unwrap();
        assert_eq!(resumed.stats.executed, 0);
        assert_eq!(resumed.stats.quarantined, 1);
        let _ = std::fs::remove_file(&path);
    }
}
