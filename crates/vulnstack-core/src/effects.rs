//! Fault-effect classes and tallies.

use serde::{Deserialize, Serialize};
use vulnstack_microarch::RunStatus;

/// Effect of one injected fault on program execution (paper §III.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultEffect {
    /// No observable deviation from the fault-free run.
    Masked,
    /// Silent data corruption: the run finished but the output (or exit
    /// code) differs.
    Sdc,
    /// Process/system crash, kernel panic, deadlock or livelock (timeout).
    Crash,
    /// A software fault-tolerance check caught the fault (case-study runs
    /// only; excluded from vulnerability like the paper does).
    Detected,
}

impl FaultEffect {
    /// All classes.
    pub const ALL: [FaultEffect; 4] = [
        FaultEffect::Masked,
        FaultEffect::Sdc,
        FaultEffect::Crash,
        FaultEffect::Detected,
    ];

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            FaultEffect::Masked => "Masked",
            FaultEffect::Sdc => "SDC",
            FaultEffect::Crash => "Crash",
            FaultEffect::Detected => "Detected",
        }
    }

    /// Inverse of [`FaultEffect::name`] (used to decode journaled
    /// campaign records).
    pub fn from_name(s: &str) -> Option<FaultEffect> {
        FaultEffect::ALL.into_iter().find(|e| e.name() == s)
    }

    /// Classifies a faulty run against the golden run.
    ///
    /// `golden_status` is compared for exit-code changes; outputs are
    /// compared byte-for-byte.
    pub fn classify(
        status: RunStatus,
        output: &[u8],
        golden_status: RunStatus,
        golden_output: &[u8],
    ) -> FaultEffect {
        match status {
            RunStatus::Detected(_) => FaultEffect::Detected,
            RunStatus::Crashed(_) | RunStatus::KernelPanic | RunStatus::Timeout => {
                FaultEffect::Crash
            }
            RunStatus::Exited(code) => {
                let golden_code = match golden_status {
                    RunStatus::Exited(c) => c,
                    _ => return FaultEffect::Sdc,
                };
                if code == golden_code && output == golden_output {
                    FaultEffect::Masked
                } else {
                    FaultEffect::Sdc
                }
            }
        }
    }
}

impl std::fmt::Display for FaultEffect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Counts of fault effects over a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tally {
    /// Masked runs.
    pub masked: u64,
    /// Silent data corruptions.
    pub sdc: u64,
    /// Crashes.
    pub crash: u64,
    /// Detections.
    pub detected: u64,
}

impl Tally {
    /// Adds one observation.
    pub fn add(&mut self, e: FaultEffect) {
        match e {
            FaultEffect::Masked => self.masked += 1,
            FaultEffect::Sdc => self.sdc += 1,
            FaultEffect::Crash => self.crash += 1,
            FaultEffect::Detected => self.detected += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.masked + self.sdc + self.crash + self.detected
    }

    /// The vulnerability factor (SDC and Crash rates). Detected faults are
    /// excluded from the vulnerability, matching the paper's case-study
    /// accounting (a detected fault can be recovered).
    pub fn vf(&self) -> VulnFactor {
        let n = self.total();
        if n == 0 {
            return VulnFactor::default();
        }
        VulnFactor {
            sdc: self.sdc as f64 / n as f64,
            crash: self.crash as f64 / n as f64,
            detected: self.detected as f64 / n as f64,
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &Tally) {
        self.masked += other.masked;
        self.sdc += other.sdc;
        self.crash += other.crash;
        self.detected += other.detected;
    }
}

impl std::iter::FromIterator<FaultEffect> for Tally {
    fn from_iter<T: IntoIterator<Item = FaultEffect>>(iter: T) -> Self {
        let mut t = Tally::default();
        for e in iter {
            t.add(e);
        }
        t
    }
}

/// A vulnerability factor split by fault-effect class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct VulnFactor {
    /// Probability of silent data corruption.
    pub sdc: f64,
    /// Probability of a crash.
    pub crash: f64,
    /// Probability of detection (case studies).
    pub detected: f64,
}

impl VulnFactor {
    /// Total vulnerability (SDC + Crash; detected excluded).
    pub fn total(&self) -> f64 {
        self.sdc + self.crash
    }

    /// Scales both components (used for HVF×PVF compositions).
    pub fn scaled(&self, k: f64) -> VulnFactor {
        VulnFactor {
            sdc: self.sdc * k,
            crash: self.crash * k,
            detected: self.detected * k,
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &VulnFactor) -> VulnFactor {
        VulnFactor {
            sdc: self.sdc + other.sdc,
            crash: self.crash + other.crash,
            detected: self.detected + other.detected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_against_golden() {
        let golden = RunStatus::Exited(0);
        let out = b"hello".to_vec();
        assert_eq!(
            FaultEffect::classify(RunStatus::Exited(0), &out, golden, &out),
            FaultEffect::Masked
        );
        assert_eq!(
            FaultEffect::classify(RunStatus::Exited(0), b"hellX", golden, &out),
            FaultEffect::Sdc
        );
        assert_eq!(
            FaultEffect::classify(RunStatus::Exited(1), &out, golden, &out),
            FaultEffect::Sdc
        );
        assert_eq!(
            FaultEffect::classify(RunStatus::Crashed(3), &out, golden, &out),
            FaultEffect::Crash
        );
        assert_eq!(
            FaultEffect::classify(RunStatus::Timeout, &out, golden, &out),
            FaultEffect::Crash
        );
        assert_eq!(
            FaultEffect::classify(RunStatus::KernelPanic, &out, golden, &out),
            FaultEffect::Crash
        );
        assert_eq!(
            FaultEffect::classify(RunStatus::Detected(1), &out, golden, &out),
            FaultEffect::Detected
        );
    }

    #[test]
    fn tally_rates() {
        let t: Tally = [
            FaultEffect::Masked,
            FaultEffect::Masked,
            FaultEffect::Sdc,
            FaultEffect::Crash,
            FaultEffect::Detected,
        ]
        .into_iter()
        .collect();
        assert_eq!(t.total(), 5);
        let vf = t.vf();
        assert!((vf.sdc - 0.2).abs() < 1e-12);
        assert!((vf.crash - 0.2).abs() < 1e-12);
        assert!((vf.detected - 0.2).abs() < 1e-12);
        assert!((vf.total() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_tally_is_zero() {
        let t = Tally::default();
        assert_eq!(t.vf().total(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a: Tally = [FaultEffect::Sdc].into_iter().collect();
        let b: Tally = [FaultEffect::Crash, FaultEffect::Masked]
            .into_iter()
            .collect();
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.crash, 1);
    }
}
