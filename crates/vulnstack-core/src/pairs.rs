//! Opposite relative-vulnerability pair analysis (paper Table III).
//!
//! Two estimation methods *disagree on a pair* of benchmarks when one
//! orders the pair `A < B` and the other orders it `A > B`. The paper
//! counts such pairs between PVF↔AVF, SVF↔AVF and SVF↔PVF, both for the
//! total vulnerability and for the dominant fault-effect class.

use serde::{Deserialize, Serialize};

/// Outcome of comparing two methods over the same benchmark set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairComparison {
    /// Pairs ordered oppositely by the two methods.
    pub opposite: u32,
    /// Pairs ordered identically.
    pub agreeing: u32,
    /// Pairs tied under either method (excluded from both counts).
    pub tied: u32,
}

impl PairComparison {
    /// Total comparable pairs.
    pub fn total(&self) -> u32 {
        self.opposite + self.agreeing + self.tied
    }
}

/// Compares the per-benchmark values of two methods pairwise.
///
/// Values closer than `epsilon` are treated as tied (fault sampling
/// noise).
pub fn compare_orderings(a: &[f64], b: &[f64], epsilon: f64) -> PairComparison {
    assert_eq!(a.len(), b.len(), "methods must cover the same benchmarks");
    let mut out = PairComparison::default();
    for i in 0..a.len() {
        for j in i + 1..a.len() {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da.abs() <= epsilon || db.abs() <= epsilon {
                out.tied += 1;
            } else if (da > 0.0) == (db > 0.0) {
                out.agreeing += 1;
            } else {
                out.opposite += 1;
            }
        }
    }
    out
}

/// Counts benchmarks whose *dominant effect class* differs between two
/// methods (paper Table III "Effect" columns): method A says SDC dominates
/// while method B says Crash dominates, or vice versa.
pub fn dominant_effect_flips(
    a: &[(f64, f64)], // (sdc, crash) per benchmark under method A
    b: &[(f64, f64)],
) -> u32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .filter(|((sa, ca), (sb, cb))| (sa > ca) != (sb > cb))
        .count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_correlated_methods_agree() {
        let a = [0.1, 0.2, 0.3, 0.4];
        let b = [0.2, 0.4, 0.6, 0.8];
        let c = compare_orderings(&a, &b, 1e-9);
        assert_eq!(c.opposite, 0);
        assert_eq!(c.agreeing, 6);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn reversed_methods_disagree_everywhere() {
        let a = [0.1, 0.2, 0.3];
        let b = [0.3, 0.2, 0.1];
        let c = compare_orderings(&a, &b, 1e-9);
        assert_eq!(c.opposite, 3);
        assert_eq!(c.agreeing, 0);
    }

    #[test]
    fn ties_are_excluded() {
        let a = [0.1, 0.1, 0.5];
        let b = [0.9, 0.1, 0.5];
        let c = compare_orderings(&a, &b, 0.01);
        // Pair (0,1): tied under A. Pair (1,2): comparable. Pair (0,2):
        // comparable.
        assert_eq!(c.tied, 1);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn dominant_effect_flip_counting() {
        // Benchmark 0: A says SDC-dominated, B says Crash-dominated.
        // Benchmark 1: both say SDC.
        let a = [(0.6, 0.1), (0.5, 0.2)];
        let b = [(0.1, 0.6), (0.7, 0.1)];
        assert_eq!(dominant_effect_flips(&a, &b), 1);
    }

    #[test]
    #[should_panic(expected = "same benchmarks")]
    fn mismatched_lengths_panic() {
        compare_orderings(&[1.0], &[1.0, 2.0], 0.0);
    }
}
