//! # vulnstack-core
//!
//! The paper's primary contribution as a library: the **system
//! vulnerability stack**. This crate owns the vocabulary and the math —
//! fault-effect classes, vulnerability factors at every layer (AVF, HVF,
//! PVF, SVF and the refined rPVF), fault-propagation-model distributions,
//! structure-size weighting (≡ FIT-rate weighting), statistical error
//! margins for fault sampling, and the cross-layer comparisons (opposite
//! relative-vulnerability pairs) that expose the pitfalls of higher-level
//! estimation.
//!
//! The injection engines (`vulnstack-gefin` for the microarchitecture and
//! architecture layers, `vulnstack-llfi` for the software layer) produce
//! [`effects::Tally`]s; everything here consumes them.
//!
//! # Example
//!
//! ```
//! use vulnstack_core::effects::{FaultEffect, Tally};
//!
//! let mut t = Tally::default();
//! for e in [FaultEffect::Masked, FaultEffect::Sdc, FaultEffect::Crash, FaultEffect::Masked] {
//!     t.add(e);
//! }
//! assert_eq!(t.total(), 4);
//! assert!((t.vf().total() - 0.5).abs() < 1e-9);
//! ```

pub mod effects;
pub mod fair;
pub mod journal;
pub mod memquota;
pub mod pairs;
pub mod report;
pub mod sched;
pub mod sink;
pub mod stack;
pub mod stats;
pub mod trace;

pub use effects::{FaultEffect, Tally, VulnFactor};
pub use fair::{FairPool, Participant};
// The runtime fault model lives beside the core it corrupts; re-exported
// here so software-level engines (llfi) share one type without a direct
// microarch dependency in their own code.
pub use journal::{
    Fingerprint, Journal, JournalError, JournalOpts, ResumableCampaign, ResumeMode, ResumeStats,
    ResumedCampaign, StreamedCampaign,
};
pub use memquota::{MemQuota, Participation, ShedReport};
pub use sched::{Admission, ClaimGate, Quarantine, RunPolicy, SiteResult};
pub use sink::{RecordHandle, RecordTee, SinkHandle, SinkSummary, StreamOpts};
pub use stack::{FpmDist, StructureAvf, WeightedAvf};
pub use trace::{CampaignMetrics, MetricsReport, Span, WorkerReport};
pub use vulnstack_microarch::FaultModel;
