//! # vulnstack-isa
//!
//! Definitions of the two VulnArm instruction-set architectures used across
//! the vulnstack workspace:
//!
//! * **VA32** — a 32-bit, 16-register load/store ISA standing in for Armv7.
//! * **VA64** — a 64-bit, 31-register (plus zero register) ISA standing in
//!   for Armv8.
//!
//! Both ISAs share a fixed 32-bit instruction encoding. The binary encoding
//! is a first-class citizen here because the fault-injection layers flip bits
//! in *encoded* instructions (in the L1 instruction cache, the L2 cache, or
//! the text segment) and the resulting decode — a different-but-valid
//! instruction, a corrupted operand, or an undefined instruction — is exactly
//! what produces the paper's Wrong Instruction (WI) and Wrong Operand or
//! Immediate (WOI) fault propagation models.
//!
//! # Example
//!
//! ```
//! use vulnstack_isa::{Instr, Isa, Op, Reg};
//!
//! let isa = Isa::Va64;
//! let i = Instr::alu_imm(Op::Addi, Reg(3), Reg(4), 42);
//! let word = i.encode(isa).unwrap();
//! let back = Instr::decode(word, isa).unwrap();
//! assert_eq!(i, back);
//! ```

pub mod abi;
pub mod bits;
pub mod disasm;
pub mod encode;
pub mod fields;
pub mod instr;
pub mod isa;
pub mod op;
pub mod reg;
pub mod sysreg;
pub mod trap;

pub use abi::{CallConv, Syscall};
pub use fields::{classify_bit, BitClass};
pub use instr::{Instr, SrcRole};
pub use isa::Isa;
pub use op::Op;
pub use reg::Reg;
pub use sysreg::SysReg;
pub use trap::{Trap, TrapCause};

/// Size of one encoded instruction in bytes (both ISAs use fixed 32-bit
/// encodings).
pub const INSTR_BYTES: u64 = 4;
