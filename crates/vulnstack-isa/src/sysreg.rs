//! System registers used by the mini-kernel for trap handling.

use serde::{Deserialize, Serialize};

/// A privileged system register, accessed via `MFSR`/`MTSR` (kernel mode
/// only; user-mode access raises a privilege violation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum SysReg {
    /// Exception PC — address of the trapping instruction (or the
    /// instruction after `SYSCALL`).
    Epc = 0,
    /// Trap cause code (see [`TrapCause::code`](crate::trap::TrapCause)).
    Cause = 1,
    /// Faulting address for memory traps.
    BadAddr = 2,
    /// Kernel scratch register 0.
    Scratch0 = 3,
    /// Kernel scratch register 1.
    Scratch1 = 4,
    /// Saved user stack pointer across kernel entry.
    Usp = 5,
    /// Kernel stack pointer loaded on kernel entry.
    Ksp = 6,
}

impl SysReg {
    /// All system registers.
    pub const ALL: &'static [SysReg] = &[
        SysReg::Epc,
        SysReg::Cause,
        SysReg::BadAddr,
        SysReg::Scratch0,
        SysReg::Scratch1,
        SysReg::Usp,
        SysReg::Ksp,
    ];

    /// Number of system registers.
    pub const COUNT: usize = 7;

    /// Index in the encoding's 5-bit sysreg field.
    pub fn index(self) -> u8 {
        self as u8
    }

    /// Decodes a sysreg field value.
    pub fn from_index(i: u8) -> Option<SysReg> {
        SysReg::ALL.get(i as usize).copied()
    }
}

impl std::fmt::Display for SysReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SysReg::Epc => "epc",
            SysReg::Cause => "cause",
            SysReg::BadAddr => "badaddr",
            SysReg::Scratch0 => "scratch0",
            SysReg::Scratch1 => "scratch1",
            SysReg::Usp => "usp",
            SysReg::Ksp => "ksp",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for &sr in SysReg::ALL {
            assert_eq!(SysReg::from_index(sr.index()), Some(sr));
        }
        assert_eq!(SysReg::from_index(SysReg::COUNT as u8), None);
        assert_eq!(SysReg::ALL.len(), SysReg::COUNT);
    }
}
