//! Small bit-manipulation helpers shared by the encoder, decoder and the
//! fault-injection layers.

/// Extracts bits `[hi:lo]` (inclusive) of `word`.
pub fn field(word: u32, hi: u32, lo: u32) -> u32 {
    debug_assert!(hi >= lo && hi < 32);
    (word >> lo) & ((1u32 << (hi - lo + 1)) - 1)
}

/// Inserts `value` into bits `[hi:lo]` of `word`.
///
/// # Panics
///
/// Panics in debug builds if `value` does not fit in the field.
pub fn insert(word: u32, hi: u32, lo: u32, value: u32) -> u32 {
    debug_assert!(hi >= lo && hi < 32);
    let mask = ((1u64 << (hi - lo + 1)) - 1) as u32;
    debug_assert!(value <= mask, "field value {value:#x} exceeds [{hi}:{lo}]");
    (word & !(mask << lo)) | ((value & mask) << lo)
}

/// Sign-extends the low `bits` bits of `v` to 64 bits.
pub fn sext(v: u64, bits: u32) -> i64 {
    debug_assert!((1..=64).contains(&bits));
    let shift = 64 - bits;
    ((v << shift) as i64) >> shift
}

/// True if signed `v` fits in `bits` bits.
pub fn fits_signed(v: i64, bits: u32) -> bool {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    v >= min && v <= max
}

/// True if unsigned `v` fits in `bits` bits.
pub fn fits_unsigned(v: u64, bits: u32) -> bool {
    bits >= 64 || v < (1u64 << bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_and_insert_roundtrip() {
        let w = insert(0, 23, 19, 0b10110);
        assert_eq!(field(w, 23, 19), 0b10110);
        let w2 = insert(w, 13, 0, 0x3abc);
        assert_eq!(field(w2, 13, 0), 0x3abc);
        assert_eq!(field(w2, 23, 19), 0b10110);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sext(0b11_1111_1111_1111, 14), -1);
        assert_eq!(sext(0b01_1111_1111_1111, 14), 8191);
        assert_eq!(sext(0x8000_0000, 32), i32::MIN as i64);
        assert_eq!(sext(5, 14), 5);
    }

    #[test]
    fn fit_checks() {
        assert!(fits_signed(8191, 14));
        assert!(!fits_signed(8192, 14));
        assert!(fits_signed(-8192, 14));
        assert!(!fits_signed(-8193, 14));
        assert!(fits_unsigned(0xffff, 16));
        assert!(!fits_unsigned(0x1_0000, 16));
        assert!(fits_unsigned(u64::MAX, 64));
    }
}
