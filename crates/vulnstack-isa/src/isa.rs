//! The two VulnArm ISA variants and their architectural parameters.

use serde::{Deserialize, Serialize};

use crate::reg::Reg;

/// An instruction-set architecture variant.
///
/// The vulnerability study compares the same source workloads compiled for
/// two ISAs; register count and word width change code density, register
/// pressure (spills), and cache utilisation — all of which feed into the
/// hardware vulnerability of the structures holding that state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Isa {
    /// 32-bit ISA with 16 architectural registers (Armv7 stand-in).
    Va32,
    /// 64-bit ISA with 31 architectural registers plus a zero register
    /// (Armv8 stand-in).
    Va64,
}

impl Isa {
    /// Architectural word width in bits.
    pub fn xlen(self) -> u32 {
        match self {
            Isa::Va32 => 32,
            Isa::Va64 => 64,
        }
    }

    /// Architectural word width in bytes.
    pub fn word_bytes(self) -> u64 {
        (self.xlen() / 8) as u64
    }

    /// Number of addressable architectural general-purpose registers.
    ///
    /// For [`Isa::Va64`] this includes the zero register (index 31), which
    /// reads as zero and discards writes.
    pub fn num_regs(self) -> u8 {
        match self {
            Isa::Va32 => 16,
            Isa::Va64 => 32,
        }
    }

    /// The stack pointer register for the standard ABI.
    pub fn sp(self) -> Reg {
        match self {
            Isa::Va32 => Reg(13),
            Isa::Va64 => Reg(29),
        }
    }

    /// The link register written by `CALL`/`CALLR`.
    pub fn lr(self) -> Reg {
        match self {
            Isa::Va32 => Reg(14),
            Isa::Va64 => Reg(30),
        }
    }

    /// The hard-wired zero register, if the ISA has one.
    pub fn zero(self) -> Option<Reg> {
        match self {
            Isa::Va32 => None,
            Isa::Va64 => Some(Reg(31)),
        }
    }

    /// Returns true if `r` is a valid architectural register for this ISA.
    pub fn reg_valid(self, r: Reg) -> bool {
        r.0 < self.num_regs()
    }

    /// Truncates `v` to the architectural word width (sign bits dropped).
    pub fn truncate(self, v: u64) -> u64 {
        match self {
            Isa::Va32 => v & 0xffff_ffff,
            Isa::Va64 => v,
        }
    }

    /// Sign-extends the architectural word `v` to 64 bits for host-side
    /// signed arithmetic.
    pub fn sext(self, v: u64) -> i64 {
        match self {
            Isa::Va32 => v as u32 as i32 as i64,
            Isa::Va64 => v as i64,
        }
    }

    /// Short lowercase name used in reports (`va32` / `va64`).
    pub fn name(self) -> &'static str {
        match self {
            Isa::Va32 => "va32",
            Isa::Va64 => "va64",
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(Isa::Va32.xlen(), 32);
        assert_eq!(Isa::Va64.xlen(), 64);
        assert_eq!(Isa::Va32.word_bytes(), 4);
        assert_eq!(Isa::Va64.word_bytes(), 8);
    }

    #[test]
    fn special_regs_are_valid() {
        for isa in [Isa::Va32, Isa::Va64] {
            assert!(isa.reg_valid(isa.sp()));
            assert!(isa.reg_valid(isa.lr()));
            if let Some(z) = isa.zero() {
                assert!(isa.reg_valid(z));
            }
        }
    }

    #[test]
    fn truncate_and_sext() {
        assert_eq!(Isa::Va32.truncate(0x1_2345_6789), 0x2345_6789);
        assert_eq!(Isa::Va64.truncate(u64::MAX), u64::MAX);
        assert_eq!(Isa::Va32.sext(0xffff_ffff), -1);
        assert_eq!(Isa::Va32.sext(0x7fff_ffff), 0x7fff_ffff);
        assert_eq!(Isa::Va64.sext(u64::MAX), -1);
    }

    #[test]
    fn va32_rejects_high_registers() {
        assert!(Isa::Va32.reg_valid(Reg(15)));
        assert!(!Isa::Va32.reg_valid(Reg(16)));
        assert!(Isa::Va64.reg_valid(Reg(31)));
        assert!(!Isa::Va64.reg_valid(Reg(32)));
    }
}
