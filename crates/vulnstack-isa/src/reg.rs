//! Architectural register identifiers.

use serde::{Deserialize, Serialize};

/// An architectural general-purpose register index.
///
/// The index space is 5 bits wide in the encoding; which indices are valid
/// depends on the [`Isa`](crate::Isa) (`Va32` has 16 registers, `Va64` 32
/// including the zero register).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Reg(pub u8);

impl Reg {
    /// Register index as `usize` for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u8> for Reg {
    fn from(v: u8) -> Self {
        Reg(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(Reg(7).to_string(), "r7");
        assert_eq!(Reg(31).index(), 31);
        assert_eq!(Reg::from(5u8), Reg(5));
    }
}
