//! Textual disassembly, mainly for debugging fault traces.

use crate::instr::Instr;
use crate::isa::Isa;
use crate::op::Format;

impl std::fmt::Display for Instr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.op.mnemonic();
        match self.op.format() {
            Format::R => write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.rs2),
            Format::I => write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.imm),
            Format::Load => write!(f, "{m} {}, [{} + {}]", self.rd, self.rs1, self.imm),
            Format::Store => write!(f, "{m} {}, [{} + {}]", self.rd, self.rs1, self.imm),
            Format::B => write!(f, "{m} {}, {}, pc{:+}", self.rs1, self.rs2, self.imm),
            Format::J => write!(f, "{m} pc{:+}", self.imm),
            Format::Jr => write!(f, "{m} {}", self.rs1),
            Format::M => write!(
                f,
                "{m} {}, {:#x} lsl {}",
                self.rd,
                self.imm,
                16 * self.shift
            ),
            Format::Sys => write!(f, "{m}"),
            Format::Mfsr => {
                write!(
                    f,
                    "{m} {}, {}",
                    self.rd,
                    self.sysreg().map_or("?".into(), |s| s.to_string())
                )
            }
            Format::Mtsr => {
                write!(
                    f,
                    "{m} {}, {}",
                    self.sysreg().map_or("?".into(), |s| s.to_string()),
                    self.rs1
                )
            }
        }
    }
}

/// Disassembles a raw word, or describes why it does not decode.
pub fn disasm_word(word: u32, isa: Isa) -> String {
    match Instr::decode(word, isa) {
        Ok(i) => i.to_string(),
        Err(e) => format!(".word {word:#010x} ; {e}"),
    }
}

/// Disassembles a byte slice of encoded instructions (little-endian words).
pub fn disasm_bytes(bytes: &[u8], base: u64, isa: Isa) -> Vec<String> {
    bytes
        .chunks_exact(4)
        .enumerate()
        .map(|(i, c)| {
            let word = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            format!("{:#010x}: {}", base + 4 * i as u64, disasm_word(word, isa))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::reg::Reg;

    #[test]
    fn display_forms() {
        assert_eq!(
            Instr::alu_rr(Op::Add, Reg(1), Reg(2), Reg(3)).to_string(),
            "add r1, r2, r3"
        );
        assert_eq!(
            Instr::load(Op::Lw, Reg(4), Reg(5), -8).to_string(),
            "lw r4, [r5 + -8]"
        );
        assert_eq!(
            Instr::branch(Op::Beq, Reg(1), Reg(2), 16).to_string(),
            "beq r1, r2, pc+16"
        );
        assert_eq!(Instr::sys(Op::Syscall).to_string(), "syscall");
        assert_eq!(
            Instr::mov_wide(Op::Movz, Reg(7), 0xBEEF, 2).to_string(),
            "movz r7, 0xbeef lsl 32"
        );
    }

    #[test]
    fn disasm_invalid_word() {
        let s = disasm_word(0xFF00_0000, Isa::Va64);
        assert!(s.contains("invalid opcode"), "{s}");
    }

    #[test]
    fn disasm_byte_stream() {
        let a = Instr::alu_imm(Op::Addi, Reg(1), Reg(1), 1)
            .encode(Isa::Va64)
            .unwrap();
        let b = Instr::sys(Op::Nop).encode(Isa::Va64).unwrap();
        let mut bytes = a.to_le_bytes().to_vec();
        bytes.extend(b.to_le_bytes());
        let lines = disasm_bytes(&bytes, 0x1000, Isa::Va64);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("0x00001000: addi"));
        assert!(lines[1].contains("nop"));
    }
}
