//! Traps: synchronous exceptions and system calls.

use serde::{Deserialize, Serialize};

/// Why control transferred to the kernel.
///
/// Every cause other than [`TrapCause::Syscall`] is an *error* trap; if one
/// is raised while already in kernel mode the kernel panics, which the
/// fault-effect classifier records as a Crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrapCause {
    /// `SYSCALL` executed in user mode.
    Syscall,
    /// The fetched word did not decode to a valid instruction on this ISA.
    UndefinedInstruction,
    /// A memory access was not naturally aligned for its size.
    MisalignedAccess,
    /// A memory access touched an unmapped or protected region.
    AccessFault,
    /// An instruction fetch touched an unmapped or non-executable region.
    FetchFault,
    /// Integer division (or remainder) by zero.
    DivideByZero,
    /// A privileged instruction (`ERET`, `MFSR`, `MTSR`, `HALT`) executed in
    /// user mode.
    PrivilegeViolation,
}

impl TrapCause {
    /// Numeric code stored in the `CAUSE` system register.
    pub fn code(self) -> u64 {
        match self {
            TrapCause::Syscall => 0,
            TrapCause::UndefinedInstruction => 1,
            TrapCause::MisalignedAccess => 2,
            TrapCause::AccessFault => 3,
            TrapCause::FetchFault => 4,
            TrapCause::DivideByZero => 5,
            TrapCause::PrivilegeViolation => 6,
        }
    }

    /// Inverse of [`TrapCause::code`].
    pub fn from_code(c: u64) -> Option<TrapCause> {
        Some(match c {
            0 => TrapCause::Syscall,
            1 => TrapCause::UndefinedInstruction,
            2 => TrapCause::MisalignedAccess,
            3 => TrapCause::AccessFault,
            4 => TrapCause::FetchFault,
            5 => TrapCause::DivideByZero,
            6 => TrapCause::PrivilegeViolation,
            _ => return None,
        })
    }

    /// True for causes that indicate an error (everything except a syscall).
    pub fn is_error(self) -> bool {
        self != TrapCause::Syscall
    }
}

impl std::fmt::Display for TrapCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TrapCause::Syscall => "syscall",
            TrapCause::UndefinedInstruction => "undefined instruction",
            TrapCause::MisalignedAccess => "misaligned access",
            TrapCause::AccessFault => "access fault",
            TrapCause::FetchFault => "fetch fault",
            TrapCause::DivideByZero => "divide by zero",
            TrapCause::PrivilegeViolation => "privilege violation",
        };
        f.write_str(s)
    }
}

/// A trap event: cause plus the architectural context the kernel needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trap {
    /// Why the trap occurred.
    pub cause: TrapCause,
    /// PC of the trapping instruction.
    pub pc: u64,
    /// Faulting data/fetch address for memory traps, 0 otherwise.
    pub addr: u64,
}

impl Trap {
    /// Builds a trap with no faulting address.
    pub fn new(cause: TrapCause, pc: u64) -> Trap {
        Trap { cause, pc, addr: 0 }
    }

    /// Builds a memory trap carrying the faulting address.
    pub fn with_addr(cause: TrapCause, pc: u64, addr: u64) -> Trap {
        Trap { cause, pc, addr }
    }
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at pc={:#x} (addr={:#x})",
            self.cause, self.pc, self.addr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_codes_roundtrip() {
        for c in [
            TrapCause::Syscall,
            TrapCause::UndefinedInstruction,
            TrapCause::MisalignedAccess,
            TrapCause::AccessFault,
            TrapCause::FetchFault,
            TrapCause::DivideByZero,
            TrapCause::PrivilegeViolation,
        ] {
            assert_eq!(TrapCause::from_code(c.code()), Some(c));
        }
        assert_eq!(TrapCause::from_code(99), None);
    }

    #[test]
    fn error_classification() {
        assert!(!TrapCause::Syscall.is_error());
        assert!(TrapCause::AccessFault.is_error());
    }
}
