//! Decoded instruction representation and constructors.

use serde::{Deserialize, Serialize};

use crate::isa::Isa;
use crate::op::{Format, Op};
use crate::reg::Reg;
use crate::sysreg::SysReg;

/// Semantic role of one source operand, parallel to [`Instr::regs_read`].
///
/// Decode-level metadata for analyses that care *what* an operand feeds
/// rather than merely that it is read — e.g. the fault-model taint pass
/// in `vulnstack-analyze`, which treats branch conditions, memory bases,
/// and control-transfer targets as attack-surface sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SrcRole {
    /// Plain data operand flowing into the destination value.
    Value,
    /// Register shift amount (observed modulo the word width).
    ShiftAmount,
    /// Address base of a load or store.
    MemBase,
    /// Data being stored to memory.
    StoreData,
    /// Conditional-branch comparison operand.
    BranchCond,
    /// Indirect jump/call target (`JMPR`/`CALLR`).
    JumpTarget,
    /// Value written to a system register (`MTSR` — e.g. the trap-return
    /// `EPC`, making it control-relevant).
    SysregData,
}

/// A decoded machine instruction.
///
/// Field meaning depends on [`Op::format`]:
///
/// | format | `rd` | `rs1` | `rs2` | `imm` | `shift` |
/// |---|---|---|---|---|---|
/// | R | dest | src 1 | src 2 | — | — |
/// | I | dest | src | — | signed imm | — |
/// | Load | dest | base | — | signed byte offset | — |
/// | Store | data src | base | — | signed byte offset | — |
/// | B | — | cmp 1 | cmp 2 | signed byte offset (pc-relative) | — |
/// | J | — | — | — | signed byte offset (pc-relative) | — |
/// | Jr | — | target | — | — | — |
/// | M | dest | — | — | imm16 (0..=65535) | 0..=3 |
/// | Mfsr | dest | sysreg idx | — | — | — |
/// | Mtsr | sysreg idx | src | — | — | — |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instr {
    /// Operation.
    pub op: Op,
    /// Destination register (or data source for stores, sysreg index for
    /// `MTSR`).
    pub rd: Reg,
    /// First source register (base for memory ops, sysreg index for `MFSR`).
    pub rs1: Reg,
    /// Second source register.
    pub rs2: Reg,
    /// Immediate. Branch/jump immediates are *byte* offsets relative to this
    /// instruction's address and are always multiples of 4.
    pub imm: i64,
    /// Shift count for `MOVZ`/`MOVK` (`imm16 << 16*shift`).
    pub shift: u8,
}

impl Instr {
    /// A canonical `nop`.
    pub fn nop() -> Instr {
        Instr::sys(Op::Nop)
    }

    /// Builds a register-register ALU instruction.
    pub fn alu_rr(op: Op, rd: Reg, rs1: Reg, rs2: Reg) -> Instr {
        debug_assert_eq!(op.format(), Format::R);
        Instr {
            op,
            rd,
            rs1,
            rs2,
            imm: 0,
            shift: 0,
        }
    }

    /// Builds a register-immediate ALU instruction.
    pub fn alu_imm(op: Op, rd: Reg, rs1: Reg, imm: i64) -> Instr {
        debug_assert_eq!(op.format(), Format::I);
        Instr {
            op,
            rd,
            rs1,
            rs2: Reg(0),
            imm,
            shift: 0,
        }
    }

    /// Builds a load: `rd <- mem[rs1 + offset]`.
    pub fn load(op: Op, rd: Reg, base: Reg, offset: i64) -> Instr {
        debug_assert_eq!(op.format(), Format::Load);
        Instr {
            op,
            rd,
            rs1: base,
            rs2: Reg(0),
            imm: offset,
            shift: 0,
        }
    }

    /// Builds a store: `mem[rs1 + offset] <- data`.
    pub fn store(op: Op, data: Reg, base: Reg, offset: i64) -> Instr {
        debug_assert_eq!(op.format(), Format::Store);
        Instr {
            op,
            rd: data,
            rs1: base,
            rs2: Reg(0),
            imm: offset,
            shift: 0,
        }
    }

    /// Builds a conditional branch with a pc-relative byte offset.
    pub fn branch(op: Op, rs1: Reg, rs2: Reg, offset: i64) -> Instr {
        debug_assert_eq!(op.format(), Format::B);
        Instr {
            op,
            rd: Reg(0),
            rs1,
            rs2,
            imm: offset,
            shift: 0,
        }
    }

    /// Builds a direct `call`/`jmp` with a pc-relative byte offset.
    pub fn jump(op: Op, offset: i64) -> Instr {
        debug_assert_eq!(op.format(), Format::J);
        Instr {
            op,
            rd: Reg(0),
            rs1: Reg(0),
            rs2: Reg(0),
            imm: offset,
            shift: 0,
        }
    }

    /// Builds an indirect `callr`/`jmpr` through `target`.
    pub fn jump_reg(op: Op, target: Reg) -> Instr {
        debug_assert_eq!(op.format(), Format::Jr);
        Instr {
            op,
            rd: Reg(0),
            rs1: target,
            rs2: Reg(0),
            imm: 0,
            shift: 0,
        }
    }

    /// Builds a `movz`/`movk`: `imm16` placed at bit position `16*shift`.
    pub fn mov_wide(op: Op, rd: Reg, imm16: u16, shift: u8) -> Instr {
        debug_assert_eq!(op.format(), Format::M);
        debug_assert!(shift < 4);
        Instr {
            op,
            rd,
            rs1: Reg(0),
            rs2: Reg(0),
            imm: imm16 as i64,
            shift,
        }
    }

    /// Builds a no-operand system instruction (`syscall`, `eret`, `halt`,
    /// `nop`).
    pub fn sys(op: Op) -> Instr {
        debug_assert_eq!(op.format(), Format::Sys);
        Instr {
            op,
            rd: Reg(0),
            rs1: Reg(0),
            rs2: Reg(0),
            imm: 0,
            shift: 0,
        }
    }

    /// Builds `mfsr rd, sr`.
    pub fn mfsr(rd: Reg, sr: SysReg) -> Instr {
        Instr {
            op: Op::Mfsr,
            rd,
            rs1: Reg(sr.index()),
            rs2: Reg(0),
            imm: 0,
            shift: 0,
        }
    }

    /// Builds `mtsr sr, rs1`.
    pub fn mtsr(sr: SysReg, rs1: Reg) -> Instr {
        Instr {
            op: Op::Mtsr,
            rd: Reg(sr.index()),
            rs1,
            rs2: Reg(0),
            imm: 0,
            shift: 0,
        }
    }

    /// Architectural registers read by this instruction, in operand order.
    ///
    /// This is the decode-metadata entry point used by the static analyzer
    /// (`vulnstack-analyze`), the rename stage of the out-of-order core,
    /// and anything else that needs the read set without interpreting the
    /// instruction.
    pub fn regs_read(&self) -> Vec<Reg> {
        match self.op.format() {
            Format::R | Format::B => vec![self.rs1, self.rs2],
            Format::I | Format::Load | Format::Jr => vec![self.rs1],
            Format::Store => vec![self.rd, self.rs1],
            Format::Mtsr => vec![self.rs1],
            Format::M => {
                if self.op == Op::Movk {
                    vec![self.rd]
                } else {
                    vec![]
                }
            }
            Format::J | Format::Sys | Format::Mfsr => vec![],
        }
    }

    /// Architectural registers written by this instruction (empty or one
    /// element; a `Vec` keeps the API symmetric with [`Instr::regs_read`]).
    ///
    /// Writes to the VA64 zero register are excluded, matching
    /// [`Instr::dest`].
    pub fn regs_written(&self, isa: Isa) -> Vec<Reg> {
        self.dest(isa).into_iter().collect()
    }

    /// Semantic role of each source operand, parallel to
    /// [`Instr::regs_read`].
    ///
    /// This is the operand metadata the fault-model taint analysis keys
    /// on: a corrupted [`SrcRole::BranchCond`] operand can subvert a
    /// guard, a corrupted [`SrcRole::MemBase`] redirects a memory access,
    /// and a corrupted [`SrcRole::JumpTarget`] or [`SrcRole::SysregData`]
    /// hijacks control flow outright.
    pub fn src_roles(&self) -> Vec<SrcRole> {
        use Op::*;
        match self.op.format() {
            Format::R => match self.op {
                Sll | Srl | Sra | Sllw | Srlw | Sraw => vec![SrcRole::Value, SrcRole::ShiftAmount],
                _ => vec![SrcRole::Value, SrcRole::Value],
            },
            Format::B => vec![SrcRole::BranchCond, SrcRole::BranchCond],
            Format::I => vec![SrcRole::Value],
            Format::Load => vec![SrcRole::MemBase],
            Format::Jr => vec![SrcRole::JumpTarget],
            Format::Store => vec![SrcRole::StoreData, SrcRole::MemBase],
            Format::Mtsr => vec![SrcRole::SysregData],
            Format::M => {
                if self.op == Op::Movk {
                    vec![SrcRole::Value]
                } else {
                    vec![]
                }
            }
            Format::J | Format::Sys | Format::Mfsr => vec![],
        }
    }

    /// Architectural registers read by this instruction.
    ///
    /// Alias of [`Instr::regs_read`], kept for the simulator call sites
    /// that predate the static-analysis layer.
    pub fn srcs(&self) -> Vec<Reg> {
        self.regs_read()
    }

    /// How many low bits of each source register this instruction actually
    /// observes, parallel to [`Instr::regs_read`].
    ///
    /// This is an *upper bound* (an instruction may mask further at
    /// runtime), which keeps analyses built on it pessimism-safe:
    ///
    /// * `W`-suffixed VA64 ops observe the low 32 bits of their value
    ///   operands;
    /// * register shift amounts are observed modulo the word width (5 or
    ///   6 bits);
    /// * a store observes `8 × access_bytes` bits of its data register;
    /// * everything else observes the full architectural word.
    pub fn src_widths(&self, isa: Isa) -> Vec<u32> {
        use Op::*;
        let xlen = isa.xlen();
        let shamt_bits = if isa.xlen() == 64 { 6 } else { 5 };
        match self.op {
            // VA64 32-bit forms: value operands are observed at 32 bits.
            Addw | Subw | Mulw | Divw | Divuw | Remw | Remuw => vec![32, 32],
            Sllw | Srlw | Sraw => vec![32, 5],
            Addiw | Slliw | Srliw | Sraiw => vec![32],
            // Full-width register shifts observe only the shift amount of
            // rs2.
            Sll | Srl | Sra => vec![xlen, shamt_bits],
            // Stores observe only the accessed bytes of the data register
            // (first source), and the full base.
            Sb | Sh | Sw | Sd => {
                vec![(self.op.access_bytes() * 8) as u32, xlen]
            }
            _ => self.regs_read().iter().map(|_| xlen).collect(),
        }
    }

    /// Architectural register written by this instruction, if any.
    ///
    /// `CALL`/`CALLR` write the ISA's link register, so the destination is
    /// ISA-dependent.
    pub fn dest(&self, isa: Isa) -> Option<Reg> {
        let d = match self.op.format() {
            Format::R | Format::I | Format::Load | Format::M | Format::Mfsr => Some(self.rd),
            Format::J | Format::Jr if matches!(self.op, Op::Call | Op::Callr) => Some(isa.lr()),
            _ => None,
        };
        // Writes to the VA64 zero register are discarded.
        match (d, isa.zero()) {
            (Some(r), Some(z)) if r == z => None,
            _ => d,
        }
    }

    /// The system register referenced by `MFSR`/`MTSR`, if any.
    pub fn sysreg(&self) -> Option<SysReg> {
        match self.op {
            Op::Mfsr => SysReg::from_index(self.rs1.0),
            Op::Mtsr => SysReg::from_index(self.rd.0),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srcs_and_dest() {
        let i = Instr::alu_rr(Op::Add, Reg(1), Reg(2), Reg(3));
        assert_eq!(i.srcs(), vec![Reg(2), Reg(3)]);
        assert_eq!(i.dest(Isa::Va64), Some(Reg(1)));

        let s = Instr::store(Op::Sw, Reg(4), Reg(5), 8);
        assert_eq!(s.srcs(), vec![Reg(4), Reg(5)]);
        assert_eq!(s.dest(Isa::Va64), None);

        let c = Instr::jump(Op::Call, 64);
        assert_eq!(c.dest(Isa::Va32), Some(Isa::Va32.lr()));
        assert_eq!(c.dest(Isa::Va64), Some(Isa::Va64.lr()));

        let j = Instr::jump(Op::Jmp, 64);
        assert_eq!(j.dest(Isa::Va64), None);
    }

    #[test]
    fn regs_read_written_match_srcs_dest() {
        let cases = [
            Instr::alu_rr(Op::Add, Reg(1), Reg(2), Reg(3)),
            Instr::alu_imm(Op::Addi, Reg(4), Reg(5), 10),
            Instr::load(Op::Lw, Reg(6), Reg(7), 0),
            Instr::store(Op::Sw, Reg(8), Reg(9), 0),
            Instr::branch(Op::Beq, Reg(1), Reg(2), 8),
            Instr::jump(Op::Call, 16),
            Instr::jump_reg(Op::Jmpr, Reg(14)),
            Instr::mov_wide(Op::Movk, Reg(3), 0xAB, 1),
            Instr::sys(Op::Syscall),
            Instr::mfsr(Reg(3), SysReg::Epc),
            Instr::mtsr(SysReg::Ksp, Reg(4)),
        ];
        for i in cases {
            assert_eq!(i.regs_read(), i.srcs(), "{i:?}");
            for isa in [Isa::Va32, Isa::Va64] {
                assert_eq!(
                    i.regs_written(isa),
                    i.dest(isa).into_iter().collect::<Vec<_>>()
                );
                // Widths are parallel to the read set and bounded by xlen.
                let widths = i.src_widths(isa);
                assert_eq!(widths.len(), i.regs_read().len(), "{i:?} on {isa}");
                assert!(
                    widths.iter().all(|&w| w >= 1 && w <= isa.xlen()),
                    "{i:?}: {widths:?}"
                );
            }
        }
    }

    #[test]
    fn src_widths_partial_cases() {
        // Store data register: only the accessed bytes are observed.
        let sb = Instr::store(Op::Sb, Reg(1), Reg(2), 0);
        assert_eq!(sb.src_widths(Isa::Va64), vec![8, 64]);
        // W-form arithmetic observes 32 bits.
        let addw = Instr::alu_rr(Op::Addw, Reg(1), Reg(2), Reg(3));
        assert_eq!(addw.src_widths(Isa::Va64), vec![32, 32]);
        // Register shift amount is observed mod the word width.
        let sll = Instr::alu_rr(Op::Sll, Reg(1), Reg(2), Reg(3));
        assert_eq!(sll.src_widths(Isa::Va32), vec![32, 5]);
        assert_eq!(sll.src_widths(Isa::Va64), vec![64, 6]);
        // A VA64 zero-register write disappears from regs_written.
        let i = Instr::alu_rr(Op::Add, Reg(31), Reg(1), Reg(2));
        assert!(i.regs_written(Isa::Va64).is_empty());
    }

    #[test]
    fn src_roles_parallel_regs_read() {
        let cases = [
            Instr::alu_rr(Op::Add, Reg(1), Reg(2), Reg(3)),
            Instr::alu_rr(Op::Sll, Reg(1), Reg(2), Reg(3)),
            Instr::alu_imm(Op::Addi, Reg(4), Reg(5), 10),
            Instr::load(Op::Lw, Reg(6), Reg(7), 0),
            Instr::store(Op::Sw, Reg(8), Reg(9), 0),
            Instr::branch(Op::Beq, Reg(1), Reg(2), 8),
            Instr::jump(Op::Call, 16),
            Instr::jump_reg(Op::Jmpr, Reg(14)),
            Instr::mov_wide(Op::Movk, Reg(3), 0xAB, 1),
            Instr::mov_wide(Op::Movz, Reg(3), 0xAB, 1),
            Instr::sys(Op::Syscall),
            Instr::mfsr(Reg(3), SysReg::Epc),
            Instr::mtsr(SysReg::Ksp, Reg(4)),
        ];
        for i in cases {
            assert_eq!(i.src_roles().len(), i.regs_read().len(), "{i:?}");
        }
        let sll = Instr::alu_rr(Op::Sll, Reg(1), Reg(2), Reg(3));
        assert_eq!(sll.src_roles(), vec![SrcRole::Value, SrcRole::ShiftAmount]);
        let st = Instr::store(Op::Sb, Reg(1), Reg(2), 0);
        assert_eq!(st.src_roles(), vec![SrcRole::StoreData, SrcRole::MemBase]);
        let b = Instr::branch(Op::Bne, Reg(1), Reg(2), 8);
        assert_eq!(
            b.src_roles(),
            vec![SrcRole::BranchCond, SrcRole::BranchCond]
        );
        let jr = Instr::jump_reg(Op::Callr, Reg(5));
        assert_eq!(jr.src_roles(), vec![SrcRole::JumpTarget]);
        let mt = Instr::mtsr(SysReg::Epc, Reg(4));
        assert_eq!(mt.src_roles(), vec![SrcRole::SysregData]);
    }

    #[test]
    fn movk_reads_its_destination() {
        let k = Instr::mov_wide(Op::Movk, Reg(6), 0xBEEF, 1);
        assert_eq!(k.srcs(), vec![Reg(6)]);
        let z = Instr::mov_wide(Op::Movz, Reg(6), 0xBEEF, 1);
        assert!(z.srcs().is_empty());
    }

    #[test]
    fn zero_register_write_discarded() {
        let i = Instr::alu_rr(Op::Add, Reg(31), Reg(1), Reg(2));
        assert_eq!(i.dest(Isa::Va64), None);
        // On VA32 register 31 is simply invalid, but dest() itself doesn't
        // validate; the decoder does.
        assert_eq!(i.dest(Isa::Va32), Some(Reg(31)));
    }

    #[test]
    fn sysreg_accessors() {
        let m = Instr::mfsr(Reg(3), SysReg::Cause);
        assert_eq!(m.sysreg(), Some(SysReg::Cause));
        let t = Instr::mtsr(SysReg::Epc, Reg(4));
        assert_eq!(t.sysreg(), Some(SysReg::Epc));
        assert_eq!(t.srcs(), vec![Reg(4)]);
    }
}
