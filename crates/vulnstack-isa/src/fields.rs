//! Classification of encoding bits for fault-propagation analysis.
//!
//! When a transient fault flips a bit of an *encoded instruction* (in the
//! L1 instruction cache, the unified L2, or the text segment), the paper's
//! fault propagation models classify the manifestation by which field the
//! bit belongs to:
//!
//! * opcode bits, and the offset bits of control-flow instructions, produce
//!   **Wrong Instruction (WI)** effects (a different instruction executes /
//!   control flow diverges);
//! * register-pointer and immediate bits produce **Wrong Operand or
//!   Immediate (WOI)** effects;
//! * ignored bits are architecturally masked.

use serde::{Deserialize, Serialize};

use crate::op::{Format, Op};

/// What a single bit of an encoded instruction encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitClass {
    /// Opcode bits, or control-transfer target bits: flipping one executes a
    /// different instruction or diverts control flow (WI).
    Instruction,
    /// Register pointer or data immediate bits: flipping one corrupts an
    /// operand (WOI).
    Operand,
    /// Ignored/reserved bits: flips are architecturally masked.
    Ignored,
}

/// Classifies bit `bit` (0 = LSB) of the instruction word `word`.
///
/// The word need not decode successfully: if the opcode byte is invalid the
/// whole word is classified as [`BitClass::Instruction`]-bearing only in its
/// opcode bits, with everything else [`BitClass::Ignored`] (an undefined
/// instruction's operand fields never reach execution).
pub fn classify_bit(word: u32, bit: u32) -> BitClass {
    debug_assert!(bit < 32);
    if bit >= 24 {
        return BitClass::Instruction;
    }
    let code = (word >> 24) as u8;
    let Some(op) = Op::from_code(code) else {
        return BitClass::Ignored;
    };
    match op.format() {
        Format::R => match bit {
            9..=23 => BitClass::Operand,
            _ => BitClass::Ignored,
        },
        Format::I | Format::Load | Format::Store => match bit {
            0..=23 => BitClass::Operand,
            _ => BitClass::Ignored,
        },
        // Branch target bits count as control flow (WI per the paper's
        // merged classification); the register comparison fields are
        // operands.
        Format::B => match bit {
            14..=23 => BitClass::Operand,
            0..=13 => BitClass::Instruction,
            _ => BitClass::Ignored,
        },
        Format::J => BitClass::Instruction,
        Format::Jr => match bit {
            14..=18 => BitClass::Operand,
            _ => BitClass::Ignored,
        },
        Format::M => match bit {
            1..=23 => BitClass::Operand,
            _ => BitClass::Ignored,
        },
        Format::Sys => BitClass::Ignored,
        Format::Mfsr | Format::Mtsr => match bit {
            14..=23 => BitClass::Operand,
            _ => BitClass::Ignored,
        },
    }
}

/// Returns the bit indices of `word` belonging to `class`.
pub fn bits_of_class(word: u32, class: BitClass) -> Vec<u32> {
    (0..32)
        .filter(|&b| classify_bit(word, b) == class)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::isa::Isa;
    use crate::reg::Reg;

    #[test]
    fn opcode_bits_are_instruction_class() {
        for bit in 24..32 {
            assert_eq!(classify_bit(0xdead_beef, bit), BitClass::Instruction);
        }
    }

    #[test]
    fn alu_imm_operands() {
        let w = Instr::alu_imm(Op::Addi, Reg(1), Reg(2), 5)
            .encode(Isa::Va64)
            .unwrap();
        assert_eq!(classify_bit(w, 0), BitClass::Operand); // imm LSB
        assert_eq!(classify_bit(w, 20), BitClass::Operand); // rd field
        assert_eq!(classify_bit(w, 25), BitClass::Instruction);
    }

    #[test]
    fn branch_target_bits_are_wi() {
        let w = Instr::branch(Op::Beq, Reg(1), Reg(2), 8)
            .encode(Isa::Va64)
            .unwrap();
        assert_eq!(classify_bit(w, 0), BitClass::Instruction); // offset
        assert_eq!(classify_bit(w, 13), BitClass::Instruction); // offset sign
        assert_eq!(classify_bit(w, 15), BitClass::Operand); // rs2 field
        assert_eq!(classify_bit(w, 20), BitClass::Operand); // rs1 field
    }

    #[test]
    fn jump_offset_is_wi() {
        let w = Instr::jump(Op::Jmp, 1024).encode(Isa::Va64).unwrap();
        for bit in 0..24 {
            assert_eq!(classify_bit(w, bit), BitClass::Instruction);
        }
    }

    #[test]
    fn r_format_low_bits_ignored() {
        let w = Instr::alu_rr(Op::Add, Reg(1), Reg(2), Reg(3))
            .encode(Isa::Va64)
            .unwrap();
        for bit in 0..9 {
            assert_eq!(classify_bit(w, bit), BitClass::Ignored);
        }
        assert_eq!(classify_bit(w, 9), BitClass::Operand);
    }

    #[test]
    fn sys_format_all_ignored_below_opcode() {
        let w = Instr::sys(Op::Syscall).encode(Isa::Va64).unwrap();
        for bit in 0..24 {
            assert_eq!(classify_bit(w, bit), BitClass::Ignored);
        }
    }

    #[test]
    fn invalid_opcode_operands_ignored() {
        let word = 0xFF00_1234; // opcode 0xFF is invalid
        assert_eq!(classify_bit(word, 3), BitClass::Ignored);
        assert_eq!(classify_bit(word, 30), BitClass::Instruction);
    }

    #[test]
    fn bits_of_class_partition() {
        let w = Instr::load(Op::Lw, Reg(1), Reg(2), 16)
            .encode(Isa::Va64)
            .unwrap();
        let n_i = bits_of_class(w, BitClass::Instruction).len();
        let n_o = bits_of_class(w, BitClass::Operand).len();
        let n_x = bits_of_class(w, BitClass::Ignored).len();
        assert_eq!(n_i + n_o + n_x, 32);
        assert_eq!(n_i, 8);
        assert_eq!(n_o, 24);
    }
}
