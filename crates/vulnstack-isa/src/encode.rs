//! Binary encoding and decoding of instructions.
//!
//! Layout (bit 31 is the MSB):
//!
//! ```text
//! format  31..24   23..19   18..14   13..9    8..0 / 13..0
//! R       opcode   rd       rs1      rs2      (ignored)
//! I/Load  opcode   rd       rs1      imm14 (signed)
//! Store   opcode   rdata    rbase    imm14 (signed)
//! B       opcode   rs1      rs2      imm14 (signed word offset)
//! J       opcode   imm24 (signed word offset)
//! Jr      opcode   (ign)    rs1      (ignored)
//! M       opcode   rd       sh[18:17] imm16[16:1]  (bit 0 ignored)
//! Sys     opcode   (ignored)
//! Mfsr    opcode   rd       sr       (ignored)
//! Mtsr    opcode   sr       rs1      (ignored)
//! ```
//!
//! Ignored bits decode as don't-care: a transient fault flipping one of them
//! is architecturally masked, mirroring reserved fields in real encodings.

use crate::bits::{field, fits_signed, insert, sext};
use crate::instr::Instr;
use crate::isa::Isa;
use crate::op::{Format, Op};
use crate::reg::Reg;
use crate::sysreg::SysReg;

/// Error returned when an [`Instr`] cannot be represented in the binary
/// encoding for the given ISA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The operation does not exist on the target ISA.
    OpInvalidForIsa { op: Op, isa: Isa },
    /// A register index is out of range for the target ISA.
    RegOutOfRange { reg: Reg, isa: Isa },
    /// The immediate does not fit its field.
    ImmOutOfRange { imm: i64, bits: u32 },
    /// Branch/jump byte offsets must be multiples of 4.
    MisalignedOffset { imm: i64 },
    /// `MOVZ`/`MOVK` shift must be 0..=3.
    ShiftOutOfRange { shift: u8 },
    /// `MFSR`/`MTSR` references an unknown system register.
    BadSysReg { index: u8 },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::OpInvalidForIsa { op, isa } => {
                write!(f, "operation {op} is not valid on {isa}")
            }
            EncodeError::RegOutOfRange { reg, isa } => {
                write!(f, "register {reg} out of range for {isa}")
            }
            EncodeError::ImmOutOfRange { imm, bits } => {
                write!(f, "immediate {imm} does not fit in {bits} bits")
            }
            EncodeError::MisalignedOffset { imm } => {
                write!(f, "control-flow offset {imm} is not a multiple of 4")
            }
            EncodeError::ShiftOutOfRange { shift } => {
                write!(f, "wide-move shift {shift} out of range (0..=3)")
            }
            EncodeError::BadSysReg { index } => write!(f, "unknown system register index {index}"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error returned when a 32-bit word does not decode to a valid instruction.
///
/// At execution time every variant manifests as an undefined-instruction
/// trap; the distinction is kept for fault-propagation diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte names no operation.
    BadOpcode { code: u8 },
    /// The operation is not available on this ISA.
    OpInvalidForIsa { code: u8 },
    /// A register field exceeds the ISA's register count.
    BadReg { index: u8 },
    /// A sysreg field names no system register.
    BadSysReg { index: u8 },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadOpcode { code } => write!(f, "invalid opcode {code:#04x}"),
            DecodeError::OpInvalidForIsa { code } => {
                write!(f, "opcode {code:#04x} not valid on this ISA")
            }
            DecodeError::BadReg { index } => write!(f, "register index {index} out of range"),
            DecodeError::BadSysReg { index } => write!(f, "system register index {index} invalid"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Instr {
    /// Encodes this instruction to its 32-bit binary form.
    ///
    /// # Errors
    ///
    /// Returns an [`EncodeError`] if a field is out of range or the
    /// operation does not exist on `isa`.
    pub fn encode(&self, isa: Isa) -> Result<u32, EncodeError> {
        if !self.op.valid_on(isa) {
            return Err(EncodeError::OpInvalidForIsa { op: self.op, isa });
        }
        let check_reg = |r: Reg| -> Result<u32, EncodeError> {
            if isa.reg_valid(r) {
                Ok(r.0 as u32)
            } else {
                Err(EncodeError::RegOutOfRange { reg: r, isa })
            }
        };
        let imm14 = |imm: i64| -> Result<u32, EncodeError> {
            if fits_signed(imm, 14) {
                Ok((imm as u32) & 0x3fff)
            } else {
                Err(EncodeError::ImmOutOfRange { imm, bits: 14 })
            }
        };
        let word_off = |imm: i64, bits: u32| -> Result<u32, EncodeError> {
            if imm % 4 != 0 {
                return Err(EncodeError::MisalignedOffset { imm });
            }
            let w = imm / 4;
            if fits_signed(w, bits) {
                Ok((w as u32) & ((1u32 << bits) - 1))
            } else {
                Err(EncodeError::ImmOutOfRange { imm, bits })
            }
        };

        let mut w = insert(0, 31, 24, self.op.code() as u32);
        match self.op.format() {
            Format::R => {
                w = insert(w, 23, 19, check_reg(self.rd)?);
                w = insert(w, 18, 14, check_reg(self.rs1)?);
                w = insert(w, 13, 9, check_reg(self.rs2)?);
            }
            Format::I | Format::Load | Format::Store => {
                w = insert(w, 23, 19, check_reg(self.rd)?);
                w = insert(w, 18, 14, check_reg(self.rs1)?);
                w = insert(w, 13, 0, imm14(self.imm)?);
            }
            Format::B => {
                w = insert(w, 23, 19, check_reg(self.rs1)?);
                w = insert(w, 18, 14, check_reg(self.rs2)?);
                w = insert(w, 13, 0, word_off(self.imm, 14)?);
            }
            Format::J => {
                w = insert(w, 23, 0, word_off(self.imm, 24)?);
            }
            Format::Jr => {
                w = insert(w, 18, 14, check_reg(self.rs1)?);
            }
            Format::M => {
                if self.shift > 3 {
                    return Err(EncodeError::ShiftOutOfRange { shift: self.shift });
                }
                if !(0..=0xffff).contains(&self.imm) {
                    return Err(EncodeError::ImmOutOfRange {
                        imm: self.imm,
                        bits: 16,
                    });
                }
                w = insert(w, 23, 19, check_reg(self.rd)?);
                w = insert(w, 18, 17, self.shift as u32);
                w = insert(w, 16, 1, self.imm as u32);
            }
            Format::Sys => {}
            Format::Mfsr => {
                w = insert(w, 23, 19, check_reg(self.rd)?);
                let sr = self.rs1.0;
                if SysReg::from_index(sr).is_none() {
                    return Err(EncodeError::BadSysReg { index: sr });
                }
                w = insert(w, 18, 14, sr as u32);
            }
            Format::Mtsr => {
                let sr = self.rd.0;
                if SysReg::from_index(sr).is_none() {
                    return Err(EncodeError::BadSysReg { index: sr });
                }
                w = insert(w, 23, 19, sr as u32);
                w = insert(w, 18, 14, check_reg(self.rs1)?);
            }
        }
        Ok(w)
    }

    /// Decodes a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the word is not a valid instruction on
    /// `isa`; the executing core turns this into an undefined-instruction
    /// trap.
    pub fn decode(word: u32, isa: Isa) -> Result<Instr, DecodeError> {
        let code = field(word, 31, 24) as u8;
        let op = Op::from_code(code).ok_or(DecodeError::BadOpcode { code })?;
        if !op.valid_on(isa) {
            return Err(DecodeError::OpInvalidForIsa { code });
        }
        let reg = |hi: u32, lo: u32| -> Result<Reg, DecodeError> {
            let idx = field(word, hi, lo) as u8;
            if idx < isa.num_regs() {
                Ok(Reg(idx))
            } else {
                Err(DecodeError::BadReg { index: idx })
            }
        };
        let imm14 = sext(field(word, 13, 0) as u64, 14);

        let mut i = Instr {
            op,
            rd: Reg(0),
            rs1: Reg(0),
            rs2: Reg(0),
            imm: 0,
            shift: 0,
        };
        match op.format() {
            Format::R => {
                i.rd = reg(23, 19)?;
                i.rs1 = reg(18, 14)?;
                i.rs2 = reg(13, 9)?;
            }
            Format::I | Format::Load | Format::Store => {
                i.rd = reg(23, 19)?;
                i.rs1 = reg(18, 14)?;
                i.imm = imm14;
            }
            Format::B => {
                i.rs1 = reg(23, 19)?;
                i.rs2 = reg(18, 14)?;
                i.imm = imm14 * 4;
            }
            Format::J => {
                i.imm = sext(field(word, 23, 0) as u64, 24) * 4;
            }
            Format::Jr => {
                i.rs1 = reg(18, 14)?;
            }
            Format::M => {
                i.rd = reg(23, 19)?;
                i.shift = field(word, 18, 17) as u8;
                i.imm = field(word, 16, 1) as i64;
            }
            Format::Sys => {}
            Format::Mfsr => {
                i.rd = reg(23, 19)?;
                let sr = field(word, 18, 14) as u8;
                SysReg::from_index(sr).ok_or(DecodeError::BadSysReg { index: sr })?;
                i.rs1 = Reg(sr);
            }
            Format::Mtsr => {
                let sr = field(word, 23, 19) as u8;
                SysReg::from_index(sr).ok_or(DecodeError::BadSysReg { index: sr })?;
                i.rd = Reg(sr);
                i.rs1 = reg(18, 14)?;
            }
        }
        Ok(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use proptest::prelude::*;

    fn roundtrip(i: Instr, isa: Isa) {
        let w = i
            .encode(isa)
            .unwrap_or_else(|e| panic!("encode {i:?} on {isa}: {e}"));
        let back = Instr::decode(w, isa).unwrap_or_else(|e| panic!("decode {w:#x} on {isa}: {e}"));
        assert_eq!(i, back, "roundtrip failed for {i:?} on {isa}");
    }

    #[test]
    fn roundtrip_all_formats() {
        for isa in [Isa::Va32, Isa::Va64] {
            let maxr = isa.num_regs() - 1;
            roundtrip(Instr::alu_rr(Op::Add, Reg(1), Reg(maxr), Reg(3)), isa);
            roundtrip(Instr::alu_imm(Op::Addi, Reg(2), Reg(0), -8192), isa);
            roundtrip(Instr::alu_imm(Op::Xori, Reg(2), Reg(5), 8191), isa);
            roundtrip(Instr::load(Op::Lw, Reg(4), Reg(5), -4), isa);
            roundtrip(Instr::store(Op::Sw, Reg(6), Reg(7), 1024), isa);
            roundtrip(Instr::branch(Op::Bne, Reg(1), Reg(2), -32768), isa);
            roundtrip(Instr::jump(Op::Call, 4 * ((1 << 23) - 1)), isa);
            roundtrip(Instr::jump(Op::Jmp, -4 * (1 << 23)), isa);
            roundtrip(Instr::jump_reg(Op::Jmpr, isa.lr()), isa);
            roundtrip(Instr::mov_wide(Op::Movz, Reg(9), 0xffff, 3), isa);
            roundtrip(Instr::mov_wide(Op::Movk, Reg(9), 0, 0), isa);
            roundtrip(Instr::sys(Op::Syscall), isa);
            roundtrip(Instr::sys(Op::Nop), isa);
            roundtrip(Instr::mfsr(Reg(3), SysReg::Epc), isa);
            roundtrip(Instr::mtsr(SysReg::Ksp, Reg(4)), isa);
        }
        roundtrip(Instr::load(Op::Ld, Reg(20), Reg(21), 8), Isa::Va64);
        roundtrip(Instr::store(Op::Sd, Reg(22), Reg(23), -8), Isa::Va64);
    }

    #[test]
    fn encode_rejects_out_of_range() {
        let i = Instr::alu_rr(Op::Add, Reg(20), Reg(1), Reg(2));
        assert!(matches!(
            i.encode(Isa::Va32),
            Err(EncodeError::RegOutOfRange { .. })
        ));
        assert!(i.encode(Isa::Va64).is_ok());

        let i = Instr::alu_imm(Op::Addi, Reg(1), Reg(2), 8192);
        assert!(matches!(
            i.encode(Isa::Va64),
            Err(EncodeError::ImmOutOfRange { .. })
        ));

        let i = Instr::branch(Op::Beq, Reg(1), Reg(2), 6);
        assert!(matches!(
            i.encode(Isa::Va64),
            Err(EncodeError::MisalignedOffset { .. })
        ));

        let i = Instr::load(Op::Ld, Reg(1), Reg(2), 0);
        assert!(matches!(
            i.encode(Isa::Va32),
            Err(EncodeError::OpInvalidForIsa { .. })
        ));

        let mut i = Instr::mov_wide(Op::Movz, Reg(1), 1, 0);
        i.shift = 4;
        assert!(matches!(
            i.encode(Isa::Va64),
            Err(EncodeError::ShiftOutOfRange { .. })
        ));
    }

    #[test]
    fn decode_rejects_invalid() {
        // Opcode 0x00 is reserved-invalid.
        assert!(matches!(
            Instr::decode(0x0000_0000, Isa::Va64),
            Err(DecodeError::BadOpcode { code: 0 })
        ));
        // LD on VA32.
        let w = Instr::load(Op::Ld, Reg(1), Reg(2), 0)
            .encode(Isa::Va64)
            .unwrap();
        assert!(matches!(
            Instr::decode(w, Isa::Va32),
            Err(DecodeError::OpInvalidForIsa { .. })
        ));
        // Register 31 is invalid on VA32: craft `add r16, r0, r0`.
        let w = crate::bits::insert(
            crate::bits::insert(0, 31, 24, Op::Add.code() as u32),
            23,
            19,
            16,
        );
        assert!(matches!(
            Instr::decode(w, Isa::Va32),
            Err(DecodeError::BadReg { index: 16 })
        ));
    }

    #[test]
    fn ignored_bits_are_dont_care() {
        let base = Instr::alu_rr(Op::Add, Reg(1), Reg(2), Reg(3))
            .encode(Isa::Va64)
            .unwrap();
        for bit in 0..9 {
            let flipped = base ^ (1 << bit);
            let d = Instr::decode(flipped, Isa::Va64).unwrap();
            assert_eq!(d, Instr::alu_rr(Op::Add, Reg(1), Reg(2), Reg(3)));
        }
    }

    #[test]
    fn branch_offsets_are_word_scaled() {
        let i = Instr::branch(Op::Beq, Reg(1), Reg(2), -64);
        let w = i.encode(Isa::Va64).unwrap();
        assert_eq!(field(w, 13, 0), (-16i32 as u32) & 0x3fff);
        assert_eq!(Instr::decode(w, Isa::Va64).unwrap().imm, -64);
    }

    proptest! {
        #[test]
        fn decode_never_panics(word in any::<u32>()) {
            let _ = Instr::decode(word, Isa::Va32);
            let _ = Instr::decode(word, Isa::Va64);
        }

        #[test]
        fn decode_encode_is_identity(word in any::<u32>()) {
            // Any word that decodes must re-encode to a word that decodes to
            // the same instruction (ignored bits may differ).
            for isa in [Isa::Va32, Isa::Va64] {
                if let Ok(i) = Instr::decode(word, isa) {
                    let w2 = i.encode(isa).unwrap();
                    prop_assert_eq!(Instr::decode(w2, isa).unwrap(), i);
                }
            }
        }

        #[test]
        fn rr_roundtrip(rd in 0u8..16, rs1 in 0u8..16, rs2 in 0u8..16) {
            let i = Instr::alu_rr(Op::Xor, Reg(rd), Reg(rs1), Reg(rs2));
            let w = i.encode(Isa::Va32).unwrap();
            prop_assert_eq!(Instr::decode(w, Isa::Va32).unwrap(), i);
        }

        #[test]
        fn imm_roundtrip(imm in -8192i64..8192) {
            let i = Instr::alu_imm(Op::Addi, Reg(1), Reg(2), imm);
            let w = i.encode(Isa::Va64).unwrap();
            prop_assert_eq!(Instr::decode(w, Isa::Va64).unwrap().imm, imm);
        }
    }
}

#[cfg(test)]
mod golden_vectors {
    use super::*;
    use crate::instr::Instr;
    use crate::op::Op;
    use crate::reg::Reg;
    use crate::sysreg::SysReg;

    /// Pinned binary encodings: any change to the instruction formats is a
    /// breaking change for saved images and must show up here.
    #[test]
    fn encodings_are_stable() {
        let cases: &[(Instr, u32)] = &[
            (Instr::alu_rr(Op::Add, Reg(1), Reg(2), Reg(3)), 0x0108_8600),
            (Instr::alu_imm(Op::Addi, Reg(4), Reg(5), -1), 0x1121_7FFF),
            (Instr::load(Op::Lw, Reg(6), Reg(7), 8), 0x2431_C008),
            (Instr::store(Op::Sw, Reg(8), Reg(9), -4), 0x2A42_7FFC),
            (Instr::branch(Op::Beq, Reg(1), Reg(2), 16), 0x3008_8004),
            (Instr::jump(Op::Call, -8), 0x38FF_FFFE),
            (Instr::jump_reg(Op::Jmpr, Reg(14)), 0x3B03_8000),
            (Instr::mov_wide(Op::Movz, Reg(3), 0xBEEF, 1), 0x1A1B_7DDE),
            (Instr::sys(Op::Syscall), 0x4000_0000),
            (Instr::sys(Op::Eret), 0x4100_0000),
            (Instr::mfsr(Reg(2), SysReg::Cause), 0x4410_4000),
            (Instr::mtsr(SysReg::Epc, Reg(3)), 0x4500_C000),
        ];
        for (i, want) in cases {
            let got = i.encode(Isa::Va32).unwrap_or_else(|e| panic!("{i}: {e}"));
            assert_eq!(got, *want, "{i} encoded {got:#010x}, pinned {want:#010x}");
        }
    }
}
