//! The standard calling convention and system-call ABI shared by the
//! compiler, the mini-kernel and the simulators.

use serde::{Deserialize, Serialize};

use crate::isa::Isa;
use crate::reg::Reg;

/// System calls provided by the mini-kernel.
///
/// The syscall number is passed in the ABI's syscall register (see
/// [`CallConv::syscall_num`]), arguments in the first argument registers,
/// and the result comes back in the first argument register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u64)]
pub enum Syscall {
    /// `exit(code)` — terminate the program.
    Exit = 1,
    /// `write(ptr, len)` — append `len` bytes at `ptr` to the program
    /// output stream (kernel copies them into the DMA-drained output
    /// accumulation region).
    Write = 2,
    /// `read(ptr, len) -> copied` — copy up to `len` bytes of remaining
    /// program input to `ptr`; returns the number of bytes copied.
    Read = 3,
    /// `brk(delta) -> old_break` — grow the heap by `delta` bytes and
    /// return the previous break address.
    Brk = 4,
    /// `detect(code)` — a software fault-tolerance check failed; terminate
    /// and record a Detected outcome.
    Detect = 5,
}

impl Syscall {
    /// Numeric syscall identifier.
    pub fn number(self) -> u64 {
        self as u64
    }

    /// Decodes a syscall number.
    pub fn from_number(n: u64) -> Option<Syscall> {
        Some(match n {
            1 => Syscall::Exit,
            2 => Syscall::Write,
            3 => Syscall::Read,
            4 => Syscall::Brk,
            5 => Syscall::Detect,
            _ => return None,
        })
    }
}

/// The calling convention for an ISA.
///
/// Argument registers are caller-saved; everything in `callee_saved` must be
/// preserved across calls. The syscall number register is distinct from the
/// argument registers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallConv {
    isa: Isa,
}

impl CallConv {
    /// The calling convention for `isa`.
    pub fn new(isa: Isa) -> CallConv {
        CallConv { isa }
    }

    /// The ISA this convention belongs to.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// Registers used to pass the first arguments (and return values in
    /// `arg(0)`).
    pub fn args(&self) -> Vec<Reg> {
        match self.isa {
            Isa::Va32 => (0..4).map(Reg).collect(),
            Isa::Va64 => (0..6).map(Reg).collect(),
        }
    }

    /// The i-th argument register.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the number of argument registers.
    pub fn arg(&self, i: usize) -> Reg {
        self.args()[i]
    }

    /// The return-value register.
    pub fn ret(&self) -> Reg {
        Reg(0)
    }

    /// The register carrying the syscall number.
    pub fn syscall_num(&self) -> Reg {
        match self.isa {
            Isa::Va32 => Reg(7),
            Isa::Va64 => Reg(8),
        }
    }

    /// Caller-saved (volatile) registers, excluding SP/LR.
    pub fn caller_saved(&self) -> Vec<Reg> {
        match self.isa {
            // r0..=r7: args + syscall + temps.
            Isa::Va32 => (0..8).map(Reg).collect(),
            // x0..=x15.
            Isa::Va64 => (0..16).map(Reg).collect(),
        }
    }

    /// Callee-saved (non-volatile) registers.
    pub fn callee_saved(&self) -> Vec<Reg> {
        match self.isa {
            // r8..=r12, r15 (r13=sp, r14=lr).
            Isa::Va32 => vec![Reg(8), Reg(9), Reg(10), Reg(11), Reg(12), Reg(15)],
            // x16..=x28 (x29=sp, x30=lr, x31=zero).
            Isa::Va64 => (16..29).map(Reg).collect(),
        }
    }

    /// All registers available to the register allocator (caller + callee
    /// saved; excludes SP, LR and the zero register).
    pub fn allocatable(&self) -> Vec<Reg> {
        let mut v = self.caller_saved();
        v.extend(self.callee_saved());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syscall_numbers_roundtrip() {
        for s in [
            Syscall::Exit,
            Syscall::Write,
            Syscall::Read,
            Syscall::Brk,
            Syscall::Detect,
        ] {
            assert_eq!(Syscall::from_number(s.number()), Some(s));
        }
        assert_eq!(Syscall::from_number(0), None);
        assert_eq!(Syscall::from_number(99), None);
    }

    #[test]
    fn conventions_do_not_overlap_special_regs() {
        for isa in [Isa::Va32, Isa::Va64] {
            let cc = CallConv::new(isa);
            for r in cc.allocatable() {
                assert_ne!(r, isa.sp(), "{isa}: sp is not allocatable");
                assert_ne!(r, isa.lr(), "{isa}: lr is not allocatable");
                if let Some(z) = isa.zero() {
                    assert_ne!(r, z, "{isa}: zero is not allocatable");
                }
                assert!(isa.reg_valid(r));
            }
        }
    }

    #[test]
    fn caller_and_callee_saved_are_disjoint() {
        for isa in [Isa::Va32, Isa::Va64] {
            let cc = CallConv::new(isa);
            for r in cc.caller_saved() {
                assert!(!cc.callee_saved().contains(&r), "{isa}: {r} in both sets");
            }
        }
    }

    #[test]
    fn args_are_caller_saved() {
        for isa in [Isa::Va32, Isa::Va64] {
            let cc = CallConv::new(isa);
            for a in cc.args() {
                assert!(cc.caller_saved().contains(&a));
            }
            assert!(cc.caller_saved().contains(&cc.syscall_num()));
        }
    }
}
