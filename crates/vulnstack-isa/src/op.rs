//! Operations and encoding formats.

use serde::{Deserialize, Serialize};

use crate::isa::Isa;

/// Encoding format of an instruction, determining how the 32-bit word is
/// split into fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Format {
    /// `op rd rs1 rs2` — register-register ALU.
    R,
    /// `op rd rs1 imm14` — register-immediate ALU.
    I,
    /// `op rd rs1(base) imm14` — load (`rd` is the destination).
    Load,
    /// `op rs2(data) rs1(base) imm14` — store (`rd` field holds the data
    /// source register).
    Store,
    /// `op rs1 rs2 imm14` — conditional branch, pc-relative word offset.
    B,
    /// `op imm24` — direct call/jump, pc-relative word offset.
    J,
    /// `op rs1` — indirect call/jump through a register.
    Jr,
    /// `op rd shift2 imm16` — wide-move constant materialisation.
    M,
    /// `op` only — `SYSCALL`, `ERET`, `HALT`, `NOP`.
    Sys,
    /// `op rd sr` — move from system register.
    Mfsr,
    /// `op sr rs1` — move to system register.
    Mtsr,
}

/// Machine operation.
///
/// The numeric discriminants are the opcode byte in the encoding (bits
/// 31:24). The opcode space is deliberately dense at the bottom so that
/// single-bit flips of an opcode frequently yield a *different valid*
/// instruction (Wrong Instruction) rather than always an undefined one —
/// mirroring how real ISA opcode spaces behave under transient faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Op {
    // Register-register ALU.
    Add = 0x01,
    Sub = 0x02,
    And = 0x03,
    Or = 0x04,
    Xor = 0x05,
    Sll = 0x06,
    Srl = 0x07,
    Sra = 0x08,
    Mul = 0x09,
    Mulh = 0x0A,
    Mulhu = 0x1C,
    Div = 0x0B,
    Divu = 0x0C,
    Rem = 0x0D,
    Remu = 0x0E,
    Slt = 0x0F,
    Sltu = 0x10,

    // Register-immediate ALU.
    Addi = 0x11,
    Andi = 0x12,
    Ori = 0x13,
    Xori = 0x14,
    Slli = 0x15,
    Srli = 0x16,
    Srai = 0x17,
    Slti = 0x18,
    Sltiu = 0x19,

    // Wide moves.
    Movz = 0x1A,
    Movk = 0x1B,

    // Loads.
    Lb = 0x20,
    Lbu = 0x21,
    Lh = 0x22,
    Lhu = 0x23,
    Lw = 0x24,
    Lwu = 0x25,
    Ld = 0x26,

    // Stores.
    Sb = 0x28,
    Sh = 0x29,
    Sw = 0x2A,
    Sd = 0x2B,

    // Branches.
    Beq = 0x30,
    Bne = 0x31,
    Blt = 0x32,
    Bge = 0x33,
    Bltu = 0x34,
    Bgeu = 0x35,

    // Calls and jumps.
    Call = 0x38,
    Jmp = 0x39,
    Callr = 0x3A,
    Jmpr = 0x3B,

    // System.
    Syscall = 0x40,
    Eret = 0x41,
    Halt = 0x42,
    Nop = 0x43,
    Mfsr = 0x44,
    Mtsr = 0x45,

    // 32-bit operation variants (VA64 only): operate on the low 32 bits of
    // the sources and sign-extend the 32-bit result to 64 bits, so that
    // 32-bit workload semantics are identical across both ISAs.
    Addw = 0x50,
    Subw = 0x51,
    Mulw = 0x52,
    Divw = 0x53,
    Divuw = 0x54,
    Remw = 0x55,
    Remuw = 0x56,
    Sllw = 0x57,
    Srlw = 0x58,
    Sraw = 0x59,
    Addiw = 0x5A,
    Slliw = 0x5B,
    Srliw = 0x5C,
    Sraiw = 0x5D,
}

impl Op {
    /// All operations, in opcode order.
    pub const ALL: &'static [Op] = &[
        Op::Add,
        Op::Sub,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Sll,
        Op::Srl,
        Op::Sra,
        Op::Mul,
        Op::Mulh,
        Op::Mulhu,
        Op::Div,
        Op::Divu,
        Op::Rem,
        Op::Remu,
        Op::Slt,
        Op::Sltu,
        Op::Addi,
        Op::Andi,
        Op::Ori,
        Op::Xori,
        Op::Slli,
        Op::Srli,
        Op::Srai,
        Op::Slti,
        Op::Sltiu,
        Op::Movz,
        Op::Movk,
        Op::Lb,
        Op::Lbu,
        Op::Lh,
        Op::Lhu,
        Op::Lw,
        Op::Lwu,
        Op::Ld,
        Op::Sb,
        Op::Sh,
        Op::Sw,
        Op::Sd,
        Op::Beq,
        Op::Bne,
        Op::Blt,
        Op::Bge,
        Op::Bltu,
        Op::Bgeu,
        Op::Call,
        Op::Jmp,
        Op::Callr,
        Op::Jmpr,
        Op::Syscall,
        Op::Eret,
        Op::Halt,
        Op::Nop,
        Op::Mfsr,
        Op::Mtsr,
        Op::Addw,
        Op::Subw,
        Op::Mulw,
        Op::Divw,
        Op::Divuw,
        Op::Remw,
        Op::Remuw,
        Op::Sllw,
        Op::Srlw,
        Op::Sraw,
        Op::Addiw,
        Op::Slliw,
        Op::Srliw,
        Op::Sraiw,
    ];

    /// Decodes an opcode byte, if it names a valid operation.
    pub fn from_code(code: u8) -> Option<Op> {
        Op::ALL.iter().copied().find(|op| *op as u8 == code)
    }

    /// The opcode byte (bits 31:24 of the encoding).
    pub fn code(self) -> u8 {
        self as u8
    }

    /// The encoding format of this operation.
    pub fn format(self) -> Format {
        use Op::*;
        match self {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Mul | Mulh | Mulhu | Div | Divu
            | Rem | Remu | Slt | Sltu | Addw | Subw | Mulw | Divw | Divuw | Remw | Remuw | Sllw
            | Srlw | Sraw => Format::R,
            Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Sltiu | Addiw | Slliw
            | Srliw | Sraiw => Format::I,
            Movz | Movk => Format::M,
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld => Format::Load,
            Sb | Sh | Sw | Sd => Format::Store,
            Beq | Bne | Blt | Bge | Bltu | Bgeu => Format::B,
            Call | Jmp => Format::J,
            Callr | Jmpr => Format::Jr,
            Syscall | Eret | Halt | Nop => Format::Sys,
            Mfsr => Format::Mfsr,
            Mtsr => Format::Mtsr,
        }
    }

    /// True if this operation is valid on `isa`.
    ///
    /// `Lwu`, `Ld` and `Sd` only exist on the 64-bit VA64.
    pub fn valid_on(self, isa: Isa) -> bool {
        use Op::*;
        match self {
            Lwu | Ld | Sd | Addw | Subw | Mulw | Divw | Divuw | Remw | Remuw | Sllw | Srlw
            | Sraw | Addiw | Slliw | Srliw | Sraiw => isa == Isa::Va64,
            _ => true,
        }
    }

    /// True for loads.
    pub fn is_load(self) -> bool {
        matches!(self.format(), Format::Load)
    }

    /// True for stores.
    pub fn is_store(self) -> bool {
        matches!(self.format(), Format::Store)
    }

    /// True for any memory operation.
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// True for control-flow operations (branches, calls, jumps, syscall,
    /// eret).
    pub fn is_control(self) -> bool {
        matches!(
            self.format(),
            Format::B | Format::J | Format::Jr | Format::Sys
        ) && self != Op::Nop
            && self != Op::Halt
    }

    /// True for conditional branches.
    pub fn is_branch(self) -> bool {
        matches!(self.format(), Format::B)
    }

    /// Memory access size in bytes for loads/stores, 0 otherwise.
    pub fn access_bytes(self) -> u64 {
        match self {
            Op::Lb | Op::Lbu | Op::Sb => 1,
            Op::Lh | Op::Lhu | Op::Sh => 2,
            Op::Lw | Op::Lwu | Op::Sw => 4,
            Op::Ld | Op::Sd => 8,
            _ => 0,
        }
    }

    /// Execution latency in cycles on the out-of-order core's functional
    /// units (memory ops add cache latency on top of address generation).
    pub fn exec_latency(self) -> u32 {
        match self {
            Op::Mul | Op::Mulh | Op::Mulhu | Op::Mulw => 3,
            Op::Div
            | Op::Divu
            | Op::Rem
            | Op::Remu
            | Op::Divw
            | Op::Divuw
            | Op::Remw
            | Op::Remuw => 12,
            _ => 1,
        }
    }

    /// Lowercase mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Mul => "mul",
            Mulh => "mulh",
            Mulhu => "mulhu",
            Div => "div",
            Divu => "divu",
            Rem => "rem",
            Remu => "remu",
            Slt => "slt",
            Sltu => "sltu",
            Addi => "addi",
            Andi => "andi",
            Ori => "ori",
            Xori => "xori",
            Slli => "slli",
            Srli => "srli",
            Srai => "srai",
            Slti => "slti",
            Sltiu => "sltiu",
            Movz => "movz",
            Movk => "movk",
            Lb => "lb",
            Lbu => "lbu",
            Lh => "lh",
            Lhu => "lhu",
            Lw => "lw",
            Lwu => "lwu",
            Ld => "ld",
            Sb => "sb",
            Sh => "sh",
            Sw => "sw",
            Sd => "sd",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bltu => "bltu",
            Bgeu => "bgeu",
            Call => "call",
            Jmp => "jmp",
            Callr => "callr",
            Jmpr => "jmpr",
            Syscall => "syscall",
            Eret => "eret",
            Halt => "halt",
            Nop => "nop",
            Mfsr => "mfsr",
            Mtsr => "mtsr",
            Addw => "addw",
            Subw => "subw",
            Mulw => "mulw",
            Divw => "divw",
            Divuw => "divuw",
            Remw => "remw",
            Remuw => "remuw",
            Sllw => "sllw",
            Srlw => "srlw",
            Sraw => "sraw",
            Addiw => "addiw",
            Slliw => "slliw",
            Srliw => "srliw",
            Sraiw => "sraiw",
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for &op in Op::ALL {
            assert_eq!(Op::from_code(op.code()), Some(op), "{op:?}");
        }
    }

    #[test]
    fn codes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Op::ALL {
            assert!(seen.insert(op.code()), "duplicate opcode {:#x}", op.code());
        }
    }

    #[test]
    fn invalid_codes_decode_to_none() {
        assert_eq!(Op::from_code(0x00), None);
        assert_eq!(Op::from_code(0xFF), None);
        assert_eq!(Op::from_code(0x27), None);
    }

    #[test]
    fn isa_validity() {
        assert!(!Op::Ld.valid_on(Isa::Va32));
        assert!(!Op::Sd.valid_on(Isa::Va32));
        assert!(!Op::Lwu.valid_on(Isa::Va32));
        assert!(Op::Ld.valid_on(Isa::Va64));
        assert!(Op::Lw.valid_on(Isa::Va32));
    }

    #[test]
    fn classification() {
        assert!(Op::Lw.is_load());
        assert!(Op::Sw.is_store());
        assert!(Op::Beq.is_branch());
        assert!(Op::Call.is_control());
        assert!(Op::Syscall.is_control());
        assert!(!Op::Nop.is_control());
        assert!(!Op::Add.is_mem());
        assert_eq!(Op::Lh.access_bytes(), 2);
        assert_eq!(Op::Sd.access_bytes(), 8);
    }

    #[test]
    fn latencies() {
        assert_eq!(Op::Add.exec_latency(), 1);
        assert_eq!(Op::Mul.exec_latency(), 3);
        assert_eq!(Op::Div.exec_latency(), 12);
    }
}
