//! Property test: encode → decode → re-encode is the identity for every
//! instruction format on both ISAs. This is the contract the whole stack
//! leans on — the compiler emits words the simulators decode, and the
//! static analyzer (`vulnstack-analyze`) re-derives program structure from
//! nothing but those words.

use proptest::prelude::*;
use vulnstack_isa::op::Format;
use vulnstack_isa::{Instr, Isa, Op, SysReg};

/// Builds a canonical instruction for `op` from raw generator values,
/// clamping every field into its encodable range. Unused fields stay at
/// their `Instr` defaults so decode must reproduce the value exactly.
fn make_instr(op: Op, isa: Isa, rd: u8, rs1: u8, rs2: u8, imm_raw: u64, shift: u8) -> Instr {
    let nregs = isa.num_regs();
    let r = |x: u8| vulnstack_isa::Reg(x % nregs);
    let sr = |x: u8| vulnstack_isa::Reg(x % SysReg::COUNT as u8);
    let imm14 = (imm_raw % (1 << 14)) as i64 - (1 << 13);
    match op.format() {
        Format::R => Instr::alu_rr(op, r(rd), r(rs1), r(rs2)),
        Format::I => Instr::alu_imm(op, r(rd), r(rs1), imm14),
        Format::Load => Instr::load(op, r(rd), r(rs1), imm14),
        Format::Store => Instr::store(op, r(rd), r(rs1), imm14),
        Format::B => Instr::branch(op, r(rs1), r(rs2), imm14 * 4),
        Format::J => {
            let words = (imm_raw % (1 << 24)) as i64 - (1 << 23);
            Instr::jump(op, words * 4)
        }
        Format::Jr => Instr::jump_reg(op, r(rs1)),
        Format::M => Instr::mov_wide(op, r(rd), (imm_raw % (1 << 16)) as u16, shift % 4),
        Format::Sys => Instr::sys(op),
        Format::Mfsr => Instr::mfsr(r(rd), SysReg::from_index(sr(rs1).0).unwrap()),
        Format::Mtsr => Instr::mtsr(SysReg::from_index(sr(rd).0).unwrap(), r(rs1)),
    }
}

fn roundtrip(instr: Instr, isa: Isa) -> Result<(), TestCaseError> {
    let word = match instr.encode(isa) {
        Ok(w) => w,
        Err(e) => return Err(TestCaseError::fail(format!("{instr:?} on {isa:?}: {e:?}"))),
    };
    let decoded = match Instr::decode(word, isa) {
        Ok(d) => d,
        Err(e) => {
            return Err(TestCaseError::fail(format!(
                "{instr:?} encoded to {word:#010x} but does not decode: {e:?}"
            )))
        }
    };
    prop_assert_eq!(decoded, instr, "decode changed the instruction");
    let word2 = decoded
        .encode(isa)
        .map_err(|e| TestCaseError::fail(format!("re-encode failed: {e:?}")))?;
    prop_assert_eq!(word2, word, "re-encode changed the word");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    #[test]
    fn encode_decode_reencode_roundtrips(
        op_idx in 0usize..Op::ALL.len(),
        rd in 0u8..32,
        rs1 in 0u8..32,
        rs2 in 0u8..32,
        imm_raw in any::<u64>(),
        shift in 0u8..4,
    ) {
        let op = Op::ALL[op_idx];
        for isa in [Isa::Va32, Isa::Va64] {
            if !op.valid_on(isa) {
                continue;
            }
            let instr = make_instr(op, isa, rd, rs1, rs2, imm_raw, shift);
            roundtrip(instr, isa)?;
        }
    }
}

/// Exhaustive companion to the property: every op (hence every format) on
/// both ISAs round-trips at least once with boundary immediates.
#[test]
fn every_format_roundtrips_on_both_isas() {
    let mut formats_seen = std::collections::HashSet::new();
    for &op in Op::ALL {
        for isa in [Isa::Va32, Isa::Va64] {
            if !op.valid_on(isa) {
                continue;
            }
            for imm_raw in [0u64, 1, (1 << 13) - 1, (1 << 14) - 1, u64::MAX] {
                let instr = make_instr(op, isa, 1, 2, 3, imm_raw, 1);
                roundtrip(instr, isa).unwrap();
            }
            formats_seen.insert(op.format());
        }
    }
    // All eleven formats must have been exercised.
    assert_eq!(formats_seen.len(), 11, "{formats_seen:?}");
}
