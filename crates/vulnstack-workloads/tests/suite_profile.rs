//! Regression guards on the workload suite's dynamic profile: the
//! vulnerability campaigns assume workloads of a certain scale and
//! diversity; these tests pin the envelope without over-fitting exact
//! counts.

use std::collections::HashSet;

use vulnstack_vir::interp::{Interpreter, RunStatus};
use vulnstack_vir::VInstr;
use vulnstack_workloads::WorkloadId;

#[test]
fn suite_spans_diverse_dynamic_lengths() {
    let mut lengths = Vec::new();
    for id in WorkloadId::ALL {
        let w = id.build();
        let out = Interpreter::new(&w.module)
            .with_input(w.input.clone())
            .run()
            .unwrap();
        assert_eq!(out.status, RunStatus::Exited(0), "{id}");
        lengths.push((id, out.dyn_instrs));
    }
    let min = lengths.iter().map(|(_, n)| *n).min().unwrap();
    let max = lengths.iter().map(|(_, n)| *n).max().unwrap();
    assert!(max >= 2 * min, "suite too uniform: {lengths:?}");
}

#[test]
fn workloads_exercise_distinct_instruction_mixes() {
    // Count static ops per category; the suite must contain both
    // multiply-heavy and logic-heavy members (the paper leans on workload
    // diversity to show FPM variation).
    let mut profiles = Vec::new();
    for id in WorkloadId::ALL {
        let w = id.build();
        let mut mul = 0usize;
        let mut logic = 0usize;
        let mut mem = 0usize;
        for f in &w.module.functions {
            for (_, _, ins) in f.iter_instrs() {
                match ins {
                    VInstr::Bin { op, .. } => match op {
                        vulnstack_vir::BinOp::Mul
                        | vulnstack_vir::BinOp::MulHS
                        | vulnstack_vir::BinOp::MulHU => mul += 1,
                        vulnstack_vir::BinOp::And
                        | vulnstack_vir::BinOp::Or
                        | vulnstack_vir::BinOp::Xor
                        | vulnstack_vir::BinOp::Shl
                        | vulnstack_vir::BinOp::ShrL
                        | vulnstack_vir::BinOp::ShrA => logic += 1,
                        _ => {}
                    },
                    VInstr::Load { .. } | VInstr::Store { .. } => mem += 1,
                    _ => {}
                }
            }
        }
        profiles.push((id, mul, logic, mem));
    }
    assert!(
        profiles.iter().any(|&(_, mul, _, _)| mul >= 10),
        "no multiply-heavy workload"
    );
    assert!(
        profiles.iter().any(|&(_, _, logic, _)| logic >= 40),
        "no logic-heavy workload"
    );
    assert!(
        profiles.iter().all(|&(_, _, _, mem)| mem >= 4),
        "every workload touches memory"
    );
}

#[test]
fn workloads_use_syscalls_consistently() {
    // Input-consuming workloads must read; every workload must write
    // output and exit.
    let readers: HashSet<WorkloadId> = [WorkloadId::Sha, WorkloadId::Crc32, WorkloadId::Djpeg]
        .into_iter()
        .collect();
    for id in WorkloadId::ALL {
        let w = id.build();
        let mut has_read = false;
        let mut has_write = false;
        let mut has_exit = false;
        for f in &w.module.functions {
            for (_, _, ins) in f.iter_instrs() {
                if let VInstr::Syscall { sc, .. } = ins {
                    match sc {
                        vulnstack_isa::Syscall::Read => has_read = true,
                        vulnstack_isa::Syscall::Write => has_write = true,
                        vulnstack_isa::Syscall::Exit => has_exit = true,
                        _ => {}
                    }
                }
            }
        }
        assert!(has_write && has_exit, "{id}: must write output and exit");
        assert_eq!(
            has_read,
            readers.contains(&id),
            "{id}: read() usage changed"
        );
        assert_eq!(
            !w.input.is_empty(),
            readers.contains(&id),
            "{id}: input mismatch"
        );
    }
}

#[test]
fn expected_outputs_are_incompressible_enough() {
    // SDC detection compares outputs byte-for-byte; outputs that are
    // almost all zeros would under-detect corruption. Require a minimum
    // distinct-byte diversity for the larger outputs.
    for id in WorkloadId::ALL {
        let w = id.build();
        if w.expected_output.len() < 64 {
            continue;
        }
        let distinct: HashSet<u8> = w.expected_output.iter().copied().collect();
        // corner's response map is quantised to a handful of levels; the
        // floor is correspondingly low.
        assert!(
            distinct.len() >= 4,
            "{id}: output too uniform ({} distinct)",
            distinct.len()
        );
    }
}
