//! `cjpeg` — DCT-based image compression of a 24×24 8-bit image: per-8×8
//! block integer DCT, quantisation, zigzag scan and run-length encoding.

use vulnstack_vir::{FuncBuilder, ModuleBuilder, VReg};

use crate::util::{dct_table, elem_addr, input_bytes, QUANT_TABLE, ZIGZAG};
use crate::{Workload, WorkloadId};

/// Image edge length (3×3 grid of 8×8 blocks).
pub const DIM: usize = 24;
const SEED: u32 = 0xC19E_6024;
/// Worst-case output: 64 coefficient triples + end marker per block.
const OUT_CAP: usize = 9 * (64 * 3 + 1);

/// Host-side compressor (also the input generator for `djpeg`).
pub(crate) fn compress(img: &[u8]) -> Vec<u8> {
    let t = dct_table();
    let mut out = Vec::new();
    for by in 0..3 {
        for bx in 0..3 {
            let mut s = [[0i32; 8]; 8];
            for (y, row) in s.iter_mut().enumerate() {
                for (x, v) in row.iter_mut().enumerate() {
                    *v = img[(by * 8 + y) * DIM + bx * 8 + x] as i32 - 128;
                }
            }
            // Separable forward DCT with the scaling documented in
            // DESIGN.md: >>8 after the row pass, >>10 after the column
            // pass.
            let mut t1 = [[0i32; 8]; 8];
            for v in 0..8 {
                for x in 0..8 {
                    let mut acc = 0i32;
                    for (y, row) in s.iter().enumerate() {
                        acc = acc.wrapping_add(row[x].wrapping_mul(t[v * 8 + y]));
                    }
                    t1[v][x] = acc >> 8;
                }
            }
            let mut fq = [0i32; 64];
            for v in 0..8 {
                for u in 0..8 {
                    let mut acc = 0i32;
                    for x in 0..8 {
                        acc = acc.wrapping_add(t1[v][x].wrapping_mul(t[u * 8 + x]));
                    }
                    fq[v * 8 + u] = (acc >> 10) / QUANT_TABLE[v * 8 + u];
                }
            }
            let mut run = 0u8;
            for &zz in ZIGZAG.iter() {
                let c = fq[zz];
                if c == 0 {
                    run = run.wrapping_add(1);
                } else {
                    out.push(run);
                    out.extend_from_slice(&(c as i16).to_le_bytes());
                    run = 0;
                }
            }
            out.push(0xFF);
        }
    }
    out
}

/// Emits the inner product `Σ_i mem32[ap + 4*stride_a*i + off_a] *
/// mem32[bp + 4*i + off_b]` unrolled over `i in 0..8`, matching the host
/// model's wrapping arithmetic.
fn emit_dot8(f: &mut FuncBuilder, ap: VReg, a_stride_words: i32, bp: VReg) -> VReg {
    let acc = f.fresh();
    f.set_c(acc, 0);
    for i in 0..8i32 {
        let av = f.load32(ap, 4 * a_stride_words * i);
        let bv = f.load32(bp, 4 * i);
        let prod = f.mul(av, bv);
        let s = f.add(acc, prod);
        f.set(acc, s);
    }
    acc
}

/// Builds the workload.
pub fn build() -> Workload {
    let img = input_bytes(SEED, DIM * DIM);
    let expected_output = compress(&img);
    let t = dct_table();

    let mut mb = ModuleBuilder::new("cjpeg");
    let gimg = mb.global("img", img.clone(), 4);
    let gt = mb.global_words("dct", &t);
    let gq = mb.global_words("quant", &QUANT_TABLE);
    let zz_words: Vec<i32> = ZIGZAG.iter().map(|&z| z as i32).collect();
    let gzz = mb.global_words("zigzag", &zz_words);
    let gout = mb.global_zeroed("out", OUT_CAP, 4);

    let mut f = mb.function("main", 0);
    let imgp = f.global_addr(gimg);
    let tp = f.global_addr(gt);
    let qp = f.global_addr(gq);
    let zzp = f.global_addr(gzz);
    let outp = f.global_addr(gout);

    let s_slot = f.stack_slot(64 * 4, 4); // spatial block, column-major rows
    let t1_slot = f.stack_slot(64 * 4, 4);
    let fq_slot = f.stack_slot(64 * 4, 4);
    let sp = f.slot_addr(s_slot);
    let t1p = f.slot_addr(t1_slot);
    let fqp = f.slot_addr(fq_slot);

    let pos = f.fresh();
    f.set_c(pos, 0);

    f.for_range(0, 3, |f, by| {
        f.for_range(0, 3, |f, bx| {
            // Load the block, centred at 0: s[y*8+x] = img[..] - 128.
            let rowbase = f.mul(by, (8 * DIM) as i32);
            let colbase = f.shl(bx, 3);
            let blkbase = f.add(rowbase, colbase);
            f.for_range(0, 8, |f, y| {
                let yoff = f.mul(y, DIM as i32);
                let rowp0 = f.add(blkbase, yoff);
                let srcrow = f.add(imgp, rowp0);
                let dstrow_idx = f.shl(y, 3);
                let dstrow = elem_addr(f, sp, dstrow_idx, 2);
                for x in 0..8i32 {
                    let px = f.load8u(srcrow, x);
                    let centred = f.sub(px, 128);
                    f.store32(centred, dstrow, 4 * x);
                }
            });
            // Row pass: t1[v*8+x] = (Σ_y s[y*8+x] * T[v*8+y]) >> 8.
            f.for_range(0, 8, |f, v| {
                let trow_idx = f.shl(v, 3);
                let trow = elem_addr(f, tp, trow_idx, 2);
                let dstrow = elem_addr(f, t1p, trow_idx, 2);
                for x in 0..8i32 {
                    let col0 = f.add(sp, 4 * x);
                    let acc = emit_dot8(f, col0, 8, trow);
                    let sh = f.shra(acc, 8);
                    f.store32(sh, dstrow, 4 * x);
                }
            });
            // Column pass + quantisation:
            // fq[v*8+u] = ((Σ_x t1[v*8+x] * T[u*8+x]) >> 10) / Q[v*8+u].
            f.for_range(0, 8, |f, v| {
                let vrow_idx = f.shl(v, 3);
                let t1row = elem_addr(f, t1p, vrow_idx, 2);
                f.for_range(0, 8, |f, u| {
                    let urow_idx = f.shl(u, 3);
                    let turow = elem_addr(f, tp, urow_idx, 2);
                    let acc = emit_dot8(f, t1row, 1, turow);
                    let fval = f.shra(acc, 10);
                    let qidx = f.add(vrow_idx, u);
                    let qe = elem_addr(f, qp, qidx, 2);
                    let qv = f.load32(qe, 0);
                    let coef = f.divs(fval, qv);
                    let dst = elem_addr(f, fqp, qidx, 2);
                    f.store32(coef, dst, 0);
                });
            });
            // Zigzag + RLE.
            let run = f.fresh();
            f.set_c(run, 0);
            f.for_range(0, 64, |f, z| {
                let zp = elem_addr(f, zzp, z, 2);
                let zi = f.load32(zp, 0);
                let cp = elem_addr(f, fqp, zi, 2);
                let c = f.load32(cp, 0);
                let zero = f.eq(c, 0);
                f.if_else(
                    zero,
                    |f| {
                        let r2 = f.add(run, 1);
                        f.set(run, r2);
                    },
                    |f| {
                        let dst = f.add(outp, pos);
                        f.store8(run, dst, 0);
                        f.store8(c, dst, 1);
                        let hi = f.shra(c, 8);
                        f.store8(hi, dst, 2);
                        let p2 = f.add(pos, 3);
                        f.set(pos, p2);
                        f.set_c(run, 0);
                    },
                );
            });
            // End-of-block marker.
            let dst = f.add(outp, pos);
            f.store8(0xFF, dst, 0);
            let p2 = f.add(pos, 1);
            f.set(pos, p2);
        });
    });

    f.sys_write(outp, pos);
    f.sys_exit(0);
    f.ret(None);
    mb.finish_function(f);

    Workload {
        id: WorkloadId::Cjpeg,
        module: mb.finish().expect("cjpeg module verifies"),
        input: Vec::new(),
        expected_output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_image_compresses_to_dc_only() {
        // A flat image has one DC coefficient per block and nothing else.
        let flat = vec![200u8; DIM * DIM];
        let out = compress(&flat);
        // Per block: one triple (run=0, dc) + end marker = 4 bytes.
        assert_eq!(out.len(), 9 * 4);
        assert_eq!(out[0], 0); // zero run before DC
        assert_eq!(out[3], 0xFF); // end marker
    }

    #[test]
    fn compressed_stream_is_smaller_than_raw() {
        let img = input_bytes(SEED, DIM * DIM);
        let out = compress(&img);
        assert!(out.len() <= OUT_CAP);
        assert!(!out.is_empty());
    }

    #[test]
    fn interpreter_matches_golden() {
        let w = build();
        let out = vulnstack_vir::interp::Interpreter::new(&w.module)
            .run()
            .unwrap();
        assert_eq!(out.output, w.expected_output);
    }
}
