//! `corner` — SUSAN-style corner response over a 48×48 8-bit image.
//!
//! For every interior pixel, count the 8-neighbours whose brightness is
//! within a threshold of the centre (the USAN area); pixels with a small
//! USAN get a positive corner response.

use vulnstack_vir::ModuleBuilder;

use crate::util::{abs_diff, input_bytes};
use crate::{Workload, WorkloadId};

/// Image edge length.
pub const DIM: usize = 48;
/// Brightness similarity threshold.
const T: i32 = 20;
/// Geometric threshold: responses fire when the USAN is smaller than this.
const G: i32 = 5;
const SEED: u32 = 0xC04E_4012;

fn golden(img: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; DIM * DIM];
    for y in 1..DIM - 1 {
        for x in 1..DIM - 1 {
            let c = img[y * DIM + x] as i32;
            let mut n = 0i32;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    if dy == 0 && dx == 0 {
                        continue;
                    }
                    let v = img[((y as i32 + dy) as usize) * DIM + (x as i32 + dx) as usize] as i32;
                    if (v - c).abs() <= T {
                        n += 1;
                    }
                }
            }
            out[y * DIM + x] = if n < G { ((G - n) * 10) as u8 } else { 0 };
        }
    }
    out
}

/// Builds the workload.
pub fn build() -> Workload {
    let img = input_bytes(SEED, DIM * DIM);
    let expected_output = golden(&img);

    let mut mb = ModuleBuilder::new("corner");
    let gin = mb.global("img", img.clone(), 4);
    let gout = mb.global_zeroed("resp", DIM * DIM, 4);

    let mut f = mb.function("main", 0);
    let inp = f.global_addr(gin);
    let outp = f.global_addr(gout);

    f.for_range(1, (DIM - 1) as i32, |f, y| {
        f.for_range(1, (DIM - 1) as i32, |f, x| {
            let row = f.mul(y, DIM as i32);
            let center = f.add(row, x);
            let cp = f.add(inp, center);
            let c = f.load8u(cp, 0);
            let n = f.fresh();
            f.set_c(n, 0);
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    if dy == 0 && dx == 0 {
                        continue;
                    }
                    let off = dy * DIM as i32 + dx;
                    let idx = f.add(center, off);
                    let p = f.add(inp, idx);
                    let v = f.load8u(p, 0);
                    let d = abs_diff(f, v, c);
                    let sim = f.cmp(vulnstack_vir::CmpPred::SLe, d, T);
                    let n2 = f.add(n, sim);
                    f.set(n, n2);
                }
            }
            let small = f.slt(n, G);
            let diff = f.sub(G, n);
            let resp = f.mul(diff, 10);
            let val = f.select(small, resp, 0);
            let dp = f.add(outp, center);
            f.store8(val, dp, 0);
        });
    });

    f.sys_write(outp, (DIM * DIM) as i32);
    f.sys_exit(0);
    f.ret(None);
    mb.finish_function(f);

    Workload {
        id: WorkloadId::Corner,
        module: mb.finish().expect("corner module verifies"),
        input: Vec::new(),
        expected_output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_image_has_no_corners() {
        let flat = vec![100u8; DIM * DIM];
        assert!(golden(&flat).iter().all(|&v| v == 0));
    }

    #[test]
    fn isolated_bright_pixel_is_a_corner() {
        let mut img = vec![10u8; DIM * DIM];
        img[5 * DIM + 5] = 200;
        let out = golden(&img);
        // The bright pixel has zero similar neighbours -> response (G-0)*10.
        assert_eq!(out[5 * DIM + 5], (G * 10) as u8);
    }

    #[test]
    fn interpreter_matches_golden() {
        let w = build();
        let out = vulnstack_vir::interp::Interpreter::new(&w.module)
            .run()
            .unwrap();
        assert_eq!(out.output, w.expected_output);
    }
}
