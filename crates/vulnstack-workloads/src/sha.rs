//! `sha` — SHA-1 over a 2 KiB input obtained through the `read` syscall.
//!
//! Dataflow-heavy with long dependency chains and wide fan-in per round;
//! the paper's case-study benchmark whose SVF/PVF looks SDC-dominated while
//! its true AVF is crash-dominated.

use vulnstack_vir::{ModuleBuilder, VReg};

use crate::util::{elem_addr, input_bytes, rotl_const};
use crate::{Workload, WorkloadId};

const LEN: usize = 2048;
const SEED: u32 = 0x5AA1_2017;
/// Message + 0x80 pad + zero pad + 8-byte big-endian bit length.
const PADDED: usize = LEN + 64;

/// Host-side SHA-1 (reference model).
fn golden(data: &[u8]) -> Vec<u8> {
    let mut msg = data.to_vec();
    let bitlen = (data.len() as u64) * 8;
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bitlen.to_be_bytes());

    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];
    for chunk in msg.chunks_exact(64) {
        let mut w = [0u32; 80];
        for t in 0..16 {
            w[t] = u32::from_be_bytes([
                chunk[4 * t],
                chunk[4 * t + 1],
                chunk[4 * t + 2],
                chunk[4 * t + 3],
            ]);
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    h.iter().flat_map(|x| x.to_be_bytes()).collect()
}

/// Builds the workload.
pub fn build() -> Workload {
    let input = input_bytes(SEED, LEN);
    let expected_output = golden(&input);

    let mut mb = ModuleBuilder::new("sha");
    let msg = mb.global_zeroed("msg", PADDED, 4);
    let digest = mb.global_zeroed("digest", 20, 4);

    let mut f = mb.function("main", 0);
    let msgp = f.global_addr(msg);
    f.sys_read(msgp, LEN as i32);
    // Padding: 0x80, zeros (already zero), 64-bit big-endian bit length.
    f.store8(0x80, msgp, LEN as i32);
    let bitlen = (LEN * 8) as i32;
    // High 4 bytes of the length are zero; store the low word big-endian.
    f.store8((bitlen >> 24) & 0xff, msgp, (PADDED - 4) as i32);
    f.store8((bitlen >> 16) & 0xff, msgp, (PADDED - 3) as i32);
    f.store8((bitlen >> 8) & 0xff, msgp, (PADDED - 2) as i32);
    f.store8(bitlen & 0xff, msgp, (PADDED - 1) as i32);

    let h: Vec<VReg> = [
        0x67452301u32,
        0xEFCDAB89,
        0x98BADCFE,
        0x10325476,
        0xC3D2E1F0,
    ]
    .iter()
    .map(|&k| {
        let r = f.fresh();
        f.set_c(r, k as i32);
        r
    })
    .collect();
    let (h0, h1, h2, h3, h4) = (h[0], h[1], h[2], h[3], h[4]);

    let wslot = f.stack_slot(80 * 4, 4);
    let nchunks = (PADDED / 64) as i32;
    f.for_range(0, nchunks, |f, chunk| {
        let coff = f.shl(chunk, 6);
        let base = f.add(msgp, coff);
        let wp = f.slot_addr(wslot);
        // Message schedule w[0..16] from big-endian bytes.
        f.for_range(0, 16, |f, t| {
            let boff = f.shl(t, 2);
            let bp = f.add(base, boff);
            let b0 = f.load8u(bp, 0);
            let b1 = f.load8u(bp, 1);
            let b2 = f.load8u(bp, 2);
            let b3 = f.load8u(bp, 3);
            let s0 = f.shl(b0, 24);
            let s1 = f.shl(b1, 16);
            let s2 = f.shl(b2, 8);
            let o1 = f.or(s0, s1);
            let o2 = f.or(o1, s2);
            let w = f.or(o2, b3);
            let dst = elem_addr(f, wp, t, 2);
            f.store32(w, dst, 0);
        });
        // w[16..80].
        f.for_range(16, 80, |f, t| {
            let load_at = |f: &mut vulnstack_vir::FuncBuilder, back: i32| {
                let idx = f.sub(t, back);
                let p = elem_addr(f, wp, idx, 2);
                f.load32(p, 0)
            };
            let a = load_at(f, 3);
            let b = load_at(f, 8);
            let c = load_at(f, 14);
            let d = load_at(f, 16);
            let x1 = f.xor(a, b);
            let x2 = f.xor(x1, c);
            let x3 = f.xor(x2, d);
            let r = rotl_const(f, x3, 1);
            let dst = elem_addr(f, wp, t, 2);
            f.store32(r, dst, 0);
        });
        // Round registers.
        let a = f.fresh();
        let b = f.fresh();
        let c = f.fresh();
        let d = f.fresh();
        let e = f.fresh();
        f.set(a, h0);
        f.set(b, h1);
        f.set(c, h2);
        f.set(d, h3);
        f.set(e, h4);
        f.for_range(0, 80, |f, t| {
            let wt = {
                let p = elem_addr(f, wp, t, 2);
                f.load32(p, 0)
            };
            // Select round function and constant.
            let fk = f.fresh();
            let kk = f.fresh();
            let lt20 = f.slt(t, 20);
            let lt40 = f.slt(t, 40);
            let lt60 = f.slt(t, 60);
            f.if_else(
                lt20,
                |f| {
                    // f = (b & c) | (~b & d)
                    let bc = f.and(b, c);
                    let nb = f.xor(b, -1);
                    let nbd = f.and(nb, d);
                    let v = f.or(bc, nbd);
                    f.set(fk, v);
                    f.set_c(kk, 0x5A827999u32 as i32);
                },
                |f| {
                    f.if_else(
                        lt40,
                        |f| {
                            let x1 = f.xor(b, c);
                            let v = f.xor(x1, d);
                            f.set(fk, v);
                            f.set_c(kk, 0x6ED9EBA1);
                        },
                        |f| {
                            f.if_else(
                                lt60,
                                |f| {
                                    let bc = f.and(b, c);
                                    let bd = f.and(b, d);
                                    let cd = f.and(c, d);
                                    let o1 = f.or(bc, bd);
                                    let v = f.or(o1, cd);
                                    f.set(fk, v);
                                    f.set_c(kk, 0x8F1BBCDCu32 as i32);
                                },
                                |f| {
                                    let x1 = f.xor(b, c);
                                    let v = f.xor(x1, d);
                                    f.set(fk, v);
                                    f.set_c(kk, 0xCA62C1D6u32 as i32);
                                },
                            );
                        },
                    );
                },
            );
            let ra = rotl_const(f, a, 5);
            let s1 = f.add(ra, fk);
            let s2 = f.add(s1, e);
            let s3 = f.add(s2, kk);
            let tmp = f.add(s3, wt);
            f.set(e, d);
            f.set(d, c);
            let rb = rotl_const(f, b, 30);
            f.set(c, rb);
            f.set(b, a);
            f.set(a, tmp);
        });
        let n0 = f.add(h0, a);
        f.set(h0, n0);
        let n1 = f.add(h1, b);
        f.set(h1, n1);
        let n2 = f.add(h2, c);
        f.set(h2, n2);
        let n3 = f.add(h3, d);
        f.set(h3, n3);
        let n4 = f.add(h4, e);
        f.set(h4, n4);
    });

    // Emit digest big-endian.
    let dp = f.global_addr(digest);
    for (i, &hr) in [h0, h1, h2, h3, h4].iter().enumerate() {
        for byte in 0..4 {
            let sh = f.shrl(hr, 24 - 8 * byte);
            let b = f.and(sh, 0xff);
            f.store8(b, dp, (i * 4) as i32 + byte);
        }
    }
    f.sys_write(dp, 20);
    f.sys_exit(0);
    f.ret(None);
    mb.finish_function(f);

    Workload {
        id: WorkloadId::Sha,
        module: mb.finish().expect("sha module verifies"),
        input,
        expected_output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_matches_known_vector() {
        // SHA-1("abc") = a9993e364706816aba3e25717850c26c9cd0d89d.
        let d = golden(b"abc");
        assert_eq!(
            d,
            [
                0xa9, 0x99, 0x3e, 0x36, 0x47, 0x06, 0x81, 0x6a, 0xba, 0x3e, 0x25, 0x71, 0x78, 0x50,
                0xc2, 0x6c, 0x9c, 0xd0, 0xd8, 0x9d
            ]
        );
    }

    #[test]
    fn interpreter_matches_golden() {
        let w = build();
        let out = vulnstack_vir::interp::Interpreter::new(&w.module)
            .with_input(w.input.clone())
            .run()
            .unwrap();
        assert_eq!(out.output, w.expected_output);
    }
}
