//! `rijndael` — AES-128 ECB encryption of 512 bytes (32 blocks), with the
//! key schedule computed at run time.
//!
//! Table-lookup heavy (S-box bytes), byte-granular memory traffic, and a
//! long serial dependency through the round structure.

use vulnstack_vir::{FuncBuilder, ModuleBuilder, Operand, VReg};

use crate::util::{aes_sbox, input_bytes};
use crate::{Workload, WorkloadId};

const BLOCKS: usize = 32;
const LEN: usize = BLOCKS * 16;
const SEED: u32 = 0xAE51_2810;
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36];
const KEY: [u8; 16] = [
    0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C,
];

/// ShiftRows source index for each destination position (column-major
/// state, index `row + 4*col`).
fn shift_rows_src() -> [usize; 16] {
    let mut map = [0usize; 16];
    for c in 0..4 {
        for r in 0..4 {
            map[r + 4 * c] = r + 4 * ((c + r) % 4);
        }
    }
    map
}

// ---------------------------------------------------------------------
// Host golden model.
// ---------------------------------------------------------------------

fn xtime(x: u8) -> u8 {
    (x << 1) ^ if x & 0x80 != 0 { 0x1B } else { 0 }
}

fn expand_key(key: &[u8; 16], sbox: &[u8; 256]) -> [u8; 176] {
    let mut rk = [0u8; 176];
    rk[..16].copy_from_slice(key);
    for i in 4..44 {
        let prev = (i - 1) * 4;
        let mut t = [rk[prev], rk[prev + 1], rk[prev + 2], rk[prev + 3]];
        if i % 4 == 0 {
            t = [
                sbox[t[1] as usize] ^ RCON[i / 4 - 1],
                sbox[t[2] as usize],
                sbox[t[3] as usize],
                sbox[t[0] as usize],
            ];
        }
        for j in 0..4 {
            rk[i * 4 + j] = rk[(i - 4) * 4 + j] ^ t[j];
        }
    }
    rk
}

fn encrypt_block(block: &mut [u8; 16], rk: &[u8; 176], sbox: &[u8; 256]) {
    let srcmap = shift_rows_src();
    let add_rk = |s: &mut [u8; 16], r: usize| {
        for j in 0..16 {
            s[j] ^= rk[r * 16 + j];
        }
    };
    add_rk(block, 0);
    for round in 1..=10 {
        // SubBytes + ShiftRows.
        let mut t = [0u8; 16];
        for j in 0..16 {
            t[j] = sbox[block[srcmap[j]] as usize];
        }
        if round < 10 {
            // MixColumns.
            for c in 0..4 {
                let a = [t[4 * c], t[4 * c + 1], t[4 * c + 2], t[4 * c + 3]];
                block[4 * c] = xtime(a[0]) ^ (xtime(a[1]) ^ a[1]) ^ a[2] ^ a[3];
                block[4 * c + 1] = a[0] ^ xtime(a[1]) ^ (xtime(a[2]) ^ a[2]) ^ a[3];
                block[4 * c + 2] = a[0] ^ a[1] ^ xtime(a[2]) ^ (xtime(a[3]) ^ a[3]);
                block[4 * c + 3] = (xtime(a[0]) ^ a[0]) ^ a[1] ^ a[2] ^ xtime(a[3]);
            }
        } else {
            *block = t;
        }
        add_rk(block, round);
    }
}

fn golden(data: &[u8]) -> Vec<u8> {
    let sbox = aes_sbox();
    let rk = expand_key(&KEY, &sbox);
    let mut out = Vec::with_capacity(data.len());
    for chunk in data.chunks_exact(16) {
        let mut b: [u8; 16] = chunk.try_into().unwrap();
        encrypt_block(&mut b, &rk, &sbox);
        out.extend_from_slice(&b);
    }
    out
}

// ---------------------------------------------------------------------
// VIR program.
// ---------------------------------------------------------------------

/// Emits `xtime(x)` — GF(2^8) multiplication by 2 on a byte value.
fn emit_xtime(f: &mut FuncBuilder, x: impl Into<Operand>) -> VReg {
    let x = x.into();
    let dbl = f.shl(x, 1);
    let hi = f.shrl(x, 7);
    let hibit = f.and(hi, 1);
    let red = f.select(hibit, 0x1B, 0);
    let mixed = f.xor(dbl, red);
    f.and(mixed, 0xff)
}

/// Builds the workload.
pub fn build() -> Workload {
    let data = input_bytes(SEED, LEN);
    let expected_output = golden(&data);
    let sbox = aes_sbox();
    let srcmap = shift_rows_src();

    let mut mb = ModuleBuilder::new("rijndael");
    let gsbox = mb.global("sbox", sbox.to_vec(), 4);
    let grcon = mb.global("rcon", RCON.to_vec(), 4);
    let gkey = mb.global("key", KEY.to_vec(), 4);
    let gdata = mb.global("plain", data.clone(), 4);
    let grk = mb.global_zeroed("rk", 176, 4);
    let gout = mb.global_zeroed("cipher", LEN, 4);

    // encrypt_block(off): encrypts plain[off..off+16] into cipher[off..].
    let enc = mb.declare("encrypt_block", 1);
    let mut e = mb.function("encrypt_block", 1);
    {
        let off = e.param(0);
        let inp = e.global_addr(gdata);
        let outp = e.global_addr(gout);
        let rkp = e.global_addr(grk);
        let sbp = e.global_addr(gsbox);
        let st = e.stack_slot(16, 4);
        let tmp = e.stack_slot(16, 4);
        let stp = e.slot_addr(st);
        let tmpp = e.slot_addr(tmp);
        let src = e.add(inp, off);

        // Load block and AddRoundKey(0).
        for j in 0..16i32 {
            let v = e.load8u(src, j);
            let k = e.load8u(rkp, j);
            let x = e.xor(v, k);
            e.store8(x, stp, j);
        }
        // Rounds 1..=10.
        let round = e.fresh();
        e.set_c(round, 1);
        e.while_loop(
            |f| f.cmp(vulnstack_vir::CmpPred::SLe, round, 10),
            |f| {
                // SubBytes + ShiftRows into tmp.
                for (j, &s) in srcmap.iter().enumerate() {
                    let v = f.load8u(stp, s as i32);
                    let p = f.add(sbp, v);
                    let sb = f.load8u(p, 0);
                    f.store8(sb, tmpp, j as i32);
                }
                let last = f.eq(round, 10);
                f.if_else(
                    last,
                    |f| {
                        for j in 0..16i32 {
                            let v = f.load8u(tmpp, j);
                            f.store8(v, stp, j);
                        }
                    },
                    |f| {
                        // MixColumns tmp -> state.
                        for c in 0..4i32 {
                            let a: Vec<VReg> = (0..4).map(|r| f.load8u(tmpp, 4 * c + r)).collect();
                            let xt: Vec<VReg> = a.iter().map(|&x| emit_xtime(f, x)).collect();
                            let combos: [[usize; 2]; 4] = [[0, 1], [1, 2], [2, 3], [3, 0]];
                            for (r, combo) in combos.iter().enumerate() {
                                // b_r = xt[i] ^ (xt[j] ^ a[j]) ^ a[k] ^ a[l]
                                // where the pattern rotates with r.
                                let i0 = combo[0];
                                let i1 = combo[1];
                                let (i2, i3) = ((i1 + 1) % 4, (i1 + 2) % 4);
                                let t1 = f.xor(xt[i0], xt[i1]);
                                let t2 = f.xor(t1, a[i1]);
                                let t3 = f.xor(t2, a[i2]);
                                let b = f.xor(t3, a[i3]);
                                f.store8(b, stp, 4 * c + r as i32);
                            }
                        }
                    },
                );
                // AddRoundKey(round).
                let roff = f.shl(round, 4);
                let rkbase = f.add(rkp, roff);
                for j in 0..16i32 {
                    let v = f.load8u(stp, j);
                    let k = f.load8u(rkbase, j);
                    let x = f.xor(v, k);
                    f.store8(x, stp, j);
                }
                let r2 = f.add(round, 1);
                f.set(round, r2);
            },
        );
        // Store ciphertext.
        let dst = e.add(outp, off);
        for j in 0..16i32 {
            let v = e.load8u(stp, j);
            e.store8(v, dst, j);
        }
        e.ret(None);
    }
    mb.finish_function(e);

    let mut f = mb.function("main", 0);
    {
        let rkp = f.global_addr(grk);
        let keyp = f.global_addr(gkey);
        let sbp = f.global_addr(gsbox);
        let rconp = f.global_addr(grcon);
        // rk[0..16] = key.
        for j in 0..16i32 {
            let v = f.load8u(keyp, j);
            f.store8(v, rkp, j);
        }
        // Expand words 4..44.
        f.for_range(4, 44, |f, i| {
            let prev = f.shl(i, 2);
            let prevp = f.add(rkp, prev);
            let t: Vec<VReg> = (0..4).map(|j| f.load8u(prevp, j - 4)).collect();
            let m = f.rems(i, 4);
            let first = f.eq(m, 0);
            let tt: Vec<VReg> = (0..4).map(|_| f.fresh()).collect();
            f.if_else(
                first,
                |f| {
                    // Rotate, substitute, fold in the round constant.
                    let order = [1usize, 2, 3, 0];
                    for (j, &s) in order.iter().enumerate() {
                        let p = f.add(sbp, t[s]);
                        let sb = f.load8u(p, 0);
                        f.set(tt[j], sb);
                    }
                    let ri = f.divs(i, 4);
                    let ridx = f.sub(ri, 1);
                    let rp = f.add(rconp, ridx);
                    let rc = f.load8u(rp, 0);
                    let x = f.xor(tt[0], rc);
                    f.set(tt[0], x);
                },
                |f| {
                    for j in 0..4 {
                        f.set(tt[j], t[j]);
                    }
                },
            );
            let cur = f.shl(i, 2);
            let curp = f.add(rkp, cur);
            for j in 0..4i32 {
                let old = f.load8u(curp, j - 16);
                let x = f.xor(old, tt[j as usize]);
                f.store8(x, curp, j);
            }
        });
        // Encrypt all blocks.
        f.for_range(0, BLOCKS as i32, |f, b| {
            let off = f.shl(b, 4);
            f.call_void(enc, &[Operand::Reg(off)]);
        });
        let outp = f.global_addr(gout);
        f.sys_write(outp, LEN as i32);
        f.sys_exit(0);
        f.ret(None);
    }
    mb.finish_function(f);

    Workload {
        id: WorkloadId::Rijndael,
        module: mb.finish().expect("rijndael module verifies"),
        input: Vec::new(),
        expected_output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_matches_fips197_vector() {
        let key = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let sbox = aes_sbox();
        let rk = expand_key(&key, &sbox);
        let mut block = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        encrypt_block(&mut block, &rk, &sbox);
        assert_eq!(
            block,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
    }

    #[test]
    fn key_expansion_matches_fips197_appendix_a() {
        let sbox = aes_sbox();
        let rk = expand_key(&KEY, &sbox);
        // FIPS-197 A.1: w4 = a0fafe17 for the 2b7e1516... key.
        assert_eq!(&rk[16..20], &[0xa0, 0xfa, 0xfe, 0x17]);
        // w43 = b6630ca6.
        assert_eq!(&rk[172..176], &[0xb6, 0x63, 0x0c, 0xa6]);
    }

    #[test]
    fn interpreter_matches_golden() {
        let w = build();
        let out = vulnstack_vir::interp::Interpreter::new(&w.module)
            .run()
            .unwrap();
        assert_eq!(out.output, w.expected_output);
    }
}
