//! `qsort` — recursive Lomuto-partition quicksort over 256 signed 32-bit
//! integers held in a global array.
//!
//! Control-flow heavy with data-dependent branches and real recursion
//! (frames, spills, link-register traffic) — the classic qsort profile the
//! paper contrasts against `sha`.

use vulnstack_vir::{ModuleBuilder, Operand};

use crate::util::{elem_addr, XorShift32};
use crate::{Workload, WorkloadId};

const N: usize = 256;
const SEED: u32 = 0x9507_2301;

fn make_data() -> Vec<i32> {
    XorShift32::new(SEED).words(N)
}

fn golden(data: &[i32]) -> Vec<u8> {
    let mut v = data.to_vec();
    v.sort_unstable();
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Builds the workload.
pub fn build() -> Workload {
    let data = make_data();
    let expected_output = golden(&data);

    let mut mb = ModuleBuilder::new("qsort");
    let arr = mb.global_words("data", &data);
    let qs = mb.declare("quicksort", 2);

    // quicksort(lo, hi): sorts data[lo..=hi].
    let mut f = mb.function("quicksort", 2);
    {
        let lo = f.param(0);
        let hi = f.param(1);
        let done = f.new_block();
        let work = f.new_block();
        let c = f.sge(lo, hi);
        f.cond_br(c, done, work);
        f.switch_to(done);
        f.ret(None);

        f.switch_to(work);
        let base = f.global_addr(arr);
        let hip = elem_addr(&mut f, base, hi, 2);
        let pivot = f.load32(hip, 0);
        // Lomuto partition.
        let i = f.fresh();
        let dec = f.sub(lo, 1);
        f.set(i, dec);
        let j = f.fresh();
        f.set(j, lo);
        f.while_loop(
            |f| f.slt(j, hi),
            |f| {
                let jp = elem_addr(f, base, j, 2);
                let aj = f.load32(jp, 0);
                let le = f.cmp(vulnstack_vir::CmpPred::SLe, aj, pivot);
                f.if_then(le, |f| {
                    let i2 = f.add(i, 1);
                    f.set(i, i2);
                    let ip = elem_addr(f, base, i, 2);
                    let ai = f.load32(ip, 0);
                    let jp2 = elem_addr(f, base, j, 2);
                    let aj2 = f.load32(jp2, 0);
                    f.store32(aj2, ip, 0);
                    f.store32(ai, jp2, 0);
                });
                let j2 = f.add(j, 1);
                f.set(j, j2);
            },
        );
        // Swap data[i+1] and data[hi]; pivot index p = i+1.
        let p = f.add(i, 1);
        let pp = elem_addr(&mut f, base, p, 2);
        let ap = f.load32(pp, 0);
        let hp2 = elem_addr(&mut f, base, hi, 2);
        let ah = f.load32(hp2, 0);
        f.store32(ah, pp, 0);
        f.store32(ap, hp2, 0);
        // Recurse.
        let pm1 = f.sub(p, 1);
        f.call_void(qs, &[Operand::Reg(lo), Operand::Reg(pm1)]);
        let pp1 = f.add(p, 1);
        f.call_void(qs, &[Operand::Reg(pp1), Operand::Reg(hi)]);
        f.ret(None);
    }
    mb.finish_function(f);

    let mut m = mb.function("main", 0);
    m.call_void(qs, &[Operand::Imm(0), Operand::Imm(N as i32 - 1)]);
    let base = m.global_addr(arr);
    m.sys_write(base, (N * 4) as i32);
    m.sys_exit(0);
    m.ret(None);
    mb.finish_function(m);

    Workload {
        id: WorkloadId::Qsort,
        module: mb.finish().expect("qsort module verifies"),
        input: Vec::new(),
        expected_output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_vir::interp::{Interpreter, RunStatus};

    #[test]
    fn sorts_exactly_like_host_sort() {
        let w = build();
        let out = Interpreter::new(&w.module).run().unwrap();
        assert_eq!(out.status, RunStatus::Exited(0));
        assert_eq!(out.output, w.expected_output);
        // Output really is sorted.
        let vals: Vec<i32> = out
            .output
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(vals.len(), N);
    }
}
