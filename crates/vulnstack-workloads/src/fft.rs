//! `fft` — in-place radix-2 decimation-in-time FFT, N = 128, in Q17.14
//! fixed point (MiBench's fft ported to integer arithmetic; the paper's
//! substrate has no floating-point unit, see DESIGN.md).

use vulnstack_vir::ModuleBuilder;

use crate::util::{elem_addr, fft_twiddles, XorShift32};
use crate::{Workload, WorkloadId};

/// Transform length.
pub const N: usize = 128;
const LOG2N: u32 = 7;
const SEED: u32 = 0xFF70_0128;

fn make_signal() -> Vec<i32> {
    // Pseudo-random samples in roughly ±16384.
    let mut rng = XorShift32::new(SEED);
    (0..N)
        .map(|_| ((rng.next_u32() & 0x7FFF) as i32) - 16384)
        .collect()
}

fn bitrev(mut x: usize, bits: u32) -> usize {
    let mut r = 0;
    for _ in 0..bits {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    r
}

fn golden(signal: &[i32]) -> Vec<u8> {
    let (cos_t, sin_t) = fft_twiddles(N);
    let mut re = signal.to_vec();
    let mut im = vec![0i32; N];
    for i in 0..N {
        let j = bitrev(i, LOG2N);
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut m = 2;
    while m <= N {
        let half = m / 2;
        let step = N / m;
        let mut k = 0;
        while k < N {
            for j in 0..half {
                let idx = j * step;
                let (c, s) = (cos_t[idx], sin_t[idx]);
                let (xr, xi) = (re[k + j + half], im[k + j + half]);
                let tr = (c.wrapping_mul(xr).wrapping_add(s.wrapping_mul(xi))) >> 14;
                let ti = (c.wrapping_mul(xi).wrapping_sub(s.wrapping_mul(xr))) >> 14;
                re[k + j + half] = re[k + j].wrapping_sub(tr);
                im[k + j + half] = im[k + j].wrapping_sub(ti);
                re[k + j] = re[k + j].wrapping_add(tr);
                im[k + j] = im[k + j].wrapping_add(ti);
            }
            k += m;
        }
        m *= 2;
    }
    let mut out = Vec::with_capacity(N * 8);
    for v in re.iter().chain(im.iter()) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Builds the workload.
pub fn build() -> Workload {
    let signal = make_signal();
    let expected_output = golden(&signal);
    let (cos_t, sin_t) = fft_twiddles(N);

    let mut mb = ModuleBuilder::new("fft");
    let gre = mb.global_words("re", &signal);
    let gim = mb.global_zeroed("im", N * 4, 4);
    let gcos = mb.global_words("costab", &cos_t);
    let gsin = mb.global_words("sintab", &sin_t);

    let mut f = mb.function("main", 0);
    let rep = f.global_addr(gre);
    let imp = f.global_addr(gim);
    let cosp = f.global_addr(gcos);
    let sinp = f.global_addr(gsin);

    // Bit-reversal permutation.
    f.for_range(0, N as i32, |f, i| {
        // j = bitrev(i, LOG2N) computed with a shift loop.
        let j = f.fresh();
        let x = f.fresh();
        f.set_c(j, 0);
        f.set(x, i);
        f.for_range(0, LOG2N as i32, |f, _b| {
            let j2 = f.shl(j, 1);
            let lsb = f.and(x, 1);
            let j3 = f.or(j2, lsb);
            f.set(j, j3);
            let x2 = f.shrl(x, 1);
            f.set(x, x2);
        });
        let lt = f.slt(i, j);
        f.if_then(lt, |f| {
            for arr in [rep, imp] {
                let pi = elem_addr(f, arr, i, 2);
                let pj = elem_addr(f, arr, j, 2);
                let vi = f.load32(pi, 0);
                let vj = f.load32(pj, 0);
                f.store32(vj, pi, 0);
                f.store32(vi, pj, 0);
            }
        });
    });

    // Butterfly stages: m = 2, 4, ..., N.
    let m = f.fresh();
    f.set_c(m, 2);
    f.while_loop(
        |f| f.cmp(vulnstack_vir::CmpPred::SLe, m, N as i32),
        |f| {
            let half = f.shrl(m, 1);
            let step = f.divs(N as i32, m);
            let k = f.fresh();
            f.set_c(k, 0);
            f.while_loop(
                |f| f.slt(k, N as i32),
                |f| {
                    f.for_range(0, half, |f, j| {
                        let idx = f.mul(j, step);
                        let cp = elem_addr(f, cosp, idx, 2);
                        let sp = elem_addr(f, sinp, idx, 2);
                        let c = f.load32(cp, 0);
                        let s = f.load32(sp, 0);
                        let kj = f.add(k, j);
                        let kjh = f.add(kj, half);
                        let prh = elem_addr(f, rep, kjh, 2);
                        let pih = elem_addr(f, imp, kjh, 2);
                        let xr = f.load32(prh, 0);
                        let xi = f.load32(pih, 0);
                        let cxr = f.mul(c, xr);
                        let sxi = f.mul(s, xi);
                        let trs = f.add(cxr, sxi);
                        let tr = f.shra(trs, 14);
                        let cxi = f.mul(c, xi);
                        let sxr = f.mul(s, xr);
                        let tis = f.sub(cxi, sxr);
                        let ti = f.shra(tis, 14);
                        let pr = elem_addr(f, rep, kj, 2);
                        let pi = elem_addr(f, imp, kj, 2);
                        let br = f.load32(pr, 0);
                        let bi = f.load32(pi, 0);
                        let nrh = f.sub(br, tr);
                        let nih = f.sub(bi, ti);
                        f.store32(nrh, prh, 0);
                        f.store32(nih, pih, 0);
                        let nr = f.add(br, tr);
                        let ni = f.add(bi, ti);
                        f.store32(nr, pr, 0);
                        f.store32(ni, pi, 0);
                    });
                    let k2 = f.add(k, m);
                    f.set(k, k2);
                },
            );
            let m2 = f.shl(m, 1);
            f.set(m, m2);
        },
    );

    f.sys_write(rep, (N * 4) as i32);
    f.sys_write(imp, (N * 4) as i32);
    f.sys_exit(0);
    f.ret(None);
    mb.finish_function(f);

    Workload {
        id: WorkloadId::Fft,
        module: mb.finish().expect("fft module verifies"),
        input: Vec::new(),
        expected_output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let flat = vec![1000i32; N];
        let out = golden(&flat);
        let re0 = i32::from_le_bytes([out[0], out[1], out[2], out[3]]);
        // DC bin accumulates ~N * 1000 (fixed-point rounding aside).
        assert!(
            (re0 - (N as i32) * 1000).abs() < N as i32 * 16,
            "re0 = {re0}"
        );
        // Other bins are (near) zero.
        let re1 = i32::from_le_bytes([out[4], out[5], out[6], out[7]]);
        assert!(re1.abs() < 2048, "re1 = {re1}");
    }

    #[test]
    fn bitrev_is_an_involution() {
        for i in 0..N {
            assert_eq!(bitrev(bitrev(i, LOG2N), LOG2N), i);
        }
    }

    #[test]
    fn interpreter_matches_golden() {
        let w = build();
        let out = vulnstack_vir::interp::Interpreter::new(&w.module)
            .run()
            .unwrap();
        assert_eq!(out.output, w.expected_output);
    }
}
