//! `dijkstra` — single-source shortest paths over a dense 48-node graph
//! with an O(V²) scan (as in MiBench's network suite).

use vulnstack_vir::ModuleBuilder;

use crate::util::{elem_addr, XorShift32};
use crate::{Workload, WorkloadId};

/// Number of graph nodes.
pub const V: usize = 48;
const INF: i32 = 0x3FFF_FFFF;
const SEED: u32 = 0xD17C_57A1;

fn make_graph() -> Vec<u8> {
    // Dense weight matrix, weights 1..=64; diagonal zero.
    let mut rng = XorShift32::new(SEED);
    let mut adj = vec![0u8; V * V];
    for i in 0..V {
        for j in 0..V {
            adj[i * V + j] = if i == j {
                0
            } else {
                ((rng.next_u32() & 0x3F) + 1) as u8
            };
        }
    }
    adj
}

fn golden(adj: &[u8]) -> Vec<u8> {
    let mut dist = [INF; V];
    let mut visited = [false; V];
    dist[0] = 0;
    for _ in 0..V {
        // Pick the unvisited node with the smallest distance.
        let mut u = usize::MAX;
        let mut best = INF + 1;
        for (i, &d) in dist.iter().enumerate() {
            if !visited[i] && d < best {
                best = d;
                u = i;
            }
        }
        if u == usize::MAX {
            break;
        }
        visited[u] = true;
        for v in 0..V {
            let w = adj[u * V + v] as i32;
            if w > 0 && dist[u] + w < dist[v] {
                dist[v] = dist[u] + w;
            }
        }
    }
    dist.iter().flat_map(|d| d.to_le_bytes()).collect()
}

/// Builds the workload.
pub fn build() -> Workload {
    let adj = make_graph();
    let expected_output = golden(&adj);

    let mut mb = ModuleBuilder::new("dijkstra");
    let gadj = mb.global("adj", adj.clone(), 4);
    let gdist = mb.global_zeroed("dist", V * 4, 4);
    let gvis = mb.global_zeroed("visited", V, 4);

    let mut f = mb.function("main", 0);
    let adjp = f.global_addr(gadj);
    let distp = f.global_addr(gdist);
    let visp = f.global_addr(gvis);

    // Initialise distances.
    f.for_range(0, V as i32, |f, i| {
        let p = elem_addr(f, distp, i, 2);
        f.store32(INF, p, 0);
    });
    f.store32(0, distp, 0);

    f.for_range(0, V as i32, |f, _round| {
        // Find unvisited minimum.
        let u = f.fresh();
        let best = f.fresh();
        f.set_c(u, -1);
        f.set_c(best, INF + 1);
        f.for_range(0, V as i32, |f, i| {
            let vp = f.add(visp, i);
            let vis = f.load8u(vp, 0);
            let unv = f.eq(vis, 0);
            let dp = elem_addr(f, distp, i, 2);
            let d = f.load32(dp, 0);
            let closer = f.slt(d, best);
            let both = f.and(unv, closer);
            f.if_then(both, |f| {
                f.set(best, d);
                f.set(u, i);
            });
        });
        let found = f.sge(u, 0);
        f.if_then(found, |f| {
            let up = f.add(visp, u);
            f.store8(1, up, 0);
            let du = {
                let p = elem_addr(f, distp, u, 2);
                f.load32(p, 0)
            };
            let urow = f.mul(u, V as i32);
            f.for_range(0, V as i32, |f, v| {
                let ep = f.add(urow, v);
                let wp = f.add(adjp, ep);
                let w = f.load8u(wp, 0);
                let has_edge = f.cmp(vulnstack_vir::CmpPred::SGt, w, 0);
                let cand = f.add(du, w);
                let dvp = elem_addr(f, distp, v, 2);
                let dv = f.load32(dvp, 0);
                let better = f.slt(cand, dv);
                let relax = f.and(has_edge, better);
                f.if_then(relax, |f| {
                    f.store32(cand, dvp, 0);
                });
            });
        });
    });

    f.sys_write(distp, (V * 4) as i32);
    f.sys_exit(0);
    f.ret(None);
    mb.finish_function(f);

    Workload {
        id: WorkloadId::Dijkstra,
        module: mb.finish().expect("dijkstra module verifies"),
        input: Vec::new(),
        expected_output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_distances_are_sane() {
        let adj = make_graph();
        let out = golden(&adj);
        let dist: Vec<i32> = out
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        assert_eq!(dist[0], 0);
        // All nodes reachable in a dense graph; distances bounded by a
        // direct edge (max weight 64).
        for (i, &d) in dist.iter().enumerate().skip(1) {
            assert!((1..=64).contains(&d), "node {i} distance {d}");
        }
    }

    #[test]
    fn triangle_inequality_holds_via_direct_edges() {
        let adj = make_graph();
        let out = golden(&adj);
        let dist: Vec<i32> = out
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        for v in 1..V {
            assert!(dist[v] <= adj[v] as i32, "shortest path beats direct edge");
        }
    }

    #[test]
    fn interpreter_matches_golden() {
        let w = build();
        let out = vulnstack_vir::interp::Interpreter::new(&w.module)
            .run()
            .unwrap();
        assert_eq!(out.output, w.expected_output);
    }
}
