//! # vulnstack-workloads
//!
//! The benchmark suite used throughout the vulnerability study: ten
//! MiBench-style workloads re-implemented in VIR so the *same source
//! program* can be (a) interpreted for software-level (SVF) injection,
//! (b) compiled for VA32, and (c) compiled for VA64 — mirroring the paper's
//! requirement that workloads be identical across layers and ISAs.
//!
//! Every workload ships with a deterministic input and a host-computed
//! `expected_output`, so any execution layer can be checked for silent data
//! corruption by byte comparison.
//!
//! | workload | domain | kernel |
//! |---|---|---|
//! | `fft` | signal processing | fixed-point radix-2 FFT, N=128 |
//! | `qsort` | sorting | recursive Lomuto quicksort, 256 ints |
//! | `sha` | crypto hash | SHA-1 over 2 KiB (input via `read`) |
//! | `rijndael` | block cipher | AES-128 ECB encrypt, 512 B |
//! | `smooth` | image | 3×3 mean filter, 48×48 |
//! | `corner` | image | SUSAN-style corner response, 48×48 |
//! | `cjpeg` | codec | 8×8 DCT + quant + zigzag + RLE, 24×24 |
//! | `djpeg` | codec | RLE + dequant + IDCT, 24×24 |
//! | `crc32` | checksum | table-driven CRC-32 over 4 KiB (via `read`) |
//! | `dijkstra` | graph | O(V²) single-source shortest paths, 48 nodes |
//!
//! # Example
//!
//! ```
//! use vulnstack_workloads::WorkloadId;
//! use vulnstack_vir::interp::{Interpreter, RunStatus};
//!
//! let w = WorkloadId::Crc32.build();
//! let out = Interpreter::new(&w.module)
//!     .with_input(w.input.clone())
//!     .run()
//!     .unwrap();
//! assert_eq!(out.status, RunStatus::Exited(0));
//! assert_eq!(out.output, w.expected_output);
//! ```

use serde::{Deserialize, Serialize};
use vulnstack_vir::Module;

mod cjpeg;
mod corner;
mod crc32;
mod dijkstra;
mod djpeg;
mod fft;
mod qsort;
mod rijndael;
mod sha;
mod smooth;
pub mod util;

/// Identifier of one workload in the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadId {
    /// Fixed-point FFT.
    Fft,
    /// Quicksort.
    Qsort,
    /// SHA-1.
    Sha,
    /// AES-128 encryption.
    Rijndael,
    /// 3×3 mean filter.
    Smooth,
    /// SUSAN-style corner detection.
    Corner,
    /// DCT-based image compression.
    Cjpeg,
    /// DCT-based image decompression.
    Djpeg,
    /// CRC-32 checksum.
    Crc32,
    /// Single-source shortest paths.
    Dijkstra,
}

impl WorkloadId {
    /// All workloads, in the order used by the paper's figures.
    pub const ALL: [WorkloadId; 10] = [
        WorkloadId::Fft,
        WorkloadId::Qsort,
        WorkloadId::Sha,
        WorkloadId::Rijndael,
        WorkloadId::Smooth,
        WorkloadId::Corner,
        WorkloadId::Cjpeg,
        WorkloadId::Djpeg,
        WorkloadId::Crc32,
        WorkloadId::Dijkstra,
    ];

    /// Lowercase benchmark name as used in reports.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadId::Fft => "fft",
            WorkloadId::Qsort => "qsort",
            WorkloadId::Sha => "sha",
            WorkloadId::Rijndael => "rijndael",
            WorkloadId::Smooth => "smooth",
            WorkloadId::Corner => "corner",
            WorkloadId::Cjpeg => "cjpeg",
            WorkloadId::Djpeg => "djpeg",
            WorkloadId::Crc32 => "crc32",
            WorkloadId::Dijkstra => "dijkstra",
        }
    }

    /// Looks a workload up by its report name.
    pub fn from_name(name: &str) -> Option<WorkloadId> {
        WorkloadId::ALL.iter().copied().find(|w| w.name() == name)
    }

    /// Builds the workload: VIR module, input bytes and expected output.
    pub fn build(self) -> Workload {
        match self {
            WorkloadId::Fft => fft::build(),
            WorkloadId::Qsort => qsort::build(),
            WorkloadId::Sha => sha::build(),
            WorkloadId::Rijndael => rijndael::build(),
            WorkloadId::Smooth => smooth::build(),
            WorkloadId::Corner => corner::build(),
            WorkloadId::Cjpeg => cjpeg::build(),
            WorkloadId::Djpeg => djpeg::build(),
            WorkloadId::Crc32 => crc32::build(),
            WorkloadId::Dijkstra => dijkstra::build(),
        }
    }
}

impl std::fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully-built workload ready to run on any layer of the stack.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which workload this is.
    pub id: WorkloadId,
    /// The VIR program.
    pub module: Module,
    /// Input bytes consumed by the `read` syscall (may be empty).
    pub input: Vec<u8>,
    /// Golden output computed by a host-side reference implementation; any
    /// run whose output differs is a silent data corruption.
    pub expected_output: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_vir::interp::{Interpreter, RunStatus};

    #[test]
    fn all_names_roundtrip() {
        for id in WorkloadId::ALL {
            assert_eq!(WorkloadId::from_name(id.name()), Some(id));
        }
        assert_eq!(WorkloadId::from_name("nope"), None);
    }

    #[test]
    fn every_workload_matches_its_golden_model() {
        for id in WorkloadId::ALL {
            let w = id.build();
            let out = Interpreter::new(&w.module)
                .with_input(w.input.clone())
                .run()
                .unwrap_or_else(|e| panic!("{id}: {e}"));
            assert_eq!(out.status, RunStatus::Exited(0), "{id}: bad exit status");
            assert!(!w.expected_output.is_empty(), "{id}: empty golden output");
            assert_eq!(
                out.output, w.expected_output,
                "{id}: output mismatch vs golden model"
            );
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for id in [WorkloadId::Sha, WorkloadId::Fft] {
            let w1 = id.build();
            let w2 = id.build();
            assert_eq!(w1.input, w2.input);
            assert_eq!(w1.expected_output, w2.expected_output);
            assert_eq!(w1.module, w2.module);
        }
    }

    #[test]
    fn dynamic_sizes_are_within_simulation_budget() {
        // Keep every workload small enough for thousands of
        // microarchitectural injection runs.
        for id in WorkloadId::ALL {
            let w = id.build();
            let out = Interpreter::new(&w.module)
                .with_input(w.input.clone())
                .run()
                .unwrap();
            assert!(
                out.dyn_instrs > 10_000,
                "{id}: suspiciously tiny ({} instrs)",
                out.dyn_instrs
            );
            assert!(
                out.dyn_instrs < 2_000_000,
                "{id}: too large for injection campaigns ({} instrs)",
                out.dyn_instrs
            );
        }
    }
}
