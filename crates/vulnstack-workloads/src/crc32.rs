//! `crc32` — table-driven CRC-32 (IEEE 802.3 polynomial) over a 4 KiB
//! input delivered through the `read` syscall.
//!
//! The table is computed at run time, so the workload mixes table
//! construction (shift/xor heavy) with a memory-bound scan.

use vulnstack_vir::ModuleBuilder;

use crate::util::{elem_addr, input_bytes};
use crate::{Workload, WorkloadId};

const LEN: usize = 4096;
const POLY: i32 = 0xEDB8_8320u32 as i32;
const SEED: u32 = 0xC0C3_2021;

/// Host-side golden model.
fn golden(data: &[u8]) -> u32 {
    let mut table = [0u32; 256];
    for (i, t) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                (c >> 1) ^ POLY as u32
            } else {
                c >> 1
            };
        }
        *t = c;
    }
    let mut crc = u32::MAX;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Builds the workload.
pub fn build() -> Workload {
    let input = input_bytes(SEED, LEN);
    let expected_output = golden(&input).to_le_bytes().to_vec();

    let mut mb = ModuleBuilder::new("crc32");
    let buf = mb.global_zeroed("buf", LEN, 4);
    let table = mb.global_zeroed("table", 256 * 4, 4);
    let out = mb.global_zeroed("out", 4, 4);

    let mut f = mb.function("main", 0);
    let bufp = f.global_addr(buf);
    let tabp = f.global_addr(table);
    f.sys_read(bufp, LEN as i32);

    // Build the CRC table.
    f.for_range(0, 256, |f, i| {
        let c = f.fresh();
        f.set(c, i);
        f.for_range(0, 8, |f, _k| {
            let lsb = f.and(c, 1);
            let half = f.shrl(c, 1);
            let mask = f.select(lsb, POLY, 0);
            let nc = f.xor(half, mask);
            f.set(c, nc);
        });
        let p = elem_addr(f, tabp, i, 2);
        f.store32(c, p, 0);
    });

    // Scan the buffer.
    let crc = f.fresh();
    f.set_c(crc, -1);
    f.for_range(0, LEN as i32, |f, i| {
        let bp = f.add(bufp, i);
        let b = f.load8u(bp, 0);
        let x = f.xor(crc, b);
        let idx = f.and(x, 0xff);
        let tp = elem_addr(f, tabp, idx, 2);
        let te = f.load32(tp, 0);
        let sh = f.shrl(crc, 8);
        let nc = f.xor(sh, te);
        f.set(crc, nc);
    });
    let fin = f.xor(crc, -1);
    let outp = f.global_addr(out);
    f.store32(fin, outp, 0);
    f.sys_write(outp, 4);
    f.sys_exit(0);
    f.ret(None);
    mb.finish_function(f);

    Workload {
        id: WorkloadId::Crc32,
        module: mb.finish().expect("crc32 module verifies"),
        input,
        expected_output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_matches_known_vector() {
        // CRC-32("123456789") = 0xCBF43926.
        assert_eq!(golden(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn interpreter_matches_golden() {
        let w = build();
        let out = vulnstack_vir::interp::Interpreter::new(&w.module)
            .with_input(w.input.clone())
            .run()
            .unwrap();
        assert_eq!(out.output, w.expected_output);
    }
}
