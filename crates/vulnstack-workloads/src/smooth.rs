//! `smooth` — 3×3 mean filter over a 48×48 8-bit image (the smoothing
//! stage of MiBench's susan).
//!
//! Regular streaming access pattern with short dependency chains; the
//! paper's second case-study benchmark.

use vulnstack_vir::ModuleBuilder;

use crate::util::input_bytes;
use crate::{Workload, WorkloadId};

/// Image edge length.
pub const DIM: usize = 48;
const SEED: u32 = 0x5300_0714;

fn golden(img: &[u8]) -> Vec<u8> {
    let mut out = img.to_vec();
    for y in 1..DIM - 1 {
        for x in 1..DIM - 1 {
            let mut sum = 0u32;
            for dy in 0..3 {
                for dx in 0..3 {
                    sum += img[(y + dy - 1) * DIM + (x + dx - 1)] as u32;
                }
            }
            out[y * DIM + x] = (sum / 9) as u8;
        }
    }
    out
}

/// Builds the workload.
pub fn build() -> Workload {
    let img = input_bytes(SEED, DIM * DIM);
    let expected_output = golden(&img);

    let mut mb = ModuleBuilder::new("smooth");
    let gin = mb.global("img", img.clone(), 4);
    let gout = mb.global_zeroed("out", DIM * DIM, 4);

    let mut f = mb.function("main", 0);
    let inp = f.global_addr(gin);
    let outp = f.global_addr(gout);
    let n = (DIM * DIM) as i32;

    // Copy input to output (border pixels keep their value).
    f.for_range(0, n, |f, i| {
        let sp = f.add(inp, i);
        let v = f.load8u(sp, 0);
        let dp = f.add(outp, i);
        f.store8(v, dp, 0);
    });

    // Interior mean filter.
    f.for_range(1, (DIM - 1) as i32, |f, y| {
        f.for_range(1, (DIM - 1) as i32, |f, x| {
            let row = f.mul(y, DIM as i32);
            let center = f.add(row, x);
            let sum = f.fresh();
            f.set_c(sum, 0);
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let off = dy * DIM as i32 + dx;
                    let idx = f.add(center, off);
                    let p = f.add(inp, idx);
                    let v = f.load8u(p, 0);
                    let s = f.add(sum, v);
                    f.set(sum, s);
                }
            }
            let mean = f.divu(sum, 9);
            let dp = f.add(outp, center);
            f.store8(mean, dp, 0);
        });
    });

    f.sys_write(outp, n);
    f.sys_exit(0);
    f.ret(None);
    mb.finish_function(f);

    Workload {
        id: WorkloadId::Smooth,
        module: mb.finish().expect("smooth module verifies"),
        input: Vec::new(),
        expected_output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_preserves_border_and_averages_interior() {
        let img = input_bytes(1, DIM * DIM);
        let out = golden(&img);
        assert_eq!(out[0], img[0]);
        assert_eq!(out[DIM - 1], img[DIM - 1]);
        // A flat image stays flat.
        let flat = vec![77u8; DIM * DIM];
        assert_eq!(golden(&flat), flat);
    }

    #[test]
    fn interpreter_matches_golden() {
        let w = build();
        let out = vulnstack_vir::interp::Interpreter::new(&w.module)
            .run()
            .unwrap();
        assert_eq!(out.output, w.expected_output);
    }
}
