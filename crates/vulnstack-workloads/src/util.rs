//! Deterministic input generation and shared constant tables.

use vulnstack_vir::{FuncBuilder, Operand, VReg};

/// A tiny xorshift32 PRNG used to generate workload inputs
/// deterministically (never used for statistical sampling — campaigns use
/// `rand::StdRng`).
#[derive(Debug, Clone)]
pub struct XorShift32 {
    state: u32,
}

impl XorShift32 {
    /// Creates a generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u32) -> XorShift32 {
        XorShift32 {
            state: if seed == 0 { 0x9E3779B9 } else { seed },
        }
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        let mut s = self.state;
        s ^= s << 13;
        s ^= s >> 17;
        s ^= s << 5;
        self.state = s;
        s
    }

    /// `len` pseudo-random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| (self.next_u32() & 0xff) as u8).collect()
    }

    /// `len` pseudo-random 32-bit words.
    pub fn words(&mut self, len: usize) -> Vec<i32> {
        (0..len).map(|_| self.next_u32() as i32).collect()
    }
}

/// Generates `len` deterministic bytes from `seed`.
pub fn input_bytes(seed: u32, len: usize) -> Vec<u8> {
    XorShift32::new(seed).bytes(len)
}

/// Computes the AES S-box (multiplicative inverse in GF(2^8) followed by
/// the affine transform), so the table never has to be typed in.
pub fn aes_sbox() -> [u8; 256] {
    // Build log/antilog tables over GF(2^8) with generator 3.
    let mut sbox = [0u8; 256];
    let mut inv = [0u8; 256];
    let mut p: u8 = 1;
    let mut log = [0u8; 256];
    let mut alog = [0u8; 256];
    for (i, a) in alog.iter_mut().enumerate().take(255) {
        *a = p;
        log[p as usize] = i as u8;
        // p *= 3 in GF(2^8).
        let hi = p & 0x80;
        let mut q = p << 1;
        if hi != 0 {
            q ^= 0x1B;
        }
        p ^= q;
    }
    for i in 1..256 {
        inv[i] = alog[(255 - log[i] as usize) % 255];
    }
    for (i, s) in sbox.iter_mut().enumerate() {
        let x = inv[i];
        let mut y = x;
        let mut res = x;
        for _ in 0..4 {
            y = y.rotate_left(1);
            res ^= y;
        }
        *s = res ^ 0x63;
    }
    sbox
}

/// 8×8 scaled DCT basis: `T[u][x] = round(c(u) * cos((2x+1)uπ/16) * 1024)`
/// with `c(0) = 1/√2`, `c(u>0) = 1`.
pub fn dct_table() -> [i32; 64] {
    let mut t = [0i32; 64];
    for u in 0..8 {
        let cu = if u == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
        for x in 0..8 {
            let v = cu * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos();
            t[u * 8 + x] = (v * 1024.0).round() as i32;
        }
    }
    t
}

/// The JPEG luminance quantisation table (Annex K), in row-major order.
pub const QUANT_TABLE: [i32; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Zigzag scan order for an 8×8 block.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Fixed-point FFT twiddle tables: `(cos, sin)` of `2πi/n` scaled by 2^14,
/// for `i` in `0..n/2`.
pub fn fft_twiddles(n: usize) -> (Vec<i32>, Vec<i32>) {
    let mut cos_t = Vec::with_capacity(n / 2);
    let mut sin_t = Vec::with_capacity(n / 2);
    for i in 0..n / 2 {
        let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
        cos_t.push((a.cos() * 16384.0).round() as i32);
        sin_t.push((a.sin() * 16384.0).round() as i32);
    }
    (cos_t, sin_t)
}

// ---------------------------------------------------------------------
// Small IR-emission helpers shared by the workload builders.
// ---------------------------------------------------------------------

/// Emits `base + (idx << scale)` — the address of element `idx` of an array
/// of `1 << scale`-byte elements.
pub fn elem_addr(
    f: &mut FuncBuilder,
    base: impl Into<Operand>,
    idx: impl Into<Operand>,
    scale: u32,
) -> VReg {
    let idx = idx.into();
    if scale == 0 {
        return f.add(base, idx);
    }
    let off = f.shl(idx, scale as i32);
    f.add(base, off)
}

/// Emits `rotl32(x, n)` for a constant rotation.
pub fn rotl_const(f: &mut FuncBuilder, x: VReg, n: i32) -> VReg {
    let hi = f.shl(x, n);
    let lo = f.shrl(x, 32 - n);
    f.or(hi, lo)
}

/// Emits `|a - b|` for 32-bit signed values.
pub fn abs_diff(f: &mut FuncBuilder, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
    let d = f.sub(a, b);
    let neg = f.slt(d, 0);
    let nd = f.sub(0, d);
    f.select(neg, nd, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_is_deterministic_and_nontrivial() {
        let a = input_bytes(42, 64);
        let b = input_bytes(42, 64);
        assert_eq!(a, b);
        let c = input_bytes(43, 64);
        assert_ne!(a, c);
        // Not all identical bytes.
        assert!(a.iter().any(|&x| x != a[0]));
    }

    #[test]
    fn sbox_matches_known_values() {
        let s = aes_sbox();
        assert_eq!(s[0x00], 0x63);
        assert_eq!(s[0x01], 0x7c);
        assert_eq!(s[0x53], 0xed);
        assert_eq!(s[0xff], 0x16);
        // The S-box is a permutation.
        let mut seen = [false; 256];
        for &v in &s {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn dct_table_symmetries() {
        let t = dct_table();
        // Row 0 is constant (c(0) * 1024 / sqrt2 ≈ 724).
        for &v in &t[..8] {
            assert_eq!(v, 724);
        }
        // Row 4 follows the + − − + + − − + pattern of cos((2x+1)π/4).
        assert_eq!(t[4 * 8], t[4 * 8 + 7]);
        assert_eq!(t[4 * 8 + 1], t[4 * 8 + 2]);
        assert_eq!(t[4 * 8], -t[4 * 8 + 1]);
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &z in &ZIGZAG {
            assert!(!seen[z]);
            seen[z] = true;
        }
    }

    #[test]
    fn twiddles_have_expected_extremes() {
        let (c, s) = fft_twiddles(128);
        assert_eq!(c[0], 16384);
        assert_eq!(s[0], 0);
        assert_eq!(c[32], 0); // cos(π/2)
        assert_eq!(s[32], 16384); // sin(π/2)
        assert_eq!(c.len(), 64);
    }
}
