//! `djpeg` — DCT-based image decompression: run-length decode, dezigzag,
//! dequantise and inverse DCT back to a 24×24 8-bit image.
//!
//! The input stream is the output of the host-side `cjpeg` compressor,
//! delivered through the `read` syscall.

use vulnstack_vir::{FuncBuilder, ModuleBuilder, VReg};

use crate::cjpeg::compress;
use crate::util::{dct_table, elem_addr, input_bytes, QUANT_TABLE, ZIGZAG};
use crate::{Workload, WorkloadId};

/// Image edge length, matching `cjpeg`.
pub const DIM: usize = 24;
const SEED: u32 = 0xC19E_6024; // same source image as cjpeg
const IN_CAP: usize = 9 * (64 * 3 + 1);

/// Host-side decompressor (golden model).
fn decompress(stream: &[u8]) -> Vec<u8> {
    let t = dct_table();
    let mut out = vec![0u8; DIM * DIM];
    let mut pos = 0usize;
    for by in 0..3 {
        for bx in 0..3 {
            // Run-length decode into zigzag order, then scatter.
            let mut coefs = [0i32; 64];
            let mut z = 0usize;
            loop {
                let run = stream[pos];
                pos += 1;
                if run == 0xFF {
                    break;
                }
                z += run as usize;
                let v = i16::from_le_bytes([stream[pos], stream[pos + 1]]) as i32;
                pos += 2;
                coefs[ZIGZAG[z]] = v;
                z += 1;
            }
            // Dequantise.
            let mut g = [0i32; 64];
            for i in 0..64 {
                g[i] = coefs[i].wrapping_mul(QUANT_TABLE[i]);
            }
            // Separable inverse DCT: >>13 after each pass (total 26, the
            // inverse of the forward 18 plus the table scale; see
            // DESIGN.md).
            let mut r1 = [[0i32; 8]; 8];
            for v in 0..8 {
                for x in 0..8 {
                    let mut acc = 0i32;
                    for u in 0..8 {
                        acc = acc.wrapping_add(g[v * 8 + u].wrapping_mul(t[u * 8 + x]));
                    }
                    r1[v][x] = acc >> 13;
                }
            }
            for y in 0..8 {
                for x in 0..8 {
                    let mut acc = 0i32;
                    for (v, row) in r1.iter().enumerate() {
                        acc = acc.wrapping_add(row[x].wrapping_mul(t[v * 8 + y]));
                    }
                    let s = (acc >> 13) + 128;
                    let clamped = s.clamp(0, 255);
                    out[(by * 8 + y) * DIM + bx * 8 + x] = clamped as u8;
                }
            }
        }
    }
    out
}

/// Emits `Σ_i mem32[ap + 4*sa*i] * mem32[bp + 4*sb*i]` over `i in 0..8`.
fn emit_strided_dot8(f: &mut FuncBuilder, ap: VReg, sa: i32, bp: VReg, sb: i32) -> VReg {
    let acc = f.fresh();
    f.set_c(acc, 0);
    for i in 0..8i32 {
        let av = f.load32(ap, 4 * sa * i);
        let bv = f.load32(bp, 4 * sb * i);
        let prod = f.mul(av, bv);
        let s = f.add(acc, prod);
        f.set(acc, s);
    }
    acc
}

/// Builds the workload.
pub fn build() -> Workload {
    let img = input_bytes(SEED, DIM * DIM);
    let input = compress(&img);
    let expected_output = decompress(&input);
    let t = dct_table();

    let mut mb = ModuleBuilder::new("djpeg");
    let gin = mb.global_zeroed("stream", IN_CAP, 4);
    let gt = mb.global_words("dct", &t);
    let gq = mb.global_words("quant", &QUANT_TABLE);
    let zz_words: Vec<i32> = ZIGZAG.iter().map(|&z| z as i32).collect();
    let gzz = mb.global_words("zigzag", &zz_words);
    let gout = mb.global_zeroed("img", DIM * DIM, 4);

    let mut f = mb.function("main", 0);
    let inp = f.global_addr(gin);
    let tp = f.global_addr(gt);
    let qp = f.global_addr(gq);
    let zzp = f.global_addr(gzz);
    let outp = f.global_addr(gout);
    f.sys_read(inp, IN_CAP as i32);

    let g_slot = f.stack_slot(64 * 4, 4);
    let r1_slot = f.stack_slot(64 * 4, 4);
    let gp = f.slot_addr(g_slot);
    let r1p = f.slot_addr(r1_slot);

    let pos = f.fresh();
    f.set_c(pos, 0);

    f.for_range(0, 3, |f, by| {
        f.for_range(0, 3, |f, bx| {
            // Clear the coefficient block.
            f.for_range(0, 64, |f, i| {
                let p = elem_addr(f, gp, i, 2);
                f.store32(0, p, 0);
            });
            // RLE decode; coefficients are dequantised as they land.
            let z = f.fresh();
            f.set_c(z, 0);
            let brk = f.fresh();
            f.set_c(brk, 0);
            f.while_loop(
                |f| f.eq(brk, 0),
                |f| {
                    let bp0 = f.add(inp, pos);
                    let run = f.load8u(bp0, 0);
                    let p1 = f.add(pos, 1);
                    f.set(pos, p1);
                    let end = f.eq(run, 0xFF);
                    f.if_else(
                        end,
                        |f| f.set_c(brk, 1),
                        |f| {
                            let z2 = f.add(z, run);
                            f.set(z, z2);
                            let vp = f.add(inp, pos);
                            let lo = f.load8u(vp, 0);
                            let hi = f.load8s(vp, 1);
                            let hs = f.shl(hi, 8);
                            let val = f.or(hs, lo);
                            let p2 = f.add(pos, 2);
                            f.set(pos, p2);
                            let zzi = elem_addr(f, zzp, z, 2);
                            let nat = f.load32(zzi, 0);
                            let qe = elem_addr(f, qp, nat, 2);
                            let qv = f.load32(qe, 0);
                            let deq = f.mul(val, qv);
                            let dst = elem_addr(f, gp, nat, 2);
                            f.store32(deq, dst, 0);
                            let z3 = f.add(z, 1);
                            f.set(z, z3);
                        },
                    );
                },
            );
            // Inverse DCT, first pass: r1[v*8+x] = (Σ_u g[v*8+u]*T[u*8+x]) >> 13.
            f.for_range(0, 8, |f, v| {
                let vrow_idx = f.shl(v, 3);
                let grow = elem_addr(f, gp, vrow_idx, 2);
                let dstrow = elem_addr(f, r1p, vrow_idx, 2);
                for x in 0..8i32 {
                    // Σ_u g[v][u] * T[u][x]: stride 1 over g, 8 over T.
                    let tcol = f.add(tp, 4 * x);
                    let acc = emit_strided_dot8(f, grow, 1, tcol, 8);
                    let sh = f.shra(acc, 13);
                    f.store32(sh, dstrow, 4 * x);
                }
            });
            // Second pass + clamp + store pixels.
            let rowbase = f.mul(by, (8 * DIM) as i32);
            let colbase = f.shl(bx, 3);
            let blkbase = f.add(rowbase, colbase);
            f.for_range(0, 8, |f, y| {
                let yoff = f.mul(y, DIM as i32);
                let dstrow0 = f.add(blkbase, yoff);
                let dstrow = f.add(outp, dstrow0);
                for x in 0..8i32 {
                    // Σ_v r1[v][x] * T[v][y]: both stride 8.
                    let r1col = f.add(r1p, 4 * x);
                    let tcol = {
                        let o = f.shl(y, 2);
                        f.add(tp, o)
                    };
                    let acc = emit_strided_dot8(f, r1col, 8, tcol, 8);
                    let sh = f.shra(acc, 13);
                    let biased = f.add(sh, 128);
                    let neg = f.slt(biased, 0);
                    let lo_clamped = f.select(neg, 0, biased);
                    let over = f.cmp(vulnstack_vir::CmpPred::SGt, lo_clamped, 255);
                    let px = f.select(over, 255, lo_clamped);
                    f.store8(px, dstrow, x);
                }
            });
        });
    });

    f.sys_write(outp, (DIM * DIM) as i32);
    f.sys_exit(0);
    f.ret(None);
    mb.finish_function(f);

    Workload {
        id: WorkloadId::Djpeg,
        module: mb.finish().expect("djpeg module verifies"),
        input,
        expected_output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_a_reasonable_approximation() {
        // DCT compression is lossy but the decoded image must stay close
        // to the source for a flat image (only DC survives).
        let flat = vec![200u8; DIM * DIM];
        let rt = decompress(&compress(&flat));
        for &p in &rt {
            assert!((p as i32 - 200).abs() <= 8, "pixel {p} too far from 200");
        }
    }

    #[test]
    fn interpreter_matches_golden() {
        let w = build();
        let out = vulnstack_vir::interp::Interpreter::new(&w.module)
            .with_input(w.input.clone())
            .run()
            .unwrap();
        assert_eq!(out.output, w.expected_output);
    }
}
