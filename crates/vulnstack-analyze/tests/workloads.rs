//! Runs the full static pipeline over every workload in the suite on both
//! ISAs — the lint pass doubles as a binary-level regression test on the
//! compiler: it must not emit dead stores, unreachable blocks,
//! undecodable words, or uninitialised reads.

use vulnstack_analyze::analyze;
use vulnstack_compiler::{compile, CompileOpts};
use vulnstack_isa::Isa;
use vulnstack_workloads::WorkloadId;

#[test]
fn all_workloads_analyze_clean_on_both_isas() {
    for &isa in &[Isa::Va32, Isa::Va64] {
        for id in WorkloadId::ALL {
            let w = id.build();
            let compiled = compile(&w.module, isa, &CompileOpts::default()).unwrap();
            let sa = analyze(&compiled);

            assert!(
                sa.cfg.undecodable.is_empty(),
                "{} {}: undecodable words {:?}",
                isa.name(),
                id.name(),
                sa.cfg.undecodable
            );
            assert!(
                sa.lints.is_empty(),
                "{} {}: {} lints:\n{}",
                isa.name(),
                id.name(),
                sa.lints.len(),
                sa.lints
                    .iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );

            // Every function decodes fully and has a reachable entry.
            for f in &sa.cfg.funcs {
                assert!(
                    !f.blocks.is_empty(),
                    "{}: empty function {}",
                    id.name(),
                    f.name
                );
                assert!(f.blocks[0].reachable);
            }

            // Static PVF is a meaningful fraction; real workloads keep a
            // few registers live most of the time.
            assert!(
                sa.pvf.rf_pvf > 0.02 && sa.pvf.rf_pvf < 1.0,
                "{} {}: static RF PVF {}",
                isa.name(),
                id.name(),
                sa.pvf.rf_pvf
            );
            // Loops exist in every workload in the suite.
            let max_depth = sa
                .cfg
                .funcs
                .iter()
                .flat_map(|f| f.blocks.iter().map(|b| b.loop_depth))
                .max()
                .unwrap_or(0);
            assert!(
                max_depth >= 1,
                "{} {}: no loops detected",
                isa.name(),
                id.name()
            );
            eprintln!(
                "{} {}: {}",
                isa.name(),
                id.name(),
                sa.summary().trim().replace('\n', " | ")
            );
        }
    }
}

#[test]
fn analysis_is_deterministic() {
    let w = WorkloadId::Crc32.build();
    let compiled = compile(&w.module, Isa::Va64, &CompileOpts::default()).unwrap();
    let a = analyze(&compiled);
    let b = analyze(&compiled);
    assert_eq!(a.pvf.per_reg, b.pvf.per_reg);
    assert_eq!(a.lints.len(), b.lints.len());
}
