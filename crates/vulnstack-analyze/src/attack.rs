//! Static attack-surface reports: where can a fault *subvert* a program,
//! per fault model, without running it?
//!
//! The injection campaigns measure how often a fault changes the
//! architectural outcome; this module asks the complementary security
//! question — which specific instructions an adversary with an ARMORY
//! fault menu ([`FaultModel`]) would target. The report enumerates, for
//! every reachable instruction:
//!
//! * **Skippable guards** — conditional branches an instruction-skip
//!   fault removes entirely (the classic ARMORY bypass: the bounds check
//!   simply never executes).
//! * **Corruptible conditions / addresses / targets** — operands whose
//!   corruption directly subverts a branch decision, an address
//!   computation, or an indirect control transfer.
//! * **Corruptible syscall arguments** — registers a syscall reads; a
//!   fault here crosses the user/kernel privilege boundary by changing
//!   what the kernel is asked to do.
//! * **Stale values on skip** — definitions whose *old* value is still
//!   consumed by a downstream branch/address/syscall sink if the
//!   defining instruction is skipped (judged with the transient taint of
//!   [`crate::taint`]).
//! * **Lost side effects on skip** — stores, syscalls and system-register
//!   writes that vanish when skipped.
//!
//! Findings use the lint message idiom (`[{kind}] {func}+{off}: ...`) so
//! they diff cleanly in golden files and CI baselines.

use std::fmt;

use vulnstack_isa::{CallConv, Op, Reg, SrcRole};

use crate::cfg::{call_graph, ModuleCfg};
use crate::taint::{module_taint, FaultModel, ModuleTaint, SinkSet};

/// What kind of statically-identified subversion a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// A conditional branch removed by an instruction skip.
    SkippableGuard,
    /// A branch whose condition operands can be corrupted.
    CorruptibleCondition,
    /// A load/store whose address operand can be corrupted.
    CorruptibleAddress,
    /// An indirect jump/call target or trap-return address that can be
    /// corrupted.
    CorruptibleTarget,
    /// A syscall whose argument registers can be corrupted.
    CorruptibleSyscallArg,
    /// A definition whose stale prior value still reaches a sink if the
    /// defining instruction is skipped.
    StaleValueOnSkip,
    /// A side-effecting instruction (store/syscall/sysreg write) that an
    /// instruction skip silently drops.
    LostSideEffectOnSkip,
}

impl FindingKind {
    /// Stable kebab-case report name.
    pub fn name(&self) -> &'static str {
        match self {
            FindingKind::SkippableGuard => "skippable-guard",
            FindingKind::CorruptibleCondition => "corruptible-condition",
            FindingKind::CorruptibleAddress => "corruptible-address",
            FindingKind::CorruptibleTarget => "corruptible-target",
            FindingKind::CorruptibleSyscallArg => "corruptible-syscall-arg",
            FindingKind::StaleValueOnSkip => "stale-value-on-skip",
            FindingKind::LostSideEffectOnSkip => "lost-side-effect-on-skip",
        }
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One statically-identified attack point.
#[derive(Debug, Clone)]
pub struct AttackFinding {
    /// Containing function name.
    pub func: String,
    /// Word offset of the function's first instruction.
    pub func_start_word: u32,
    /// Absolute word offset of the instruction.
    pub word_off: u32,
    /// Finding category.
    pub kind: FindingKind,
    /// Fault models that realise this finding.
    pub models: Vec<FaultModel>,
    /// Registers an adversary would corrupt (empty for pure-skip
    /// findings).
    pub regs: Vec<Reg>,
    /// Sinks the corruption reaches (for value-corruption findings).
    pub sinks: SinkSet,
    /// Human-readable disassembly/context.
    pub message: String,
}

impl AttackFinding {
    fn rel(&self) -> u32 {
        (self.word_off - self.func_start_word) * 4
    }
}

impl fmt::Display for AttackFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let models: Vec<&str> = self.models.iter().map(|m| m.name()).collect();
        write!(
            f,
            "[{}] {}+{:#x}: {} (models: {})",
            self.kind,
            self.func,
            self.rel(),
            self.message,
            models.join(",")
        )
    }
}

/// Per-function attack-surface densities: how many (instruction,
/// register) points can reach each sink kind.
#[derive(Debug, Clone)]
pub struct FuncAttackStats {
    /// Function name.
    pub name: String,
    /// Reachable, decodable instructions.
    pub reachable_instrs: u32,
    /// Transient-model reach points per sink: `[branch, addr, sysarg]`.
    pub reach_points: [u64; 3],
    /// Stuck-at reach points per sink (a superset of the transient
    /// counts — persistence only grows reachability).
    pub stuck_reach_points: [u64; 3],
}

/// The full static attack-surface report for one module.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Module name (workload or image label).
    pub module: String,
    /// ISA name.
    pub isa: String,
    /// All findings, sorted by word offset then kind name.
    pub findings: Vec<AttackFinding>,
    /// Per-function densities, in text layout order.
    pub funcs: Vec<FuncAttackStats>,
}

impl AttackReport {
    /// Findings of one kind.
    pub fn of_kind(&self, kind: FindingKind) -> impl Iterator<Item = &AttackFinding> {
        self.findings.iter().filter(move |f| f.kind == kind)
    }

    /// Stable one-finding-per-line rendering (golden-file friendly).
    pub fn finding_lines(&self) -> Vec<String> {
        self.findings.iter().map(|f| f.to_string()).collect()
    }

    /// Short human summary: counts per finding kind.
    pub fn summary(&self) -> String {
        let kinds = [
            FindingKind::SkippableGuard,
            FindingKind::CorruptibleCondition,
            FindingKind::CorruptibleAddress,
            FindingKind::CorruptibleTarget,
            FindingKind::CorruptibleSyscallArg,
            FindingKind::StaleValueOnSkip,
            FindingKind::LostSideEffectOnSkip,
        ];
        let mut parts = Vec::new();
        for k in kinds {
            let n = self.of_kind(k).count();
            if n > 0 {
                parts.push(format!("{k}: {n}"));
            }
        }
        format!(
            "attack surface [{} {}]: {} findings ({})",
            self.module,
            self.isa,
            self.findings.len(),
            parts.join(", ")
        )
    }

    /// Serializes the report as a JSON object (hand-rolled; the
    /// workspace carries no JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"module\": {},\n", json_str(&self.module)));
        out.push_str(&format!("  \"isa\": {},\n", json_str(&self.isa)));
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let models: Vec<String> = f.models.iter().map(|m| json_str(m.name())).collect();
            let regs: Vec<String> = f.regs.iter().map(|r| r.0.to_string()).collect();
            out.push_str(&format!(
                "    {{\"kind\": {}, \"func\": {}, \"word_off\": {}, \"rel_off\": {}, \
                 \"models\": [{}], \"regs\": [{}], \"sinks\": {}, \"message\": {}}}{}\n",
                json_str(f.kind.name()),
                json_str(&f.func),
                f.word_off,
                f.rel(),
                models.join(", "),
                regs.join(", "),
                json_str(&f.sinks.to_string()),
                json_str(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"funcs\": [\n");
        for (i, s) in self.funcs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"reachable_instrs\": {}, \
                 \"reach_points\": [{}, {}, {}], \"stuck_reach_points\": [{}, {}, {}]}}{}\n",
                json_str(&s.name),
                s.reachable_instrs,
                s.reach_points[0],
                s.reach_points[1],
                s.reach_points[2],
                s.stuck_reach_points[0],
                s.stuck_reach_points[1],
                s.stuck_reach_points[2],
                if i + 1 < self.funcs.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

const VALUE_MODELS: [FaultModel; 3] = [
    FaultModel::SingleBitFlip,
    FaultModel::ByteCorrupt,
    FaultModel::StuckAt,
];

/// Computes the static attack surface of `cfg` under every fault model.
///
/// `module` labels the report (workload name, `kernel`, ...).
pub fn attack_surface(cfg: &ModuleCfg, module: &str) -> AttackReport {
    let isa = cfg.isa;
    let cc = CallConv::new(isa);
    let zero = isa.zero();
    let cg = call_graph(cfg);
    let transient: ModuleTaint = module_taint(cfg, &cg, false);
    let stuck: ModuleTaint = module_taint(cfg, &cg, true);

    let mut findings = Vec::new();
    let mut funcs = Vec::new();

    for (fi, f) in cfg.funcs.iter().enumerate() {
        let t = &transient.funcs[fi];
        let s = &stuck.funcs[fi];
        let mut stats = FuncAttackStats {
            name: f.name.clone(),
            reachable_instrs: 0,
            reach_points: [0; 3],
            stuck_reach_points: [0; 3],
        };
        for (i, dw) in f.instrs.iter().enumerate() {
            let Some(instr) = &dw.instr else { continue };
            if !f.instr_reachable(i) {
                continue;
            }
            stats.reachable_instrs += 1;
            let point_sinks = [
                SinkSet::BRANCH_COND,
                SinkSet::MEM_ADDR,
                SinkSet::SYSCALL_ARG,
            ];
            for r in 0..isa.num_regs() as usize {
                if zero.map(|z| z.0 as usize == r) == Some(true) {
                    continue;
                }
                for (k, &sink) in point_sinks.iter().enumerate() {
                    if t.before[i][r].contains(sink) {
                        stats.reach_points[k] += 1;
                    }
                    if s.before[i][r].contains(sink) {
                        stats.stuck_reach_points[k] += 1;
                    }
                }
            }

            let corruptible = |r: &Reg| -> bool { zero != Some(*r) };
            let mut push = |kind: FindingKind,
                            models: Vec<FaultModel>,
                            regs: Vec<Reg>,
                            sinks: SinkSet,
                            message: String| {
                findings.push(AttackFinding {
                    func: f.name.clone(),
                    func_start_word: f.start_word,
                    word_off: dw.word_off,
                    kind,
                    models,
                    regs,
                    sinks,
                    message,
                });
            };

            let fmt = instr.op.format();
            if fmt == vulnstack_isa::op::Format::B {
                push(
                    FindingKind::SkippableGuard,
                    vec![FaultModel::InstrSkip],
                    Vec::new(),
                    SinkSet::empty(),
                    format!("guard `{instr}` never executes if skipped"),
                );
                let regs: Vec<Reg> = instr.regs_read().into_iter().filter(&corruptible).collect();
                if !regs.is_empty() {
                    push(
                        FindingKind::CorruptibleCondition,
                        VALUE_MODELS.to_vec(),
                        regs,
                        SinkSet::BRANCH_COND,
                        format!("condition of `{instr}` decided by corruptible registers"),
                    );
                }
            }

            for (r, role) in instr.regs_read().into_iter().zip(instr.src_roles()) {
                if !corruptible(&r) {
                    continue;
                }
                match role {
                    SrcRole::MemBase => push(
                        FindingKind::CorruptibleAddress,
                        VALUE_MODELS.to_vec(),
                        vec![r],
                        SinkSet::MEM_ADDR,
                        format!("address of `{instr}` computed from corruptible base"),
                    ),
                    SrcRole::JumpTarget | SrcRole::SysregData => push(
                        FindingKind::CorruptibleTarget,
                        VALUE_MODELS.to_vec(),
                        vec![r],
                        SinkSet::BRANCH_COND,
                        format!("control target of `{instr}` held in corruptible register"),
                    ),
                    _ => {}
                }
            }

            match instr.op {
                Op::Syscall => {
                    let mut regs: Vec<Reg> = cc.args();
                    regs.push(cc.syscall_num());
                    regs.retain(|r| corruptible(r));
                    push(
                        FindingKind::CorruptibleSyscallArg,
                        VALUE_MODELS.to_vec(),
                        regs,
                        SinkSet::SYSCALL_ARG,
                        "syscall arguments cross the privilege boundary".to_string(),
                    );
                    push(
                        FindingKind::LostSideEffectOnSkip,
                        vec![FaultModel::InstrSkip],
                        Vec::new(),
                        SinkSet::empty(),
                        "skipping `syscall` drops the requested kernel service".to_string(),
                    );
                }
                Op::Mtsr => push(
                    FindingKind::LostSideEffectOnSkip,
                    vec![FaultModel::InstrSkip],
                    Vec::new(),
                    SinkSet::empty(),
                    format!("skipping `{instr}` drops a system-register write"),
                ),
                _ if fmt == vulnstack_isa::op::Format::Store => push(
                    FindingKind::LostSideEffectOnSkip,
                    vec![FaultModel::InstrSkip],
                    Vec::new(),
                    SinkSet::empty(),
                    format!("skipping `{instr}` drops a memory write"),
                ),
                _ => {}
            }

            // A skipped definition leaves the destination's *previous*
            // value live; dangerous iff that stale value still reaches a
            // sink downstream (per the transient taint after this
            // instruction).
            let mut stale = SinkSet::empty();
            let mut stale_regs = Vec::new();
            for r in instr.regs_written(isa) {
                if !corruptible(&r) {
                    continue;
                }
                let reach = t.after[i][r.0 as usize];
                if !reach.is_empty() {
                    stale |= reach;
                    stale_regs.push(r);
                }
            }
            if !stale_regs.is_empty() && fmt != vulnstack_isa::op::Format::B {
                push(
                    FindingKind::StaleValueOnSkip,
                    vec![FaultModel::InstrSkip],
                    stale_regs,
                    stale,
                    format!("skipping `{instr}` leaves a stale value feeding {stale}"),
                );
            }
        }
        funcs.push(stats);
    }

    findings.sort_by(|a, b| {
        a.word_off
            .cmp(&b.word_off)
            .then_with(|| a.kind.name().cmp(b.kind.name()))
    });

    AttackReport {
        module: module.to_string(),
        isa: format!("{:?}", isa),
        findings,
        funcs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use vulnstack_compiler::CompiledModule;
    use vulnstack_isa::{Instr, Isa};

    fn module_of(instrs: &[Instr], isa: Isa) -> ModuleCfg {
        let text: Vec<u32> = instrs.iter().map(|i| i.encode(isa).unwrap()).collect();
        let entry = text.len() as u32;
        let m = CompiledModule {
            isa,
            text,
            data: Vec::new(),
            global_addrs: Vec::new(),
            func_offsets: vec![0],
            func_names: vec!["f".to_string()],
            entry_offset: entry,
            data_size: 0,
            func_sizes: vec![instrs.len() as u32],
        };
        build_cfg(&m)
    }

    #[test]
    fn guard_and_condition_findings_on_a_bounds_check() {
        let isa = Isa::Va32;
        // The canonical guard shape: compare, branch, fallthrough work.
        let prog = [
            Instr::alu_rr(Op::Sltu, Reg(3), Reg(0), Reg(2)),
            Instr::branch(Op::Bne, Reg(3), Reg(4), 8),
            Instr::store(Op::Sw, Reg(0), Reg(5), 0),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let report = attack_surface(&module_of(&prog, isa), "toy");
        assert_eq!(report.of_kind(FindingKind::SkippableGuard).count(), 1);
        let cond = report
            .of_kind(FindingKind::CorruptibleCondition)
            .next()
            .expect("branch condition finding");
        assert!(cond.regs.contains(&Reg(3)));
        assert!(cond.models.contains(&FaultModel::StuckAt));
        // The store base is a corruptible address; the store itself a
        // skippable side effect.
        assert_eq!(report.of_kind(FindingKind::CorruptibleAddress).count(), 1);
        assert!(report.of_kind(FindingKind::LostSideEffectOnSkip).count() >= 1);
        // The Sltu defines the branch condition: skipping it leaves a
        // stale value feeding the branch.
        let stale = report
            .of_kind(FindingKind::StaleValueOnSkip)
            .next()
            .expect("stale value finding");
        assert!(stale.sinks.contains(SinkSet::BRANCH_COND));
    }

    #[test]
    fn syscall_arguments_are_reported() {
        let isa = Isa::Va64;
        let prog = [Instr::sys(Op::Syscall), Instr::jump_reg(Op::Jmpr, isa.lr())];
        let report = attack_surface(&module_of(&prog, isa), "toy");
        let f = report
            .of_kind(FindingKind::CorruptibleSyscallArg)
            .next()
            .expect("syscall finding");
        assert!(f.regs.contains(&CallConv::new(isa).syscall_num()));
    }

    #[test]
    fn zero_register_is_never_a_corruptible_operand() {
        let isa = Isa::Va64;
        let z = isa.zero().unwrap();
        let prog = [
            Instr::branch(Op::Bne, Reg(4), z, 8),
            Instr::sys(Op::Halt),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let report = attack_surface(&module_of(&prog, isa), "toy");
        for f in &report.findings {
            assert!(!f.regs.contains(&z), "zero reg leaked into: {f}");
        }
    }

    #[test]
    fn json_is_balanced_and_labelled() {
        let isa = Isa::Va32;
        let prog = [
            Instr::branch(Op::Beq, Reg(1), Reg(2), 4),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let report = attack_surface(&module_of(&prog, isa), "toy");
        let j = report.to_json();
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced JSON: {j}"
        );
        assert!(j.contains("\"module\": \"toy\""));
        assert!(j.contains("skippable-guard"));
    }
}
