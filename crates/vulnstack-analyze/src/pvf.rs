//! Static PVF estimation from liveness intervals and a static
//! block-frequency model.
//!
//! The dynamic PVF campaigns in `vulnstack-gefin` measure architectural
//! vulnerability by injecting into a *running* program. This module
//! produces the zero-execution analogue: every instruction point is
//! weighted by `LOOP_WEIGHT^depth` (the classic static branch-frequency
//! heuristic — each loop level is assumed to iterate [`LOOP_WEIGHT`]
//! times), and a register's static PVF is its weighted live-bit fraction
//! across all reachable instruction points.
//!
//! Like hardware ACE analysis, the result is deliberately *pessimistic*
//! relative to measurement: liveness cannot see logical masking (a live
//! bit that never changes the output still counts), the block-frequency
//! model cannot see early exits, and call-site argument liveness is
//! over-approximated to the full ABI argument set. The companion
//! cross-check test in the workspace root asserts the resulting ordering
//! `static PVF >= dynamic ACE >= injection AVF` on real workloads.

use vulnstack_isa::Isa;

use crate::cfg::ModuleCfg;
use crate::liveness::FuncLiveness;

/// Assumed iteration count per loop-nesting level in the static
/// block-frequency model.
pub const LOOP_WEIGHT: f64 = 10.0;

/// Loop depths beyond this are clamped so weights stay finite.
pub const MAX_LOOP_DEPTH: u32 = 6;

/// Static PVF results for one compiled module.
#[derive(Debug, Clone)]
pub struct StaticPvf {
    /// Target ISA.
    pub isa: Isa,
    /// Per-architectural-register static PVF (weighted live-bit fraction).
    pub per_reg: Vec<f64>,
    /// Whole-register-file static PVF: weighted live bits over weighted
    /// capacity bits.
    pub rf_pvf: f64,
    /// Per-function whole-RF static PVF, `(name, pvf, weight)`.
    pub per_func: Vec<(String, f64, f64)>,
    /// Total static weight (weighted instruction count) across the module.
    pub total_weight: f64,
}

/// Weight of one instruction point at loop `depth`.
///
/// Depths beyond [`MAX_LOOP_DEPTH`] clamp (keeping weights finite on
/// pathologically deep nests) and warn once on stderr, in the same
/// warn-once-don't-fail spirit as the malformed-env-knob parser: the
/// estimate silently losing depth resolution would be worse than the
/// noise of one diagnostic line.
pub fn block_weight(depth: u32) -> f64 {
    if depth > MAX_LOOP_DEPTH {
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| {
            eprintln!(
                "warning: vulnstack-analyze: loop depth {depth} exceeds MAX_LOOP_DEPTH \
                 ({MAX_LOOP_DEPTH}); clamping block weights — static PVF loses depth \
                 resolution past this point"
            );
        });
    }
    LOOP_WEIGHT.powi(depth.min(MAX_LOOP_DEPTH) as i32)
}

/// Computes static PVF for a module from its CFG and per-function liveness.
///
/// `liveness` must be parallel to `cfg.funcs` (as produced by
/// [`crate::analyze`]). Unreachable blocks contribute nothing.
pub fn static_pvf(cfg: &ModuleCfg, liveness: &[FuncLiveness]) -> StaticPvf {
    let isa = cfg.isa;
    let nregs = isa.num_regs() as usize;
    let xlen = f64::from(isa.xlen());

    let mut reg_weighted_bits = vec![0.0f64; nregs];
    let mut total_weight = 0.0f64;
    let mut per_func = Vec::with_capacity(cfg.funcs.len());

    for (f, live) in cfg.funcs.iter().zip(liveness.iter()) {
        let mut f_bits = 0.0f64;
        let mut f_weight = 0.0f64;
        for b in &f.blocks {
            if !b.reachable {
                continue;
            }
            let w = block_weight(b.loop_depth);
            for i in b.range.clone() {
                f_weight += w;
                for (r, &width) in live.live_before[i].iter().enumerate() {
                    let bits = w * f64::from(width);
                    reg_weighted_bits[r] += bits;
                    f_bits += bits;
                }
            }
        }
        let f_pvf = if f_weight > 0.0 {
            f_bits / (f_weight * nregs as f64 * xlen)
        } else {
            0.0
        };
        per_func.push((f.name.clone(), f_pvf, f_weight));
        total_weight += f_weight;
    }

    let per_reg: Vec<f64> = reg_weighted_bits
        .iter()
        .map(|&bits| {
            if total_weight > 0.0 {
                bits / (total_weight * xlen)
            } else {
                0.0
            }
        })
        .collect();
    let rf_pvf = per_reg.iter().sum::<f64>() / nregs as f64;

    StaticPvf {
        isa,
        per_reg,
        rf_pvf,
        per_func,
        total_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use crate::liveness::analyze_func;
    use vulnstack_compiler::CompiledModule;
    use vulnstack_isa::{Instr, Op, Reg};

    fn pvf_of(instrs: &[Instr], isa: Isa) -> StaticPvf {
        let text: Vec<u32> = instrs.iter().map(|i| i.encode(isa).unwrap()).collect();
        let entry = text.len() as u32;
        let m = CompiledModule {
            isa,
            text,
            data: Vec::new(),
            global_addrs: Vec::new(),
            func_offsets: vec![0],
            func_names: vec!["f".to_string()],
            entry_offset: entry,
            data_size: 0,
            func_sizes: vec![instrs.len() as u32],
        };
        let cfg = build_cfg(&m);
        let live: Vec<_> = cfg.funcs.iter().map(|f| analyze_func(f, isa)).collect();
        static_pvf(&cfg, &live)
    }

    #[test]
    fn pvf_is_a_fraction_and_tracks_liveness() {
        let isa = Isa::Va32;
        let prog = [
            Instr::alu_imm(Op::Addi, Reg(4), Reg(1), 1),
            Instr::alu_rr(Op::Add, Reg(0), Reg(4), Reg(4)),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let p = pvf_of(&prog, isa);
        assert!(p.rf_pvf > 0.0 && p.rf_pvf <= 1.0, "{}", p.rf_pvf);
        // r4 is live for part of the function; sp/lr/callee-saved are live
        // throughout (exit set), so their PVF dominates r4's.
        assert!(p.per_reg[4] > 0.0);
        assert!(p.per_reg[isa.sp().0 as usize] > p.per_reg[4]);
    }

    #[test]
    fn loop_bodies_dominate_the_weight() {
        let isa = Isa::Va32;
        // A 2-instruction loop plus a 2-instruction tail: the loop should
        // carry LOOP_WEIGHT times the weight of straight-line code.
        let prog = [
            Instr::alu_imm(Op::Addi, Reg(4), Reg(4), -1),
            Instr::branch(Op::Bne, Reg(4), Reg(2), -4),
            Instr::alu_rr(Op::Add, Reg(0), Reg(4), Reg(4)),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let p = pvf_of(&prog, isa);
        // total = 2 instrs * 10 + 2 instrs * 1 = 22.
        assert!((p.total_weight - 22.0).abs() < 1e-9, "{}", p.total_weight);
    }

    #[test]
    fn weight_clamps_at_max_depth() {
        assert_eq!(
            block_weight(MAX_LOOP_DEPTH),
            block_weight(MAX_LOOP_DEPTH + 5)
        );
    }
}
