//! A generic worklist dataflow solver over a recovered [`FuncCfg`].
//!
//! Every block-structured analysis in this crate — backward liveness,
//! the fault-model taint pass — is an instance of one fixed-point
//! scheme: facts attached to block boundaries, a join that merges facts
//! flowing along CFG edges, and a per-instruction transfer function
//! applied through each block in the analysis direction. This module
//! factors that scheme out so a new analysis is nothing but a
//! [`Transfer`] implementation.
//!
//! The solver initialises every block fact to the analysis
//! bottom element, seeds boundary blocks (exit blocks for backward
//! analyses, the entry block for forward ones) with the boundary fact,
//! and iterates a worklist until no fact changes. Because joins are
//! required to be monotone (they only ever *add* information, as
//! signalled by their `bool` return), termination follows from the
//! finite fact lattice every instance here uses.

use std::collections::VecDeque;

use crate::cfg::FuncCfg;

/// Direction a dataflow analysis propagates facts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors to successors.
    Forward,
    /// Facts flow from successors to predecessors.
    Backward,
}

/// One dataflow analysis: the lattice and transfer function the generic
/// solver iterates.
pub trait Transfer {
    /// The per-program-point fact (e.g. a live-width vector, a per-register
    /// sink-reachability vector).
    type Fact: Clone + PartialEq;

    /// Propagation direction.
    fn direction(&self) -> Direction;

    /// The lattice bottom: the fact every block starts from.
    fn bottom(&self, f: &FuncCfg) -> Self::Fact;

    /// The fact holding at the analysis boundary: function exit for
    /// backward analyses (applied to blocks with no successors), function
    /// entry for forward ones (applied to block 0).
    fn boundary(&self, f: &FuncCfg) -> Self::Fact;

    /// Joins `src` into `dst`, returning whether `dst` changed. Must be
    /// monotone: repeated joins of the same fact must converge.
    fn join(&self, dst: &mut Self::Fact, src: &Self::Fact) -> bool;

    /// Applies instruction `i`'s transfer function to `fact` in the
    /// analysis direction (for backward analyses `fact` is the state
    /// *after* the instruction and becomes the state *before* it).
    fn transfer(&self, f: &FuncCfg, i: usize, fact: &mut Self::Fact);
}

/// Converged facts at block boundaries, in program order: `entry[b]`
/// holds at the top of block `b`, `exit[b]` at its bottom — regardless
/// of analysis direction.
#[derive(Debug, Clone)]
pub struct BlockFacts<F> {
    /// Fact at each block entry.
    pub entry: Vec<F>,
    /// Fact at each block exit.
    pub exit: Vec<F>,
}

/// Runs `a` to a fixed point over `f`'s blocks.
pub fn solve<A: Transfer>(a: &A, f: &FuncCfg) -> BlockFacts<A::Fact> {
    let nblocks = f.blocks.len();
    let bottom = a.bottom(f);
    let mut entry = vec![bottom.clone(); nblocks];
    let mut exit = vec![bottom.clone(); nblocks];
    if nblocks == 0 {
        return BlockFacts { entry, exit };
    }
    let boundary = a.boundary(f);
    let backward = a.direction() == Direction::Backward;

    // Seed every block once; re-queue dependents on change.
    let mut queue: VecDeque<usize> = if backward {
        (0..nblocks).rev().collect()
    } else {
        (0..nblocks).collect()
    };
    let mut queued = vec![true; nblocks];

    while let Some(b) = queue.pop_front() {
        queued[b] = false;
        if backward {
            // Exit fact: join of successors' entries, or the boundary
            // fact at function exits.
            let mut fact = if f.blocks[b].succs.is_empty() {
                boundary.clone()
            } else {
                let mut x = bottom.clone();
                for &s in &f.blocks[b].succs {
                    a.join(&mut x, &entry[s]);
                }
                x
            };
            exit[b] = fact.clone();
            for i in f.blocks[b].range.clone().rev() {
                a.transfer(f, i, &mut fact);
            }
            if a.join(&mut entry[b], &fact) {
                for &p in &f.blocks[b].preds {
                    if !queued[p] {
                        queued[p] = true;
                        queue.push_back(p);
                    }
                }
            }
        } else {
            let mut fact = if b == 0 {
                let mut x = boundary.clone();
                for &p in &f.blocks[b].preds {
                    a.join(&mut x, &exit[p]);
                }
                x
            } else {
                let mut x = bottom.clone();
                for &p in &f.blocks[b].preds {
                    a.join(&mut x, &exit[p]);
                }
                x
            };
            entry[b] = fact.clone();
            for i in f.blocks[b].range.clone() {
                a.transfer(f, i, &mut fact);
            }
            if a.join(&mut exit[b], &fact) {
                for &s in &f.blocks[b].succs {
                    if !queued[s] {
                        queued[s] = true;
                        queue.push_back(s);
                    }
                }
            }
        }
    }

    BlockFacts { entry, exit }
}

/// Materialises per-instruction facts from converged block facts:
/// `(before, after)` states for every instruction, in program order.
pub fn instr_facts<A: Transfer>(
    a: &A,
    f: &FuncCfg,
    facts: &BlockFacts<A::Fact>,
) -> (Vec<A::Fact>, Vec<A::Fact>) {
    let n = f.instrs.len();
    let bottom = a.bottom(f);
    let mut before = vec![bottom.clone(); n];
    let mut after = vec![bottom; n];
    for (b, block) in f.blocks.iter().enumerate() {
        match a.direction() {
            Direction::Backward => {
                let mut cur = facts.exit[b].clone();
                for i in block.range.clone().rev() {
                    after[i] = cur.clone();
                    a.transfer(f, i, &mut cur);
                    before[i] = cur.clone();
                }
            }
            Direction::Forward => {
                let mut cur = facts.entry[b].clone();
                for i in block.range.clone() {
                    before[i] = cur.clone();
                    a.transfer(f, i, &mut cur);
                    after[i] = cur.clone();
                }
            }
        }
    }
    (before, after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use vulnstack_compiler::CompiledModule;
    use vulnstack_isa::{Instr, Isa, Op, Reg};

    fn func_of(instrs: &[Instr], isa: Isa) -> FuncCfg {
        let text: Vec<u32> = instrs.iter().map(|i| i.encode(isa).unwrap()).collect();
        let entry = text.len() as u32;
        let m = CompiledModule {
            isa,
            text,
            data: Vec::new(),
            global_addrs: Vec::new(),
            func_offsets: vec![0],
            func_names: vec!["f".to_string()],
            entry_offset: entry,
            data_size: 0,
            func_sizes: vec![instrs.len() as u32],
        };
        build_cfg(&m).funcs.into_iter().next().unwrap()
    }

    /// A toy forward may-analysis: "registers written on *some* path so
    /// far" as a bitset.
    struct WrittenSomewhere {
        isa: Isa,
    }

    impl Transfer for WrittenSomewhere {
        type Fact = u64;

        fn direction(&self) -> Direction {
            Direction::Forward
        }

        fn bottom(&self, _f: &FuncCfg) -> u64 {
            0
        }

        fn boundary(&self, _f: &FuncCfg) -> u64 {
            0
        }

        fn join(&self, dst: &mut u64, src: &u64) -> bool {
            let before = *dst;
            *dst |= src;
            *dst != before
        }

        fn transfer(&self, f: &FuncCfg, i: usize, fact: &mut u64) {
            if let Some(instr) = &f.instrs[i].instr {
                for r in instr.regs_written(self.isa) {
                    *fact |= 1 << r.0;
                }
            }
        }
    }

    #[test]
    fn forward_solver_reaches_fixed_point_through_a_loop() {
        let isa = Isa::Va32;
        // 0: addi r1, r1, -1
        // 1: bne r1, r2, -4   (back edge)
        // 2: addi r3, r0, 7
        // 3: jmpr lr
        let prog = [
            Instr::alu_imm(Op::Addi, Reg(1), Reg(1), -1),
            Instr::branch(Op::Bne, Reg(1), Reg(2), -4),
            Instr::alu_imm(Op::Addi, Reg(3), Reg(0), 7),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let f = func_of(&prog, isa);
        let a = WrittenSomewhere { isa };
        let facts = solve(&a, &f);
        let (before, after) = instr_facts(&a, &f, &facts);
        // Back edge carries r1's write around to the loop header entry.
        assert_eq!(before[0] & (1 << 1), 1 << 1);
        // r3's write is visible after instr 2 but not inside the loop.
        assert_eq!(after[2] & (1 << 3), 1 << 3);
        assert_eq!(after[1] & (1 << 3), 0);
    }
}
