//! Backward register-liveness dataflow over a recovered [`FuncCfg`].
//!
//! The analysis is bit-width aware: each register's liveness at a program
//! point is the maximum number of low-order bits any downstream consumer
//! can observe (from [`Instr::src_widths`]), so a value only ever read by
//! `ADDW` counts 32 live bits on VA64, and a shift amount counts 5 or 6.
//!
//! By default calls are handled by ABI convention: a call *uses* every
//! argument register (pessimistic — the callee's true arity is unknown
//! at the binary level) and *defines* (clobbers) every caller-saved
//! register plus the link register. Function exits treat the
//! return-value register, the stack pointer, and all callee-saved
//! registers as live-out, which keeps epilogue restores live.
//!
//! [`analyze_module`] layers an *interprocedural* refinement on top: it
//! iterates per-function argument-use summaries over the call graph
//! recovered by [`crate::cfg::call_graph`], so a call to a callee that
//! never observes argument 3 stops keeping argument 3 live at the call
//! site. The iteration starts from the ABI-pessimistic summary and
//! decreases monotonically, so any intermediate state — including the
//! recursive-cycle greatest fixed point it converges to — remains a
//! sound over-approximation. The default [`analyze_func`] entry point is
//! unchanged and stays ABI-pessimistic; the refined results feed the
//! taint/attack passes, not the PVF/lint pipeline.
//!
//! The backward fixed point itself runs on the generic worklist solver
//! in [`crate::dataflow`]; liveness is just a [`Transfer`] instance.
//!
//! A forward reaching-definitions pass over the same CFG produces def-use
//! chains and definitely-uninitialised reads for the lint pass.

use std::collections::{BTreeMap, HashMap};

use vulnstack_isa::{CallConv, Instr, Isa, Op, Reg};

use crate::cfg::{CallGraph, FuncCfg, ModuleCfg};
use crate::dataflow::{self, Direction, Transfer};

/// Per-register live widths in bits (`0` = dead). Indexed by register
/// number; lattice join is the element-wise maximum.
pub type LiveSet = Vec<u8>;

/// Def-use chains: `(def instruction, register) -> use instructions`.
pub type DefUseMap = BTreeMap<(usize, u8), Vec<usize>>;

/// Callback invoked per register use during the reaching-defs walk:
/// `(instruction, register, is_explicit_operand, reaching def sites)`.
type UseSink<'a> = &'a mut dyn FnMut(usize, Reg, bool, &[usize]);

/// Sentinel "definition site" for registers the ABI defines at function
/// entry (arguments, `sp`, `lr`, callee-saved).
pub const DEF_ENTRY: usize = usize::MAX;
/// Sentinel definition site for ABI clobbers at call/syscall sites.
pub const DEF_CLOBBER: usize = usize::MAX - 1;

/// Liveness results for one function.
#[derive(Debug, Clone)]
pub struct FuncLiveness {
    /// Live set at each block entry.
    pub live_in: Vec<LiveSet>,
    /// Live set at each block exit.
    pub live_out: Vec<LiveSet>,
    /// Live set immediately before each instruction.
    pub live_before: Vec<LiveSet>,
    /// Live set immediately after each instruction.
    pub live_after: Vec<LiveSet>,
    /// Def-use chains: `(def instruction, register) -> use instructions`.
    /// ABI entry definitions and call clobbers are not listed.
    pub def_use: DefUseMap,
    /// Reads `(instruction, register)` with no reaching definition on any
    /// path — definitely-uninitialised uses.
    pub uninit_reads: Vec<(usize, u8)>,
}

/// `(register, observable width in bits)` pairs an instruction reads,
/// including ABI-implied uses at calls and syscalls: a call may read every
/// argument register (its true arity is unknown at the binary level) and
/// the callee dereferences the stack pointer. Implied uses keep liveness
/// pessimistic; they are *not* definite reads, so the uninitialised-read
/// lint only considers the instruction's own operands ([`Instr::regs_read`]).
pub fn uses_of(instr: &Instr, isa: Isa, cc: &CallConv) -> Vec<(Reg, u32)> {
    let xlen = isa.xlen();
    let call_implied = || -> Vec<(Reg, u32)> {
        let mut u: Vec<(Reg, u32)> = cc.args().into_iter().map(|r| (r, xlen)).collect();
        u.push((isa.sp(), xlen));
        u
    };
    match instr.op {
        Op::Call => call_implied(),
        Op::Callr => {
            let mut u = call_implied();
            u.push((instr.rs1, xlen));
            u
        }
        Op::Syscall => {
            let mut u: Vec<(Reg, u32)> = cc.args().into_iter().map(|r| (r, xlen)).collect();
            u.push((cc.syscall_num(), xlen));
            u
        }
        _ => instr
            .regs_read()
            .into_iter()
            .zip(instr.src_widths(isa))
            .collect(),
    }
}

/// Registers an instruction defines (kills), including ABI clobbers at
/// calls and syscalls. The second element is `true` for *explicit*
/// definitions (the instruction's own destination) and `false` for ABI
/// clobbers — the lint pass only reports explicit dead definitions.
pub fn defs_of(instr: &Instr, isa: Isa, cc: &CallConv) -> Vec<(Reg, bool)> {
    match instr.op {
        Op::Call | Op::Callr => {
            let mut d: Vec<(Reg, bool)> =
                cc.caller_saved().into_iter().map(|r| (r, false)).collect();
            d.push((isa.lr(), false));
            d
        }
        Op::Syscall => vec![(cc.ret(), false)],
        _ => instr
            .regs_written(isa)
            .into_iter()
            .map(|r| (r, true))
            .collect(),
    }
}

/// The live-out set at a function exit: return value, stack pointer, and
/// callee-saved registers (all full width). `_start` never returns, so it
/// gets an empty exit set.
fn exit_live_set(isa: Isa, cc: &CallConv, is_start: bool, nregs: usize) -> LiveSet {
    let mut s = vec![0u8; nregs];
    if is_start {
        return s;
    }
    let w = isa.xlen() as u8;
    s[cc.ret().0 as usize] = w;
    s[isa.sp().0 as usize] = w;
    for r in cc.callee_saved() {
        s[r.0 as usize] = w;
    }
    s
}

fn join_into(dst: &mut LiveSet, src: &LiveSet) -> bool {
    let mut changed = false;
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        if s > *d {
            *d = s;
            changed = true;
        }
    }
    changed
}

/// Refined per-call-site argument uses: maps an instruction index to the
/// `(register, width)` pairs the resolved callee may actually observe,
/// or `None` to fall back to the ABI-pessimistic [`uses_of`].
pub type CallUses<'a> = &'a dyn Fn(usize) -> Option<Vec<(Reg, u32)>>;

/// Applies the backward transfer function of one instruction to `live`
/// (the set after the instruction), yielding the set before it.
///
/// `refined` carries interprocedurally-refined argument uses for a
/// resolved direct call; the callee still dereferences the stack
/// pointer, and `CALLR` additionally reads its target register.
fn transfer_instr(
    instr: &Option<Instr>,
    isa: Isa,
    cc: &CallConv,
    refined: Option<&[(Reg, u32)]>,
    live: &mut LiveSet,
) {
    let Some(instr) = instr else { return }; // trap: nothing beyond it
    let zero = isa.zero();
    for (r, _) in defs_of(instr, isa, cc) {
        live[r.0 as usize] = 0;
    }
    let uses = match (instr.op, refined) {
        (Op::Call, Some(args)) => {
            let mut u = args.to_vec();
            u.push((isa.sp(), isa.xlen()));
            u
        }
        _ => uses_of(instr, isa, cc),
    };
    for (r, w) in uses {
        if zero == Some(r) {
            continue; // reads of the hardwired zero register observe nothing
        }
        let w = w.min(255) as u8;
        if w > live[r.0 as usize] {
            live[r.0 as usize] = w;
        }
    }
    if let Some(z) = zero {
        live[z.0 as usize] = 0; // writes to the zero register are discarded
    }
}

/// Width-aware backward liveness as a [`Transfer`] instance for the
/// generic worklist solver.
struct LivenessTransfer<'a> {
    isa: Isa,
    cc: CallConv,
    nregs: usize,
    exit_set: LiveSet,
    call_uses: Option<CallUses<'a>>,
}

impl Transfer for LivenessTransfer<'_> {
    type Fact = LiveSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self, _f: &FuncCfg) -> LiveSet {
        vec![0u8; self.nregs]
    }

    fn boundary(&self, _f: &FuncCfg) -> LiveSet {
        self.exit_set.clone()
    }

    fn join(&self, dst: &mut LiveSet, src: &LiveSet) -> bool {
        join_into(dst, src)
    }

    fn transfer(&self, f: &FuncCfg, i: usize, fact: &mut LiveSet) {
        let refined = self.call_uses.and_then(|cu| cu(i));
        transfer_instr(
            &f.instrs[i].instr,
            self.isa,
            &self.cc,
            refined.as_deref(),
            fact,
        );
    }
}

/// Runs the backward liveness fixed point and the forward reaching-defs
/// pass for one function, handling calls by ABI convention.
pub fn analyze_func(f: &FuncCfg, isa: Isa) -> FuncLiveness {
    analyze_func_with(f, isa, None)
}

/// [`analyze_func`] with optionally-refined per-call-site argument uses
/// (the interprocedural layer passes callee summaries through here).
pub fn analyze_func_with(f: &FuncCfg, isa: Isa, call_uses: Option<CallUses<'_>>) -> FuncLiveness {
    let cc = CallConv::new(isa);
    let nregs = isa.num_regs() as usize;
    let analysis = LivenessTransfer {
        isa,
        cc: CallConv::new(isa),
        nregs,
        exit_set: exit_live_set(isa, &cc, f.name == "_start", nregs),
        call_uses,
    };
    let facts = dataflow::solve(&analysis, f);
    let (live_before, live_after) = dataflow::instr_facts(&analysis, f, &facts);

    let (def_use, uninit_reads) = reaching_defs(f, isa, &cc, nregs);

    FuncLiveness {
        live_in: facts.entry,
        live_out: facts.exit,
        live_before,
        live_after,
        def_use,
        uninit_reads,
    }
}

/// Module-wide interprocedural liveness.
#[derive(Debug, Clone)]
pub struct ModuleLiveness {
    /// Per-function liveness under converged call summaries, parallel to
    /// `ModuleCfg::funcs`.
    pub funcs: Vec<FuncLiveness>,
    /// Per-function argument-use summaries: for each ABI argument
    /// register, the width (bits) the function may observe at entry
    /// (`0` = provably never read before redefinition).
    pub arg_uses: Vec<Vec<(Reg, u32)>>,
}

/// Interprocedural liveness: iterates per-function argument-use
/// summaries over the call graph until they converge, then recomputes
/// each function's liveness under the final summaries.
///
/// Summaries start ABI-pessimistic (every argument fully observed) and
/// only ever shrink, so every round — and the greatest fixed point the
/// recursion converges to — over-approximates true liveness. Unresolved
/// call sites (`CALLR`, or a direct target outside the symbol table)
/// keep the pessimistic ABI treatment.
pub fn analyze_module(cfg: &ModuleCfg, cg: &CallGraph) -> ModuleLiveness {
    let isa = cfg.isa;
    let cc = CallConv::new(isa);
    let xlen = isa.xlen();
    let nfuncs = cfg.funcs.len();

    // instruction index -> resolved callee, per function.
    let mut callee_at: Vec<HashMap<usize, usize>> = vec![HashMap::new(); nfuncs];
    for s in &cg.sites {
        if let Some(callee) = s.callee {
            callee_at[s.caller].insert(s.instr, callee);
        }
    }

    let summary_of = |live: &FuncLiveness| -> Vec<(Reg, u32)> {
        let entry = live.live_in.first();
        cc.args()
            .into_iter()
            .map(|r| {
                let w = entry.map_or(xlen, |e| e[r.0 as usize] as u32);
                (r, w)
            })
            .collect()
    };

    let mut summaries: Vec<Vec<(Reg, u32)>> =
        vec![cc.args().into_iter().map(|r| (r, xlen)).collect(); nfuncs];
    // Jacobi iteration from the pessimistic top; widths are bounded and
    // monotonically decreasing, so nfuncs+1 rounds always suffice.
    for _ in 0..=nfuncs {
        let snap = summaries.clone();
        let mut changed = false;
        for (fi, f) in cfg.funcs.iter().enumerate() {
            let lookup = |i: usize| -> Option<Vec<(Reg, u32)>> {
                callee_at[fi].get(&i).map(|&c| snap[c].clone())
            };
            let live = analyze_func_with(f, isa, Some(&lookup));
            let s = summary_of(&live);
            if s != summaries[fi] {
                summaries[fi] = s;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let funcs: Vec<FuncLiveness> = cfg
        .funcs
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            let lookup = |i: usize| -> Option<Vec<(Reg, u32)>> {
                callee_at[fi].get(&i).map(|&c| summaries[c].clone())
            };
            analyze_func_with(f, isa, Some(&lookup))
        })
        .collect();

    ModuleLiveness {
        funcs,
        arg_uses: summaries,
    }
}

/// Forward reaching-definitions over the reachable subgraph: produces
/// def-use chains and definitely-uninitialised reads.
fn reaching_defs(
    f: &FuncCfg,
    isa: Isa,
    cc: &CallConv,
    nregs: usize,
) -> (DefUseMap, Vec<(usize, u8)>) {
    type State = Vec<Vec<usize>>; // per register, sorted def sites
    let nblocks = f.blocks.len();

    let insert = |v: &mut Vec<usize>, d: usize| {
        if let Err(pos) = v.binary_search(&d) {
            v.insert(pos, d);
        }
    };
    let union_into = |dst: &mut State, src: &State| -> bool {
        let mut changed = false;
        for (dv, sv) in dst.iter_mut().zip(src.iter()) {
            for &d in sv {
                if let Err(pos) = dv.binary_search(&d) {
                    dv.insert(pos, d);
                    changed = true;
                }
            }
        }
        changed
    };

    // ABI-defined registers at function entry. `_start` is entered from
    // reset with no defined registers at all.
    let mut entry: State = vec![Vec::new(); nregs];
    if f.name != "_start" {
        let mut abi_defined: Vec<Reg> = cc.args();
        abi_defined.push(isa.sp());
        abi_defined.push(isa.lr());
        abi_defined.extend(cc.callee_saved());
        abi_defined.extend(isa.zero());
        for r in abi_defined {
            entry[r.0 as usize] = vec![DEF_ENTRY];
        }
    } else if let Some(z) = isa.zero() {
        entry[z.0 as usize] = vec![DEF_ENTRY];
    }

    let mut in_states: Vec<Option<State>> = vec![None; nblocks];
    if nblocks > 0 {
        in_states[0] = Some(entry);
    }

    let apply_block = |state: &mut State, b: usize, mut on_use: Option<UseSink<'_>>| {
        for i in f.blocks[b].range.clone() {
            let Some(instr) = &f.instrs[i].instr else {
                return;
            };
            let explicit_reads = instr.regs_read();
            for (r, _w) in uses_of(instr, isa, cc) {
                if isa.zero() == Some(r) {
                    continue;
                }
                if let Some(cb) = on_use.as_mut() {
                    cb(i, r, explicit_reads.contains(&r), &state[r.0 as usize]);
                }
            }
            for (r, explicit) in defs_of(instr, isa, cc) {
                state[r.0 as usize] = vec![if explicit { i } else { DEF_CLOBBER }];
            }
        }
    };

    // Fixed point over block input states.
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..nblocks {
            if !f.blocks[b].reachable {
                continue;
            }
            let Some(in_state) = in_states[b].clone() else {
                continue;
            };
            let mut state = in_state;
            apply_block(&mut state, b, None);
            for &s in &f.blocks[b].succs {
                match &mut in_states[s] {
                    Some(existing) => {
                        if union_into(existing, &state) {
                            changed = true;
                        }
                    }
                    slot @ None => {
                        *slot = Some(state.clone());
                        changed = true;
                    }
                }
            }
        }
    }

    // Final pass: record def-use edges and uninitialised reads.
    let mut def_use: DefUseMap = BTreeMap::new();
    let mut uninit: Vec<(usize, u8)> = Vec::new();
    for (b, block) in f.blocks.iter().enumerate() {
        if !block.reachable {
            continue;
        }
        let Some(in_state) = in_states[b].clone() else {
            continue;
        };
        let mut state = in_state;
        let mut on_use = |i: usize, r: Reg, explicit: bool, defs: &[usize]| {
            if defs.is_empty() {
                // Only the instruction's own operands are *definite*
                // reads; ABI-implied call/syscall argument uses are an
                // over-approximation and must not be reported.
                if explicit {
                    uninit.push((i, r.0));
                }
                return;
            }
            for &d in defs {
                if d < DEF_CLOBBER {
                    let sites = def_use.entry((d, r.0)).or_default();
                    insert(sites, i);
                }
            }
        };
        apply_block(&mut state, b, Some(&mut on_use));
    }
    uninit.sort_unstable();
    uninit.dedup();

    (def_use, uninit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use vulnstack_compiler::CompiledModule;

    fn func_of(instrs: &[Instr], isa: Isa) -> (FuncCfg, FuncLiveness) {
        let text: Vec<u32> = instrs.iter().map(|i| i.encode(isa).unwrap()).collect();
        let entry = text.len() as u32;
        let m = CompiledModule {
            isa,
            text,
            data: Vec::new(),
            global_addrs: Vec::new(),
            func_offsets: vec![0],
            func_names: vec!["f".to_string()],
            entry_offset: entry,
            data_size: 0,
            func_sizes: vec![instrs.len() as u32],
        };
        let cfg = build_cfg(&m);
        let f = cfg.funcs.into_iter().next().unwrap();
        let live = analyze_func(&f, isa);
        (f, live)
    }

    #[test]
    fn straight_line_liveness_chains() {
        let isa = Isa::Va32;
        // 0: addi r4, r1, 1    (r1 is arg -> defined)
        // 1: add  r0, r4, r4   (return value)
        // 2: jmpr lr
        let prog = [
            Instr::alu_imm(Op::Addi, Reg(4), Reg(1), 1),
            Instr::alu_rr(Op::Add, Reg(0), Reg(4), Reg(4)),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let (_, live) = func_of(&prog, isa);
        // r4 live between instr 0 and instr 1, dead after.
        assert_eq!(live.live_after[0][4], 32);
        assert_eq!(live.live_after[1][4], 0);
        // r0 live at exit (return value).
        assert_eq!(live.live_after[1][0], 32);
        // Def-use: instr 0's r4 is used at instr 1.
        assert_eq!(live.def_use.get(&(0, 4)), Some(&vec![1]));
        assert!(live.uninit_reads.is_empty());
    }

    #[test]
    fn partial_width_liveness_on_va64() {
        let isa = Isa::Va64;
        // 0: addi x6, x0, 5
        // 1: addw x0, x6, x6   (only low 32 bits of x6 observable)
        // 2: jmpr lr
        let prog = [
            Instr::alu_imm(Op::Addi, Reg(6), Reg(0), 5),
            Instr::alu_rr(Op::Addw, Reg(0), Reg(6), Reg(6)),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let (_, live) = func_of(&prog, isa);
        assert_eq!(live.live_after[0][6], 32);
        // Shift amount reads observe even fewer bits.
        let prog2 = [
            Instr::alu_imm(Op::Addi, Reg(6), Reg(0), 5),
            Instr::alu_rr(Op::Sll, Reg(0), Reg(1), Reg(6)),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let (_, live2) = func_of(&prog2, isa);
        assert_eq!(live2.live_after[0][6], 6); // 6-bit shift amount on VA64
    }

    #[test]
    fn call_clobbers_caller_saved_and_uses_args() {
        let isa = Isa::Va32;
        // 0: addi r4, r1, 0   (r4 caller-saved temp, killed by the call)
        // 1: addi r0, r2, 0   (arg 0 of the call: stays live into it)
        // 2: call +0
        // 3: jmpr lr
        let prog = [
            Instr::alu_imm(Op::Addi, Reg(4), Reg(1), 0),
            Instr::alu_imm(Op::Addi, Reg(0), Reg(2), 0),
            Instr::jump(Op::Call, 0),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let (_, live) = func_of(&prog, isa);
        // r4 dead after its def (call kills it before any use).
        assert_eq!(live.live_after[0][4], 0);
        // r0 live after instr 1 (the call reads it as an argument).
        assert_eq!(live.live_after[1][0], 32);
    }

    #[test]
    fn uninitialised_read_is_flagged() {
        let isa = Isa::Va32;
        // r5 is a caller-saved temp, never written before this read.
        let prog = [
            Instr::alu_rr(Op::Add, Reg(0), Reg(5), Reg(1)),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let (_, live) = func_of(&prog, isa);
        assert_eq!(live.uninit_reads, vec![(0, 5)]);
    }

    #[test]
    fn interprocedural_summaries_refine_call_argument_liveness() {
        let isa = Isa::Va32;
        // f: 0: addi r0, r1, 1    (arg 0 of the call)
        //    1: addi r3, r1, 2    (arg-register junk g never reads)
        //    2: call g
        //    3: jmpr lr
        // g: 4: add r0, r0, r0    (observes only argument 0)
        //    5: jmpr lr
        let instrs = [
            Instr::alu_imm(Op::Addi, Reg(0), Reg(1), 1),
            Instr::alu_imm(Op::Addi, Reg(3), Reg(1), 2),
            Instr::jump(Op::Call, 8), // word 2 -> word 4
            Instr::jump_reg(Op::Jmpr, isa.lr()),
            Instr::alu_rr(Op::Add, Reg(0), Reg(0), Reg(0)),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let text: Vec<u32> = instrs.iter().map(|i| i.encode(isa).unwrap()).collect();
        let m = CompiledModule {
            isa,
            text,
            data: Vec::new(),
            global_addrs: Vec::new(),
            func_offsets: vec![0, 4],
            func_names: vec!["f".to_string(), "g".to_string()],
            entry_offset: 6,
            data_size: 0,
            func_sizes: vec![4, 2],
        };
        let cfg = crate::cfg::build_cfg(&m);
        let cg = crate::cfg::call_graph(&cfg);
        let f_idx = cfg.funcs.iter().position(|f| f.name == "f").unwrap();
        let g_idx = cfg.funcs.iter().position(|f| f.name == "g").unwrap();

        // ABI-pessimistic view: r3 stays live into the call.
        let pessimistic = analyze_func(&cfg.funcs[f_idx], isa);
        assert_eq!(pessimistic.live_after[1][3], 32);

        // Interprocedural view: g's summary shows it only observes arg 0,
        // so r3 dies at its def and r0 stays live.
        let ml = analyze_module(&cfg, &cg);
        let g_args = &ml.arg_uses[g_idx];
        assert_eq!(g_args[0], (Reg(0), 32));
        assert!(g_args[1..].iter().all(|&(_, w)| w == 0), "{g_args:?}");
        assert_eq!(ml.funcs[f_idx].live_after[1][3], 0);
        assert_eq!(ml.funcs[f_idx].live_after[1][0], 32);
        // The refinement never grows a live set.
        for (i, after) in ml.funcs[f_idx].live_after.iter().enumerate() {
            for (r, &w) in after.iter().enumerate() {
                assert!(
                    w <= pessimistic.live_after[i][r],
                    "refined liveness grew at instr {i} reg {r}"
                );
            }
        }
    }

    #[test]
    fn loop_carried_liveness_reaches_fixed_point() {
        let isa = Isa::Va32;
        // 0: addi r4, r4, -1
        // 1: bne r4, r2, -4
        // 2: add r0, r4, r4
        // 3: jmpr lr
        // r4 is live around the back edge; r2 (arg) live throughout.
        let prog = [
            Instr::alu_imm(Op::Addi, Reg(4), Reg(4), -1),
            Instr::branch(Op::Bne, Reg(4), Reg(2), -4),
            Instr::alu_rr(Op::Add, Reg(0), Reg(4), Reg(4)),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let (f, live) = func_of(&prog, isa);
        let header = f.block_of[0];
        assert_eq!(live.live_in[header][4], 32);
        assert_eq!(live.live_in[header][2], 32);
    }
}
