//! Control-flow graph recovery from raw encoded text words.
//!
//! The builder never executes anything: it decodes every word of the text
//! section through [`Instr::decode`], partitions each function (as named by
//! [`CompiledModule::symbols`]) into basic blocks, and connects fallthrough
//! and target edges. Indirect jumps through a register other than the link
//! register are over-approximated as "may reach any block of the enclosing
//! function"; `JMPR lr` is recognised as the function-return idiom and gets
//! no intraprocedural successors. Calls do *not* end a block — control
//! returns to the following instruction.
//!
//! Loop structure comes from dominator-based back-edge detection; every
//! block carries its natural-loop nesting depth, which the static PVF
//! estimator turns into a block-frequency weight.

use std::ops::Range;

use vulnstack_compiler::CompiledModule;
use vulnstack_isa::op::Format;
use vulnstack_isa::{Instr, Isa, Op};

/// One decoded (or undecodable) word of the text section.
#[derive(Debug, Clone)]
pub struct DecodedWord {
    /// Absolute word offset within the text section.
    pub word_off: u32,
    /// The raw encoded word.
    pub raw: u32,
    /// The decoded instruction, or `None` if the word does not decode on
    /// this ISA (the executing core would trap).
    pub instr: Option<Instr>,
}

/// A basic block: a maximal straight-line run of instructions.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// Instruction index range within [`FuncCfg::instrs`].
    pub range: Range<usize>,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
    /// Natural-loop nesting depth (0 = not in any loop).
    pub loop_depth: u32,
    /// Whether the block is reachable from the function entry.
    pub reachable: bool,
}

/// The recovered CFG of one function.
#[derive(Debug, Clone)]
pub struct FuncCfg {
    /// Symbol name (`_start` for the entry stub).
    pub name: String,
    /// Absolute word offset of the first instruction.
    pub start_word: u32,
    /// Every word of the function, in layout order.
    pub instrs: Vec<DecodedWord>,
    /// Basic blocks in layout order; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Block id containing each instruction index.
    pub block_of: Vec<usize>,
}

impl FuncCfg {
    /// Whether the instruction at local index `i` is in a reachable block.
    pub fn instr_reachable(&self, i: usize) -> bool {
        self.blocks[self.block_of[i]].reachable
    }

    /// Loop depth of the block containing local instruction index `i`.
    pub fn instr_loop_depth(&self, i: usize) -> u32 {
        self.blocks[self.block_of[i]].loop_depth
    }
}

/// The recovered CFG of a whole compiled module.
#[derive(Debug, Clone)]
pub struct ModuleCfg {
    /// Target ISA.
    pub isa: Isa,
    /// Per-function CFGs, in text layout order.
    pub funcs: Vec<FuncCfg>,
    /// Absolute word offsets of all undecodable words in the text section.
    pub undecodable: Vec<u32>,
}

/// A raw executable text segment, for analysing images that never went
/// through [`CompiledModule`] — e.g. the kernel's boot stub and trap
/// handler, which are authored directly in assembly.
#[derive(Debug, Clone)]
pub struct TextSegment {
    /// Symbol-like name for reports.
    pub name: String,
    /// Absolute word offset of the segment's first instruction (byte
    /// address / 4).
    pub start_word: u32,
    /// Encoded instruction words in layout order.
    pub words: Vec<u32>,
}

/// Recovers a CFG per raw text segment, treating each segment as one
/// function. Branch targets are resolved segment-locally (the kernel's
/// handlers never branch across segments); jumps that leave the segment
/// become exit edges, exactly like [`build_cfg`]'s out-of-symbol case.
pub fn build_cfg_segments(isa: Isa, segments: &[TextSegment]) -> ModuleCfg {
    let mut funcs = Vec::with_capacity(segments.len());
    let mut undecodable = Vec::new();
    for seg in segments {
        let instrs: Vec<DecodedWord> = seg
            .words
            .iter()
            .enumerate()
            .map(|(i, &raw)| DecodedWord {
                word_off: seg.start_word + i as u32,
                raw,
                instr: Instr::decode(raw, isa).ok(),
            })
            .collect();
        for dw in &instrs {
            if dw.instr.is_none() {
                undecodable.push(dw.word_off);
            }
        }
        funcs.push(build_func_cfg(
            seg.name.clone(),
            seg.start_word,
            instrs,
            isa,
        ));
    }
    ModuleCfg {
        isa,
        funcs,
        undecodable,
    }
}

/// One call instruction in the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// Index of the calling function in [`ModuleCfg::funcs`].
    pub caller: usize,
    /// Local instruction index of the `CALL`/`CALLR` within the caller.
    pub instr: usize,
    /// Resolved callee function index, or `None` for indirect calls and
    /// direct targets that match no function entry.
    pub callee: Option<usize>,
}

/// The module's call graph, recovered statically from `CALL` immediates.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Every call site in the module, in (caller, instruction) order.
    pub sites: Vec<CallSite>,
    /// Resolved callee indices per caller (deduplicated, sorted).
    pub callees: Vec<Vec<usize>>,
    /// Caller indices per callee (deduplicated, sorted).
    pub callers: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Call sites that could not be resolved to a function entry.
    pub fn unresolved(&self) -> usize {
        self.sites.iter().filter(|s| s.callee.is_none()).count()
    }
}

/// Recovers the call graph: a `CALL`'s target word is its own position
/// plus the encoded byte offset / 4; it resolves to the function whose
/// entry sits exactly there. `CALLR` is always unresolved (the target
/// lives in a register).
pub fn call_graph(m: &ModuleCfg) -> CallGraph {
    let n = m.funcs.len();
    let mut sites = Vec::new();
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (fi, f) in m.funcs.iter().enumerate() {
        for (i, dw) in f.instrs.iter().enumerate() {
            let Some(instr) = &dw.instr else { continue };
            let callee = match instr.op {
                Op::Call => {
                    let target = dw.word_off as i64 + instr.imm / 4;
                    m.funcs
                        .iter()
                        .position(|g| g.start_word as i64 == target && !g.instrs.is_empty())
                }
                Op::Callr => None,
                _ => continue,
            };
            sites.push(CallSite {
                caller: fi,
                instr: i,
                callee,
            });
            if let Some(c) = callee {
                if !callees[fi].contains(&c) {
                    callees[fi].push(c);
                }
                if !callers[c].contains(&fi) {
                    callers[c].push(fi);
                }
            }
        }
    }
    for v in callees.iter_mut().chain(callers.iter_mut()) {
        v.sort_unstable();
    }
    CallGraph {
        sites,
        callees,
        callers,
    }
}

/// How an instruction terminates (or does not terminate) a basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Term {
    /// Not a block terminator (includes calls and syscalls, which return).
    None,
    /// Conditional branch: target local index, plus fallthrough.
    Branch(usize),
    /// Unconditional jump: target local index (`None` if it leaves the
    /// function, treated as an exit edge).
    Jump(Option<usize>),
    /// `JMPR lr` — function return.
    Return,
    /// Indirect jump through a non-`lr` register: over-approximated as
    /// "any block in this function".
    Indirect,
    /// Undecodable word, `HALT`, or `ERET`: execution cannot continue here.
    Trap,
}

/// Classifies instruction `i` of a function body of `len` instructions.
fn terminator(dw: &DecodedWord, i: usize, len: usize, isa: Isa) -> Term {
    let Some(instr) = &dw.instr else {
        return Term::Trap;
    };
    let target = |imm: i64| -> Option<usize> {
        let t = i as i64 + imm / 4;
        (t >= 0 && (t as usize) < len).then_some(t as usize)
    };
    match instr.op {
        Op::Jmp => Term::Jump(target(instr.imm)),
        Op::Jmpr => {
            if instr.rs1 == isa.lr() {
                Term::Return
            } else {
                Term::Indirect
            }
        }
        Op::Halt | Op::Eret => Term::Trap,
        _ if instr.op.format() == Format::B => {
            // Branch target out of function range gets no edge (the word
            // would transfer control outside the symbol; keep fallthrough).
            match target(instr.imm) {
                Some(t) => Term::Branch(t),
                None => Term::None,
            }
        }
        _ => Term::None,
    }
}

/// Recovers the CFG of every function in `compiled` without executing it.
pub fn build_cfg(compiled: &CompiledModule) -> ModuleCfg {
    let isa = compiled.isa;
    let symbols = compiled.symbols();
    let mut funcs = Vec::with_capacity(symbols.len());
    let mut undecodable = Vec::new();

    for (si, &(start, name)) in symbols.iter().enumerate() {
        let end = symbols
            .get(si + 1)
            .map_or(compiled.text.len(), |&(o, _)| o as usize);
        let words = &compiled.text[start as usize..end];
        let instrs: Vec<DecodedWord> = words
            .iter()
            .enumerate()
            .map(|(i, &raw)| DecodedWord {
                word_off: start + i as u32,
                raw,
                instr: Instr::decode(raw, isa).ok(),
            })
            .collect();
        for dw in &instrs {
            if dw.instr.is_none() {
                undecodable.push(dw.word_off);
            }
        }
        funcs.push(build_func_cfg(name.to_string(), start, instrs, isa));
    }

    ModuleCfg {
        isa,
        funcs,
        undecodable,
    }
}

fn build_func_cfg(name: String, start_word: u32, instrs: Vec<DecodedWord>, isa: Isa) -> FuncCfg {
    let n = instrs.len();
    if n == 0 {
        return FuncCfg {
            name,
            start_word,
            instrs,
            blocks: Vec::new(),
            block_of: Vec::new(),
        };
    }
    let terms: Vec<Term> = instrs
        .iter()
        .enumerate()
        .map(|(i, dw)| terminator(dw, i, n, isa))
        .collect();

    // Leaders: entry, every branch/jump target, every instruction after a
    // block terminator.
    let mut leader = vec![false; n];
    leader[0] = true;
    for (i, t) in terms.iter().enumerate() {
        match t {
            Term::Branch(tgt) | Term::Jump(Some(tgt)) => leader[*tgt] = true,
            _ => {}
        }
        if *t != Term::None && i + 1 < n {
            leader[i + 1] = true;
        }
    }

    // Carve blocks.
    let mut blocks: Vec<BasicBlock> = Vec::new();
    let mut block_of = vec![0usize; n];
    let mut bstart = 0usize;
    for (i, &is_leader) in leader.iter().enumerate().take(n) {
        if i > bstart && is_leader {
            blocks.push(new_block(bstart..i));
            bstart = i;
        }
    }
    blocks.push(new_block(bstart..n));
    for (id, b) in blocks.iter().enumerate() {
        for i in b.range.clone() {
            block_of[i] = id;
        }
    }

    // Successor edges from each block's last instruction.
    let nblocks = blocks.len();
    for b in blocks.iter_mut() {
        let last = b.range.end - 1;
        let succs: Vec<usize> = match &terms[last] {
            Term::None => {
                // Block ended because the next instruction is a leader, or
                // the function ran off the end of the symbol.
                if last + 1 < n {
                    vec![block_of[last + 1]]
                } else {
                    Vec::new()
                }
            }
            Term::Branch(tgt) => {
                let mut s = Vec::new();
                if last + 1 < n {
                    s.push(block_of[last + 1]);
                }
                let tb = block_of[*tgt];
                if !s.contains(&tb) {
                    s.push(tb);
                }
                s
            }
            Term::Jump(Some(tgt)) => vec![block_of[*tgt]],
            Term::Jump(None) | Term::Return | Term::Trap => Vec::new(),
            // Over-approximation: an unanalysable indirect jump may reach
            // any block of the enclosing function.
            Term::Indirect => (0..nblocks).collect(),
        };
        b.succs = succs;
    }
    for id in 0..nblocks {
        for s in blocks[id].succs.clone() {
            if !blocks[s].preds.contains(&id) {
                blocks[s].preds.push(id);
            }
        }
    }

    mark_reachable(&mut blocks);
    assign_loop_depths(&mut blocks);

    FuncCfg {
        name,
        start_word,
        instrs,
        blocks,
        block_of,
    }
}

fn new_block(range: Range<usize>) -> BasicBlock {
    BasicBlock {
        range,
        succs: Vec::new(),
        preds: Vec::new(),
        loop_depth: 0,
        reachable: false,
    }
}

fn mark_reachable(blocks: &mut [BasicBlock]) {
    let mut stack = vec![0usize];
    while let Some(b) = stack.pop() {
        if blocks[b].reachable {
            continue;
        }
        blocks[b].reachable = true;
        stack.extend(blocks[b].succs.iter().copied());
    }
}

/// Computes natural-loop nesting depths via dominators and back edges.
///
/// Uses the iterative dominator algorithm over a reverse postorder of the
/// reachable subgraph; an edge `u -> h` is a back edge when `h` dominates
/// `u`, and the loop body is everything that reaches `u` backwards without
/// passing through `h`.
fn assign_loop_depths(blocks: &mut [BasicBlock]) {
    let n = blocks.len();
    if n == 0 {
        return;
    }

    // Reverse postorder over reachable blocks.
    let mut order = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    state[0] = 1;
    while let Some(&mut (b, ref mut ci)) = stack.last_mut() {
        if *ci < blocks[b].succs.len() {
            let s = blocks[b].succs[*ci];
            *ci += 1;
            if state[s] == 0 {
                state[s] = 1;
                stack.push((s, 0));
            }
        } else {
            state[b] = 2;
            order.push(b);
            stack.pop();
        }
    }
    order.reverse();
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in order.iter().enumerate() {
        rpo_index[b] = i;
    }

    // Iterative dominators (Cooper–Harvey–Kennedy).
    const UNDEF: usize = usize::MAX;
    let mut idom = vec![UNDEF; n];
    idom[0] = 0;
    let intersect = |idom: &[usize], rpo: &[usize], mut a: usize, mut b: usize| -> usize {
        while a != b {
            while rpo[a] > rpo[b] {
                a = idom[a];
            }
            while rpo[b] > rpo[a] {
                b = idom[b];
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().skip(1) {
            let mut new_idom = UNDEF;
            for &p in &blocks[b].preds {
                if idom[p] == UNDEF {
                    continue;
                }
                new_idom = if new_idom == UNDEF {
                    p
                } else {
                    intersect(&idom, &rpo_index, new_idom, p)
                };
            }
            if new_idom != UNDEF && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }

    let dominates = |h: usize, mut b: usize, idom: &[usize]| -> bool {
        loop {
            if b == h {
                return true;
            }
            if b == 0 || idom[b] == UNDEF || idom[b] == b {
                return false;
            }
            b = idom[b];
        }
    };

    // Collect natural loop bodies, keyed by header.
    let mut loop_bodies: Vec<(usize, Vec<bool>)> = Vec::new();
    for u in 0..n {
        if !blocks[u].reachable {
            continue;
        }
        for &h in &blocks[u].succs {
            if !dominates(h, u, &idom) {
                continue;
            }
            let body = loop_bodies.iter_mut().find(|(hh, _)| *hh == h);
            let body = match body {
                Some((_, b)) => b,
                None => {
                    let mut b = vec![false; n];
                    b[h] = true;
                    loop_bodies.push((h, b));
                    &mut loop_bodies.last_mut().unwrap().1
                }
            };
            // Everything that reaches u backwards without passing h.
            let mut work = vec![u];
            while let Some(x) = work.pop() {
                if body[x] {
                    continue;
                }
                body[x] = true;
                work.extend(blocks[x].preds.iter().copied());
            }
        }
    }
    for (_, body) in &loop_bodies {
        for (b, &inside) in body.iter().enumerate() {
            if inside {
                blocks[b].loop_depth += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_isa::Reg;

    /// Encodes a sequence of instructions into a single-function module.
    fn module_of(instrs: &[Instr], isa: Isa) -> CompiledModule {
        let text: Vec<u32> = instrs.iter().map(|i| i.encode(isa).unwrap()).collect();
        let entry = text.len() as u32;
        CompiledModule {
            isa,
            text,
            data: Vec::new(),
            global_addrs: Vec::new(),
            func_offsets: vec![0],
            func_names: vec!["f".to_string()],
            entry_offset: entry,
            data_size: 0,
            func_sizes: vec![instrs.len() as u32],
        }
    }

    #[test]
    fn straight_line_is_one_block() {
        let isa = Isa::Va32;
        let prog = [
            Instr::alu_imm(Op::Addi, Reg(1), Reg(0), 1),
            Instr::alu_imm(Op::Addi, Reg(2), Reg(1), 2),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let cfg = build_cfg(&module_of(&prog, isa));
        let f = &cfg.funcs[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].succs, Vec::<usize>::new());
        assert!(f.blocks[0].reachable);
        assert!(cfg.undecodable.is_empty());
    }

    #[test]
    fn branch_splits_blocks_and_adds_edges() {
        let isa = Isa::Va32;
        // 0: beq r1, r2, +8  (-> instr 2)
        // 1: addi r3, r0, 1
        // 2: jmpr lr
        let prog = [
            Instr::branch(Op::Beq, Reg(1), Reg(2), 8),
            Instr::alu_imm(Op::Addi, Reg(3), Reg(0), 1),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let cfg = build_cfg(&module_of(&prog, isa));
        let f = &cfg.funcs[0];
        assert_eq!(f.blocks.len(), 3);
        let mut s0 = f.blocks[0].succs.clone();
        s0.sort_unstable();
        assert_eq!(s0, vec![1, 2]);
        assert_eq!(f.blocks[1].succs, vec![2]);
        assert!(f.blocks.iter().all(|b| b.reachable));
        assert!(f.blocks.iter().all(|b| b.loop_depth == 0));
    }

    #[test]
    fn back_edge_yields_loop_depth() {
        let isa = Isa::Va32;
        // 0: addi r1, r1, -1
        // 1: bne r1, r2, -4   (-> instr 0: back edge)
        // 2: jmpr lr
        let prog = [
            Instr::alu_imm(Op::Addi, Reg(1), Reg(1), -1),
            Instr::branch(Op::Bne, Reg(1), Reg(2), -4),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let cfg = build_cfg(&module_of(&prog, isa));
        let f = &cfg.funcs[0];
        // Blocks: [0..2) is split at instr 0 (branch target) -> actually
        // instr 0 is the entry leader already, so blocks are [0,1], [2].
        assert_eq!(f.blocks.len(), 2);
        assert_eq!(f.blocks[0].loop_depth, 1);
        assert_eq!(f.blocks[1].loop_depth, 0);
    }

    #[test]
    fn unreachable_after_jump_is_detected() {
        let isa = Isa::Va64;
        // 0: jmp +8 (-> instr 2)
        // 1: addi x1, x0, 7   (unreachable)
        // 2: jmpr lr
        let prog = [
            Instr::jump(Op::Jmp, 8),
            Instr::alu_imm(Op::Addi, Reg(1), Reg(0), 7),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let cfg = build_cfg(&module_of(&prog, isa));
        let f = &cfg.funcs[0];
        assert_eq!(f.blocks.len(), 3);
        assert!(!f.blocks[1].reachable);
        assert!(f.blocks[0].reachable && f.blocks[2].reachable);
    }

    #[test]
    fn undecodable_word_is_recorded() {
        let isa = Isa::Va32;
        let mut m = module_of(&[Instr::jump_reg(Op::Jmpr, isa.lr())], isa);
        m.text.insert(0, 0xFFFF_FFFF); // invalid opcode
        m.entry_offset = m.text.len() as u32;
        let cfg = build_cfg(&m);
        assert_eq!(cfg.undecodable, vec![0]);
        // The trap word terminates its block with no successors, so the
        // return below it is unreachable.
        let f = &cfg.funcs[0];
        assert!(!f.blocks[1].reachable);
    }

    #[test]
    fn call_graph_resolves_direct_calls() {
        let isa = Isa::Va32;
        // Two functions: f at word 0 calls g at word 2; g returns.
        // f: 0: call +8 (-> word 2)   1: jmpr lr
        // g: 2: addi r0, r1, 1        3: jmpr lr
        let instrs = [
            Instr::jump(Op::Call, 8),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
            Instr::alu_imm(Op::Addi, Reg(0), Reg(1), 1),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let text: Vec<u32> = instrs.iter().map(|i| i.encode(isa).unwrap()).collect();
        let m = CompiledModule {
            isa,
            text,
            data: Vec::new(),
            global_addrs: Vec::new(),
            func_offsets: vec![0, 2],
            func_names: vec!["f".to_string(), "g".to_string()],
            entry_offset: 4,
            data_size: 0,
            func_sizes: vec![2, 2],
        };
        let cfg = build_cfg(&m);
        let cg = call_graph(&cfg);
        assert_eq!(cg.sites.len(), 1);
        let f_idx = cfg.funcs.iter().position(|f| f.name == "f").unwrap();
        let g_idx = cfg.funcs.iter().position(|f| f.name == "g").unwrap();
        assert_eq!(cg.sites[0].caller, f_idx);
        assert_eq!(cg.sites[0].callee, Some(g_idx));
        assert_eq!(cg.callees[f_idx], vec![g_idx]);
        assert_eq!(cg.callers[g_idx], vec![f_idx]);
        assert_eq!(cg.unresolved(), 0);
    }

    #[test]
    fn callr_is_unresolved() {
        let isa = Isa::Va32;
        let prog = [
            Instr::jump_reg(Op::Callr, Reg(5)),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let cfg = build_cfg(&module_of(&prog, isa));
        let cg = call_graph(&cfg);
        assert_eq!(cg.sites.len(), 1);
        assert_eq!(cg.sites[0].callee, None);
        assert_eq!(cg.unresolved(), 1);
    }

    #[test]
    fn segments_build_standalone_cfgs() {
        let isa = Isa::Va64;
        // A two-instruction segment at a nonzero base, ending in a halt.
        let words = vec![
            Instr::alu_imm(Op::Addi, Reg(1), Reg(2), 1)
                .encode(isa)
                .unwrap(),
            Instr::sys(Op::Halt).encode(isa).unwrap(),
        ];
        let seg = TextSegment {
            name: "kboot".to_string(),
            start_word: 0x100,
            words,
        };
        let cfg = build_cfg_segments(isa, &[seg]);
        assert_eq!(cfg.funcs.len(), 1);
        let f = &cfg.funcs[0];
        assert_eq!(f.name, "kboot");
        assert_eq!(f.start_word, 0x100);
        assert_eq!(f.instrs[0].word_off, 0x100);
        assert!(f.blocks[0].reachable);
        assert!(cfg.undecodable.is_empty());
    }

    #[test]
    fn indirect_jump_over_approximates() {
        let isa = Isa::Va32;
        // 0: jmpr r5 (indirect, not lr)
        // 1: jmpr lr
        let prog = [
            Instr::jump_reg(Op::Jmpr, Reg(5)),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let cfg = build_cfg(&module_of(&prog, isa));
        let f = &cfg.funcs[0];
        assert_eq!(f.blocks.len(), 2);
        let mut s = f.blocks[0].succs.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1]);
        assert!(f.blocks[1].reachable);
    }
}
