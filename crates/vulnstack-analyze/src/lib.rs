//! # vulnstack-analyze
//!
//! Static binary analysis for VA32/VA64 images — the zero-execution
//! counterpart to the dynamic vulnerability campaigns in `vulnstack-gefin`.
//! Where the injection layers *measure* AVF/PVF by running thousands of
//! faulty simulations, this crate *derives* a pessimistic architectural
//! bound from the compiled text section alone:
//!
//! 1. [`cfg`] recovers per-function control-flow graphs from the raw
//!    encoded words (no execution, no symbols beyond the compiler's
//!    function table), including loop nesting from back-edge detection.
//! 2. [`liveness`] runs a width-aware backward liveness fixed point and a
//!    forward reaching-definitions pass, yielding per-instruction live
//!    register sets and def-use chains.
//! 3. [`pvf`] converts live intervals into a static PVF estimate using a
//!    `10^depth` block-frequency model — an analytical upper bound that
//!    sits above dynamic ACE estimates, which in turn sit above
//!    injection-measured AVF (the paper's §II.A pessimism ordering).
//! 4. [`lint`] reports binary-level hygiene findings: dead stores,
//!    unreachable blocks, undecodable text words, and reads of
//!    never-written registers.
//! 5. [`dataflow`] is the generic worklist solver the fixed-point passes
//!    (liveness, taint) instantiate; [`taint`] answers fault-model-aware
//!    sink reachability; [`attack`] turns it into an attack-surface
//!    report; [`classifier`] proves register-file fault sites Masked
//!    purely statically for the pruning layer.
//!
//! # Example
//!
//! ```
//! use vulnstack_analyze::analyze;
//! use vulnstack_compiler::{compile, CompileOpts};
//! use vulnstack_isa::Isa;
//! use vulnstack_vir::ModuleBuilder;
//!
//! let mut mb = ModuleBuilder::new("m");
//! let mut f = mb.function("main", 0);
//! f.sys_exit(0);
//! f.ret(None);
//! mb.finish_function(f);
//! let module = mb.finish().unwrap();
//! let compiled = compile(&module, Isa::Va64, &CompileOpts::default()).unwrap();
//!
//! let sa = analyze(&compiled);
//! assert!(sa.pvf.rf_pvf > 0.0 && sa.pvf.rf_pvf <= 1.0);
//! assert!(sa.cfg.undecodable.is_empty());
//! ```

pub mod attack;
pub mod cfg;
pub mod classifier;
pub mod dataflow;
pub mod lint;
pub mod liveness;
pub mod pvf;
pub mod taint;

pub use attack::{attack_surface, AttackFinding, AttackReport, FindingKind};
pub use cfg::{build_cfg, build_cfg_segments, call_graph, CallGraph, ModuleCfg, TextSegment};
pub use classifier::StaticClassifier;
pub use lint::{lint_module, Lint, LintKind};
pub use liveness::{analyze_func, analyze_module, FuncLiveness, ModuleLiveness};
pub use pvf::{static_pvf, StaticPvf};
pub use taint::{module_taint, FaultModel, SinkSet};

use vulnstack_compiler::CompiledModule;

/// Complete static-analysis results for one compiled module.
#[derive(Debug, Clone)]
pub struct StaticAnalysis {
    /// Recovered control-flow graphs.
    pub cfg: ModuleCfg,
    /// Per-function liveness, parallel to `cfg.funcs`.
    pub liveness: Vec<FuncLiveness>,
    /// Static PVF estimate.
    pub pvf: StaticPvf,
    /// Lint findings.
    pub lints: Vec<Lint>,
}

impl StaticAnalysis {
    /// Serializes the analysis as a JSON object (hand-rolled; the
    /// workspace carries no JSON dependency) for the CLI's `--json`
    /// flag.
    pub fn to_json(&self) -> String {
        use attack::json_str;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"isa\": {},\n", json_str(self.cfg.isa.name())));
        out.push_str(&format!("  \"rf_pvf\": {:.6},\n", self.pvf.rf_pvf));
        out.push_str(&format!(
            "  \"undecodable_words\": {},\n",
            self.cfg.undecodable.len()
        ));
        out.push_str("  \"funcs\": [\n");
        for (i, (name, fpvf, weight)) in self.pvf.per_func.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"pvf\": {:.6}, \"weight\": {:.3}}}{}\n",
                json_str(name),
                fpvf,
                weight,
                if i + 1 < self.pvf.per_func.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"lints\": [\n");
        for (i, l) in self.lints.iter().enumerate() {
            out.push_str(&format!(
                "    {}{}\n",
                json_str(&l.to_string()),
                if i + 1 < self.lints.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A short human-readable summary (used by the CLI `analyze`
    /// subcommand and the bench binaries).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let ninstr: usize = self.cfg.funcs.iter().map(|f| f.instrs.len()).sum();
        let nblocks: usize = self.cfg.funcs.iter().map(|f| f.blocks.len()).sum();
        let max_depth = self
            .cfg
            .funcs
            .iter()
            .flat_map(|f| f.blocks.iter().map(|b| b.loop_depth))
            .max()
            .unwrap_or(0);
        let _ = writeln!(
            s,
            "{}: {} funcs, {} instrs, {} blocks, max loop depth {}",
            self.cfg.isa.name(),
            self.cfg.funcs.len(),
            ninstr,
            nblocks,
            max_depth
        );
        let _ = writeln!(
            s,
            "static RF PVF {:.4} ({} undecodable words, {} lints)",
            self.pvf.rf_pvf,
            self.cfg.undecodable.len(),
            self.lints.len()
        );
        s
    }
}

/// Runs the full static pipeline — CFG recovery, liveness, static PVF,
/// lints — on a compiled module, executing zero instructions.
pub fn analyze(compiled: &CompiledModule) -> StaticAnalysis {
    let cfg = build_cfg(compiled);
    let liveness: Vec<FuncLiveness> = cfg.funcs.iter().map(|f| analyze_func(f, cfg.isa)).collect();
    let pvf = static_pvf(&cfg, &liveness);
    let lints = lint_module(&cfg, &liveness);
    StaticAnalysis {
        cfg,
        liveness,
        pvf,
        lints,
    }
}
