//! Cross-layer lint pass over a recovered CFG and its liveness results.
//!
//! Each lint is a *static* symptom of wasted or suspicious architectural
//! state — exactly the state transient faults exploit: a dead store keeps
//! a register ACE-looking for the analytical bound while being provably
//! un-architecturally-required; an unreachable block inflates the static
//! footprint; an undecodable word in `.text` would trap if control ever
//! reached it; a read of a never-written register consumes whatever the
//! previous occupant left behind.
//!
//! The pass runs over every compiled workload in the suite as a test (see
//! `tests/` in this crate), so compiler regressions that start emitting
//! dead or unreachable code are caught at the binary level.

use vulnstack_isa::Op;

use crate::cfg::ModuleCfg;
use crate::liveness::{defs_of, FuncLiveness};
use vulnstack_isa::CallConv;

/// Category of a lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// A register written by an explicit destination operand and never
    /// read before its next (re)definition on any path.
    DeadStore,
    /// A basic block unreachable from its function entry.
    UnreachableBlock,
    /// A text-section word that does not decode on the target ISA.
    UndecodableWord,
    /// A read of a register with no reaching definition on any path
    /// (neither an instruction nor the ABI defines it).
    UninitRead,
}

impl std::fmt::Display for LintKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LintKind::DeadStore => "dead-store",
            LintKind::UnreachableBlock => "unreachable-block",
            LintKind::UndecodableWord => "undecodable-word",
            LintKind::UninitRead => "uninit-read",
        };
        f.write_str(s)
    }
}

/// One lint finding, anchored to an absolute text word offset.
#[derive(Debug, Clone)]
pub struct Lint {
    /// Enclosing function symbol.
    pub func: String,
    /// Absolute word offset of the enclosing function's first instruction.
    pub func_start_word: u32,
    /// Absolute word offset in the text section.
    pub word_off: u32,
    /// Finding category.
    pub kind: LintKind,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rel = (self.word_off - self.func_start_word) * 4;
        write!(
            f,
            "[{}] {}+{:#x}: {}",
            self.kind, self.func, rel, self.message
        )
    }
}

/// Runs every lint over the module. `liveness` must be parallel to
/// `cfg.funcs`.
pub fn lint_module(cfg: &ModuleCfg, liveness: &[FuncLiveness]) -> Vec<Lint> {
    let isa = cfg.isa;
    let cc = CallConv::new(isa);
    let mut lints = Vec::new();

    for (f, live) in cfg.funcs.iter().zip(liveness.iter()) {
        // Dead stores: explicit defs with zero live-out width, in
        // reachable code. Writes to the hardwired zero register are the
        // ISA's discard idiom, not a bug.
        for b in f.blocks.iter().filter(|b| b.reachable) {
            for i in b.range.clone() {
                let Some(instr) = &f.instrs[i].instr else {
                    continue;
                };
                // The link register written by a call is consumed by the
                // callee's return, which an intraprocedural analysis
                // cannot see; defs_of marks it (and syscall clobbers)
                // non-explicit.
                for (r, explicit) in defs_of(instr, isa, &cc) {
                    if !explicit || isa.zero() == Some(r) {
                        continue;
                    }
                    if live.live_after[i][r.0 as usize] == 0 {
                        lints.push(Lint {
                            func: f.name.clone(),
                            func_start_word: f.start_word,
                            word_off: f.instrs[i].word_off,
                            kind: LintKind::DeadStore,
                            message: format!(
                                "{:?} writes r{} but the value is never read",
                                instr.op, r.0
                            ),
                        });
                    }
                }
            }
        }

        // Unreachable blocks (one finding per block, at its first word).
        for b in f.blocks.iter().filter(|b| !b.reachable) {
            let first = b.range.start;
            lints.push(Lint {
                func: f.name.clone(),
                func_start_word: f.start_word,
                word_off: f.instrs[first].word_off,
                kind: LintKind::UnreachableBlock,
                message: format!("{}-instruction block is unreachable", b.range.len()),
            });
        }

        // Definitely-uninitialised reads.
        for &(i, r) in &live.uninit_reads {
            if !f.instr_reachable(i) {
                continue;
            }
            let op = f.instrs[i].instr.as_ref().map(|ins| ins.op);
            lints.push(Lint {
                func: f.name.clone(),
                func_start_word: f.start_word,
                word_off: f.instrs[i].word_off,
                kind: LintKind::UninitRead,
                message: format!(
                    "{:?} reads r{} which no path ever writes",
                    op.unwrap_or(Op::Nop),
                    r
                ),
            });
        }
    }

    // Undecodable words in the text section.
    for &w in &cfg.undecodable {
        let (func, start) = cfg
            .funcs
            .iter()
            .rev()
            .find(|f| f.start_word <= w)
            .map_or(("?", w), |f| (f.name.as_str(), f.start_word));
        lints.push(Lint {
            func: func.to_string(),
            func_start_word: start,
            word_off: w,
            kind: LintKind::UndecodableWord,
            message: "word does not decode on this ISA".to_string(),
        });
    }

    lints.sort_by_key(|l| l.word_off);
    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use crate::liveness::analyze_func;
    use vulnstack_compiler::CompiledModule;
    use vulnstack_isa::{Instr, Isa, Reg};

    fn lints_of(instrs: &[Instr], isa: Isa) -> Vec<Lint> {
        let text: Vec<u32> = instrs.iter().map(|i| i.encode(isa).unwrap()).collect();
        let entry = text.len() as u32;
        let m = CompiledModule {
            isa,
            text,
            data: Vec::new(),
            global_addrs: Vec::new(),
            func_offsets: vec![0],
            func_names: vec!["f".to_string()],
            entry_offset: entry,
            data_size: 0,
            func_sizes: vec![instrs.len() as u32],
        };
        let cfg = build_cfg(&m);
        let live: Vec<_> = cfg.funcs.iter().map(|f| analyze_func(f, isa)).collect();
        lint_module(&cfg, &live)
    }

    #[test]
    fn clean_function_has_no_lints() {
        let isa = Isa::Va32;
        let prog = [
            Instr::alu_imm(Op::Addi, Reg(0), Reg(1), 1),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        assert!(lints_of(&prog, isa).is_empty());
    }

    #[test]
    fn dead_store_is_reported() {
        let isa = Isa::Va32;
        // r4 written, immediately overwritten without a read.
        let prog = [
            Instr::alu_imm(Op::Addi, Reg(4), Reg(1), 1),
            Instr::alu_imm(Op::Addi, Reg(4), Reg(2), 2),
            Instr::alu_rr(Op::Add, Reg(0), Reg(4), Reg(4)),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let lints = lints_of(&prog, isa);
        assert_eq!(lints.len(), 1, "{lints:?}");
        assert_eq!(lints[0].kind, LintKind::DeadStore);
        assert_eq!(lints[0].word_off, 0);
    }

    #[test]
    fn zero_register_discard_is_not_a_dead_store() {
        let isa = Isa::Va64;
        let z = isa.zero().unwrap();
        let prog = [
            Instr::alu_rr(Op::Add, z, Reg(1), Reg(2)),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        assert!(lints_of(&prog, isa).is_empty());
    }

    #[test]
    fn unreachable_and_undecodable_are_reported() {
        let isa = Isa::Va32;
        let mut prog: Vec<u32> = [
            Instr::jump(Op::Jmp, 8),
            Instr::alu_imm(Op::Addi, Reg(0), Reg(1), 1), // unreachable
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ]
        .iter()
        .map(|i| i.encode(isa).unwrap())
        .collect();
        prog.push(0xFFFF_FFFF); // undecodable, also unreachable
        let entry = prog.len() as u32;
        let m = CompiledModule {
            isa,
            text: prog,
            data: Vec::new(),
            global_addrs: Vec::new(),
            func_offsets: vec![0],
            func_names: vec!["f".to_string()],
            entry_offset: entry,
            data_size: 0,
            func_sizes: vec![4],
        };
        let cfg = build_cfg(&m);
        let live: Vec<_> = cfg.funcs.iter().map(|f| analyze_func(f, isa)).collect();
        let lints = lint_module(&cfg, &live);
        let kinds: Vec<LintKind> = lints.iter().map(|l| l.kind).collect();
        assert!(kinds.contains(&LintKind::UnreachableBlock), "{lints:?}");
        assert!(kinds.contains(&LintKind::UndecodableWord), "{lints:?}");
    }

    #[test]
    fn uninit_read_is_reported() {
        let isa = Isa::Va32;
        let prog = [
            Instr::alu_rr(Op::Add, Reg(0), Reg(6), Reg(1)),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let lints = lints_of(&prog, isa);
        assert_eq!(lints.len(), 1, "{lints:?}");
        assert_eq!(lints[0].kind, LintKind::UninitRead);
    }
}
