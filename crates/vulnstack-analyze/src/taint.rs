//! Fault-model-aware taint/reachability analysis.
//!
//! For every program point and architectural register, this pass answers
//! the InjectV-style security question: *if a fault corrupts this
//! register's value here, can the corruption reach a branch condition,
//! an address computation, or a syscall argument before being
//! overwritten?* The answer is a backward may-reach dataflow (an
//! instance of the generic solver in [`crate::dataflow`]): sinks
//! *generate* taint on the operands that feed them, value flow carries a
//! destination's taint back onto its sources, and — for transient fault
//! models — a redefinition *kills* taint, because the corrupt value is
//! replaced.
//!
//! The [`FaultModel`] menu follows ARMORY's instruction-level fault
//! taxonomy. The models fall into three analysis classes:
//!
//! * **Transient value corruption** ([`FaultModel::SingleBitFlip`],
//!   [`FaultModel::ByteCorrupt`]) — one-shot corruption of a register
//!   value; killed by redefinition. Both models share one reachability
//!   (they differ in *how much* of the value corrupts, not in where the
//!   corruption can flow), so they share one dataflow instance.
//! * **Persistent corruption** ([`FaultModel::StuckAt`]) — a stuck bit
//!   re-corrupts the register after every rewrite, so the kill term
//!   disappears and reachability grows accordingly.
//! * **Instruction skip** ([`FaultModel::InstrSkip`]) — not a value
//!   fault at all; handled per-instruction by the attack-surface report
//!   ([`crate::attack`]), which consults the transient reachability to
//!   judge whether a skipped definition's *stale* value matters.
//!
//! Calls are interprocedural when the call graph resolves them: a
//! callee's entry-taint summary tells the caller which argument
//! registers can reach which sinks inside the callee, iterated to a
//! fixed point from the empty summary (a monotone *increasing* chain, in
//! contrast to the liveness layer's decreasing one). Unresolved calls
//! pessimistically send every argument register to every sink.

use std::collections::HashMap;
use std::fmt;

use vulnstack_isa::{CallConv, Isa, Op, SrcRole};

use crate::cfg::{CallGraph, FuncCfg, ModuleCfg};
use crate::dataflow::{self, Direction, Transfer};
use crate::liveness::defs_of;

/// The instruction-level fault models the static layer reasons about —
/// the ARMORY menu restricted to what the register-file injection
/// campaigns can physically produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// One bit of a register value flips once (the paper's baseline
    /// model; what `OooCore::inject` performs).
    SingleBitFlip,
    /// A whole byte (or wider field) of a register corrupts at once —
    /// multi-bit upset. Same reachability as a single flip; more of the
    /// value is wrong.
    ByteCorrupt,
    /// One dynamic instruction is skipped (fetch/decode dropped it).
    InstrSkip,
    /// A register bit is stuck at a value: rewrites do not clear the
    /// corruption.
    StuckAt,
}

impl FaultModel {
    /// Every supported model.
    pub const ALL: [FaultModel; 4] = [
        FaultModel::SingleBitFlip,
        FaultModel::ByteCorrupt,
        FaultModel::InstrSkip,
        FaultModel::StuckAt,
    ];

    /// Stable report name.
    pub fn name(&self) -> &'static str {
        match self {
            FaultModel::SingleBitFlip => "single-bit",
            FaultModel::ByteCorrupt => "byte-corrupt",
            FaultModel::InstrSkip => "instr-skip",
            FaultModel::StuckAt => "stuck-at",
        }
    }

    /// Whether a redefinition of the register clears the corruption.
    pub fn transient(&self) -> bool {
        !matches!(self, FaultModel::StuckAt)
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of attack-surface sinks a corrupted value can reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SinkSet(u8);

impl SinkSet {
    /// A branch condition or control-transfer target.
    pub const BRANCH_COND: SinkSet = SinkSet(1);
    /// A load/store address computation.
    pub const MEM_ADDR: SinkSet = SinkSet(1 << 1);
    /// A syscall argument (or the syscall number itself).
    pub const SYSCALL_ARG: SinkSet = SinkSet(1 << 2);

    /// The empty set.
    pub fn empty() -> SinkSet {
        SinkSet(0)
    }

    /// Every sink kind.
    pub fn all() -> SinkSet {
        SinkSet::BRANCH_COND | SinkSet::MEM_ADDR | SinkSet::SYSCALL_ARG
    }

    /// True if no sink is reachable.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// True if every sink in `other` is present.
    pub fn contains(&self, other: SinkSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// The sink kinds present, as stable names.
    pub fn names(&self) -> Vec<&'static str> {
        let mut v = Vec::new();
        if self.contains(SinkSet::BRANCH_COND) {
            v.push("branch");
        }
        if self.contains(SinkSet::MEM_ADDR) {
            v.push("addr");
        }
        if self.contains(SinkSet::SYSCALL_ARG) {
            v.push("sysarg");
        }
        v
    }
}

impl std::ops::BitOr for SinkSet {
    type Output = SinkSet;
    fn bitor(self, rhs: SinkSet) -> SinkSet {
        SinkSet(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for SinkSet {
    fn bitor_assign(&mut self, rhs: SinkSet) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for SinkSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("-");
        }
        f.write_str(&self.names().join("|"))
    }
}

/// Per-register sink reachability at a program point.
pub type TaintSet = Vec<SinkSet>;

/// Callee entry-taint lookup for a resolved call instruction index.
pub type CallTaint<'a> = &'a dyn Fn(usize) -> Option<TaintSet>;

/// Sink-reachability taint as a [`Transfer`] instance.
struct TaintTransfer<'a> {
    isa: Isa,
    cc: CallConv,
    nregs: usize,
    /// `false` for transient models (redefinition kills), `true` for
    /// stuck-at (no kill).
    persistent: bool,
    call_taint: Option<CallTaint<'a>>,
}

impl TaintTransfer<'_> {
    fn sink_of(role: SrcRole) -> SinkSet {
        match role {
            SrcRole::Value | SrcRole::ShiftAmount | SrcRole::StoreData => SinkSet::empty(),
            SrcRole::MemBase => SinkSet::MEM_ADDR,
            SrcRole::BranchCond => SinkSet::BRANCH_COND,
            // Corrupting an indirect target or a trap-return address
            // hijacks control, like a subverted branch.
            SrcRole::JumpTarget | SrcRole::SysregData => SinkSet::BRANCH_COND,
        }
    }

    /// Whether a corrupted operand of this role also corrupts the
    /// instruction's *result* (a corrupt load base fetches the wrong
    /// word, so it propagates; store data flows to untracked memory).
    fn flows_to_dest(role: SrcRole) -> bool {
        matches!(
            role,
            SrcRole::Value | SrcRole::ShiftAmount | SrcRole::MemBase
        )
    }
}

impl Transfer for TaintTransfer<'_> {
    type Fact = TaintSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self, _f: &FuncCfg) -> TaintSet {
        vec![SinkSet::empty(); self.nregs]
    }

    fn boundary(&self, _f: &FuncCfg) -> TaintSet {
        // Sink reachability past the function exit is not tracked: the
        // return-value flow into a caller sink is approximated at the
        // call site instead (see the `Call` arm below).
        vec![SinkSet::empty(); self.nregs]
    }

    fn join(&self, dst: &mut TaintSet, src: &TaintSet) -> bool {
        let mut changed = false;
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            if !d.contains(s) {
                *d |= s;
                changed = true;
            }
        }
        changed
    }

    fn transfer(&self, f: &FuncCfg, i: usize, fact: &mut TaintSet) {
        let Some(instr) = &f.instrs[i].instr else {
            return; // trap word: nothing executes beyond it
        };
        let isa = self.isa;
        let cc = &self.cc;
        match instr.op {
            Op::Call | Op::Callr => {
                // The callee's return value may depend on any argument,
                // so a corrupted argument reaches whatever the return
                // value reaches downstream of the call.
                let ret_sinks = fact[cc.ret().0 as usize];
                if !self.persistent {
                    for (r, _) in defs_of(instr, isa, cc) {
                        fact[r.0 as usize] = SinkSet::empty();
                    }
                }
                let callee_entry = self.call_taint.and_then(|ct| ct(i));
                match callee_entry {
                    Some(entry) => {
                        for (d, &s) in fact.iter_mut().zip(entry.iter()) {
                            *d |= s;
                        }
                    }
                    None => {
                        // Unresolved target: any argument may feed any
                        // sink inside the unknown callee.
                        for r in cc.args() {
                            fact[r.0 as usize] |= SinkSet::all();
                        }
                    }
                }
                for r in cc.args() {
                    fact[r.0 as usize] |= ret_sinks;
                }
                // The callee dereferences the stack pointer.
                fact[isa.sp().0 as usize] |= SinkSet::MEM_ADDR;
                if instr.op == Op::Callr {
                    fact[instr.rs1.0 as usize] |= SinkSet::BRANCH_COND;
                }
            }
            Op::Syscall => {
                if !self.persistent {
                    for (r, _) in defs_of(instr, isa, cc) {
                        fact[r.0 as usize] = SinkSet::empty();
                    }
                }
                for r in cc.args() {
                    fact[r.0 as usize] |= SinkSet::SYSCALL_ARG;
                }
                fact[cc.syscall_num().0 as usize] |= SinkSet::SYSCALL_ARG;
            }
            _ => {
                let mut carried = SinkSet::empty();
                for r in instr.regs_written(isa) {
                    carried |= fact[r.0 as usize];
                }
                if !self.persistent {
                    for r in instr.regs_written(isa) {
                        fact[r.0 as usize] = SinkSet::empty();
                    }
                }
                for (r, role) in instr.regs_read().into_iter().zip(instr.src_roles()) {
                    let mut s = Self::sink_of(role);
                    if Self::flows_to_dest(role) {
                        s |= carried;
                    }
                    fact[r.0 as usize] |= s;
                }
            }
        }
        if let Some(z) = isa.zero() {
            // The hardwired zero register reads as a constant: no
            // architectural corruption can enter through it.
            fact[z.0 as usize] = SinkSet::empty();
        }
    }
}

/// Converged taint for one function.
#[derive(Debug, Clone)]
pub struct FuncTaint {
    /// Per-instruction, per-register sink reachability *before* the
    /// instruction (a fault landing here, in this register, can reach
    /// these sinks).
    pub before: Vec<TaintSet>,
    /// Same, *after* the instruction.
    pub after: Vec<TaintSet>,
    /// Reachability at function entry (block 0's entry fact) — the
    /// function's interprocedural summary.
    pub entry: TaintSet,
}

/// Runs the taint fixed point for one function. `persistent` selects the
/// stuck-at (no-kill) variant; `call_taint` supplies callee summaries
/// for resolved direct calls.
pub fn func_taint(
    f: &FuncCfg,
    isa: Isa,
    persistent: bool,
    call_taint: Option<CallTaint<'_>>,
) -> FuncTaint {
    let nregs = isa.num_regs() as usize;
    let analysis = TaintTransfer {
        isa,
        cc: CallConv::new(isa),
        nregs,
        persistent,
        call_taint,
    };
    let facts = dataflow::solve(&analysis, f);
    let entry = facts
        .entry
        .first()
        .cloned()
        .unwrap_or_else(|| vec![SinkSet::empty(); nregs]);
    let (before, after) = dataflow::instr_facts(&analysis, f, &facts);
    FuncTaint {
        before,
        after,
        entry,
    }
}

/// Module-wide taint under one analysis class (transient or
/// persistent), with interprocedural call summaries.
#[derive(Debug, Clone)]
pub struct ModuleTaint {
    /// Per-function taint, parallel to `ModuleCfg::funcs`.
    pub funcs: Vec<FuncTaint>,
}

/// Interprocedural taint: iterates per-function entry summaries over the
/// call graph from the empty summary upward until the least fixed point.
pub fn module_taint(cfg: &ModuleCfg, cg: &CallGraph, persistent: bool) -> ModuleTaint {
    let isa = cfg.isa;
    let nregs = isa.num_regs() as usize;
    let nfuncs = cfg.funcs.len();

    let mut callee_at: Vec<HashMap<usize, usize>> = vec![HashMap::new(); nfuncs];
    for s in &cg.sites {
        if let Some(callee) = s.callee {
            callee_at[s.caller].insert(s.instr, callee);
        }
    }

    let mut summaries: Vec<TaintSet> = vec![vec![SinkSet::empty(); nregs]; nfuncs];
    loop {
        let snap = summaries.clone();
        let mut changed = false;
        for (fi, f) in cfg.funcs.iter().enumerate() {
            let lookup =
                |i: usize| -> Option<TaintSet> { callee_at[fi].get(&i).map(|&c| snap[c].clone()) };
            let t = func_taint(f, isa, persistent, Some(&lookup));
            if t.entry != summaries[fi] {
                summaries[fi] = t.entry;
                changed = true;
            }
        }
        // Summaries only grow within a finite lattice, so this
        // terminates; one quiet round means the fixed point is reached.
        if !changed {
            break;
        }
    }

    let funcs: Vec<FuncTaint> = cfg
        .funcs
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            let lookup = |i: usize| -> Option<TaintSet> {
                callee_at[fi].get(&i).map(|&c| summaries[c].clone())
            };
            func_taint(f, isa, persistent, Some(&lookup))
        })
        .collect();

    ModuleTaint { funcs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use vulnstack_compiler::CompiledModule;
    use vulnstack_isa::{Instr, Reg};

    fn func_of(instrs: &[Instr], isa: Isa) -> FuncCfg {
        let text: Vec<u32> = instrs.iter().map(|i| i.encode(isa).unwrap()).collect();
        let entry = text.len() as u32;
        let m = CompiledModule {
            isa,
            text,
            data: Vec::new(),
            global_addrs: Vec::new(),
            func_offsets: vec![0],
            func_names: vec!["f".to_string()],
            entry_offset: entry,
            data_size: 0,
            func_sizes: vec![instrs.len() as u32],
        };
        build_cfg(&m).funcs.into_iter().next().unwrap()
    }

    #[test]
    fn value_flow_reaches_a_branch_condition() {
        let isa = Isa::Va32;
        // 0: addi r4, r1, 1     (r1 feeds r4)
        // 1: bne  r4, r2, +8
        // 2: addi r5, r0, 0
        // 3: jmpr lr
        let prog = [
            Instr::alu_imm(Op::Addi, Reg(4), Reg(1), 1),
            Instr::branch(Op::Bne, Reg(4), Reg(2), 8),
            Instr::alu_imm(Op::Addi, Reg(5), Reg(0), 0),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let f = func_of(&prog, isa);
        let t = func_taint(&f, isa, false, None);
        // A fault in r1 before instr 0 flows through r4 into the branch.
        assert!(t.before[0][1].contains(SinkSet::BRANCH_COND));
        // r4 itself is branch-reaching between def and branch.
        assert!(t.after[0][4].contains(SinkSet::BRANCH_COND));
        // After the branch, r4 reaches nothing.
        assert!(t.after[1][4].is_empty());
    }

    #[test]
    fn redefinition_kills_transient_but_not_stuck_at() {
        let isa = Isa::Va32;
        // 0: addi r4, r1, 1     (kills any earlier r4 corruption)
        // 1: beq  r4, r2, +4
        // 2: jmpr lr
        let prog = [
            Instr::alu_imm(Op::Addi, Reg(4), Reg(1), 1),
            Instr::branch(Op::Beq, Reg(4), Reg(2), 4),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let f = func_of(&prog, isa);
        let transient = func_taint(&f, isa, false, None);
        let stuck = func_taint(&f, isa, true, None);
        // Transient: a flip in r4 before its redefinition is repaired.
        assert!(transient.before[0][4].is_empty());
        // Stuck-at: the write does not clear a stuck bit.
        assert!(stuck.before[0][4].contains(SinkSet::BRANCH_COND));
    }

    #[test]
    fn load_base_and_syscall_args_are_sinks() {
        let isa = Isa::Va32;
        let prog = [
            Instr::load(Op::Lw, Reg(4), Reg(5), 0),
            Instr::sys(Op::Syscall),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let f = func_of(&prog, isa);
        let t = func_taint(&f, isa, false, None);
        assert!(t.before[0][5].contains(SinkSet::MEM_ADDR));
        // Syscall number register (r7 on VA32) and args reach the
        // syscall-argument sink.
        let cc = CallConv::new(isa);
        assert!(t.before[1][cc.syscall_num().0 as usize].contains(SinkSet::SYSCALL_ARG));
        assert!(t.before[1][0].contains(SinkSet::SYSCALL_ARG));
    }

    #[test]
    fn zero_register_never_taints() {
        let isa = Isa::Va64;
        let z = isa.zero().unwrap();
        let prog = [
            Instr::branch(Op::Bne, Reg(4), z, 8),
            Instr::sys(Op::Halt),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let f = func_of(&prog, isa);
        let t = func_taint(&f, isa, false, None);
        assert!(t.before[0][4].contains(SinkSet::BRANCH_COND));
        assert!(t.before[0][z.0 as usize].is_empty());
    }

    #[test]
    fn interprocedural_taint_flows_through_a_resolved_call() {
        let isa = Isa::Va32;
        // f: 0: addi r0, r1, 1    (arg 0)
        //    1: call g
        //    2: jmpr lr
        // g: 3: beq r0, r2, +4    (branches on its argument)
        //    4: jmpr lr
        let instrs = [
            Instr::alu_imm(Op::Addi, Reg(0), Reg(1), 1),
            Instr::jump(Op::Call, 8),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
            Instr::branch(Op::Beq, Reg(0), Reg(2), 4),
            Instr::jump_reg(Op::Jmpr, isa.lr()),
        ];
        let text: Vec<u32> = instrs.iter().map(|i| i.encode(isa).unwrap()).collect();
        let m = CompiledModule {
            isa,
            text,
            data: Vec::new(),
            global_addrs: Vec::new(),
            func_offsets: vec![0, 3],
            func_names: vec!["f".to_string(), "g".to_string()],
            entry_offset: 5,
            data_size: 0,
            func_sizes: vec![3, 2],
        };
        let cfg = build_cfg(&m);
        let cg = crate::cfg::call_graph(&cfg);
        let mt = module_taint(&cfg, &cg, false);
        let f_idx = cfg.funcs.iter().position(|f| f.name == "f").unwrap();
        // The corruption of r1 at f's entry flows into r0, through the
        // call, and into g's branch.
        assert!(mt.funcs[f_idx].before[0][1].contains(SinkSet::BRANCH_COND));
    }
}
