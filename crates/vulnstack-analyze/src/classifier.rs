//! A *statically-proven* pruning oracle for register-file fault sites.
//!
//! The dynamic pruning layer (`ClassTable` in `vulnstack-gefin`) proves a
//! site Masked from a recorded access trace: no read before the next
//! write means the flipped bit is dead. This module proves a strictly
//! smaller set of sites Masked from the *program text alone*, with no
//! simulation at all, giving the soundness lattice the tests enforce:
//!
//! ```text
//! static-dead  ⊆  dynamic-dead (ClassTable)  ⊆  injection-Masked
//! ```
//!
//! # The claim, and why it is sound
//!
//! [`StaticClassifier`] marks architectural register `r` *dead* only if
//! **no executable word anywhere in the image** (user text, kernel boot
//! stub, trap handler) names `r` as a source or a destination. The
//! out-of-order core's rename table starts as the identity map
//! (`rat[r] = PReg(r)`) and the free ring starts at `nregs..nphys`, so:
//!
//! * `rat[r]` can only change when an instruction *writes* `r` — never
//!   happens, so physical register `r` backs `r` forever;
//! * physical register `r` can only enter the free ring when a write to
//!   some architectural register retires and frees the previous mapping
//!   — since `PReg(r)` is never a previous mapping of any written
//!   register and never allocated from the ring, it is never recycled;
//! * the value of `PReg(r)` is only observable through `read_phys`,
//!   which is only reached from instructions that *read* `r` — never
//!   happens, on the right path or any mispredicted wrong path, because
//!   the scan covers every decodable word of every executable segment,
//!   not just the statically-reachable ones.
//!
//! Hence flipping any bit of `PReg(r)` at any cycle perturbs state that
//! no future architectural event depends on: the faulted run and the
//! golden run retire identical instruction streams, and the site is
//! Masked. Two deliberate pessimisms keep the claim airtight:
//!
//! * the hardwired zero register is excluded (its physical register
//!   backs every constant-zero *read*, which `regs_read` reports anyway,
//!   but excluding it costs nothing and documents intent);
//! * undecodable words mark **nothing** dead on their own, but the scan
//!   is per-register across all words, so a register named only by an
//!   undecodable word is still treated as accessed — we conservatively
//!   decode-or-give-up per word and treat a failed decode as "could be
//!   anything": any register may be accessed by it.
//!
//! The one assumption inherited from the platform is W^X: executable
//! segments are not rewritten at run time. The compiler and kernel
//! never do this; the cross-check lives in the lattice property test,
//! which injects into statically-dead sites and asserts Masked.

use vulnstack_isa::{Instr, Isa, Reg};

/// Statically proven facts about which architectural registers an image
/// can never access.
#[derive(Debug, Clone)]
pub struct StaticClassifier {
    isa: Isa,
    /// `accessed[r]` — some executable word reads or writes `r`, or a
    /// word failed to decode (then all registers are marked).
    accessed: Vec<bool>,
}

impl StaticClassifier {
    /// Scans every word of every executable segment.
    pub fn build<'a>(isa: Isa, segments: impl IntoIterator<Item = &'a [u32]>) -> StaticClassifier {
        let nregs = isa.num_regs() as usize;
        let mut accessed = vec![false; nregs];
        // The zero register's physical register backs constant reads;
        // never claim it dead.
        if let Some(z) = isa.zero() {
            accessed[z.0 as usize] = true;
        }
        for seg in segments {
            for &word in seg {
                match Instr::decode(word, isa) {
                    Ok(instr) => {
                        for r in instr.regs_read() {
                            accessed[r.0 as usize] = true;
                        }
                        for r in instr.regs_written(isa) {
                            accessed[r.0 as usize] = true;
                        }
                    }
                    Err(_) => {
                        // A word we cannot decode could, under a fetch
                        // corruption, decode as anything; give up on the
                        // whole claim rather than risk unsoundness.
                        accessed.iter_mut().for_each(|a| *a = true);
                        return StaticClassifier { isa, accessed };
                    }
                }
            }
        }
        StaticClassifier { isa, accessed }
    }

    /// The ISA this classifier was built for.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// True if no executable word names `r` at all.
    pub fn never_accessed(&self, r: Reg) -> bool {
        !self.accessed[r.0 as usize]
    }

    /// Every architectural register proven dead.
    pub fn dead_regs(&self) -> Vec<Reg> {
        (0..self.accessed.len() as u8)
            .map(Reg)
            .filter(|r| self.never_accessed(*r))
            .collect()
    }

    /// Whether a register-file fault site (a flat bit index into the
    /// physical register file, as used by `inject(RegisterFile, bit)`)
    /// lands in a statically-dead physical register.
    ///
    /// Only the identity-mapped low physical registers (`PReg(r)` for a
    /// never-accessed architectural `r`) are claimable: higher physical
    /// registers circulate through the free ring and hold live values.
    /// A bit outside the register file (`preg >= nphys`) is never
    /// claimed dead — the injector rejects such sites rather than
    /// wrapping them onto a different register, and this decode mirrors
    /// it.
    pub fn rf_bit_dead(&self, bit: u64, nphys: usize) -> bool {
        let xlen = self.isa.xlen() as u64;
        let preg = (bit / xlen) as usize;
        preg < nphys && preg < self.accessed.len() && !self.accessed[preg]
    }

    /// Fraction of register-file fault sites proven dead, for a core
    /// with `nphys` physical registers.
    pub fn static_dead_fraction(&self, nphys: usize) -> f64 {
        if nphys == 0 {
            return 0.0;
        }
        let dead = self.dead_regs().len();
        dead as f64 / nphys as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_isa::Op;

    fn words(instrs: &[Instr], isa: Isa) -> Vec<u32> {
        instrs.iter().map(|i| i.encode(isa).unwrap()).collect()
    }

    #[test]
    fn untouched_registers_are_dead_and_touched_ones_are_not() {
        let isa = Isa::Va32;
        let prog = words(
            &[
                Instr::alu_imm(Op::Addi, Reg(1), Reg(2), 5),
                Instr::sys(Op::Halt),
            ],
            isa,
        );
        let c = StaticClassifier::build(isa, [prog.as_slice()]);
        assert!(!c.never_accessed(Reg(1)), "written reg is accessed");
        assert!(!c.never_accessed(Reg(2)), "read reg is accessed");
        assert!(c.never_accessed(Reg(9)), "untouched reg is dead");
        assert!(c.dead_regs().contains(&Reg(9)));
    }

    #[test]
    fn zero_register_is_never_claimed_dead() {
        let isa = Isa::Va64;
        let prog = words(&[Instr::sys(Op::Halt)], isa);
        let c = StaticClassifier::build(isa, [prog.as_slice()]);
        let z = isa.zero().unwrap();
        assert!(!c.never_accessed(z));
    }

    #[test]
    fn undecodable_word_disables_all_claims() {
        let isa = Isa::Va32;
        let mut prog = words(&[Instr::sys(Op::Halt)], isa);
        prog.push(0xffff_ffff);
        let c = StaticClassifier::build(isa, [prog.as_slice()]);
        assert!(c.dead_regs().is_empty());
    }

    #[test]
    fn rf_bit_mapping_matches_the_injector() {
        let isa = Isa::Va32;
        let prog = words(&[Instr::sys(Op::Halt)], isa);
        let c = StaticClassifier::build(isa, [prog.as_slice()]);
        let nphys = 48;
        let xlen = isa.xlen() as u64;
        // Bits inside PReg(9) (dead) vs PReg(13) = sp? sp is not in this
        // program either, but pick an accessed-free reg explicitly.
        assert!(c.never_accessed(Reg(9)));
        assert!(c.rf_bit_dead(9 * xlen, nphys));
        assert!(c.rf_bit_dead(9 * xlen + (xlen - 1), nphys));
        // High physical registers are never claimed.
        assert!(!c.rf_bit_dead(20 * xlen, nphys));
        // Out-of-range bits are never claimed: the injector panics on
        // them rather than wrapping, so no wrap-around claims either.
        assert!(!c.rf_bit_dead(nphys as u64 * xlen, nphys));
        assert!(!c.rf_bit_dead((nphys as u64 + 9) * xlen, nphys));
    }
}
