//! Bootable system images: kernel + compiled user program + input blob.

use vulnstack_compiler::CompiledModule;
use vulnstack_isa::Isa;

use crate::kdata::off;
use crate::kernel::build_kernel;
use crate::memmap;

/// A complete memory image ready to load into a simulator.
#[derive(Debug, Clone)]
pub struct SystemImage {
    /// Target ISA.
    pub isa: Isa,
    /// `(address, bytes)` segments; unlisted memory is zero.
    pub segments: Vec<(u32, Vec<u8>)>,
    /// End of the loaded user text (for fetch/write protection).
    pub user_text_end: u32,
    /// Reset PC (kernel boot).
    pub reset_pc: u32,
    /// Number of input bytes loaded.
    pub input_len: u32,
}

/// Image construction errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// User text does not fit its region.
    TextTooLarge { words: usize },
    /// User data does not fit its region.
    DataTooLarge { bytes: usize },
    /// Input exceeds the input region.
    InputTooLarge { bytes: usize },
    /// The module was compiled with a different data base than the memory
    /// map expects.
    LayoutMismatch { expected: u32, got: u32 },
    /// Kernel assembly failed (internal bug).
    Kernel(String),
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::TextTooLarge { words } => write!(f, "user text too large: {words} words"),
            ImageError::DataTooLarge { bytes } => write!(f, "user data too large: {bytes} bytes"),
            ImageError::InputTooLarge { bytes } => write!(f, "input too large: {bytes} bytes"),
            ImageError::LayoutMismatch { expected, got } => {
                write!(
                    f,
                    "module compiled for data base {got:#x}, expected {expected:#x}"
                )
            }
            ImageError::Kernel(e) => write!(f, "kernel assembly failed: {e}"),
        }
    }
}

impl std::error::Error for ImageError {}

impl SystemImage {
    /// Assembles a bootable image from a compiled module and its input.
    ///
    /// The module must have been compiled with the default
    /// [`CompileOpts`](vulnstack_compiler::CompileOpts) (whose `data_base`
    /// and `stack_top` match the memory map).
    ///
    /// # Errors
    ///
    /// Returns an [`ImageError`] if a section does not fit its region.
    pub fn build(compiled: &CompiledModule, input: &[u8]) -> Result<SystemImage, ImageError> {
        if let Some(&g0) = compiled.global_addrs.first() {
            if !(memmap::USER_DATA..memmap::USER_STACK_LIMIT).contains(&g0) {
                return Err(ImageError::LayoutMismatch {
                    expected: memmap::USER_DATA,
                    got: g0,
                });
            }
        }
        let text_bytes = compiled.text_bytes();
        let text_cap = (memmap::OUTPUT_BASE - memmap::USER_TEXT) as usize;
        if text_bytes.len() > text_cap {
            return Err(ImageError::TextTooLarge {
                words: compiled.text.len(),
            });
        }
        let data_cap = (memmap::USER_STACK_LIMIT - memmap::USER_DATA) as usize;
        if compiled.data.len() > data_cap {
            return Err(ImageError::DataTooLarge {
                bytes: compiled.data.len(),
            });
        }
        if input.len() > memmap::INPUT_CAP as usize {
            return Err(ImageError::InputTooLarge { bytes: input.len() });
        }

        let kernel = build_kernel(compiled.isa).map_err(|e| ImageError::Kernel(e.to_string()))?;
        let boot_bytes: Vec<u8> = kernel.boot.iter().flat_map(|w| w.to_le_bytes()).collect();
        let trap_bytes: Vec<u8> = kernel.trap.iter().flat_map(|w| w.to_le_bytes()).collect();

        // Kernel data page: INLEN and BRK are the only nonzero words.
        let mut kdata = vec![0u8; 64];
        kdata[off::INLEN as usize..off::INLEN as usize + 4]
            .copy_from_slice(&(input.len() as u32).to_le_bytes());
        let brk = memmap::USER_DATA + compiled.data_size;
        kdata[off::BRK as usize..off::BRK as usize + 4].copy_from_slice(&brk.to_le_bytes());

        let user_text_end = memmap::USER_TEXT + text_bytes.len() as u32;
        let mut segments = vec![
            (memmap::KERNEL_BOOT, boot_bytes),
            (memmap::TRAP_VEC, trap_bytes),
            (memmap::KERNEL_DATA, kdata),
            (memmap::USER_TEXT, text_bytes),
        ];
        if !compiled.data.is_empty() {
            segments.push((memmap::USER_DATA, compiled.data.clone()));
        }
        if !input.is_empty() {
            segments.push((memmap::INPUT_BASE, input.to_vec()));
        }

        Ok(SystemImage {
            isa: compiled.isa,
            segments,
            user_text_end,
            reset_pc: memmap::KERNEL_BOOT,
            input_len: input.len() as u32,
        })
    }

    /// Writes all segments into a flat memory buffer of
    /// [`memmap::MEM_SIZE`] bytes.
    pub fn write_into(&self, mem: &mut [u8]) {
        for (addr, bytes) in &self.segments {
            let a = *addr as usize;
            mem[a..a + bytes.len()].copy_from_slice(bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_compiler::{compile, CompileOpts};
    use vulnstack_vir::ModuleBuilder;

    fn tiny_compiled(isa: Isa) -> CompiledModule {
        let mut mb = ModuleBuilder::new("t");
        let _g = mb.global_words("x", &[7]);
        let mut f = mb.function("main", 0);
        f.sys_exit(0);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        compile(&m, isa, &CompileOpts::default()).unwrap()
    }

    #[test]
    fn image_builds_with_expected_segments() {
        for isa in [Isa::Va32, Isa::Va64] {
            let c = tiny_compiled(isa);
            let img = SystemImage::build(&c, b"hello").unwrap();
            assert_eq!(img.reset_pc, memmap::KERNEL_BOOT);
            assert_eq!(img.input_len, 5);
            assert!(img.user_text_end > memmap::USER_TEXT);
            // Segments are inside memory and non-overlapping.
            let mut spans: Vec<(u32, u32)> = img
                .segments
                .iter()
                .map(|(a, b)| (*a, *a + b.len() as u32))
                .collect();
            spans.sort();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap: {spans:?}");
            }
            assert!(spans.last().unwrap().1 <= memmap::MEM_SIZE);
        }
    }

    #[test]
    fn write_into_places_input_and_kdata() {
        let c = tiny_compiled(Isa::Va64);
        let img = SystemImage::build(&c, b"abc").unwrap();
        let mut mem = vec![0u8; memmap::MEM_SIZE as usize];
        img.write_into(&mut mem);
        assert_eq!(
            &mem[memmap::INPUT_BASE as usize..memmap::INPUT_BASE as usize + 3],
            b"abc"
        );
        let inlen = u32::from_le_bytes(
            mem[(memmap::KERNEL_DATA + off::INLEN as u32) as usize..][..4]
                .try_into()
                .unwrap(),
        );
        assert_eq!(inlen, 3);
        let brk = u32::from_le_bytes(
            mem[(memmap::KERNEL_DATA + off::BRK as u32) as usize..][..4]
                .try_into()
                .unwrap(),
        );
        assert!(brk >= memmap::USER_DATA);
    }

    #[test]
    fn mismatched_layout_is_rejected() {
        let mut mb = ModuleBuilder::new("t");
        let _g = mb.global_words("x", &[7]);
        let mut f = mb.function("main", 0);
        f.sys_exit(0);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        let bad = compile(
            &m,
            Isa::Va64,
            &CompileOpts {
                data_base: 0x0000_2000,
                stack_top: memmap::USER_STACK_TOP,
            },
        )
        .unwrap();
        assert!(matches!(
            SystemImage::build(&bad, &[]),
            Err(ImageError::LayoutMismatch { .. })
        ));
    }
}
