//! The physical memory map and protection rules.
//!
//! ```text
//! 0x0000_0000 ┌────────────────────────────┐
//!             │ (null guard)               │
//! 0x0000_0100 │ kernel boot code           │
//! 0x0000_1000 │ kernel trap handler        │
//! 0x0000_8000 │ kernel data (status, save) │
//! 0x0001_0000 │ user text                  │ read/execute in user mode
//! 0x0004_0000 │ output accumulation (DMA)  │ kernel only
//! 0x0008_0000 │ input blob                 │ kernel only
//! 0x0010_0000 │ user data + heap           │ user read/write
//! 0x0030_0000 │ user stack (grows down)    │ user read/write
//! 0x0040_0000 └────────────────────────────┘ top of memory
//! ```

/// Reset program counter (kernel boot).
pub const KERNEL_BOOT: u32 = 0x0000_0100;
/// Trap vector: PC loaded on any user-mode trap.
pub const TRAP_VEC: u32 = 0x0000_1000;
/// Kernel data page (see [`crate::kdata`]).
pub const KERNEL_DATA: u32 = 0x0000_8000;
/// Base of user text (`_start` lives here).
pub const USER_TEXT: u32 = 0x0001_0000;
/// Output accumulation region, drained by DMA after exit.
pub const OUTPUT_BASE: u32 = 0x0004_0000;
/// Capacity of the output region.
pub const OUTPUT_CAP: u32 = 0x0004_0000;
/// Program input blob (kernel-owned).
pub const INPUT_BASE: u32 = 0x0008_0000;
/// Capacity of the input region.
pub const INPUT_CAP: u32 = 0x0008_0000;
/// Base of user data (globals, then heap).
pub const USER_DATA: u32 = 0x0010_0000;
/// Lowest address the user stack may reach (also the heap ceiling).
pub const USER_STACK_LIMIT: u32 = 0x0030_0000;
/// Initial user stack pointer.
pub const USER_STACK_TOP: u32 = 0x003F_FF00;
/// Total modelled physical memory.
pub const MEM_SIZE: u32 = 0x0040_0000;

/// Kind of memory access, for protection checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Fetch,
}

/// Checks whether a *user-mode* access is permitted.
///
/// `user_text_end` is the end of the loaded user text (image-dependent).
/// Kernel mode is allowed everything inside the address space and is not
/// routed through this check.
pub fn user_access_ok(addr: u32, len: u32, kind: AccessKind, user_text_end: u32) -> bool {
    let Some(end) = addr.checked_add(len) else {
        return false;
    };
    if end > MEM_SIZE {
        return false;
    }
    match kind {
        AccessKind::Fetch => addr >= USER_TEXT && end <= user_text_end,
        AccessKind::Read => {
            // Text is readable (constant pools); data/stack readable.
            (addr >= USER_TEXT && end <= user_text_end) || (addr >= USER_DATA && end <= MEM_SIZE)
        }
        AccessKind::Write => addr >= USER_DATA && end <= MEM_SIZE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_ordered_and_disjoint() {
        const {
            assert!(KERNEL_BOOT < TRAP_VEC);
            assert!(TRAP_VEC < KERNEL_DATA);
            assert!(KERNEL_DATA < USER_TEXT);
            assert!(USER_TEXT < OUTPUT_BASE);
            assert!(OUTPUT_BASE + OUTPUT_CAP == INPUT_BASE);
            assert!(INPUT_BASE + INPUT_CAP == USER_DATA);
            assert!(USER_DATA < USER_STACK_LIMIT);
            assert!(USER_STACK_LIMIT < USER_STACK_TOP);
            assert!(USER_STACK_TOP < MEM_SIZE);
        }
    }

    #[test]
    fn user_cannot_touch_kernel_or_io_regions() {
        let text_end = USER_TEXT + 0x1000;
        assert!(!user_access_ok(KERNEL_DATA, 4, AccessKind::Read, text_end));
        assert!(!user_access_ok(OUTPUT_BASE, 4, AccessKind::Read, text_end));
        assert!(!user_access_ok(INPUT_BASE, 4, AccessKind::Write, text_end));
        assert!(!user_access_ok(0x0, 4, AccessKind::Read, text_end));
    }

    #[test]
    fn user_text_is_read_execute_but_not_write() {
        let text_end = USER_TEXT + 0x1000;
        assert!(user_access_ok(USER_TEXT, 4, AccessKind::Fetch, text_end));
        assert!(user_access_ok(USER_TEXT, 4, AccessKind::Read, text_end));
        assert!(!user_access_ok(USER_TEXT, 4, AccessKind::Write, text_end));
        assert!(!user_access_ok(text_end, 4, AccessKind::Fetch, text_end));
    }

    #[test]
    fn user_data_and_stack_are_read_write() {
        let text_end = USER_TEXT + 0x1000;
        assert!(user_access_ok(USER_DATA, 4, AccessKind::Write, text_end));
        assert!(user_access_ok(
            USER_STACK_TOP - 16,
            4,
            AccessKind::Write,
            text_end
        ));
        assert!(!user_access_ok(MEM_SIZE - 2, 4, AccessKind::Read, text_end));
        assert!(!user_access_ok(u32::MAX - 1, 4, AccessKind::Read, text_end));
    }
}
