//! # vulnstack-kernel
//!
//! The full-system substrate under the compiled workloads: a memory map
//! with user/kernel protection, a mini-kernel written directly in VA
//! machine code (boot, trap entry, syscall handlers), and the assembly of
//! complete bootable system images.
//!
//! The kernel matters to the vulnerability study in two ways that the
//! paper highlights:
//!
//! 1. **Kernel instructions execute in the pipeline on behalf of the user
//!    program** (`read`/`write` copy loops, trap entry/exit). PVF-level
//!    analysis sees them; SVF-level (LLFI-style) analysis cannot — one of
//!    the divergences the paper quantifies.
//! 2. **Program output accumulates in memory and is drained by DMA** after
//!    the program exits. A fault that lands on output bytes resident in a
//!    cache after the program's last access corrupts the output without
//!    ever flowing through the pipeline again — the paper's *Escaped*
//!    (ESC) fault propagation model.

pub mod asm;
pub mod image;
pub mod kdata;
pub mod kernel;
pub mod memmap;

pub use image::SystemImage;
pub use kdata::KStatus;
pub use kernel::build_kernel;
