//! The mini-kernel: boot code and the trap/syscall handler, authored
//! directly in machine code via [`crate::asm::Asm`].
//!
//! Register protocol on trap entry (hardware): `EPC` = trapping PC,
//! `CAUSE`/`BADADDR` set, mode = kernel, PC = `TRAP_VEC`. The handler
//! preserves every user register except the syscall result register
//! (`a0`): `a1` is parked in the `SCRATCH0` system register and five
//! temporaries go to the kernel save area.

use vulnstack_isa::{Isa, Op, Reg, SysReg, Syscall};

use crate::asm::{Asm, AsmError};
use crate::kdata::off;
use crate::memmap;

/// Assembled kernel code.
#[derive(Debug, Clone)]
pub struct KernelImage {
    /// Target ISA.
    pub isa: Isa,
    /// Boot code, placed at [`memmap::KERNEL_BOOT`].
    pub boot: Vec<u32>,
    /// Trap handler, placed at [`memmap::TRAP_VEC`].
    pub trap: Vec<u32>,
}

struct K {
    a0: Reg,
    a1: Reg,
    sysnum: Reg,
    t: [Reg; 5],
    word_st: Op,
    word_ld: Op,
    word: i64,
}

impl K {
    fn for_isa(isa: Isa) -> K {
        let cc = vulnstack_isa::CallConv::new(isa);
        let (t, word_st, word_ld, word) = match isa {
            Isa::Va32 => ([Reg(2), Reg(3), Reg(4), Reg(5), Reg(6)], Op::Sw, Op::Lw, 4),
            Isa::Va64 => ([Reg(2), Reg(3), Reg(4), Reg(5), Reg(6)], Op::Sd, Op::Ld, 8),
        };
        K {
            a0: cc.arg(0),
            a1: cc.arg(1),
            sysnum: cc.syscall_num(),
            t,
            word_st,
            word_ld,
            word,
        }
    }
}

/// Builds the kernel for `isa`.
///
/// # Errors
///
/// Returns [`AsmError`] only on internal assembler bugs.
pub fn build_kernel(isa: Isa) -> Result<KernelImage, AsmError> {
    Ok(KernelImage {
        isa,
        boot: build_boot(isa)?,
        trap: build_trap(isa)?,
    })
}

fn build_boot(isa: Isa) -> Result<Vec<u32>, AsmError> {
    let k = K::for_isa(isa);
    let mut a = Asm::new(isa);
    // Jump to user _start in user mode.
    a.mat(k.t[0], memmap::USER_TEXT);
    a.mtsr(SysReg::Epc, k.t[0]);
    a.eret();
    a.assemble()
}

fn build_trap(isa: Isa) -> Result<Vec<u32>, AsmError> {
    let k = K::for_isa(isa);
    let (a0, a1, sysnum) = (k.a0, k.a1, k.sysnum);
    let [t1, t2, t3, t4, tz] = k.t;
    let mut a = Asm::new(isa);

    // --- Entry: park a1, establish the kernel data pointer, save temps.
    a.mtsr(SysReg::Scratch0, a1);
    a.mat(a1, memmap::KERNEL_DATA);
    for (i, &r) in k.t.iter().enumerate() {
        a.store(k.word_st, r, a1, off::SAVE + k.word * i as i64);
    }
    a.movz(tz, 0, 0);

    // --- Dispatch on cause, then syscall number.
    a.mfsr(t1, SysReg::Cause);
    a.branch_to(Op::Bne, t1, tz, "fatal"); // non-syscall trap
    for (label, sc) in [
        ("sys_exit", Syscall::Exit),
        ("sys_write", Syscall::Write),
        ("sys_read", Syscall::Read),
        ("sys_brk", Syscall::Brk),
        ("sys_detect", Syscall::Detect),
    ] {
        a.movz(t2, sc.number() as u16, 0);
        a.branch_to(Op::Beq, sysnum, t2, label);
    }
    // Unknown syscall: treat as a crash with the syscall number as code.
    a.ri(Op::Addi, t1, sysnum, 0);
    a.jmp_to("fatal");

    // --- fatal: status = Crashed, code = t1, halt.
    a.label("fatal");
    a.store(Op::Sw, t1, a1, off::CODE);
    a.movz(t2, crate::kdata::KStatus::Crashed.word() as u16, 0);
    a.store(Op::Sw, t2, a1, off::STATUS);
    a.halt();

    // fatal_af: access fault discovered inside a handler.
    a.label("fatal_af");
    a.movz(t1, vulnstack_isa::TrapCause::AccessFault.code() as u16, 0);
    a.jmp_to("fatal");

    // --- exit(code) / detect(code).
    a.label("sys_exit");
    a.store(Op::Sw, a0, a1, off::CODE);
    a.movz(t2, crate::kdata::KStatus::Exited.word() as u16, 0);
    a.store(Op::Sw, t2, a1, off::STATUS);
    a.halt();

    a.label("sys_detect");
    a.store(Op::Sw, a0, a1, off::CODE);
    a.movz(t2, crate::kdata::KStatus::Detected.word() as u16, 0);
    a.store(Op::Sw, t2, a1, off::STATUS);
    a.halt();

    // Emits the user-buffer bounds check: fatal_af unless
    // USER_TEXT <= a0 && a0 + t1 <= MEM_SIZE.
    let bounds_check = |a: &mut Asm| {
        a.mat(t2, memmap::USER_TEXT);
        a.rr(Op::Sltu, t3, a0, t2);
        a.branch_to(Op::Bne, t3, tz, "fatal_af");
        a.rr(Op::Add, t2, a0, t1);
        a.mat(t3, memmap::MEM_SIZE);
        a.rr(Op::Sltu, t4, t3, t2);
        a.branch_to(Op::Bne, t4, tz, "fatal_af");
    };

    // --- write(ptr=a0, len=scratch0): append to the output region.
    a.label("sys_write");
    a.mfsr(t1, SysReg::Scratch0);
    bounds_check(&mut a);
    a.load(Op::Lw, t2, a1, off::OUTLEN);
    // Clamp to capacity: if OUTLEN + len > CAP then len = CAP - OUTLEN.
    a.rr(Op::Add, t3, t2, t1);
    a.mat(t4, memmap::OUTPUT_CAP);
    a.rr(Op::Sltu, t4, t4, t3);
    a.branch_to(Op::Beq, t4, tz, "wr_ok");
    a.mat(t4, memmap::OUTPUT_CAP);
    a.rr(Op::Sub, t1, t4, t2);
    a.label("wr_ok");
    // dst = OUTPUT_BASE + OUTLEN; OUTLEN += len.
    a.mat(t3, memmap::OUTPUT_BASE);
    a.rr(Op::Add, t3, t3, t2);
    a.rr(Op::Add, t4, t2, t1);
    a.store(Op::Sw, t4, a1, off::OUTLEN);
    a.label("wr_loop");
    a.branch_to(Op::Beq, t1, tz, "wr_done");
    a.load(Op::Lbu, t4, a0, 0);
    a.store(Op::Sb, t4, t3, 0);
    a.ri(Op::Addi, a0, a0, 1);
    a.ri(Op::Addi, t3, t3, 1);
    a.ri(Op::Addi, t1, t1, -1);
    a.jmp_to("wr_loop");
    a.label("wr_done");
    a.movz(a0, 0, 0);
    a.jmp_to("done");

    // --- read(ptr=a0, len=scratch0) -> bytes copied.
    a.label("sys_read");
    a.mfsr(t1, SysReg::Scratch0);
    bounds_check(&mut a);
    a.load(Op::Lw, t2, a1, off::INPOS);
    a.load(Op::Lw, t3, a1, off::INLEN);
    a.rr(Op::Sub, t3, t3, t2);
    // n = min(len, remaining).
    a.rr(Op::Sltu, t4, t3, t1);
    a.branch_to(Op::Beq, t4, tz, "rd_n_ok");
    a.rr(Op::Add, t1, t3, tz);
    a.label("rd_n_ok");
    a.store(Op::Sw, t1, a1, off::TMP0);
    a.rr(Op::Add, t4, t2, t1);
    a.store(Op::Sw, t4, a1, off::INPOS);
    a.mat(t3, memmap::INPUT_BASE);
    a.rr(Op::Add, t3, t3, t2);
    a.label("rd_loop");
    a.branch_to(Op::Beq, t1, tz, "rd_done");
    a.load(Op::Lbu, t2, t3, 0);
    a.store(Op::Sb, t2, a0, 0);
    a.ri(Op::Addi, t3, t3, 1);
    a.ri(Op::Addi, a0, a0, 1);
    a.ri(Op::Addi, t1, t1, -1);
    a.jmp_to("rd_loop");
    a.label("rd_done");
    a.load(Op::Lw, a0, a1, off::TMP0);
    a.jmp_to("done");

    // --- brk(delta=a0) -> old break, or -1.
    a.label("sys_brk");
    a.load(Op::Lw, t1, a1, off::BRK);
    a.rr(Op::Add, t2, t1, a0);
    a.mat(t3, memmap::USER_DATA);
    a.rr(Op::Sltu, t4, t2, t3);
    a.branch_to(Op::Bne, t4, tz, "brk_fail");
    a.mat(t3, memmap::USER_STACK_LIMIT);
    a.rr(Op::Sltu, t4, t3, t2);
    a.branch_to(Op::Bne, t4, tz, "brk_fail");
    a.store(Op::Sw, t2, a1, off::BRK);
    a.rr(Op::Add, a0, t1, tz);
    a.jmp_to("done");
    a.label("brk_fail");
    a.movz(a0, 0xFFFF, 0);
    a.movk(a0, 0xFFFF, 1);
    if isa == Isa::Va64 {
        // Keep the sign-extended-32 register convention for -1.
        a.ri(Op::Addiw, a0, a0, 0);
    }
    a.jmp_to("done");

    // --- Common syscall return: EPC += 4, restore, eret.
    a.label("done");
    a.mfsr(t1, SysReg::Epc);
    a.ri(Op::Addi, t1, t1, 4);
    a.mtsr(SysReg::Epc, t1);
    for (i, &r) in k.t.iter().enumerate() {
        a.load(k.word_ld, r, a1, off::SAVE + k.word * i as i64);
    }
    a.mfsr(a1, SysReg::Scratch0);
    a.eret();

    a.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_isa::Instr;

    #[test]
    fn kernel_assembles_on_both_isas() {
        for isa in [Isa::Va32, Isa::Va64] {
            let k = build_kernel(isa).unwrap();
            assert!(!k.boot.is_empty());
            assert!(k.trap.len() > 50, "{isa}: trap handler suspiciously small");
            for (i, &w) in k.boot.iter().chain(k.trap.iter()).enumerate() {
                Instr::decode(w, isa).unwrap_or_else(|e| panic!("{isa} word {i}: {e}"));
            }
        }
    }

    #[test]
    fn trap_handler_fits_before_kernel_data() {
        for isa in [Isa::Va32, Isa::Va64] {
            let k = build_kernel(isa).unwrap();
            let end = memmap::TRAP_VEC + 4 * k.trap.len() as u32;
            assert!(
                end <= memmap::KERNEL_DATA,
                "{isa}: trap handler overruns kernel data"
            );
            let boot_end = memmap::KERNEL_BOOT + 4 * k.boot.len() as u32;
            assert!(boot_end <= memmap::TRAP_VEC);
        }
    }

    #[test]
    fn trap_handler_ends_with_eret() {
        for isa in [Isa::Va32, Isa::Va64] {
            let k = build_kernel(isa).unwrap();
            let last = Instr::decode(*k.trap.last().unwrap(), isa).unwrap();
            assert_eq!(last.op, Op::Eret);
        }
    }

    #[test]
    fn kernel_uses_privileged_instructions() {
        let k = build_kernel(Isa::Va64).unwrap();
        let ops: Vec<Op> = k
            .trap
            .iter()
            .map(|&w| Instr::decode(w, Isa::Va64).unwrap().op)
            .collect();
        assert!(ops.contains(&Op::Mfsr));
        assert!(ops.contains(&Op::Mtsr));
        assert!(ops.contains(&Op::Halt));
        assert!(ops.contains(&Op::Eret));
    }
}
