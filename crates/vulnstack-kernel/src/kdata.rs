//! Layout of the kernel data page and run-status codes.

use serde::{Deserialize, Serialize};

/// Byte offsets of kernel variables within
/// [`KERNEL_DATA`](crate::memmap::KERNEL_DATA). All are 32-bit words.
pub mod off {
    /// Run status ([`super::KStatus`] as a word).
    pub const STATUS: i64 = 0;
    /// Exit code, detect code, or trap cause.
    pub const CODE: i64 = 4;
    /// Bytes accumulated in the output region.
    pub const OUTLEN: i64 = 8;
    /// Input read cursor.
    pub const INPOS: i64 = 12;
    /// Total input length (set at image build).
    pub const INLEN: i64 = 16;
    /// Current user heap break (set at image build).
    pub const BRK: i64 = 20;
    /// Scratch word used by syscall handlers.
    pub const TMP0: i64 = 24;
    /// Register save area (ISA word-sized slots).
    pub const SAVE: i64 = 32;
}

/// Terminal status of a full-system run, written by the kernel before
/// `HALT` (or by the simulator on hardware-detected double faults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u32)]
pub enum KStatus {
    /// Still running (initial value).
    Running = 0,
    /// Clean `exit(code)`.
    Exited = 1,
    /// Error trap, invalid syscall, or kernel panic.
    Crashed = 2,
    /// Software fault-tolerance check fired (`detect(code)`).
    Detected = 3,
}

impl KStatus {
    /// Decodes the status word.
    pub fn from_word(w: u32) -> Option<KStatus> {
        Some(match w {
            0 => KStatus::Running,
            1 => KStatus::Exited,
            2 => KStatus::Crashed,
            3 => KStatus::Detected,
            _ => return None,
        })
    }

    /// Encodes to the status word.
    pub fn word(self) -> u32 {
        self as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_roundtrip() {
        for s in [
            KStatus::Running,
            KStatus::Exited,
            KStatus::Crashed,
            KStatus::Detected,
        ] {
            assert_eq!(KStatus::from_word(s.word()), Some(s));
        }
        assert_eq!(KStatus::from_word(9), None);
    }

    #[test]
    fn offsets_do_not_collide_with_save_area() {
        const {
            assert!(off::TMP0 < off::SAVE);
            assert!(off::SAVE >= 32);
        }
    }
}
