//! A tiny label-resolving assembler used to author the kernel.

use std::collections::HashMap;

use vulnstack_isa::{Instr, Isa, Op, Reg, SysReg};

/// One assembly item: a concrete instruction or a label-relative branch.
#[derive(Debug, Clone)]
enum Item {
    Fixed(Instr),
    Branch {
        op: Op,
        rs1: Reg,
        rs2: Reg,
        label: String,
    },
    Jump {
        op: Op,
        label: String,
    },
}

/// A small two-pass assembler with named labels.
///
/// # Example
///
/// ```
/// use vulnstack_isa::{Isa, Reg};
/// use vulnstack_kernel::asm::Asm;
///
/// let mut a = Asm::new(Isa::Va64);
/// a.movz(Reg(1), 0, 0);
/// a.label("spin");
/// a.jmp_to("spin");
/// let words = a.assemble().unwrap();
/// assert_eq!(words.len(), 2);
/// ```
#[derive(Debug)]
pub struct Asm {
    isa: Isa,
    items: Vec<Item>,
    labels: HashMap<String, usize>,
}

/// Assembly error: unknown label or encoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch references an undefined label.
    UnknownLabel(String),
    /// Encoding rejected an instruction.
    Encode(String),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UnknownLabel(l) => write!(f, "unknown label {l}"),
            AsmError::Encode(e) => write!(f, "encode failed: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl Asm {
    /// Creates an assembler for `isa`.
    pub fn new(isa: Isa) -> Asm {
        Asm {
            isa,
            items: Vec::new(),
            labels: HashMap::new(),
        }
    }

    /// Defines a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is redefined.
    pub fn label(&mut self, name: &str) {
        let prev = self.labels.insert(name.to_string(), self.items.len());
        assert!(prev.is_none(), "label {name} redefined");
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, i: Instr) {
        self.items.push(Item::Fixed(i));
    }

    /// `movz rd, imm16 << 16*shift`.
    pub fn movz(&mut self, rd: Reg, imm16: u16, shift: u8) {
        self.emit(Instr::mov_wide(Op::Movz, rd, imm16, shift));
    }

    /// `movk rd, imm16 << 16*shift` (keep other bits).
    pub fn movk(&mut self, rd: Reg, imm16: u16, shift: u8) {
        self.emit(Instr::mov_wide(Op::Movk, rd, imm16, shift));
    }

    /// Materialises a full 32-bit constant.
    pub fn mat(&mut self, rd: Reg, value: u32) {
        self.movz(rd, (value & 0xffff) as u16, 0);
        if value >> 16 != 0 {
            self.movk(rd, (value >> 16) as u16, 1);
        }
    }

    /// Register-register ALU.
    pub fn rr(&mut self, op: Op, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::alu_rr(op, rd, rs1, rs2));
    }

    /// Register-immediate ALU.
    pub fn ri(&mut self, op: Op, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Instr::alu_imm(op, rd, rs1, imm));
    }

    /// Load.
    pub fn load(&mut self, op: Op, rd: Reg, base: Reg, off: i64) {
        self.emit(Instr::load(op, rd, base, off));
    }

    /// Store.
    pub fn store(&mut self, op: Op, data: Reg, base: Reg, off: i64) {
        self.emit(Instr::store(op, data, base, off));
    }

    /// Conditional branch to a label.
    pub fn branch_to(&mut self, op: Op, rs1: Reg, rs2: Reg, label: &str) {
        self.items.push(Item::Branch {
            op,
            rs1,
            rs2,
            label: label.to_string(),
        });
    }

    /// Unconditional jump to a label.
    pub fn jmp_to(&mut self, label: &str) {
        self.items.push(Item::Jump {
            op: Op::Jmp,
            label: label.to_string(),
        });
    }

    /// `mfsr rd, sr`.
    pub fn mfsr(&mut self, rd: Reg, sr: SysReg) {
        self.emit(Instr::mfsr(rd, sr));
    }

    /// `mtsr sr, rs`.
    pub fn mtsr(&mut self, sr: SysReg, rs: Reg) {
        self.emit(Instr::mtsr(sr, rs));
    }

    /// `eret`.
    pub fn eret(&mut self) {
        self.emit(Instr::sys(Op::Eret));
    }

    /// `halt`.
    pub fn halt(&mut self) {
        self.emit(Instr::sys(Op::Halt));
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Resolves labels and encodes.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] on undefined labels or encoding failures.
    pub fn assemble(self) -> Result<Vec<u32>, AsmError> {
        let mut words = Vec::with_capacity(self.items.len());
        for (pos, item) in self.items.iter().enumerate() {
            let instr = match item {
                Item::Fixed(i) => *i,
                Item::Branch {
                    op,
                    rs1,
                    rs2,
                    label,
                } => {
                    let &dest = self
                        .labels
                        .get(label)
                        .ok_or_else(|| AsmError::UnknownLabel(label.clone()))?;
                    Instr::branch(*op, *rs1, *rs2, (dest as i64 - pos as i64) * 4)
                }
                Item::Jump { op, label } => {
                    let &dest = self
                        .labels
                        .get(label)
                        .ok_or_else(|| AsmError::UnknownLabel(label.clone()))?;
                    Instr::jump(*op, (dest as i64 - pos as i64) * 4)
                }
            };
            words.push(
                instr
                    .encode(self.isa)
                    .map_err(|e| AsmError::Encode(e.to_string()))?,
            );
        }
        Ok(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new(Isa::Va32);
        a.label("top");
        a.ri(Op::Addi, Reg(1), Reg(1), 1);
        a.branch_to(Op::Beq, Reg(1), Reg(2), "end");
        a.jmp_to("top");
        a.label("end");
        a.halt();
        let words = a.assemble().unwrap();
        assert_eq!(words.len(), 4);
        let b = Instr::decode(words[1], Isa::Va32).unwrap();
        assert_eq!(b.imm, 8); // beq at 1 -> end at 3: +2 words
        let j = Instr::decode(words[2], Isa::Va32).unwrap();
        assert_eq!(j.imm, -8); // jmp at 2 -> top at 0
    }

    #[test]
    fn unknown_label_is_an_error() {
        let mut a = Asm::new(Isa::Va32);
        a.jmp_to("nowhere");
        assert!(matches!(a.assemble(), Err(AsmError::UnknownLabel(_))));
    }

    #[test]
    fn mat_emits_one_or_two_instructions() {
        let mut a = Asm::new(Isa::Va64);
        a.mat(Reg(1), 0x1234);
        assert_eq!(a.len(), 1);
        let mut b = Asm::new(Isa::Va64);
        b.mat(Reg(1), 0x0010_0000);
        assert_eq!(b.len(), 2);
    }

    #[test]
    #[should_panic(expected = "redefined")]
    fn duplicate_label_panics() {
        let mut a = Asm::new(Isa::Va32);
        a.label("x");
        a.label("x");
    }
}
