//! # vulnstack-llfi
//!
//! Software-level fault injection in the style of LLFI: instantaneous
//! single-bit flips in the destination value of one dynamic IR
//! instruction, user code only. This is the paper's **SVF** measurement:
//! it sees neither kernel activity, nor microarchitectural residency, nor
//! escaped faults — by construction.
//!
//! # Example
//!
//! ```no_run
//! use vulnstack_llfi::svf_campaign;
//! use vulnstack_workloads::WorkloadId;
//!
//! let w = WorkloadId::Crc32.build();
//! let tally = svf_campaign(&w.module, &w.input, &w.expected_output, 100, 42, 4);
//! println!("SVF = {:.3}", tally.vf().total());
//! ```

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vulnstack_core::effects::{FaultEffect, Tally};
use vulnstack_core::FaultModel;
use vulnstack_vir::instr::InstrClass;
use vulnstack_vir::interp::{Interpreter, RunStatus, SwFault, SwFaultModel};
use vulnstack_vir::Module;

/// Maps the runtime [`FaultModel`] onto VIR's own software fault
/// vocabulary ([`SwFaultModel`]): same four models, but `vulnstack-vir`
/// depends only on the ISA crate and cannot name the shared enum.
pub fn sw_model(model: FaultModel) -> SwFaultModel {
    match model {
        FaultModel::BitFlip => SwFaultModel::BitFlip,
        FaultModel::ByteCorrupt => SwFaultModel::ByteCorrupt,
        FaultModel::InstrSkip => SwFaultModel::InstrSkip,
        FaultModel::StuckAt => SwFaultModel::StuckAt,
    }
}

/// Classifies an interpreted run against the golden interpretation.
pub fn classify(
    status: RunStatus,
    output: &[u8],
    golden_status: RunStatus,
    golden_output: &[u8],
) -> FaultEffect {
    match status {
        RunStatus::Detected(_) => FaultEffect::Detected,
        RunStatus::Trapped(_) | RunStatus::Timeout => FaultEffect::Crash,
        RunStatus::Exited(code) => {
            let golden_code = match golden_status {
                RunStatus::Exited(c) => c,
                _ => return FaultEffect::Sdc,
            };
            if code == golden_code && output == golden_output {
                FaultEffect::Masked
            } else {
                FaultEffect::Sdc
            }
        }
    }
}

/// Golden interpretation of a module: status, output and the injectable
/// dynamic-instruction population.
#[derive(Debug, Clone)]
pub struct SvfGolden {
    /// Golden status.
    pub status: RunStatus,
    /// Golden output.
    pub output: Vec<u8>,
    /// Dynamic injectable (value-producing) instruction count — the
    /// sampling population.
    pub injectable: u64,
    /// Dynamic instruction budget for faulty runs.
    pub budget: u64,
}

/// Takes the golden run.
///
/// # Panics
///
/// Panics if the module's globals do not fit the interpreter memory
/// (workloads are sized well below the limit).
pub fn golden_run(module: &Module, input: &[u8]) -> SvfGolden {
    let out = Interpreter::new(module)
        .with_input(input.to_vec())
        .run()
        .expect("golden interpretation");
    SvfGolden {
        status: out.status,
        output: out.output,
        injectable: out.injectable,
        budget: out.dyn_instrs * 8 + 100_000,
    }
}

/// Runs one software-level injection.
pub fn run_one(module: &Module, input: &[u8], golden: &SvfGolden, fault: SwFault) -> FaultEffect {
    run_one_classed(module, input, golden, fault).0
}

/// [`run_one`] with campaign-metrics recording: a faulty run that burns
/// its whole dynamic-instruction budget (the software layer's watchdog)
/// is counted as a `watchdog_expiries` metric in addition to its
/// Crash-class record. The returned effect is identical to [`run_one`].
pub fn run_one_metered(
    module: &Module,
    input: &[u8],
    golden: &SvfGolden,
    fault: SwFault,
    metrics: Option<&vulnstack_core::trace::CampaignMetrics>,
) -> FaultEffect {
    let out = Interpreter::new(module)
        .with_input(input.to_vec())
        .with_budget(golden.budget)
        .with_fault(fault)
        .run()
        .expect("interpretation");
    if out.status == RunStatus::Timeout {
        if let Some(m) = metrics {
            m.record_watchdog_expiry();
        }
    }
    classify(out.status, &out.output, golden.status, &golden.output)
}

/// Runs one injection, also reporting the class of the IR instruction the
/// fault landed on.
pub fn run_one_classed(
    module: &Module,
    input: &[u8],
    golden: &SvfGolden,
    fault: SwFault,
) -> (FaultEffect, Option<InstrClass>) {
    let out = Interpreter::new(module)
        .with_input(input.to_vec())
        .with_budget(golden.budget)
        .with_fault(fault)
        .run()
        .expect("interpretation");
    (
        classify(out.status, &out.output, golden.status, &golden.output),
        out.injected_class,
    )
}

/// Runs an SVF campaign and breaks the results down by the *function*
/// containing the injected instruction — the per-code-region view
/// software designers use to decide where to apply protection (paper
/// §II.A's "pinpoint the vulnerability of different segments of the
/// program").
pub fn svf_breakdown_by_function(
    module: &Module,
    input: &[u8],
    n: usize,
    seed: u64,
) -> BTreeMap<String, Tally> {
    let golden = golden_run(module, input);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51F1_57AC_0DE5_EED5);
    let mut out: BTreeMap<String, Tally> = BTreeMap::new();
    for _ in 0..n {
        let fault = SwFault::flip(
            rng.gen_range(0..golden.injectable.max(1)),
            rng.gen_range(0..32),
        );
        let run = Interpreter::new(module)
            .with_input(input.to_vec())
            .with_budget(golden.budget)
            .with_fault(fault)
            .run()
            .expect("interpretation");
        let effect = classify(run.status, &run.output, golden.status, &golden.output);
        if let Some(fid) = run.injected_func {
            let name = module.functions[fid.0 as usize].name.clone();
            out.entry(name).or_default().add(effect);
        }
    }
    out
}

/// Runs an SVF campaign and breaks the results down by the class of the
/// injected IR instruction — which kinds of values are most fragile at
/// the software layer.
pub fn svf_breakdown(
    module: &Module,
    input: &[u8],
    n: usize,
    seed: u64,
) -> BTreeMap<InstrClass, Tally> {
    let golden = golden_run(module, input);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51F1_57AC_0DE5_EED5);
    let mut out: BTreeMap<InstrClass, Tally> = BTreeMap::new();
    for _ in 0..n {
        let fault = SwFault::flip(
            rng.gen_range(0..golden.injectable.max(1)),
            rng.gen_range(0..32),
        );
        let (effect, class) = run_one_classed(module, input, &golden, fault);
        if let Some(c) = class {
            out.entry(c).or_default().add(effect);
        }
    }
    out
}

/// Runs an SVF campaign of `n` uniformly-sampled faults. Deterministic
/// for a given `seed` at any thread count; parallelised over `threads`
/// workers with work stealing (`vulnstack_core::sched`).
pub fn svf_campaign(
    module: &Module,
    input: &[u8],
    expected_output: &[u8],
    n: usize,
    seed: u64,
    threads: usize,
) -> Tally {
    svf_campaign_metered(module, input, expected_output, n, seed, threads, None)
}

/// [`svf_campaign`] with optional campaign metrics: each injection is
/// recorded as a worker span in `metrics` (the software layer has no
/// checkpoints or microarchitectural extinction, so only throughput and
/// load-balance telemetry applies). Results are identical to the
/// unmetered campaign.
#[allow(clippy::too_many_arguments)]
pub fn svf_campaign_metered(
    module: &Module,
    input: &[u8],
    expected_output: &[u8],
    n: usize,
    seed: u64,
    threads: usize,
    metrics: Option<&vulnstack_core::trace::CampaignMetrics>,
) -> Tally {
    let golden = golden_run(module, input);
    debug_assert_eq!(golden.output, expected_output, "golden output mismatch");
    let faults = draw_faults(&golden, n, seed);

    let order: Vec<usize> = (0..faults.len()).collect();
    vulnstack_core::sched::map_ordered_metered(
        &faults,
        &order,
        threads,
        |_, &f| run_one_metered(module, input, &golden, f, metrics),
        metrics,
    )
    .into_iter()
    .collect()
}

/// Draws the campaign's fault sites from one seeded stream — the same
/// stream every SVF entry point uses, so journaled, metered and plain
/// campaigns inject identical sites for the same seed.
pub fn draw_faults(golden: &SvfGolden, n: usize, seed: u64) -> Vec<SwFault> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51F1_57AC_0DE5_EED5);
    (0..n)
        .map(|_| {
            SwFault::flip(
                rng.gen_range(0..golden.injectable.max(1)),
                rng.gen_range(0..32),
            )
        })
        .collect()
}

/// Draws `n` software faults over a model set. With the single legacy
/// model `[BitFlip]` this is exactly [`draw_faults`] — same RNG stream,
/// same faults — so model threading is a no-op for legacy campaigns.
/// With multiple models each fault draws its model uniformly, then a
/// `(target, bit)` site (every model applies at the software layer; the
/// bit selects the byte for byte corruption and is ignored by skips).
///
/// # Panics
///
/// Panics if `models` is empty.
pub fn draw_model_faults(
    golden: &SvfGolden,
    n: usize,
    seed: u64,
    models: &[FaultModel],
) -> Vec<SwFault> {
    assert!(!models.is_empty(), "no fault model given");
    let models: Vec<FaultModel> = FaultModel::ALL
        .into_iter()
        .filter(|m| models.contains(m))
        .collect();
    if models == [FaultModel::BitFlip] {
        return draw_faults(golden, n, seed);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51F1_57AC_0DE5_EED5 ^ 0x9E37_79B9_7F4A_7C15);
    (0..n)
        .map(|_| {
            let model = models[rng.gen_range(0..models.len())];
            SwFault {
                target: rng.gen_range(0..golden.injectable.max(1)),
                bit: rng.gen_range(0..32),
                model: sw_model(model),
            }
        })
        .collect()
}

/// Runs a multi-model SVF campaign and breaks the tally down by fault
/// model — the software layer's view of the ARMORY-style multi-model
/// comparison. Deterministic for a given seed at any thread count.
pub fn svf_model_breakdown(
    module: &Module,
    input: &[u8],
    expected_output: &[u8],
    n: usize,
    seed: u64,
    models: &[FaultModel],
    threads: usize,
) -> BTreeMap<FaultModel, Tally> {
    let golden = golden_run(module, input);
    debug_assert_eq!(golden.output, expected_output, "golden output mismatch");
    let faults = draw_model_faults(&golden, n, seed, models);
    let order: Vec<usize> = (0..faults.len()).collect();
    let effects = vulnstack_core::sched::map_ordered_metered(
        &faults,
        &order,
        threads,
        |_, &f| run_one_metered(module, input, &golden, f, None),
        None,
    );
    let mut out: BTreeMap<FaultModel, Tally> = BTreeMap::new();
    for (f, e) in faults.iter().zip(effects) {
        let model = FaultModel::ALL
            .into_iter()
            .find(|&m| sw_model(m) == f.model)
            .expect("every SwFaultModel maps back");
        out.entry(model).or_default().add(e);
    }
    out
}

/// Results of a resumable SVF campaign: the tally over completed
/// injections, the quarantined sites (excluded from the tally), and the
/// replay/execute accounting.
#[derive(Debug)]
pub struct SvfResumed {
    /// Tally over the completed injections.
    pub tally: Tally,
    /// Sites whose every injection attempt panicked.
    pub quarantined: Vec<vulnstack_core::sched::Quarantine>,
    /// Resume accounting.
    pub stats: vulnstack_core::ResumeStats,
}

/// Journaled, crash-resumable [`svf_campaign_metered`]: each settled
/// injection is appended durably to the journal at `opts.path` before
/// the worker claims its next site, a panicking injection degrades to a
/// quarantine record instead of killing the campaign, and a resume
/// replays the journaled injections instantly, refusing a journal whose
/// fingerprint (workload, seed, sample count, golden run, schema
/// version) does not match. The merged tally is identical to an
/// uninterrupted campaign at any thread count.
///
/// # Errors
///
/// Any [`vulnstack_core::JournalError`]: filesystem failures, a missing
/// journal when resume is required, a fingerprint mismatch, or a corrupt
/// journal body.
#[allow(clippy::too_many_arguments)]
pub fn svf_campaign_resumable(
    module: &Module,
    input: &[u8],
    expected_output: &[u8],
    n: usize,
    seed: u64,
    threads: usize,
    opts: &vulnstack_core::JournalOpts<'_>,
    metrics: Option<&vulnstack_core::trace::CampaignMetrics>,
) -> Result<SvfResumed, vulnstack_core::JournalError> {
    let golden = golden_run(module, input);
    debug_assert_eq!(golden.output, expected_output, "golden output mismatch");
    let faults = draw_faults(&golden, n, seed);
    let order: Vec<usize> = (0..faults.len()).collect();
    let fingerprint = vulnstack_core::Fingerprint {
        engine: "llfi-svf".to_string(),
        workload: opts.workload.to_string(),
        config: "vir".to_string(),
        structure: "-".to_string(),
        seed,
        samples: n as u64,
        params: format!(
            "injectable={};output={:016x};models={}",
            golden.injectable,
            vulnstack_core::journal::fnv1a64(&golden.output),
            FaultModel::BitFlip.name(),
        ),
        // Version 2: the fingerprint binds the fault-model set.
        version: 2,
    };
    let resumed = vulnstack_core::ResumableCampaign {
        path: opts.path,
        fingerprint,
        mode: opts.mode,
        items: &faults,
        order: &order,
        threads,
        policy: opts.policy,
        meta: &[],
    }
    .run(
        |_, &f| run_one_metered(module, input, &golden, f, metrics),
        |e| e.name().to_string(),
        FaultEffect::from_name,
        metrics,
    )?;
    Ok(SvfResumed {
        tally: resumed.records().into_iter().copied().collect(),
        quarantined: resumed.quarantined().into_iter().cloned().collect(),
        stats: resumed.stats,
    })
}

/// Results of a streaming SVF campaign: the tally accumulated effect by
/// effect in the sink fold, never a collected outcome vector.
#[derive(Debug)]
pub struct SvfStreamed {
    /// Tally over the completed injections.
    pub tally: Tally,
    /// Sites whose every injection attempt panicked (journaled runs
    /// only).
    pub quarantined: Vec<vulnstack_core::sched::Quarantine>,
    /// Handle to the on-disk record stream, when a spill file was
    /// requested.
    pub records: Option<vulnstack_core::RecordHandle>,
    /// Replay/execute accounting (all-executed for unjournaled runs).
    pub stats: vulnstack_core::ResumeStats,
}

/// Streaming, bounded-memory [`svf_campaign_metered`] /
/// [`svf_campaign_resumable`]: each settled injection flows through the
/// bounded sink channel (`vulnstack_core::sink`) into the tally fold —
/// and, with `journal`, into the journal under the exact `llfi-svf`
/// fingerprint of the resumable path, so streamed and legacy campaigns
/// can kill-and-resume each other's journals.
///
/// # Errors
///
/// Any [`vulnstack_core::JournalError`] (journaled runs), or spill-file
/// I/O errors.
#[allow(clippy::too_many_arguments)]
pub fn svf_campaign_streamed(
    module: &Module,
    input: &[u8],
    expected_output: &[u8],
    n: usize,
    seed: u64,
    threads: usize,
    journal: Option<&vulnstack_core::JournalOpts<'_>>,
    stream: vulnstack_core::StreamOpts<'_>,
    metrics: Option<&vulnstack_core::trace::CampaignMetrics>,
) -> Result<SvfStreamed, vulnstack_core::JournalError> {
    let golden = golden_run(module, input);
    debug_assert_eq!(golden.output, expected_output, "golden output mismatch");
    let faults = draw_faults(&golden, n, seed);
    let order: Vec<usize> = (0..faults.len()).collect();
    let encode = |e: &FaultEffect| e.name().to_string();
    let mut tally = Tally::default();
    let mut fold = |_: u64, payload: &str| {
        if let Some(e) = FaultEffect::from_name(payload) {
            tally.add(e);
        }
    };
    let (quarantined, records, stats) = match journal {
        Some(opts) => {
            let fingerprint = vulnstack_core::Fingerprint {
                engine: "llfi-svf".to_string(),
                workload: opts.workload.to_string(),
                config: "vir".to_string(),
                structure: "-".to_string(),
                seed,
                samples: n as u64,
                params: format!(
                    "injectable={};output={:016x};models={}",
                    golden.injectable,
                    vulnstack_core::journal::fnv1a64(&golden.output),
                    FaultModel::BitFlip.name(),
                ),
                version: 2,
            };
            let out = vulnstack_core::ResumableCampaign {
                path: opts.path,
                fingerprint,
                mode: opts.mode,
                items: &faults,
                order: &order,
                threads,
                policy: opts.policy,
                meta: &[],
            }
            .run_streaming(
                stream,
                |_, &f| run_one_metered(module, input, &golden, f, metrics),
                encode,
                FaultEffect::from_name,
                &mut fold,
                metrics,
            )?;
            (out.quarantined, out.records, out.stats)
        }
        None => {
            let ((), summary) = vulnstack_core::sink::stream(None, stream, &mut fold, |handle| {
                vulnstack_core::sched::map_ordered_metered(
                    &faults,
                    &order,
                    threads,
                    |i, &f| {
                        handle.push_done(
                            i as u64,
                            encode(&run_one_metered(module, input, &golden, f, metrics)),
                        );
                    },
                    metrics,
                );
            })?;
            let stats = vulnstack_core::ResumeStats {
                executed: n,
                ..vulnstack_core::ResumeStats::default()
            };
            (summary.quarantined, summary.records, stats)
        }
    };
    Ok(SvfStreamed {
        tally,
        quarantined,
        records,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_workloads::WorkloadId;

    #[test]
    fn campaign_runs_and_is_deterministic() {
        let w = WorkloadId::Crc32.build();
        let a = svf_campaign(&w.module, &w.input, &w.expected_output, 40, 1, 1);
        let b = svf_campaign(&w.module, &w.input, &w.expected_output, 40, 1, 4);
        assert_eq!(a, b);
        assert_eq!(a.total(), 40);
        // SVF injections hit live values: expect plenty of SDCs for a
        // checksum (every bit matters).
        assert!(a.sdc > 0, "{a:?}");
    }

    #[test]
    fn function_breakdown_names_real_functions() {
        let w = WorkloadId::Qsort.build();
        let b = svf_breakdown_by_function(&w.module, &w.input, 40, 7);
        assert!(!b.is_empty());
        for name in b.keys() {
            assert!(
                w.module.functions.iter().any(|f| &f.name == name),
                "unknown function {name}"
            );
        }
        // qsort spends nearly all its time inside `quicksort`.
        assert!(b.contains_key("quicksort"), "{b:?}");
    }

    #[test]
    fn breakdown_covers_multiple_classes() {
        let w = WorkloadId::Sha.build();
        let b = svf_breakdown(&w.module, &w.input, 60, 3);
        assert!(b.len() >= 2, "expected several instruction classes: {b:?}");
        let total: u64 = b.values().map(|t| t.total()).sum();
        assert!(total > 0 && total <= 60);
        // Arithmetic is the bulk of sha's dynamic instructions.
        assert!(b.contains_key(&InstrClass::Arith), "{b:?}");
    }

    #[test]
    fn classification_mirrors_paper_classes() {
        let g = RunStatus::Exited(0);
        assert_eq!(
            classify(RunStatus::Exited(0), b"x", g, b"x"),
            FaultEffect::Masked
        );
        assert_eq!(
            classify(RunStatus::Exited(0), b"y", g, b"x"),
            FaultEffect::Sdc
        );
        assert_eq!(
            classify(
                RunStatus::Trapped(vulnstack_isa::TrapCause::AccessFault),
                b"x",
                g,
                b"x"
            ),
            FaultEffect::Crash
        );
        assert_eq!(
            classify(RunStatus::Timeout, b"", g, b"x"),
            FaultEffect::Crash
        );
        assert_eq!(
            classify(RunStatus::Detected(2), b"", g, b"x"),
            FaultEffect::Detected
        );
    }
}
