//! `RunStatus::Timeout` classification through the LLFI path: a faulty
//! run that burns its whole dynamic-instruction budget (the software
//! layer's watchdog) must count as a Crash-class record in campaign
//! aggregates and as a `watchdog_expiries` metric — a hang is a
//! vulnerability observation, not a harness failure.

use vulnstack_core::trace::CampaignMetrics;
use vulnstack_core::FaultEffect;
use vulnstack_llfi::{draw_faults, golden_run, run_one, run_one_metered, svf_campaign_metered};
use vulnstack_vir::builder::ModuleBuilder;
use vulnstack_vir::interp::{Interpreter, RunStatus, SwFault};
use vulnstack_vir::Module;

/// A countdown loop over a memory counter. Most high-bit flips on the
/// loaded or decremented counter value turn the remaining trip count
/// into ~2^k iterations — far past the faulty-run budget — so the
/// module reliably produces watchdog expiries under injection.
fn countdown_module(iters: i32) -> Module {
    let mut mb = ModuleBuilder::new("countdown");
    let g = mb.global_words("counter", &[iters]);
    let mut f = mb.function("main", 0);
    let body = f.new_block();
    let done = f.new_block();
    let p = f.global_addr(g);
    f.br(body);
    f.switch_to(body);
    let v = f.load32(p, 0);
    let next = f.sub(v, 1);
    f.store32(next, p, 0);
    let more = f.ne(next, 0);
    f.cond_br(more, body, done);
    f.switch_to(done);
    f.sys_exit(0);
    f.ret(None);
    mb.finish_function(f);
    mb.finish().unwrap()
}

/// Finds a fault whose injected run times out (scans the first loop
/// iterations for a high-bit flip that inflates the counter).
fn find_timeout_fault(module: &Module, budget: u64) -> SwFault {
    for target in 0..40 {
        let fault = SwFault::flip(target, 30);
        let out = Interpreter::new(module)
            .with_budget(budget)
            .with_fault(fault)
            .run()
            .unwrap();
        if out.status == RunStatus::Timeout {
            return fault;
        }
    }
    panic!("no injected run timed out — the countdown module lost its hang mode");
}

#[test]
fn watchdog_expiry_classifies_as_crash_and_is_metered() {
    let module = countdown_module(50);
    let golden = golden_run(&module, &[]);
    assert_eq!(golden.status, RunStatus::Exited(0));
    let fault = find_timeout_fault(&module, golden.budget);

    // Unmetered and metered paths agree on the Crash classification.
    assert_eq!(run_one(&module, &[], &golden, fault), FaultEffect::Crash);
    let metrics = CampaignMetrics::new("timeout-classification");
    assert_eq!(
        run_one_metered(&module, &[], &golden, fault, Some(&metrics)),
        FaultEffect::Crash
    );
    assert_eq!(metrics.report().watchdog_expiries, 1);

    // A masked control: the golden-identical run records no expiry.
    let benign = CampaignMetrics::new("benign");
    let effect = run_one_metered(&module, &[], &golden, SwFault::flip(0, 30), Some(&benign));
    // Whatever the benign fault classifies as, only true timeouts may
    // bump the counter.
    if effect != FaultEffect::Crash {
        assert_eq!(benign.report().watchdog_expiries, 0);
    }
}

#[test]
fn campaign_aggregates_count_expiries_inside_the_crash_class() {
    let module = countdown_module(50);
    let golden = golden_run(&module, &[]);
    let (n, seed, threads) = (40, 7, 4);

    // Ground truth: replay the campaign's exact fault stream one run at
    // a time and count the true timeouts.
    let expected_timeouts = draw_faults(&golden, n, seed)
        .into_iter()
        .filter(|&f| {
            let out = Interpreter::new(&module)
                .with_budget(golden.budget)
                .with_fault(f)
                .run()
                .unwrap();
            out.status == RunStatus::Timeout
        })
        .count() as u64;
    assert!(
        expected_timeouts >= 1,
        "seed {seed} must produce at least one watchdog expiry"
    );

    let metrics = CampaignMetrics::new("svf-campaign");
    let tally = svf_campaign_metered(&module, &[], &[], n, seed, threads, Some(&metrics));
    let report = metrics.report();
    assert_eq!(report.watchdog_expiries, expected_timeouts);
    assert!(
        tally.crash >= expected_timeouts,
        "every expiry is a Crash-class record: {tally:?}"
    );
    assert_eq!(tally.total() as usize, n);
}
