//! Write-back cache hierarchy with physical data storage and single-bit
//! fault injection.
//!
//! Lines store real bytes, so an injected bit flip *physically* propagates:
//! a dirty corrupted line writes its corruption back to the next level, a
//! clean corrupted line silently re-reads correct data on the next fill
//! (hardware masking), and a corrupted output byte that is never touched
//! again is picked up by the DMA drain (the paper's ESC class).
//!
//! Alongside the data, the hierarchy tracks which *copies* of one chosen
//! byte are corrupted ([`MemTaint`]), so the campaign layer can classify
//! the first architectural consumption of the fault (WD vs WI/WOI vs ESC).

use std::sync::Arc;

use vulnstack_kernel::memmap;
use vulnstack_kernel::SystemImage;

use crate::config::{CacheConfig, CoreConfig};

/// Fixed line size across the hierarchy.
pub const LINE: u32 = 64;

/// Page size of the copy-on-write main-memory image. A multiple of
/// [`LINE`], so line-granular fills and writebacks never straddle a page.
const COW_PAGE: usize = 4096;

/// Flat physical memory stored as reference-counted pages.
///
/// Checkpointing clones whole cores, and a deep copy of the 4 MiB image
/// would dominate both snapshot cost and restore cost. Pages make the
/// copy lazy: cloning copies one `Arc` per page (8 KiB of pointers for a
/// 4 MiB image), snapshots share every page the run never rewrites, and a
/// write to a shared page copies just that 4 KiB ([`Arc::make_mut`]).
#[derive(Debug, Clone)]
struct CowMem {
    pages: Vec<Arc<[u8; COW_PAGE]>>,
}

impl PartialEq for CowMem {
    fn eq(&self, other: &Self) -> bool {
        self.pages.len() == other.pages.len()
            && self
                .pages
                .iter()
                .zip(&other.pages)
                .all(|(a, b)| Arc::ptr_eq(a, b) || a == b)
    }
}

impl Eq for CowMem {}

impl CowMem {
    fn new(flat: &[u8]) -> CowMem {
        assert!(flat.len().is_multiple_of(COW_PAGE));
        let pages = flat
            .chunks_exact(COW_PAGE)
            .map(|c| {
                let mut p = [0u8; COW_PAGE];
                p.copy_from_slice(c);
                Arc::new(p)
            })
            .collect();
        CowMem { pages }
    }

    fn byte(&self, addr: usize) -> u8 {
        self.pages[addr / COW_PAGE][addr % COW_PAGE]
    }

    /// Reads `out.len()` bytes at `addr`; the span must not cross a page.
    fn read(&self, addr: usize, out: &mut [u8]) {
        let (page, off) = (addr / COW_PAGE, addr % COW_PAGE);
        debug_assert!(off + out.len() <= COW_PAGE);
        out.copy_from_slice(&self.pages[page][off..off + out.len()]);
    }

    /// Writes `data` at `addr`, copying the page first if it is shared
    /// with a snapshot; the span must not cross a page.
    fn write(&mut self, addr: usize, data: &[u8]) {
        let (page, off) = (addr / COW_PAGE, addr % COW_PAGE);
        debug_assert!(off + data.len() <= COW_PAGE);
        Arc::make_mut(&mut self.pages[page])[off..off + data.len()].copy_from_slice(data);
    }
}

/// A cache level (or memory) in the hierarchy, used for taint tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// L1 instruction cache.
    L1i,
    /// L1 data cache.
    L1d,
    /// Unified L2.
    L2,
    /// Main memory.
    Mem,
}

impl Level {
    fn idx(self) -> usize {
        match self {
            Level::L1i => 0,
            Level::L1d => 1,
            Level::L2 => 2,
            Level::Mem => 3,
        }
    }
}

/// Which copies of the corrupted byte are currently corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTaint {
    /// The corrupted byte's physical address.
    pub addr: u32,
    /// Bit index (0..8) flipped within that byte.
    pub bit_in_byte: u8,
    at: [bool; 4],
}

impl MemTaint {
    /// True if any corrupted copy still exists anywhere.
    pub fn live(&self) -> bool {
        self.at.iter().any(|&b| b)
    }

    /// True if the copy at `level` is corrupted.
    pub fn at(&self, level: Level) -> bool {
        self.at[level.idx()]
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct CacheLine {
    valid: bool,
    dirty: bool,
    tag: u32,
    last_use: u64,
    data: [u8; LINE as usize],
}

impl Default for CacheLine {
    fn default() -> Self {
        CacheLine {
            valid: false,
            dirty: false,
            tag: 0,
            last_use: 0,
            data: [0; LINE as usize],
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Cache {
    sets: u32,
    ways: u32,
    latency: u32,
    lines: Vec<CacheLine>,
}

impl Cache {
    fn new(cfg: &CacheConfig) -> Cache {
        assert_eq!(cfg.line, LINE, "hierarchy assumes 64-byte lines");
        let sets = cfg.sets();
        Cache {
            sets,
            ways: cfg.ways,
            latency: cfg.latency,
            lines: vec![CacheLine::default(); (sets * cfg.ways) as usize],
        }
    }

    fn set_of(&self, addr: u32) -> u32 {
        (addr / LINE) & (self.sets - 1)
    }

    fn tag_of(&self, addr: u32) -> u32 {
        addr / LINE / self.sets
    }

    fn line_addr(&self, set: u32, tag: u32) -> u32 {
        (tag * self.sets + set) * LINE
    }

    fn slot(&self, set: u32, way: u32) -> usize {
        (set * self.ways + way) as usize
    }

    fn lookup(&self, addr: u32) -> Option<u32> {
        let (set, tag) = (self.set_of(addr), self.tag_of(addr));
        (0..self.ways).find(|&w| {
            let l = &self.lines[self.slot(set, w)];
            l.valid && l.tag == tag
        })
    }

    fn victim_way(&self, set: u32) -> u32 {
        for w in 0..self.ways {
            if !self.lines[self.slot(set, w)].valid {
                return w;
            }
        }
        (0..self.ways)
            .min_by_key(|&w| self.lines[self.slot(set, w)].last_use)
            .expect("ways >= 1")
    }
}

/// Aggregate hierarchy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1i hits / misses.
    pub l1i_hits: u64,
    /// L1i misses.
    pub l1i_misses: u64,
    /// L1d hits.
    pub l1d_hits: u64,
    /// L1d misses.
    pub l1d_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
}

/// Result of a single-bit cache flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlipResult {
    /// True if the targeted line was valid (a flip in an invalid line is
    /// immediately masked).
    pub valid: bool,
    /// Physical address of the corrupted byte (valid lines only).
    pub addr: Option<u32>,
    /// Bit index within the corrupted byte.
    pub bit_in_byte: u8,
    /// The 32-bit word containing the corrupted bit *after* the flip, and
    /// the bit index within it — used for WI/WOI classification of text
    /// corruption.
    pub word_after: Option<(u32, u32)>,
}

/// The full memory system: L1i + L1d + unified L2 + flat memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemSystem {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    mem: CowMem,
    mem_latency: u32,
    tick: u64,
    taint: Option<MemTaint>,
    /// Aggregate statistics.
    pub stats: MemStats,
}

impl MemSystem {
    /// Builds the hierarchy for `cfg` with `image` loaded into memory.
    pub fn new(cfg: &CoreConfig, image: &SystemImage) -> MemSystem {
        let mut mem = vec![0u8; memmap::MEM_SIZE as usize];
        image.write_into(&mut mem);
        MemSystem {
            l1i: Cache::new(&cfg.l1i),
            l1d: Cache::new(&cfg.l1d),
            l2: Cache::new(&cfg.l2),
            mem: CowMem::new(&mem),
            mem_latency: cfg.mem_latency,
            tick: 0,
            taint: None,
            stats: MemStats::default(),
        }
    }

    /// The current taint state, if a fault has been injected.
    pub fn taint(&self) -> Option<&MemTaint> {
        self.taint.as_ref()
    }

    /// True if this (possibly faulty) memory system is *behaviorally
    /// identical* to `golden`: every future access returns the same data
    /// with the same latency in both.
    ///
    /// This is the memory half of the early-termination convergence
    /// check. It compares the behavioral state — the interleaved LRU
    /// clock (`tick`), all three cache arrays (valid/dirty/tag/`last_use`/
    /// data), and main memory (`CowMem::eq` short-circuits on shared
    /// pages) — and deliberately *excludes* two observer-only fields:
    ///
    /// * `stats` — hit/miss counters are never read by the simulation, so
    ///   divergent counts cannot change future behavior;
    /// * a **dead** taint record (`!live()`) — once every level's taint
    ///   flag is clear no corrupted copy exists anywhere, and taint can
    ///   only spread from an existing live copy, so a dead record is
    ///   inert bookkeeping.
    ///
    /// A **live** taint is an immediate `false`: some copy of the flipped
    /// line still differs from golden (or could be re-exposed by an
    /// eviction), so behavioral identity cannot hold.
    pub fn converged_with(&self, golden: &MemSystem) -> bool {
        if self.taint.as_ref().is_some_and(|t| t.live()) {
            return false;
        }
        self.tick == golden.tick
            && self.l1i == golden.l1i
            && self.l1d == golden.l1d
            && self.l2 == golden.l2
            && self.mem == golden.mem
    }

    fn taint_line_overlap(taint: &Option<MemTaint>, line_addr: u32) -> bool {
        taint.is_some_and(|t| t.addr / LINE == line_addr / LINE)
    }

    fn set_taint(&mut self, level: Level, line_addr: u32, value: bool) {
        if let Some(t) = &mut self.taint {
            if t.addr / LINE == line_addr / LINE {
                t.at[level.idx()] = value;
            }
        }
    }

    /// Reads a whole line from L2, filling from memory on a miss.
    /// Returns `(data, latency, copy_is_tainted)`.
    fn l2_get_line(&mut self, line_addr: u32) -> ([u8; LINE as usize], u32, bool) {
        self.tick += 1;
        if let Some(w) = self.l2.lookup(line_addr) {
            self.stats.l2_hits += 1;
            let set = self.l2.set_of(line_addr);
            let slot = self.l2.slot(set, w);
            self.l2.lines[slot].last_use = self.tick;
            let data = self.l2.lines[slot].data;
            let tainted = self
                .taint
                .is_some_and(|t| t.at(Level::L2) && t.addr / LINE == line_addr / LINE);
            return (data, self.l2.latency, tainted);
        }
        self.stats.l2_misses += 1;
        // Fill from memory.
        let mut data = [0u8; LINE as usize];
        self.mem.read(line_addr as usize, &mut data);
        let from_mem_tainted = self
            .taint
            .is_some_and(|t| t.at(Level::Mem) && t.addr / LINE == line_addr / LINE);
        self.install_l2(line_addr, data, false, from_mem_tainted);
        let tainted = from_mem_tainted;
        (data, self.l2.latency + self.mem_latency, tainted)
    }

    fn install_l2(
        &mut self,
        line_addr: u32,
        data: [u8; LINE as usize],
        dirty: bool,
        tainted: bool,
    ) {
        self.tick += 1;
        let set = self.l2.set_of(line_addr);
        let tag = self.l2.tag_of(line_addr);
        let way = self
            .l2
            .lookup(line_addr)
            .unwrap_or_else(|| self.l2.victim_way(set));
        let victim_addr = {
            let l = &self.l2.lines[self.l2.slot(set, way)];
            if l.valid {
                Some((self.l2.line_addr(set, l.tag), l.dirty))
            } else {
                None
            }
        };
        if let Some((vaddr, vdirty)) = victim_addr {
            if vaddr != line_addr {
                let vtainted = Self::taint_line_overlap(&self.taint, vaddr)
                    && self.taint.is_some_and(|t| t.at(Level::L2));
                if vdirty {
                    self.stats.writebacks += 1;
                    let vdata = self.l2.lines[self.l2.slot(set, way)].data;
                    self.mem.write(vaddr as usize, &vdata);
                    self.set_taint(Level::Mem, vaddr, vtainted);
                }
                // Corrupted copy dropped (or moved); either way it leaves L2.
                self.set_taint(Level::L2, vaddr, false);
            }
        }
        let slot = self.l2.slot(set, way);
        let tick = self.tick;
        let l = &mut self.l2.lines[slot];
        // Re-installing over an existing copy only happens on a writeback
        // (dirty=true); plain fills always target an absent line.
        let keep_dirty = l.valid && l.tag == tag && l.dirty;
        l.valid = true;
        l.tag = tag;
        l.dirty = dirty || keep_dirty;
        l.last_use = tick;
        l.data = data;
        self.set_taint(Level::L2, line_addr, tainted);
    }

    /// Pulls a line into an L1 cache, returning `(way, latency)`.
    fn l1_fill(&mut self, which: Level, addr: u32) -> (u32, u32) {
        let line_addr = addr & !(LINE - 1);
        let (data, l2lat, tainted) = self.l2_get_line(line_addr);
        self.tick += 1;
        let tick = self.tick;
        let taint_snapshot = self.taint;
        let c = match which {
            Level::L1i => &mut self.l1i,
            Level::L1d => &mut self.l1d,
            _ => unreachable!(),
        };
        let set = c.set_of(line_addr);
        let way = c.victim_way(set);
        let slot = c.slot(set, way);
        // Evict the victim.
        let mut wb: Option<(u32, [u8; LINE as usize], bool)> = None;
        {
            let l = &c.lines[slot];
            if l.valid {
                let vaddr = c.line_addr(set, l.tag);
                let vtainted =
                    taint_snapshot.is_some_and(|t| t.at(which) && t.addr / LINE == vaddr / LINE);
                if l.dirty {
                    wb = Some((vaddr, l.data, vtainted));
                }
                // Clear this level's taint for the victim: a clean drop
                // masks the fault, a writeback moves it to L2 (below).
                if let Some(t) = &mut self.taint {
                    if t.addr / LINE == vaddr / LINE {
                        t.at[which.idx()] = false;
                    }
                }
            }
        }
        // Re-borrow after taint mutation.
        let c = match which {
            Level::L1i => &mut self.l1i,
            Level::L1d => &mut self.l1d,
            _ => unreachable!(),
        };
        let slot = c.slot(set, way);
        let new_tag = c.tag_of(line_addr);
        let l1lat = c.latency;
        let l = &mut c.lines[slot];
        l.valid = true;
        l.dirty = false;
        l.tag = new_tag;
        l.last_use = tick;
        l.data = data;
        self.set_taint(which, line_addr, tainted);
        if let Some((vaddr, vdata, vtainted)) = wb {
            self.stats.writebacks += 1;
            self.install_l2(vaddr, vdata, true, vtainted);
        }
        (way, l1lat + l2lat)
    }

    /// Instruction fetch of one 32-bit word. Returns
    /// `(latency, word, served_from_tainted_copy)`.
    pub fn fetch_word(&mut self, addr: u32) -> (u32, u32, bool) {
        self.tick += 1;
        let line_addr = addr & !(LINE - 1);
        let (way, mut lat) = match self.l1i.lookup(addr) {
            Some(w) => {
                self.stats.l1i_hits += 1;
                (w, self.l1i.latency)
            }
            None => {
                self.stats.l1i_misses += 1;
                self.l1_fill(Level::L1i, addr)
            }
        };
        let set = self.l1i.set_of(addr);
        let slot = self.l1i.slot(set, way);
        let tick = self.tick;
        self.l1i.lines[slot].last_use = tick;
        let off = (addr & (LINE - 1)) as usize;
        let d = &self.l1i.lines[slot].data;
        let word = u32::from_le_bytes([d[off], d[off + 1], d[off + 2], d[off + 3]]);
        let tainted = self.taint.is_some_and(|t| {
            t.at(Level::L1i)
                && t.addr / LINE == line_addr / LINE
                && t.addr >= addr
                && t.addr < addr + 4
        });
        if lat == 0 {
            lat = 1;
        }
        (lat, word, tainted)
    }

    /// Data load of `len` bytes (little-endian). Returns
    /// `(latency, value, served_from_tainted_copy)`.
    pub fn load(&mut self, addr: u32, len: u32) -> (u32, u64, bool) {
        debug_assert!(
            len <= 8 && (addr & (LINE - 1)) + len <= LINE,
            "no line-crossing loads"
        );
        self.tick += 1;
        let line_addr = addr & !(LINE - 1);
        let (way, lat) = match self.l1d.lookup(addr) {
            Some(w) => {
                self.stats.l1d_hits += 1;
                (w, self.l1d.latency)
            }
            None => {
                self.stats.l1d_misses += 1;
                self.l1_fill(Level::L1d, addr)
            }
        };
        let set = self.l1d.set_of(addr);
        let slot = self.l1d.slot(set, way);
        let tick = self.tick;
        self.l1d.lines[slot].last_use = tick;
        let off = (addr & (LINE - 1)) as usize;
        let d = &self.l1d.lines[slot].data;
        let mut v = 0u64;
        for i in (0..len as usize).rev() {
            v = (v << 8) | d[off + i] as u64;
        }
        let tainted = self.taint.is_some_and(|t| {
            t.at(Level::L1d)
                && t.addr / LINE == line_addr / LINE
                && t.addr >= addr
                && t.addr < addr + len
        });
        (lat, v, tainted)
    }

    /// Data store of `len` bytes. Write-allocate, write-back.
    pub fn store(&mut self, addr: u32, len: u32, value: u64) -> u32 {
        debug_assert!(
            len <= 8 && (addr & (LINE - 1)) + len <= LINE,
            "no line-crossing stores"
        );
        self.tick += 1;
        let (way, lat) = match self.l1d.lookup(addr) {
            Some(w) => {
                self.stats.l1d_hits += 1;
                (w, self.l1d.latency)
            }
            None => {
                self.stats.l1d_misses += 1;
                self.l1_fill(Level::L1d, addr)
            }
        };
        let set = self.l1d.set_of(addr);
        let slot = self.l1d.slot(set, way);
        let tick = self.tick;
        let l = &mut self.l1d.lines[slot];
        l.last_use = tick;
        l.dirty = true;
        let off = (addr & (LINE - 1)) as usize;
        for i in 0..len as usize {
            l.data[off + i] = (value >> (8 * i)) as u8;
        }
        // A store overwriting the corrupted byte repairs the L1d copy.
        if let Some(t) = &mut self.taint {
            if t.addr >= addr && t.addr < addr + len {
                t.at[Level::L1d.idx()] = false;
            }
        }
        lat
    }

    /// Coherent read without state change: L1d, then L2, then memory.
    /// Returns `(value, read_from_tainted_copy)`. This is the DMA-drain /
    /// debugger view.
    pub fn peek(&self, addr: u32, len: u32) -> (u64, bool) {
        let line_addr = addr & !(LINE - 1);
        let overlap = |t: &MemTaint| t.addr >= addr && t.addr < addr + len;
        let mut v = 0u64;
        if let Some(w) = self.l1d.lookup(addr) {
            let slot = self.l1d.slot(self.l1d.set_of(addr), w);
            let d = &self.l1d.lines[slot].data;
            let off = (addr & (LINE - 1)) as usize;
            for i in (0..len as usize).rev() {
                v = (v << 8) | d[off + i] as u64;
            }
            let t = self.taint.as_ref().is_some_and(|t| {
                t.at(Level::L1d) && t.addr / LINE == line_addr / LINE && overlap(t)
            });
            return (v, t);
        }
        if let Some(w) = self.l2.lookup(addr) {
            let slot = self.l2.slot(self.l2.set_of(addr), w);
            let d = &self.l2.lines[slot].data;
            let off = (addr & (LINE - 1)) as usize;
            for i in (0..len as usize).rev() {
                v = (v << 8) | d[off + i] as u64;
            }
            let t = self.taint.as_ref().is_some_and(|t| {
                t.at(Level::L2) && t.addr / LINE == line_addr / LINE && overlap(t)
            });
            return (v, t);
        }
        for i in (0..len as usize).rev() {
            v = (v << 8) | self.mem.byte(addr as usize + i) as u64;
        }
        let t = self
            .taint
            .as_ref()
            .is_some_and(|t| t.at(Level::Mem) && overlap(t));
        (v, t)
    }

    /// Flips one bit of a cache's data array, addressed as a flat bit
    /// index over the whole array (set-major, then way, then line bits).
    pub fn flip_bit(&mut self, level: Level, bit_index: u64) -> FlipResult {
        let c = match level {
            Level::L1i => &mut self.l1i,
            Level::L1d => &mut self.l1d,
            Level::L2 => &mut self.l2,
            Level::Mem => panic!("memory is not an injection target"),
        };
        let bits_per_line = (LINE * 8) as u64;
        let line_idx = (bit_index / bits_per_line) as u32;
        let set = line_idx / c.ways;
        let way = line_idx % c.ways;
        let bit_in_line = bit_index % bits_per_line;
        let byte = (bit_in_line / 8) as usize;
        let bit = (bit_in_line % 8) as u8;
        let slot = c.slot(set, way);
        c.lines[slot].data[byte] ^= 1 << bit;
        if !c.lines[slot].valid {
            return FlipResult {
                valid: false,
                addr: None,
                bit_in_byte: bit,
                word_after: None,
            };
        }
        let addr = c.line_addr(set, c.lines[slot].tag) + byte as u32;
        let line = &c.lines[slot];
        // The 32-bit aligned word containing the flipped bit (for WI/WOI
        // classification when the byte holds an instruction).
        let woff = byte & !3;
        let word = u32::from_le_bytes([
            line.data[woff],
            line.data[woff + 1],
            line.data[woff + 2],
            line.data[woff + 3],
        ]);
        let bit_in_word = ((byte & 3) * 8) as u32 + bit as u32;
        self.taint = Some(MemTaint {
            addr,
            bit_in_byte: bit,
            at: [false; 4],
        });
        if let Some(t) = &mut self.taint {
            t.at[level.idx()] = true;
        }
        FlipResult {
            valid: true,
            addr: Some(addr),
            bit_in_byte: bit,
            word_after: Some((word, bit_in_word)),
        }
    }

    /// Flips the bit at a specific *address* in `level`'s array, if that
    /// address is currently cached there (targeted injection for tests and
    /// case studies). Returns the flip result, or `None` on a cache miss.
    pub fn flip_addr_bit(&mut self, level: Level, addr: u32, bit: u8) -> Option<FlipResult> {
        let c = match level {
            Level::L1i => &self.l1i,
            Level::L1d => &self.l1d,
            Level::L2 => &self.l2,
            Level::Mem => panic!("memory is not an injection target"),
        };
        let way = c.lookup(addr)?;
        let set = c.set_of(addr);
        let line_idx = (set * c.ways + way) as u64;
        let bit_index =
            line_idx * (LINE as u64 * 8) + (addr & (LINE - 1)) as u64 * 8 + (bit & 7) as u64;
        Some(self.flip_bit(level, bit_index))
    }

    /// Total data-array bits of a level (the sampling population).
    pub fn level_bits(&self, level: Level) -> u64 {
        let c = match level {
            Level::L1i => &self.l1i,
            Level::L1d => &self.l1d,
            Level::L2 => &self.l2,
            Level::Mem => panic!("memory is not an injection target"),
        };
        (c.sets * c.ways) as u64 * (LINE * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreModel;
    use vulnstack_compiler::{compile, CompileOpts};
    use vulnstack_vir::ModuleBuilder;

    fn mk() -> MemSystem {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        f.sys_exit(0);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        let c = compile(&m, vulnstack_isa::Isa::Va32, &CompileOpts::default()).unwrap();
        let img = SystemImage::build(&c, &[]).unwrap();
        MemSystem::new(&CoreModel::A9.config(), &img)
    }

    const A: u32 = memmap::USER_DATA;

    #[test]
    fn store_then_load_roundtrips() {
        let mut ms = mk();
        ms.store(A, 4, 0xDEADBEEF);
        let (_, v, t) = ms.load(A, 4);
        assert_eq!(v, 0xDEADBEEF);
        assert!(!t);
        ms.store(A + 7, 1, 0x55);
        let (_, v, _) = ms.load(A + 7, 1);
        assert_eq!(v, 0x55);
    }

    #[test]
    fn misses_cost_more_than_hits() {
        let mut ms = mk();
        let (lat_miss, _, _) = ms.load(A, 4);
        let (lat_hit, _, _) = ms.load(A, 4);
        assert!(lat_miss > lat_hit, "{lat_miss} vs {lat_hit}");
        assert_eq!(ms.stats.l1d_misses, 1);
        assert_eq!(ms.stats.l1d_hits, 1);
    }

    #[test]
    fn dirty_eviction_writes_back_through_l2() {
        let mut ms = mk();
        ms.store(A, 4, 0x1234_5678);
        // Evict the line by touching many lines mapping to the same set.
        // L1d A9: 32K/4way/64B = 128 sets; stride = 128*64 = 8192.
        for i in 1..=8u32 {
            ms.load(A + i * 8192, 4);
        }
        // The line is gone from L1d but peek must still find the data
        // coherently (in L2).
        let (v, _) = ms.peek(A, 4);
        assert_eq!(v, 0x1234_5678);
        // And a re-load still sees it.
        let (_, v, _) = ms.load(A, 4);
        assert_eq!(v, 0x1234_5678);
        assert!(ms.stats.writebacks >= 1);
    }

    #[test]
    fn flip_in_invalid_line_is_masked() {
        let mut ms = mk();
        // Nothing loaded into L1d yet: every line invalid.
        let r = ms.flip_bit(Level::L1d, 12345);
        assert!(!r.valid);
        assert!(r.addr.is_none());
    }

    #[test]
    fn flip_in_valid_line_corrupts_reads() {
        let mut ms = mk();
        ms.store(A, 4, 0);
        // Find the line we just touched: set index of A.
        let set = ms.l1d.set_of(A);
        let way = ms.l1d.lookup(A).unwrap();
        let line_idx = (set * ms.l1d.ways + way) as u64;
        let byte_off = (A & (LINE - 1)) as u64;
        let bit_index = line_idx * (LINE as u64 * 8) + byte_off * 8 + 3;
        let r = ms.flip_bit(Level::L1d, bit_index);
        assert!(r.valid);
        assert_eq!(r.addr, Some(A));
        let (_, v, tainted) = ms.load(A, 4);
        assert_eq!(v, 8); // bit 3 set
        assert!(tainted);
    }

    #[test]
    fn store_over_fault_clears_taint() {
        let mut ms = mk();
        ms.store(A, 4, 0);
        let set = ms.l1d.set_of(A);
        let way = ms.l1d.lookup(A).unwrap();
        let line_idx = (set * ms.l1d.ways + way) as u64;
        let bit_index = line_idx * (LINE as u64 * 8) + (A & (LINE - 1)) as u64 * 8;
        ms.flip_bit(Level::L1d, bit_index);
        ms.store(A, 4, 0xAA);
        let (_, v, tainted) = ms.load(A, 4);
        assert_eq!(v, 0xAA);
        assert!(!tainted);
        assert!(!ms.taint().unwrap().live());
    }

    #[test]
    fn clean_eviction_masks_the_fault() {
        let mut ms = mk();
        // Load (clean) a line, corrupt it in L1d, then evict it.
        let _ = ms.load(A, 4);
        let set = ms.l1d.set_of(A);
        let way = ms.l1d.lookup(A).unwrap();
        let line_idx = (set * ms.l1d.ways + way) as u64;
        let bit_index = line_idx * (LINE as u64 * 8) + (A & (LINE - 1)) as u64 * 8 + 1;
        ms.flip_bit(Level::L1d, bit_index);
        for i in 1..=8u32 {
            ms.load(A + i * 8192, 4);
        }
        // The clean corrupted copy was dropped; a fresh load returns the
        // correct value.
        let (_, v, tainted) = ms.load(A, 4);
        assert_eq!(v, 0);
        assert!(!tainted);
        assert!(!ms.taint().unwrap().live());
    }

    #[test]
    fn dirty_corrupted_line_propagates_to_l2_and_peek_sees_it() {
        let mut ms = mk();
        ms.store(A, 4, 0x10);
        let set = ms.l1d.set_of(A);
        let way = ms.l1d.lookup(A).unwrap();
        let line_idx = (set * ms.l1d.ways + way) as u64;
        let bit_index = line_idx * (LINE as u64 * 8) + (A & (LINE - 1)) as u64 * 8;
        ms.flip_bit(Level::L1d, bit_index);
        // Evict (dirty) -> corruption moves to L2.
        for i in 1..=8u32 {
            ms.load(A + i * 8192, 4);
        }
        let t = ms.taint().unwrap();
        assert!(t.at(Level::L2), "corruption should live in L2 now");
        assert!(!t.at(Level::L1d));
        let (v, tainted) = ms.peek(A, 4);
        assert_eq!(v, 0x11);
        assert!(tainted, "the DMA view reads the corrupted copy (ESC path)");
    }

    #[test]
    fn fetch_path_reads_text() {
        let mut ms = mk();
        let (lat, word, tainted) = ms.fetch_word(memmap::USER_TEXT);
        assert!(lat >= 1);
        assert!(!tainted);
        // _start begins with MOVZ sp — check it decodes.
        assert!(vulnstack_isa::Instr::decode(word, vulnstack_isa::Isa::Va32).is_ok());
        let (lat2, word2, _) = ms.fetch_word(memmap::USER_TEXT);
        assert_eq!(word, word2);
        assert!(lat2 <= lat);
    }

    #[test]
    fn level_bits_match_config() {
        let ms = mk();
        let cfg = CoreModel::A9.config();
        assert_eq!(ms.level_bits(Level::L1d), cfg.l1d.data_bits());
        assert_eq!(ms.level_bits(Level::L2), cfg.l2.data_bits());
    }
}
