//! Checkpoint-and-restore for injection campaigns.
//!
//! Every injection in a statistical campaign re-simulates the fault-free
//! prefix of the run before it can flip its bit: a campaign of `n`
//! uniformly placed faults wastes ~`n·golden_cycles/2` cycles of
//! identical warm-up. [`CheckpointStore`] removes that cost by cloning
//! the whole core ([`OooCore`] owns every bit of simulation state, so
//! `Clone` is a perfect snapshot) every `interval` cycles during the
//! golden run; a campaign then restores the nearest checkpoint at or
//! before the injection cycle and simulates only the delta.
//!
//! The store is **adaptive**: it starts from a small interval and, when
//! the run outgrows the configured snapshot budget, drops every other
//! snapshot and doubles the interval. Short runs therefore get fine
//! spacing while long runs stay within a bounded memory footprint of
//! `max_snapshots · bytes(core)` (≈ `max_snapshots` × (main memory +
//! cache arrays + pipeline bookkeeping)).
//!
//! Determinism: the simulator draws on no external entropy and a
//! checkpoint captures *all* of its state, so a restored core stepped to
//! cycle `c` is field-by-field identical to a fresh core stepped to `c`
//! (asserted by `checkpoint_equivalence` tests in `vulnstack-gefin`).

use vulnstack_kernel::SystemImage;

use crate::config::CoreConfig;
use crate::ooo::{OooCore, OooOutcome};

/// Default snapshot spacing in cycles before any adaptive doubling.
///
/// Deliberately fine: short runs get dense checkpoints (small restore
/// deltas), and long runs double the interval until they fit the
/// snapshot cap, so the effective interval scales with run length
/// (≈ `golden_cycles / max_snapshots`, rounded up to the next
/// power-of-two multiple of this constant).
pub const DEFAULT_INTERVAL: u64 = 512;

/// Default cap on retained snapshots. Snapshots share unmodified memory
/// pages (the core's main memory is copy-on-write), so the marginal cost
/// of a snapshot is the cache arrays plus pipeline bookkeeping, and a
/// generous cap keeps restore deltas short.
pub const DEFAULT_MAX_SNAPSHOTS: usize = 64;

/// Evenly spaced fault-free core snapshots taken during a golden run.
///
/// Invariant: `snaps[i]` is the core state at cycle `i * interval`
/// (`snaps[0]` is the pre-cycle-0 reset state), and every snapshot
/// precedes the golden run's terminal cycle.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    interval: u64,
    snaps: Vec<OooCore>,
}

impl CheckpointStore {
    /// Runs a fault-free (golden) run of `image` on `cfg` to completion
    /// (or `budget` cycles), snapshotting the core every `interval`
    /// cycles, and returns the store together with the run's outcome.
    ///
    /// Whenever the snapshot count would exceed `max_snapshots`, every
    /// other snapshot is dropped and the interval doubles, so the store
    /// holds at most `max_snapshots` snapshots regardless of run length.
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0` or `max_snapshots == 0`.
    pub fn record(
        cfg: &CoreConfig,
        image: &SystemImage,
        interval: u64,
        max_snapshots: usize,
        budget: u64,
    ) -> (CheckpointStore, OooOutcome) {
        assert!(interval > 0, "checkpoint interval must be positive");
        assert!(max_snapshots > 0, "need room for at least one snapshot");
        let mut core = OooCore::new(cfg, image);
        let mut store = CheckpointStore {
            interval,
            snaps: vec![core.clone()],
        };
        loop {
            let next = store.snaps.len() as u64 * store.interval;
            if next > budget {
                break;
            }
            core.run_until(next);
            if core.ended() || core.cycle() < next {
                break;
            }
            store.snaps.push(core.clone());
            if store.snaps.len() > max_snapshots {
                store.thin();
            }
        }
        core.run_until(budget);
        (store, core.finish())
    }

    /// Halves the snapshot density: keeps every even-indexed snapshot and
    /// doubles the interval, preserving the `snaps[i] ↔ i * interval`
    /// invariant.
    fn thin(&mut self) {
        let mut i = 0usize;
        self.snaps.retain(|_| {
            let keep = i.is_multiple_of(2);
            i += 1;
            keep
        });
        self.interval *= 2;
    }

    /// The snapshot spacing in cycles (after any adaptive doubling).
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// True if the store holds only the reset-state snapshot.
    pub fn is_empty(&self) -> bool {
        self.snaps.len() <= 1
    }

    /// Cycle of the nearest checkpoint at or before `cycle`.
    pub fn nearest_cycle(&self, cycle: u64) -> u64 {
        self.nearest(cycle).cycle()
    }

    /// Cycles of fault-free prefix a restore targeting `cycle` must
    /// re-simulate (the campaign-metrics "restore distance": the quantity
    /// the adaptive interval trades memory against).
    pub fn restore_distance(&self, cycle: u64) -> u64 {
        cycle.saturating_sub(self.nearest_cycle(cycle))
    }

    /// The snapshot taken exactly at `cycle`, if the store holds one
    /// (i.e. `cycle` is an interval boundary within the recorded run).
    /// Used by the early-termination engine, which may only compare a
    /// faulty core against golden state at the *same* cycle.
    pub fn at_cycle(&self, cycle: u64) -> Option<&OooCore> {
        if !cycle.is_multiple_of(self.interval) {
            return None;
        }
        self.snaps.get((cycle / self.interval) as usize)
    }

    /// The nearest checkpoint at or before `cycle`.
    pub fn nearest(&self, cycle: u64) -> &OooCore {
        let idx = ((cycle / self.interval) as usize).min(self.snaps.len() - 1);
        &self.snaps[idx]
    }

    /// Restores a runnable core at the nearest checkpoint at or before
    /// `cycle`; the caller advances the remaining delta with
    /// [`OooCore::run_until`].
    pub fn restore(&self, cycle: u64) -> OooCore {
        OooCore::from_checkpoint(self.nearest(cycle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreModel;
    use crate::outcome::RunStatus;
    use vulnstack_compiler::{compile, CompileOpts};
    use vulnstack_vir::ModuleBuilder;

    fn image() -> SystemImage {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        let sum = f.fresh();
        f.set_c(sum, 0);
        f.for_range(0, 400, |f, i| {
            let x = f.mul(i, i);
            let s = f.add(sum, x);
            f.set(sum, s);
        });
        f.sys_exit(0);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        let c = compile(&m, vulnstack_isa::Isa::Va64, &CompileOpts::default()).unwrap();
        SystemImage::build(&c, &[]).unwrap()
    }

    #[test]
    fn recording_matches_plain_golden_run() {
        let img = image();
        let cfg = CoreModel::A72.config();
        let plain = OooCore::new(&cfg, &img).run(10_000_000);
        let (store, out) = CheckpointStore::record(&cfg, &img, 256, 16, 10_000_000);
        assert_eq!(out.sim.status, RunStatus::Exited(0));
        assert_eq!(out.sim.status, plain.sim.status);
        assert_eq!(out.sim.output, plain.sim.output);
        assert_eq!(out.sim.cycles, plain.sim.cycles);
        assert_eq!(out.sim.instrs, plain.sim.instrs);
        assert!(store.len() >= 2, "a multi-thousand-cycle run must snapshot");
        assert!(store.len() <= 16);
    }

    #[test]
    fn snapshots_sit_on_interval_boundaries() {
        let img = image();
        let cfg = CoreModel::A72.config();
        let (store, out) = CheckpointStore::record(&cfg, &img, 128, 8, 10_000_000);
        for (i, s) in store.snaps.iter().enumerate() {
            assert_eq!(s.cycle(), i as u64 * store.interval());
            assert!(s.cycle() < out.sim.cycles);
        }
    }

    #[test]
    fn restore_then_run_equals_run_from_scratch() {
        let img = image();
        let cfg = CoreModel::A72.config();
        let (store, out) = CheckpointStore::record(&cfg, &img, 200, 12, 10_000_000);
        for target in [1u64, 137, store.interval() + 3, out.sim.cycles - 1] {
            let mut restored = store.restore(target);
            assert!(restored.cycle() <= target);
            restored.run_until(target);
            let mut scratch = OooCore::new(&cfg, &img);
            scratch.run_until(target);
            assert!(restored == scratch, "state diverged at cycle {target}");
        }
    }

    #[test]
    fn thinning_caps_memory_and_keeps_alignment() {
        let img = image();
        let cfg = CoreModel::A72.config();
        let (store, _) = CheckpointStore::record(&cfg, &img, 16, 4, 10_000_000);
        assert!(store.len() <= 4);
        assert!(store.interval() > 16, "small cap must force doubling");
        for (i, s) in store.snaps.iter().enumerate() {
            assert_eq!(s.cycle(), i as u64 * store.interval());
        }
    }
}
