//! Affine non-termination proofs: certifying, from a committed-trace
//! tail and the current architectural state, that a faulty run *cannot*
//! reach any terminal state except the cycle-budget `Timeout`.
//!
//! A fault that perturbs a loop counter can leave the pipeline healthy
//! and committing at full speed — just around a loop whose exit is now
//! hundreds of thousands of iterations away. Such runs are the most
//! expensive outcome a campaign can draw (they simulate to the full
//! budget), yet their classification is already decided:
//! [`FaultEffect::classify`] maps `Timeout` to `Crash` without ever
//! consulting the output, and `fpm`/`fpm_cycle` latch at first
//! manifestation. So an *exact* record needs only a proof of the
//! terminal status, not the simulation itself.
//!
//! The proof ([`cannot_end_before`]) works on the committed instruction
//! stream, which is architecturally determined — microarchitectural
//! noise (mispredictions, stalls, replays) can delay commits but never
//! change them:
//!
//! 1. The bounded commit trace tail must end in a repeating *body* of
//!    `p` instructions (two consecutive periods, byte-identical).
//! 2. A symbolic pass over one body iteration expresses each register
//!    at iteration end as `start(reg) + δ` ([`Sym`]), `Const`, or
//!    `Dirty` (loads and non-affine ops). Registers that map to
//!    themselves have a per-iteration affine delta.
//! 3. A second pass discharges, for every future iteration `k` below a
//!    pessimistic horizon (`remaining-cycles × commit-width / p + 1`, an
//!    upper bound on how many iterations can still commit before the
//!    budget):
//!    * the control chain: every instruction's successor pc is the next
//!      body entry (direct jumps and current-outcome branches only);
//!    * branch stability: `BEQ`/`BNE` over affine operands flip exactly
//!      at solutions of `k·s ≡ r (mod 2^xlen)` — solved exactly via a
//!      Newton–Hensel modular inverse — and the first solution must lie
//!      beyond the horizon. Inequality branches are only stable when
//!      both deltas vanish: `a < b` is *not* a function of `a − b`, and
//!      equal nonzero deltas still flip comparisons at wraparound.
//!    * memory safety: every load/store address is affine, stays
//!      aligned (the step divides the access size) and marches inside
//!      `[USER_DATA, MEM_SIZE)` for the whole horizon (checked in
//!      `i128`, so the march provably never wraps the xlen space
//!      either);
//!    * trap freedom: division, system, indirect-jump and privileged
//!      ops anywhere in the body defeat the proof.
//!
//! If all obligations hold, no future committed instruction can trap,
//! halt, or leave the loop before the budget — and if commits *stall*
//! instead, the commit watchdog also yields `Timeout`. Either way the
//! terminal status is `Timeout`, which is all the caller records.
//!
//! The prover is deliberately one-sided: `false` only costs the caller
//! more simulation; `true` must be exact. Anything outside the model —
//! kernel mode, W-form affine updates (sign-extension is not affine),
//! cross-register renamings, dirty operands — fails the proof.
//!
//! [`FaultEffect::classify`]: ../../vulnstack_core/effects/enum.FaultEffect.html

use vulnstack_isa::op::Format;
use vulnstack_isa::{Instr, Isa, Op, Reg};
use vulnstack_kernel::memmap::{MEM_SIZE, OUTPUT_BASE, USER_DATA};

use crate::exec;
use crate::ooo::OooCore;

/// Minimum committed-trace tail length before a period is searched: two
/// full copies of any provable body must fit, and tiny windows make
/// spurious periods likelier (they still cannot make the proof unsound —
/// only waste its time).
const MIN_WINDOW: usize = 32;

/// Longest loop body considered. Longer periods exist but cost
/// quadratically in the period search and describe loops too slow to
/// dominate a campaign.
const MAX_PERIOD: usize = 256;

/// Proves that `core`'s run cannot reach any terminal state before
/// `cycle == budget`, i.e. its status is certainly `Timeout`.
///
/// Requires a *recording* commit trace (`enable_trace` below capacity,
/// so the tail is the most recent commits and lines up with the
/// retirement RAT). The caller has already checked `cycle < budget`, and
/// gates on injected structures that cannot corrupt the instruction side
/// of the memory system (a poisoned L1i/L2 line could make a future
/// re-fetch decode differently than the trace recorded, breaking the
/// committed-stream extrapolation).
///
/// Works in both privilege modes — the mode is invariant along a
/// provable body (`SYSCALL`/`ERET`/`HALT` are rejected) and the memory
/// windows adapt: user accesses must stay in the hardware-writable
/// `[USER_DATA, MEM_SIZE)`; kernel loads may read the whole address
/// space but kernel *stores* are confined to `[OUTPUT_BASE, MEM_SIZE)`
/// and every body pc must lie below `OUTPUT_BASE`, so no future store
/// can rewrite the text the loop executes out from under the proof
/// (kernel hangs are real: a corrupted count in the kernel's output-copy
/// loop is among the most expensive faults a campaign draws).
pub(crate) fn cannot_end_before(core: &OooCore, budget: u64) -> bool {
    if !core.trace_recording() {
        return false;
    }
    let trace = core.trace();
    if trace.len() < MIN_WINDOW {
        return false;
    }
    let Some(p) = find_period(trace) else {
        return false;
    };
    let body = &trace[trace.len() - p..];
    // Iterations that could still commit before the budget: the pipeline
    // commits at most `width` instructions per cycle, so `remaining ×
    // width` bounds the commit count and `/ p (+1)` the iteration count.
    let remaining = (budget - core.cycle()) as u128;
    let horizon = (remaining * core.commit_width() as u128).div_ceil(p as u128) + 1;
    prove(core, body, horizon)
}

/// Smallest `p` such that the last two `p`-windows of the trace are
/// identical `(pc, instr)` sequences.
fn find_period(trace: &[(u64, Instr)]) -> Option<usize> {
    let t = trace.len();
    (1..=(t / 2).min(MAX_PERIOD)).find(|&p| trace[t - 2 * p..t - p] == trace[t - p..])
}

/// Symbolic value of an architectural register within one loop
/// iteration, relative to the iteration's start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sym {
    /// `start_value(src) + off` (wrapping; truncation happens at use,
    /// which agrees with per-step truncation because stored values keep
    /// their high bits zero on VA32).
    Reg { src: Reg, off: u64 },
    /// A known constant (already truncated by `exec::alu`).
    Const(u64),
    /// Unconstrained (loads, non-affine ops). Dirty values may feed
    /// stores freely but defeat the proof if they reach a branch or an
    /// address.
    Dirty,
}

/// One branch/address operand as a function of the iteration number:
/// `value(k) = trunc(v0 + k·d)`.
#[derive(Debug, Clone, Copy)]
struct Affine {
    v0: u64,
    d: u64,
}

fn xlen_mask(isa: Isa) -> u64 {
    match isa.xlen() {
        64 => u64::MAX,
        w => (1u64 << w) - 1,
    }
}

/// Applies one instruction's effect to the symbolic register state.
/// `false` means the op is outside the provable fragment (can trap,
/// leave user mode, or redirect control through a register).
fn transfer(syms: &mut [Sym], i: &Instr, isa: Isa) -> bool {
    use Op::*;
    match i.op {
        // Division traps on zero; system/indirect/privileged ops can end
        // the run or leave the loop in ways the model cannot see.
        Div | Divu | Rem | Remu | Divw | Divuw | Remw | Remuw | Call | Callr | Jmpr | Syscall
        | Eret | Halt | Mfsr | Mtsr => return false,
        _ => {}
    }
    if i.op.is_branch() || i.op == Jmp || i.op == Nop || i.op.is_store() {
        // No register effect; control and memory obligations are
        // discharged by the caller.
        return true;
    }
    let Some(dest) = i.dest(isa) else {
        // Zero-register writes are architecturally discarded.
        return true;
    };
    let d = dest.index();
    if i.op.is_load() {
        syms[d] = Sym::Dirty;
        return true;
    }
    let rs1 = syms[i.rs1.index()];
    let rs2 = syms[i.rs2.index()];
    let fold = |a: u64, b: u64, old: u64| exec::alu(i, a, b, old, isa).ok().map(Sym::Const);
    let new = match i.op {
        // The affine fragment: offsets accumulate wrapping; truncation
        // composes (`trunc(trunc(v + a) + b) == trunc(v + a + b)`).
        Add => match (rs1, rs2) {
            (Sym::Const(a), Sym::Const(b)) => fold(a, b, 0),
            (Sym::Reg { src, off }, Sym::Const(c)) | (Sym::Const(c), Sym::Reg { src, off }) => {
                Some(Sym::Reg {
                    src,
                    off: off.wrapping_add(c),
                })
            }
            _ => Some(Sym::Dirty),
        },
        Sub => match (rs1, rs2) {
            (Sym::Const(a), Sym::Const(b)) => fold(a, b, 0),
            (Sym::Reg { src, off }, Sym::Const(c)) => Some(Sym::Reg {
                src,
                off: off.wrapping_sub(c),
            }),
            _ => Some(Sym::Dirty),
        },
        Addi => match rs1 {
            Sym::Const(a) => fold(a, 0, 0),
            Sym::Reg { src, off } => Some(Sym::Reg {
                src,
                off: off.wrapping_add(i.imm as u64),
            }),
            Sym::Dirty => Some(Sym::Dirty),
        },
        // Wide moves: MOVZ is a pure constant; MOVK folds over a known
        // old destination value.
        Movz => fold(0, 0, 0),
        Movk => match syms[d] {
            Sym::Const(old) => fold(0, 0, old),
            _ => Some(Sym::Dirty),
        },
        // Everything else (logic, shifts, multiplies, compares, W-forms
        // — sign-extension is not affine) const-folds or goes dirty.
        op => match op.format() {
            Format::R => match (rs1, rs2) {
                (Sym::Const(a), Sym::Const(b)) => fold(a, b, 0),
                _ => Some(Sym::Dirty),
            },
            Format::I => match rs1 {
                Sym::Const(a) => fold(a, 0, 0),
                _ => Some(Sym::Dirty),
            },
            // Unreachable: every other format was dispatched above.
            _ => None,
        },
    };
    match new {
        Some(s) => {
            syms[d] = s;
            true
        }
        None => false,
    }
}

/// Per-iteration delta of register `r`, from the end-of-iteration
/// symbolic state: `r → r + δ` yields `δ`; a constant that matches the
/// current architectural value (the previous iteration must have
/// produced it) yields `0`; renamings and dirty values have none.
fn delta_of(end: &[Sym], core: &OooCore, r: Reg) -> Option<u64> {
    match end[r.index()] {
        Sym::Reg { src, off } if src == r => Some(off),
        Sym::Const(c) if core.arch_value(r) == c => Some(0),
        _ => None,
    }
}

/// Evaluates an operand to an affine function of the iteration number,
/// if the register's cross-iteration behavior is affine.
fn affine(syms: &[Sym], deltas: &[Option<u64>], core: &OooCore, r: Reg) -> Option<Affine> {
    match syms[r.index()] {
        Sym::Const(c) => Some(Affine { v0: c, d: 0 }),
        Sym::Reg { src, off } => deltas[src.index()].map(|d| Affine {
            v0: core.arch_value(src).wrapping_add(off),
            d,
        }),
        Sym::Dirty => None,
    }
}

/// True if the branch's outcome at iteration 0 persists for every
/// iteration below `horizon`.
fn outcome_stable(op: Op, a: Affine, b: Affine, isa: Isa, horizon: u128) -> bool {
    let mask = xlen_mask(isa);
    let (da, db) = (a.d & mask, b.d & mask);
    if da == 0 && db == 0 {
        return true;
    }
    match op {
        Op::Beq | Op::Bne => {
            let s = da.wrapping_sub(db) & mask;
            if s == 0 {
                // Constant difference: equality status never changes.
                return true;
            }
            let r = b.v0.wrapping_sub(a.v0) & mask;
            if r == 0 {
                // Equal now but drifting apart: the outcome flips at k=1.
                return false;
            }
            first_coincidence(s, r, isa.xlen()) > horizon
        }
        // `a < b` is not a function of `a − b`: even equal nonzero
        // deltas flip comparisons when one side wraps before the other.
        _ => false,
    }
}

/// Smallest `k ≥ 1` with `k·s ≡ r (mod 2^xlen)` for `s, r ≢ 0`, or
/// `u128::MAX` when no solution exists. Writing `s = odd · 2^tz`, a
/// solution requires `2^tz | r` and is then unique modulo `2^(xlen−tz)`.
fn first_coincidence(s: u64, r: u64, xlen: u32) -> u128 {
    let tz = s.trailing_zeros(); // s != 0 within xlen bits, so tz < xlen
    if tz > 0 && r & ((1u64 << tz) - 1) != 0 {
        return u128::MAX;
    }
    let n = xlen - tz;
    let nmask = match n {
        64 => u64::MAX,
        n => (1u64 << n) - 1,
    };
    let inv = modinv_pow2(s >> tz, n);
    let k = ((r >> tz) as u128).wrapping_mul(inv as u128) as u64 & nmask;
    if k == 0 {
        // `k ≡ 0`: the smallest *positive* solution is the modulus.
        1u128 << n
    } else {
        k as u128
    }
}

/// Inverse of odd `a` modulo `2^nbits` by Newton–Hensel iteration
/// (`x ← x(2 − ax)` doubles the number of correct low bits; 7 rounds
/// cover 64 from the seed's 1).
fn modinv_pow2(a: u64, nbits: u32) -> u64 {
    debug_assert_eq!(a & 1, 1, "inverse of an even number mod 2^n");
    let a = a as u128;
    let mut x: u128 = 1;
    for _ in 0..7 {
        x = x.wrapping_mul(2u128.wrapping_sub(a.wrapping_mul(x)));
    }
    let m = match nbits {
        64 => u64::MAX,
        n => (1u64 << n) - 1,
    };
    (x as u64) & m
}

/// Discharges one memory access for every iteration below `horizon`:
/// the address must be affine, stay aligned, and march entirely inside
/// `[lo, MEM_SIZE)` (staying below `MEM_SIZE` also proves it never wraps
/// the xlen space, so the affine model and the truncating AGU agree).
fn access_ok_forever(
    syms: &[Sym],
    deltas: &[Option<u64>],
    core: &OooCore,
    i: &Instr,
    lo: u64,
    horizon: u128,
) -> bool {
    let isa = core.isa();
    let Some(base) = affine(syms, deltas, core, i.rs1) else {
        return false;
    };
    let size = i.op.access_bytes();
    let addr0 = exec::trunc(isa, base.v0.wrapping_add(i.imm as u64));
    let d = base.d & xlen_mask(isa);
    // Access sizes are powers of two dividing 2^xlen, so alignment at
    // every k needs exactly: start aligned, step a multiple of the size.
    if !addr0.is_multiple_of(size) || !d.is_multiple_of(size) {
        return false;
    }
    let step: i128 = match isa.xlen() {
        64 => (d as i64) as i128,
        _ => (d as u32 as i32) as i128,
    };
    let Ok(h) = i128::try_from(horizon) else {
        return false;
    };
    let Some(travel) = step.checked_mul(h) else {
        return false;
    };
    let a0 = addr0 as i128;
    let Some(last) = a0.checked_add(travel) else {
        return false;
    };
    let (first, hi) = (a0.min(last), a0.max(last));
    first >= lo as i128 && hi + size as i128 <= MEM_SIZE as i128
}

/// Runs both symbolic passes over the loop body and discharges every
/// obligation up to `horizon` iterations.
fn prove(core: &OooCore, body: &[(u64, Instr)], horizon: u128) -> bool {
    let isa = core.isa();
    let nregs = isa.num_regs() as usize;
    // Mode-dependent access windows (mode is invariant along a provable
    // body). User stores cannot reach text by hardware protection;
    // kernel stores are confined above every text region the body could
    // execute, enforced *directly* against the body's own pcs below.
    let (load_lo, store_lo) = if core.in_user_mode() {
        (USER_DATA as u64, USER_DATA as u64)
    } else {
        (0u64, OUTPUT_BASE as u64)
    };
    if body.iter().any(|&(pc, _)| pc.wrapping_add(4) > store_lo) {
        return false;
    }
    let identity = |_: ()| -> Vec<Sym> {
        (0..nregs)
            .map(|r| Sym::Reg {
                src: Reg(r as u8),
                off: 0,
            })
            .collect()
    };
    // Pass 1: whole-iteration transfer → per-register deltas.
    let mut syms = identity(());
    for (_, instr) in body {
        if !transfer(&mut syms, instr, isa) {
            return false;
        }
    }
    let deltas: Vec<Option<u64>> = (0..nregs)
        .map(|r| delta_of(&syms, core, Reg(r as u8)))
        .collect();

    // Pass 2: control chain, branch stability, and access obligations at
    // each body position, against the intra-iteration symbolic state.
    let mut syms = identity(());
    for (j, &(pc, ref instr)) in body.iter().enumerate() {
        let next_pc = body[(j + 1) % body.len()].0;
        if instr.op.is_branch() {
            let (Some(a), Some(b)) = (
                affine(&syms, &deltas, core, instr.rs1),
                affine(&syms, &deltas, core, instr.rs2),
            ) else {
                return false;
            };
            let taken = exec::branch_taken(instr.op, a.v0, b.v0, isa);
            let succ = if taken {
                pc.wrapping_add(instr.imm as u64)
            } else {
                pc.wrapping_add(4)
            };
            if succ != next_pc || !outcome_stable(instr.op, a, b, isa, horizon) {
                return false;
            }
        } else if instr.op == Op::Jmp {
            if pc.wrapping_add(instr.imm as u64) != next_pc {
                return false;
            }
        } else {
            if pc.wrapping_add(4) != next_pc {
                return false;
            }
            if instr.op.is_mem() {
                let lo = if instr.op.is_store() {
                    store_lo
                } else {
                    load_lo
                };
                if !access_ok_forever(&syms, &deltas, core, instr, lo, horizon) {
                    return false;
                }
            }
            if !transfer(&mut syms, instr, isa) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modinv_inverts_odd_numbers() {
        for nbits in [1u32, 2, 3, 8, 31, 32, 63, 64] {
            let m = match nbits {
                64 => u64::MAX,
                n => (1u64 << n) - 1,
            };
            for a in [1u64, 3, 5, 0x1234_5679, u64::MAX, 0xdead_beef_cafe_babb] {
                let a = a & m | 1;
                let inv = modinv_pow2(a, nbits);
                assert_eq!(
                    a.wrapping_mul(inv) & m,
                    1 & m,
                    "a={a:#x} nbits={nbits} inv={inv:#x}"
                );
            }
        }
    }

    #[test]
    fn first_coincidence_solves_the_congruence() {
        // Brute-force cross-check on a small modulus: every (s, r) pair.
        let xlen = 8u32; // model an 8-bit word via masking
        let m = (1u64 << xlen) - 1;
        for s in 1..=m {
            for r in 1..=m {
                let brute = (1..=1u128 << xlen)
                    .find(|&k| (k as u64).wrapping_mul(s) & m == r)
                    .unwrap_or(u128::MAX);
                // first_coincidence assumes inputs masked to xlen.
                let got = first_coincidence(s, r, xlen);
                assert_eq!(got, brute, "s={s} r={r}");
            }
        }
    }

    #[test]
    fn first_coincidence_64bit_spot_checks() {
        // k·1 ≡ r: first solution is r itself.
        assert_eq!(first_coincidence(1, 12345, 64), 12345);
        // s = 2^19 (the classic flipped-counter delta), r = 2^19 · q:
        // solution q.
        assert_eq!(first_coincidence(1 << 19, (1 << 19) * 524_287, 64), 524_287);
        // r not divisible by the 2-power of s: no solution ever.
        assert_eq!(first_coincidence(1 << 19, 3, 64), u128::MAX);
        // s = -1 (decrementing counter): k ≡ -r, i.e. 2^64 - r.
        assert_eq!(first_coincidence(u64::MAX, 10, 64), (1u128 << 64) - 10);
    }

    #[test]
    fn find_period_smallest_and_none() {
        let i = Instr::alu_imm(Op::Addi, Reg(1), Reg(1), 1);
        let j = Instr::alu_imm(Op::Addi, Reg(2), Reg(2), 1);
        // Alternating 2-cycle: period 2, not 1.
        let t: Vec<(u64, Instr)> = (0..40)
            .map(|k| if k % 2 == 0 { (100, i) } else { (104, j) })
            .collect();
        assert_eq!(find_period(&t), Some(2));
        // Uniform stream: period 1.
        let u: Vec<(u64, Instr)> = (0..40).map(|_| (100, i)).collect();
        assert_eq!(find_period(&u), Some(1));
        // Aperiodic tail: distinct pcs.
        let a: Vec<(u64, Instr)> = (0..40).map(|k| (100 + 4 * k, i)).collect();
        assert_eq!(find_period(&a), None);
    }

    #[test]
    fn inequality_branches_need_zero_deltas() {
        // Equal nonzero deltas keep a - b constant, but Bltu still flips
        // at wraparound — the prover must refuse it.
        let a = Affine { v0: 10, d: 1 };
        let b = Affine { v0: 1000, d: 1 };
        assert!(!outcome_stable(Op::Bltu, a, b, Isa::Va64, 1 << 40));
        assert!(outcome_stable(
            Op::Bltu,
            Affine { v0: 10, d: 0 },
            Affine { v0: 1000, d: 0 },
            Isa::Va64,
            1 << 40
        ));
    }

    #[test]
    fn equality_branch_flip_solved_exactly() {
        // a starts 0 and climbs by 1; b fixed at 1000: Bne stays taken
        // until k = 1000 exactly.
        let a = Affine { v0: 0, d: 1 };
        let b = Affine { v0: 1000, d: 0 };
        assert!(outcome_stable(Op::Bne, a, b, Isa::Va64, 999));
        assert!(!outcome_stable(Op::Bne, a, b, Isa::Va64, 1000));
        // Currently equal and drifting: flips immediately.
        assert!(!outcome_stable(
            Op::Beq,
            Affine { v0: 7, d: 2 },
            Affine { v0: 7, d: 0 },
            Isa::Va64,
            2
        ));
        // Constant difference: stable at any horizon.
        assert!(outcome_stable(
            Op::Bne,
            Affine { v0: 7, d: 5 },
            Affine { v0: 9, d: 5 },
            Isa::Va64,
            u128::MAX
        ));
    }
}
