//! # vulnstack-microarch
//!
//! The hardware substrate of the study: a full-system simulator for the
//! VA32/VA64 ISAs standing in for gem5. Two execution engines share one
//! set of instruction semantics ([`exec`]):
//!
//! * [`func::FuncCore`] — a functional (instruction-at-a-time) core with
//!   flat memory. Fast; used for golden runs and architecture-level (PVF)
//!   fault injection, where faults live in *architectural* state.
//! * [`ooo::OooCore`] — a cycle-level out-of-order core (fetch / decode /
//!   rename / issue / execute / commit, physical register file, ROB, IQ,
//!   LSQ, branch prediction) on top of a write-back L1i/L1d/L2 cache
//!   hierarchy ([`cache`]). Used for microarchitecture-level (HVF/AVF)
//!   fault injection, where faults live in *hardware* structures.
//!
//! Four core configurations ([`config::CoreConfig`]) mirror the paper's
//! Cortex-A9/A15 (VA32) and Cortex-A57/A72 (VA64) models.

pub mod cache;
pub mod config;
pub mod exec;
pub mod func;
pub mod lifetime;
pub mod ooo;
pub mod outcome;
mod runaway;
pub mod snapshot;

pub use config::{CoreConfig, CoreModel};

/// Parses an env knob, distinguishing *unset* (silent fallback) from
/// *malformed* (warn on stderr, then fall back): a typo'd
/// `VULNSTACK_WATCHDOG=8x` must not silently run a different experiment
/// than the one asked for. Shared by every crate that reads
/// `VULNSTACK_*` configuration (the injection engines re-export it).
pub fn env_knob<T: std::str::FromStr>(name: &str, what: &str) -> Option<T> {
    let v = std::env::var(name).ok()?;
    match v.parse::<T>() {
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!("warning: ignoring {name}={v:?}: not a valid {what}; using default");
            None
        }
    }
}
pub use func::FuncCore;
pub use lifetime::{FaultEvent, FaultEventKind, FaultTrace, LifetimeCounts};
pub use ooo::{FaultModel, OooCore};
pub use outcome::{RunStatus, SimOutcome};
pub use snapshot::CheckpointStore;
