//! The functional full-system core: instruction-at-a-time execution over
//! flat memory.
//!
//! This is the reference executor (golden runs) and the substrate for
//! architecture-level (PVF) fault injection: a [`PvfFault`] flips one bit
//! of *architectural* state — a register, a data byte, or an encoded
//! instruction in the text segment — at a chosen dynamic instant, and the
//! corruption persists until the program naturally overwrites it.

use std::collections::HashSet;

use vulnstack_isa::{Instr, Isa, Op, Reg, SysReg, Trap, TrapCause};
use vulnstack_kernel::kdata::{off, KStatus};
use vulnstack_kernel::memmap::{self, AccessKind};
use vulnstack_kernel::SystemImage;

use crate::exec;
use crate::outcome::{RunStatus, SimOutcome};

/// Privilege mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Unprivileged program execution.
    User,
    /// Kernel execution (boot and trap handling).
    Kernel,
}

/// An architectural-state mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PvfMutation {
    /// Flip `bit` of register `reg`.
    FlipReg {
        /// Target architectural register.
        reg: Reg,
        /// Bit index (0-based, < XLEN).
        bit: u8,
    },
    /// Flip `bit` of the byte at `addr` (data or text).
    FlipMem {
        /// Physical byte address.
        addr: u32,
        /// Bit index (0..8).
        bit: u8,
    },
}

/// A persistent architecture-level fault, applied just before the
/// `at_instr`-th dynamic instruction executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PvfFault {
    /// Dynamic instruction index at which the flip happens.
    pub at_instr: u64,
    /// What to flip.
    pub mutation: PvfMutation,
}

/// Execution profile collected from a golden run, used to sample
/// program-flow fault sites for PVF campaigns.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Distinct data bytes touched (loads and stores, user and kernel).
    pub touched_bytes: Vec<u32>,
    /// Dynamic instructions executed in user mode.
    pub user_instrs: u64,
    /// Dynamic instructions executed in kernel mode.
    pub kernel_instrs: u64,
}

/// The functional core.
#[derive(Debug, Clone)]
pub struct FuncCore {
    isa: Isa,
    mem: Vec<u8>,
    regs: [u64; 32],
    pc: u64,
    mode: Mode,
    sysregs: [u64; SysReg::COUNT],
    user_text_end: u32,
    icount: u64,
    fault: Option<PvfFault>,
    /// One-shot: the next fetched instruction is replaced by a NOP
    /// (instruction-skip fault model).
    pending_skip: bool,
    /// Persistent stuck-at cell: `(reg, bit, value)` re-asserted after
    /// every executed instruction.
    stuck_reg: Option<(Reg, u8, bool)>,
    ended: Option<RunStatus>,
    collect_profile: bool,
    touched: HashSet<u32>,
    user_instrs: u64,
    kernel_instrs: u64,
}

impl FuncCore {
    /// Creates a core with `image` loaded, at the reset PC in kernel mode.
    pub fn new(image: &SystemImage) -> FuncCore {
        let mut mem = vec![0u8; memmap::MEM_SIZE as usize];
        image.write_into(&mut mem);
        FuncCore {
            isa: image.isa,
            mem,
            regs: [0; 32],
            pc: image.reset_pc as u64,
            mode: Mode::Kernel,
            sysregs: [0; SysReg::COUNT],
            user_text_end: image.user_text_end,
            icount: 0,
            fault: None,
            pending_skip: false,
            stuck_reg: None,
            ended: None,
            collect_profile: false,
            touched: HashSet::new(),
            user_instrs: 0,
            kernel_instrs: 0,
        }
    }

    /// Arms an architecture-level fault.
    pub fn with_fault(mut self, fault: PvfFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Enables profile collection (touched bytes, mode mix).
    pub fn with_profile(mut self) -> Self {
        self.collect_profile = true;
        self
    }

    /// The current privilege mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Dynamic instructions executed so far.
    pub fn icount(&self) -> u64 {
        self.icount
    }

    /// Reads `len` bytes of memory (little-endian) without permission
    /// checks — test/tooling access.
    pub fn peek(&self, addr: u32, len: usize) -> &[u8] {
        &self.mem[addr as usize..addr as usize + len]
    }

    /// Flips one bit of memory directly (architecture-level injection of
    /// text or data corruption at a precise dynamic instant).
    pub fn poke_bit(&mut self, addr: u32, bit: u8) {
        if (addr as usize) < self.mem.len() {
            self.mem[addr as usize] ^= 1 << (bit & 7);
        }
    }

    /// Flips one bit of an architectural register directly.
    pub fn poke_reg_bit(&mut self, reg: Reg, bit: u8) {
        let v = self.regs[reg.index()] ^ (1u64 << (bit as u32 % self.isa.xlen()));
        self.regs[reg.index()] = exec::trunc(self.isa, v);
    }

    /// Inverts one whole byte of an architectural register (byte-wide
    /// corruption fault model).
    pub fn poke_reg_byte(&mut self, reg: Reg, byte: u8) {
        let xlen_bytes = self.isa.xlen() / 8;
        let b = u32::from(byte) % xlen_bytes;
        let v = self.regs[reg.index()] ^ (0xFFu64 << (8 * b));
        self.regs[reg.index()] = exec::trunc(self.isa, v);
    }

    /// Arms a one-shot instruction skip: the next instruction this core
    /// would execute is replaced by a NOP (PC advances, nothing else
    /// happens).
    pub fn skip_next_instr(&mut self) {
        self.pending_skip = true;
    }

    /// Arms a persistent stuck-at cell: flips `bit` of `reg` now and
    /// forces it back to the flipped value after every subsequent
    /// instruction, modelling a permanently-failed latch.
    pub fn set_stuck_reg(&mut self, reg: Reg, bit: u8) {
        let b = bit as u32 % self.isa.xlen();
        let val = (self.regs[reg.index()] >> b) & 1 == 0;
        self.poke_reg_bit(reg, bit);
        self.stuck_reg = Some((reg, b as u8, val));
    }

    /// True once the run has reached a terminal state.
    pub fn ended(&self) -> bool {
        self.ended.is_some()
    }

    /// Produces the outcome of a manually-stepped session.
    pub fn into_outcome(self) -> SimOutcome {
        let status = self.ended.unwrap_or(RunStatus::Timeout);
        SimOutcome {
            status,
            output: self.drain_output(),
            instrs: self.icount,
            cycles: self.icount,
        }
    }

    fn read_le(&self, addr: u32, len: u32) -> u64 {
        let mut v = 0u64;
        for i in (0..len).rev() {
            v = (v << 8) | self.mem[(addr + i) as usize] as u64;
        }
        v
    }

    fn write_le(&mut self, addr: u32, len: u32, value: u64) {
        for i in 0..len {
            self.mem[(addr + i) as usize] = (value >> (8 * i)) as u8;
        }
    }

    fn access_ok(&self, addr: u64, len: u32, kind: AccessKind) -> bool {
        if addr
            .checked_add(len as u64)
            .is_none_or(|e| e > memmap::MEM_SIZE as u64)
        {
            return false;
        }
        match self.mode {
            Mode::Kernel => true,
            Mode::User => memmap::user_access_ok(addr as u32, len, kind, self.user_text_end),
        }
    }

    fn trap(&mut self, t: Trap) {
        if self.mode == Mode::Kernel {
            self.ended = Some(RunStatus::KernelPanic);
            return;
        }
        self.sysregs[SysReg::Epc.index() as usize] = t.pc;
        self.sysregs[SysReg::Cause.index() as usize] = t.cause.code();
        self.sysregs[SysReg::BadAddr.index() as usize] = t.addr;
        self.mode = Mode::Kernel;
        self.pc = memmap::TRAP_VEC as u64;
    }

    fn reg(&self, r: Reg) -> u64 {
        if self.isa.zero() == Some(r) {
            0
        } else {
            self.regs[r.index()]
        }
    }

    fn set_reg(&mut self, r: Reg, v: u64) {
        if self.isa.zero() != Some(r) {
            self.regs[r.index()] = exec::trunc(self.isa, v);
        }
    }

    /// Executes one instruction. Returns `false` once the run has ended.
    pub fn step(&mut self) -> bool {
        let live = self.step_inner();
        // Re-assert the stuck cell over whatever the instruction wrote.
        if let Some((r, b, v)) = self.stuck_reg {
            if self.isa.zero() != Some(r) {
                let forced = (self.regs[r.index()] & !(1u64 << b)) | (u64::from(v) << b);
                self.regs[r.index()] = exec::trunc(self.isa, forced);
            }
        }
        live
    }

    fn step_inner(&mut self) -> bool {
        if self.ended.is_some() {
            return false;
        }
        // Apply the armed PVF fault at its dynamic instant.
        if let Some(f) = self.fault {
            if f.at_instr == self.icount {
                match f.mutation {
                    PvfMutation::FlipReg { reg, bit } => {
                        let v = self.regs[reg.index()] ^ (1u64 << (bit as u32 % self.isa.xlen()));
                        self.regs[reg.index()] = exec::trunc(self.isa, v);
                    }
                    PvfMutation::FlipMem { addr, bit } => {
                        if (addr as usize) < self.mem.len() {
                            self.mem[addr as usize] ^= 1 << (bit & 7);
                        }
                    }
                }
                self.fault = None;
            }
        }

        let pc = self.pc;
        self.icount += 1;
        if self.collect_profile {
            match self.mode {
                Mode::User => self.user_instrs += 1,
                Mode::Kernel => self.kernel_instrs += 1,
            }
        }

        if self.pending_skip {
            // The skipped slot executes as a NOP: the PC advances,
            // nothing else happens.
            self.pending_skip = false;
            self.pc = pc + 4;
            return true;
        }

        // Fetch.
        if !pc.is_multiple_of(4) || !self.access_ok(pc, 4, AccessKind::Fetch) {
            self.trap(Trap::with_addr(TrapCause::FetchFault, pc, pc));
            return self.ended.is_none();
        }
        let word = self.read_le(pc as u32, 4) as u32;
        let instr = match Instr::decode(word, self.isa) {
            Ok(i) => i,
            Err(_) => {
                self.trap(Trap::new(TrapCause::UndefinedInstruction, pc));
                return self.ended.is_none();
            }
        };

        self.execute(pc, &instr);
        self.ended.is_none()
    }

    fn execute(&mut self, pc: u64, instr: &Instr) {
        use vulnstack_isa::op::Format;
        let isa = self.isa;
        let mut next = pc + 4;
        match instr.op.format() {
            Format::R | Format::I | Format::M => {
                let rs1 = self.reg(instr.rs1);
                let rs2 = self.reg(instr.rs2);
                let old = self.reg(instr.rd);
                match exec::alu(instr, rs1, rs2, old, isa) {
                    Ok(v) => {
                        if let Some(d) = instr.dest(isa) {
                            self.set_reg(d, v);
                        }
                    }
                    Err(cause) => {
                        self.trap(Trap::new(cause, pc));
                        return;
                    }
                }
            }
            Format::Load => {
                let addr = exec::trunc(isa, self.reg(instr.rs1).wrapping_add(instr.imm as u64));
                let len = instr.op.access_bytes() as u32;
                if !addr.is_multiple_of(len as u64) {
                    self.trap(Trap::with_addr(TrapCause::MisalignedAccess, pc, addr));
                    return;
                }
                if !self.access_ok(addr, len, AccessKind::Read) {
                    self.trap(Trap::with_addr(TrapCause::AccessFault, pc, addr));
                    return;
                }
                if self.collect_profile {
                    for i in 0..len {
                        self.touched.insert(addr as u32 + i);
                    }
                }
                let raw = self.read_le(addr as u32, len);
                self.set_reg(instr.rd, exec::load_extend(instr.op, raw, isa));
            }
            Format::Store => {
                let addr = exec::trunc(isa, self.reg(instr.rs1).wrapping_add(instr.imm as u64));
                let len = instr.op.access_bytes() as u32;
                if !addr.is_multiple_of(len as u64) {
                    self.trap(Trap::with_addr(TrapCause::MisalignedAccess, pc, addr));
                    return;
                }
                if !self.access_ok(addr, len, AccessKind::Write) {
                    self.trap(Trap::with_addr(TrapCause::AccessFault, pc, addr));
                    return;
                }
                if self.collect_profile {
                    for i in 0..len {
                        self.touched.insert(addr as u32 + i);
                    }
                }
                let data = self.reg(instr.rd);
                self.write_le(addr as u32, len, data);
            }
            Format::B => {
                if exec::branch_taken(instr.op, self.reg(instr.rs1), self.reg(instr.rs2), isa) {
                    next = pc.wrapping_add(instr.imm as u64);
                }
            }
            Format::J => {
                if instr.op == Op::Call {
                    self.set_reg(isa.lr(), pc + 4);
                }
                next = pc.wrapping_add(instr.imm as u64);
            }
            Format::Jr => {
                let target = exec::trunc(isa, self.reg(instr.rs1));
                if instr.op == Op::Callr {
                    self.set_reg(isa.lr(), pc + 4);
                }
                next = target;
            }
            Format::Sys => match instr.op {
                Op::Nop => {}
                Op::Syscall => {
                    self.trap(Trap::new(TrapCause::Syscall, pc));
                    return;
                }
                Op::Halt => {
                    if self.mode == Mode::User {
                        self.trap(Trap::new(TrapCause::PrivilegeViolation, pc));
                    } else {
                        self.ended = Some(self.read_kernel_status());
                    }
                    return;
                }
                Op::Eret => {
                    if self.mode == Mode::User {
                        self.trap(Trap::new(TrapCause::PrivilegeViolation, pc));
                        return;
                    }
                    self.mode = Mode::User;
                    next = self.sysregs[SysReg::Epc.index() as usize];
                }
                _ => unreachable!(),
            },
            Format::Mfsr => {
                if self.mode == Mode::User {
                    self.trap(Trap::new(TrapCause::PrivilegeViolation, pc));
                    return;
                }
                let sr = instr.sysreg().expect("decoder validated sysreg");
                let v = self.sysregs[sr.index() as usize];
                self.set_reg(instr.rd, v);
            }
            Format::Mtsr => {
                if self.mode == Mode::User {
                    self.trap(Trap::new(TrapCause::PrivilegeViolation, pc));
                    return;
                }
                let sr = instr.sysreg().expect("decoder validated sysreg");
                self.sysregs[sr.index() as usize] = self.reg(instr.rs1);
            }
        }
        self.pc = next;
    }

    fn read_kernel_status(&self) -> RunStatus {
        let kd = memmap::KERNEL_DATA;
        let status = self.read_le(kd + off::STATUS as u32, 4) as u32;
        let code = self.read_le(kd + off::CODE as u32, 4) as u32;
        match KStatus::from_word(status) {
            Some(KStatus::Exited) => RunStatus::Exited(code as i32),
            Some(KStatus::Detected) => RunStatus::Detected(code as i32),
            Some(KStatus::Crashed) => RunStatus::Crashed(code),
            _ => RunStatus::KernelPanic,
        }
    }

    fn drain_output(&self) -> Vec<u8> {
        let kd = memmap::KERNEL_DATA;
        let outlen = (self.read_le(kd + off::OUTLEN as u32, 4) as u32).min(memmap::OUTPUT_CAP);
        self.mem[memmap::OUTPUT_BASE as usize..(memmap::OUTPUT_BASE + outlen) as usize].to_vec()
    }

    /// Runs until the system halts or `budget` instructions have executed.
    pub fn run(mut self, budget: u64) -> SimOutcome {
        while self.ended.is_none() && self.icount < budget {
            self.step();
        }
        let status = self.ended.unwrap_or(RunStatus::Timeout);
        SimOutcome {
            status,
            output: self.drain_output(),
            instrs: self.icount,
            cycles: self.icount,
        }
    }

    /// Runs like [`FuncCore::run`] and also returns the collected profile.
    pub fn run_with_profile(mut self, budget: u64) -> (SimOutcome, Profile) {
        self.collect_profile = true;
        while self.ended.is_none() && self.icount < budget {
            self.step();
        }
        let status = self.ended.unwrap_or(RunStatus::Timeout);
        let outcome = SimOutcome {
            status,
            output: self.drain_output(),
            instrs: self.icount,
            cycles: self.icount,
        };
        let mut touched: Vec<u32> = self.touched.iter().copied().collect();
        touched.sort_unstable();
        let profile = Profile {
            touched_bytes: touched,
            user_instrs: self.user_instrs,
            kernel_instrs: self.kernel_instrs,
        };
        (outcome, profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_compiler::{compile, CompileOpts};
    use vulnstack_vir::ModuleBuilder;

    fn image_for(build: impl FnOnce(&mut vulnstack_vir::FuncBuilder), isa: Isa) -> SystemImage {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        build(&mut f);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        let c = compile(&m, isa, &CompileOpts::default()).unwrap();
        SystemImage::build(&c, &[]).unwrap()
    }

    #[test]
    fn exit_code_roundtrips_through_kernel() {
        for isa in [Isa::Va32, Isa::Va64] {
            let img = image_for(|f| f.sys_exit(42), isa);
            let out = FuncCore::new(&img).run(1_000_000);
            assert_eq!(out.status, RunStatus::Exited(42), "{isa}");
        }
    }

    #[test]
    fn write_syscall_reaches_output_region() {
        for isa in [Isa::Va32, Isa::Va64] {
            let img = image_for(
                |f| {
                    let slot = f.stack_slot(4, 4);
                    let p = f.slot_addr(slot);
                    let v = f.c(0x0403_0201);
                    f.store32(v, p, 0);
                    f.sys_write(p, 4);
                    f.sys_exit(0);
                },
                isa,
            );
            let out = FuncCore::new(&img).run(1_000_000);
            assert_eq!(out.status, RunStatus::Exited(0), "{isa}");
            assert_eq!(out.output, vec![1, 2, 3, 4], "{isa}");
        }
    }

    #[test]
    fn user_fault_crashes_via_kernel() {
        for isa in [Isa::Va32, Isa::Va64] {
            // Load from the kernel data page: user access fault.
            let img = image_for(
                |f| {
                    let p = f.c(0x8000);
                    let v = f.load32(p, 0);
                    f.sys_exit(v);
                },
                isa,
            );
            let out = FuncCore::new(&img).run(1_000_000);
            assert_eq!(
                out.status,
                RunStatus::Crashed(TrapCause::AccessFault.code() as u32),
                "{isa}"
            );
        }
    }

    #[test]
    fn division_by_zero_crashes() {
        let img = image_for(
            |f| {
                let z = f.c(0);
                let d = f.divs(5, z);
                f.sys_exit(d);
            },
            Isa::Va64,
        );
        let out = FuncCore::new(&img).run(1_000_000);
        assert_eq!(
            out.status,
            RunStatus::Crashed(TrapCause::DivideByZero.code() as u32)
        );
    }

    #[test]
    fn infinite_loop_times_out() {
        let img = image_for(
            |f| {
                let spin = f.new_block();
                f.br(spin);
                f.switch_to(spin);
                f.br(spin);
                // unreachable
                let done = f.new_block();
                f.switch_to(done);
                f.sys_exit(0);
            },
            Isa::Va32,
        );
        let out = FuncCore::new(&img).run(10_000);
        assert_eq!(out.status, RunStatus::Timeout);
    }

    #[test]
    fn read_syscall_copies_input() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global_zeroed("buf", 16, 4);
        let mut f = mb.function("main", 0);
        let p = f.global_addr(g);
        let n = f.sys_read(p, 16);
        let b0 = f.load8u(p, 0);
        let s = f.add(n, b0);
        f.sys_exit(s);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        for isa in [Isa::Va32, Isa::Va64] {
            let c = compile(&m, isa, &CompileOpts::default()).unwrap();
            let img = SystemImage::build(&c, &[7, 8, 9]).unwrap();
            let out = FuncCore::new(&img).run(1_000_000);
            // 3 bytes copied + first byte 7 = 10.
            assert_eq!(out.status, RunStatus::Exited(10), "{isa}");
        }
    }

    #[test]
    fn brk_returns_old_break_and_grows() {
        let img = image_for(
            |f| {
                let base = f.sys_brk(64);
                f.store32(0x1234, base, 0);
                let v = f.load32(base, 0);
                f.sys_exit(v);
            },
            Isa::Va64,
        );
        let out = FuncCore::new(&img).run(1_000_000);
        assert_eq!(out.status, RunStatus::Exited(0x1234));
    }

    #[test]
    fn pvf_register_fault_can_corrupt_exit_code() {
        let isa = Isa::Va64;
        let img = image_for(
            |f| {
                let v = f.c(0);
                // Long-ish chain so the value sits in a register.
                let v2 = f.add(v, 0);
                f.sys_exit(v2);
            },
            isa,
        );
        // Golden first.
        let golden = FuncCore::new(&img).run(1_000_000);
        assert_eq!(golden.status, RunStatus::Exited(0));
        // Flip bit 3 of the argument register (which carries the exit
        // code) at every early instant; the flip that lands between the
        // final write and the syscall must surface as a wrong exit code.
        let mut changed = false;
        for at in 0..40 {
            let f = PvfFault {
                at_instr: at,
                mutation: PvfMutation::FlipReg {
                    reg: Reg(0),
                    bit: 3,
                },
            };
            let out = FuncCore::new(&img).with_fault(f).run(1_000_000);
            if out.status == RunStatus::Exited(8) {
                changed = true;
            }
        }
        assert!(
            changed,
            "no register flip surfaced as a corrupted exit code"
        );
    }

    #[test]
    fn pvf_text_fault_can_crash() {
        let isa = Isa::Va64;
        let img = image_for(|f| f.sys_exit(0), isa);
        // Corrupt the first user instruction's opcode field to an invalid
        // opcode: flip the top opcode bit.
        let f = PvfFault {
            at_instr: 0,
            mutation: PvfMutation::FlipMem {
                addr: memmap::USER_TEXT + 3,
                bit: 7,
            },
        };
        let out = FuncCore::new(&img).with_fault(f).run(1_000_000);
        assert!(
            matches!(out.status, RunStatus::Crashed(_) | RunStatus::Timeout),
            "{:?}",
            out.status
        );
    }

    #[test]
    fn profile_counts_kernel_instructions() {
        let img = image_for(
            |f| {
                let slot = f.stack_slot(64, 4);
                let p = f.slot_addr(slot);
                f.sys_write(p, 64);
                f.sys_exit(0);
            },
            Isa::Va64,
        );
        let (out, prof) = FuncCore::new(&img).run_with_profile(1_000_000);
        assert_eq!(out.status, RunStatus::Exited(0));
        assert!(prof.kernel_instrs > 64, "write loop runs in kernel mode");
        assert!(prof.user_instrs > 0);
        assert!(!prof.touched_bytes.is_empty());
    }
}
