//! Core configurations mirroring the paper's Table II.

use serde::{Deserialize, Serialize};
use vulnstack_isa::Isa;

/// The four simulated microprocessor models (paper Table II analogues).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CoreModel {
    /// Cortex-A9-like: VA32, 2-wide, small windows, 512 KiB L2.
    A9,
    /// Cortex-A15-like: VA32, 3-wide, 1 MiB L2.
    A15,
    /// Cortex-A57-like: VA64, 3-wide, big windows, 1 MiB L2.
    A57,
    /// Cortex-A72-like: VA64, 3-wide, big windows, 2 MiB L2.
    A72,
}

impl CoreModel {
    /// All four models.
    pub const ALL: [CoreModel; 4] = [
        CoreModel::A9,
        CoreModel::A15,
        CoreModel::A57,
        CoreModel::A72,
    ];

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            CoreModel::A9 => "A9",
            CoreModel::A15 => "A15",
            CoreModel::A57 => "A57",
            CoreModel::A72 => "A72",
        }
    }

    /// The full configuration for this model.
    pub fn config(self) -> CoreConfig {
        CoreConfig::for_model(self)
    }
}

impl std::fmt::Display for CoreModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size: u32,
    /// Associativity (ways).
    pub ways: u32,
    /// Line size in bytes.
    pub line: u32,
    /// Hit latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size / (self.ways * self.line)
    }

    /// Total data bits in the array (the fault-injection target
    /// population).
    pub fn data_bits(&self) -> u64 {
        self.size as u64 * 8
    }
}

/// Full microarchitectural configuration of a simulated core.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Which model this is.
    pub model: CoreModel,
    /// Target ISA.
    pub isa: Isa,
    /// Fetch/decode/rename/commit width.
    pub width: u32,
    /// Reorder buffer entries.
    pub rob_entries: u32,
    /// Issue queue entries.
    pub iq_entries: u32,
    /// Load-queue entries.
    pub lq_entries: u32,
    /// Store-queue entries.
    pub sq_entries: u32,
    /// Physical integer registers.
    pub phys_regs: u32,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// Main-memory access latency (cycles).
    pub mem_latency: u32,
    /// Branch predictor table entries (bimodal).
    pub bp_entries: u32,
    /// Branch target buffer entries.
    pub btb_entries: u32,
}

impl CoreConfig {
    /// The configuration for `model` (paper Table II analogue).
    pub fn for_model(model: CoreModel) -> CoreConfig {
        let l1 = |size: u32| CacheConfig {
            size,
            ways: 4,
            line: 64,
            latency: 2,
        };
        let l2 = |size: u32, latency: u32| CacheConfig {
            size,
            ways: 16,
            line: 64,
            latency,
        };
        match model {
            CoreModel::A9 => CoreConfig {
                model,
                isa: Isa::Va32,
                width: 2,
                rob_entries: 40,
                iq_entries: 20,
                lq_entries: 16,
                sq_entries: 16,
                phys_regs: 56,
                l1i: l1(32 * 1024),
                l1d: l1(32 * 1024),
                l2: l2(512 * 1024, 8),
                mem_latency: 80,
                bp_entries: 2048,
                btb_entries: 512,
            },
            CoreModel::A15 => CoreConfig {
                model,
                isa: Isa::Va32,
                width: 3,
                rob_entries: 60,
                iq_entries: 32,
                lq_entries: 16,
                sq_entries: 16,
                phys_regs: 90,
                l1i: l1(32 * 1024),
                l1d: l1(32 * 1024),
                l2: l2(1024 * 1024, 10),
                mem_latency: 90,
                bp_entries: 4096,
                btb_entries: 1024,
            },
            CoreModel::A57 => CoreConfig {
                model,
                isa: Isa::Va64,
                width: 3,
                rob_entries: 128,
                iq_entries: 32,
                lq_entries: 16,
                sq_entries: 16,
                phys_regs: 128,
                l1i: CacheConfig {
                    size: 48 * 1024,
                    ways: 3,
                    line: 64,
                    latency: 2,
                },
                l1d: l1(32 * 1024),
                l2: l2(1024 * 1024, 10),
                mem_latency: 90,
                bp_entries: 4096,
                btb_entries: 1024,
            },
            CoreModel::A72 => CoreConfig {
                model,
                isa: Isa::Va64,
                width: 3,
                rob_entries: 128,
                iq_entries: 64,
                lq_entries: 16,
                sq_entries: 16,
                phys_regs: 128,
                l1i: CacheConfig {
                    size: 48 * 1024,
                    ways: 3,
                    line: 64,
                    latency: 2,
                },
                l1d: l1(32 * 1024),
                l2: l2(2048 * 1024, 12),
                mem_latency: 100,
                bp_entries: 8192,
                btb_entries: 2048,
            },
        }
    }

    /// Bits in the physical register file (injection population).
    pub fn rf_bits(&self) -> u64 {
        self.phys_regs as u64 * self.isa.xlen() as u64
    }

    /// Bits in the LSQ storage (injection population): load-queue entries
    /// hold an address; store-queue entries hold an address and a data
    /// word.
    pub fn lsq_bits(&self) -> u64 {
        let x = self.isa.xlen() as u64;
        self.lq_entries as u64 * x + self.sq_entries as u64 * 2 * x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_models_have_expected_isas() {
        assert_eq!(CoreModel::A9.config().isa, Isa::Va32);
        assert_eq!(CoreModel::A15.config().isa, Isa::Va32);
        assert_eq!(CoreModel::A57.config().isa, Isa::Va64);
        assert_eq!(CoreModel::A72.config().isa, Isa::Va64);
    }

    #[test]
    fn cache_geometry_is_consistent() {
        for m in CoreModel::ALL {
            let c = m.config();
            for cc in [c.l1i, c.l1d, c.l2] {
                assert_eq!(cc.sets() * cc.ways * cc.line, cc.size, "{m}");
                assert!(
                    cc.sets().is_power_of_two(),
                    "{m}: sets must be a power of two"
                );
            }
        }
    }

    #[test]
    fn l2_sizes_scale_across_models() {
        assert!(CoreModel::A9.config().l2.size < CoreModel::A15.config().l2.size);
        assert!(CoreModel::A57.config().l2.size < CoreModel::A72.config().l2.size);
    }

    #[test]
    fn bit_populations() {
        let c = CoreModel::A9.config();
        assert_eq!(c.rf_bits(), 56 * 32);
        assert_eq!(c.lsq_bits(), 16 * 32 + 16 * 64);
        assert_eq!(c.l2.data_bits(), 512 * 1024 * 8);
    }
}
