//! Fault-lifetime event tracing for injection runs.
//!
//! A campaign classifies each injection by its end state (the fault
//! effect) and its first architectural manifestation (the FPM), but the
//! paper's explanatory story — *why* FPM distributions differ per
//! microarchitecture and workload (Figs. 5–7) — is about the path a
//! fault travels between injection and outcome: was the corrupted value
//! read before being overwritten, did a squash discard the only tainted
//! instruction, did a tainted store carry the corruption into memory?
//! [`FaultTrace`] records that path as a compact event log.
//!
//! The trace is **opt-in and gated on an `Option`** inside
//! [`crate::ooo::OooCore`]: with tracing disabled every emission site is
//! behind a branch that already only fires on tainted state, so the
//! disabled path costs nothing measurable (asserted by the
//! trace-overhead smoke test in the workspace root).
//!
//! Two views of the same run coexist:
//!
//! * a **ring buffer** of [`FaultEvent`]s bounded at construction
//!   (oldest events are dropped, with a drop counter) — the replay log
//!   shown by `vulnstack trace --structure ...`;
//! * exact [`LifetimeCounts`] maintained *outside* the ring — milestone
//!   facts (first consumption, first architectural visibility,
//!   extinction) that reconciliation tests compare against campaign
//!   classifications regardless of ring capacity.

use std::collections::VecDeque;

use crate::ooo::{Fpm, HwStructure};
use crate::outcome::RunStatus;

/// Default ring capacity: enough for any realistic lifetime while keeping
/// a per-injection trace a few KiB.
pub const DEFAULT_EVENT_CAP: usize = 256;

/// Which hardware unit a consumption event read corrupted state from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultUnit {
    /// Physical register file.
    Rf,
    /// Load queue (a latched, corrupted load address was used).
    Lq,
    /// Store queue (forwarded data) or the cache/memory arrays.
    Mem,
    /// Instruction fetch (a corrupted instruction word entered decode).
    Fetch,
}

impl FaultUnit {
    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            FaultUnit::Rf => "RF",
            FaultUnit::Lq => "LQ",
            FaultUnit::Mem => "MEM",
            FaultUnit::Fetch => "FETCH",
        }
    }
}

/// One step in a fault's life, stamped with the core cycle it happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Core cycle of the event.
    pub cycle: u64,
    /// What happened.
    pub kind: FaultEventKind,
}

/// The kinds of fault-lifetime events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEventKind {
    /// The fault was injected into `structure` at flat bit `bit`.
    Injected {
        /// Target structure.
        structure: HwStructure,
        /// Flat bit index.
        bit: u64,
    },
    /// An in-flight instruction read corrupted state for the first time
    /// (speculative consumption — it may still be squashed).
    Consumed {
        /// Propagation model the consumption implies if it commits.
        fpm: Fpm,
        /// Unit the corruption was read from.
        unit: FaultUnit,
    },
    /// The corrupted physical register was overwritten before any
    /// surviving consumer committed: the hardware repaired the fault.
    Repaired,
    /// A write to a stuck-at faulted register disagreed with the stuck
    /// cell, which re-asserted its value: the register is corrupted
    /// anew (a fresh taint lifetime).
    Reasserted,
    /// A pipeline squash (misprediction recovery or full flush) discarded
    /// `tainted` in-flight instructions carrying the corruption.
    Squashed {
        /// Number of tainted ROB entries discarded.
        tainted: u32,
    },
    /// A tainted store committed, carrying the corruption into the
    /// memory system at `addr`.
    TaintedStoreCommit {
        /// Store address.
        addr: u64,
    },
    /// No corrupted copy of the injected line survives in the memory
    /// hierarchy any more (overwritten or evicted-and-overwritten).
    MemCleared,
    /// First committed use of corrupted state — the architectural
    /// (HVF-boundary) manifestation the campaign classifies by.
    ArchVisible {
        /// The fault propagation model.
        fpm: Fpm,
    },
    /// Every corrupted copy is gone and nothing tainted is in flight:
    /// the remainder of the run is bit-identical to the golden run.
    Extinct,
    /// The early-termination engine proved extinction by comparing the
    /// full architectural state against the golden checkpoint at the same
    /// cycle: the remainder of the run is bit-identical to the golden
    /// run, so it was ended here instead of simulated to completion.
    PrunedExtinct,
    /// The early-termination engine proved the run *cannot* reach a
    /// terminal state before its cycle budget (a frozen pipeline or an
    /// inescapable affine loop), so it was ended here as the Timeout it
    /// was always going to be.
    ProvenHang,
    /// The run reached a terminal state.
    Ended {
        /// Terminal status.
        status: RunStatus,
    },
}

impl std::fmt::Display for FaultEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultEventKind::Injected { structure, bit } => {
                write!(f, "injected into {structure} bit {bit}")
            }
            FaultEventKind::Consumed { fpm, unit } => {
                write!(f, "corrupted state consumed from {} as {fpm}", unit.name())
            }
            FaultEventKind::Repaired => write!(f, "corrupted register overwritten (repaired)"),
            FaultEventKind::Reasserted => {
                write!(f, "stuck-at cell re-asserted over a disagreeing write")
            }
            FaultEventKind::Squashed { tainted } => {
                write!(f, "squash discarded {tainted} tainted instruction(s)")
            }
            FaultEventKind::TaintedStoreCommit { addr } => {
                write!(f, "tainted store committed to {addr:#x}")
            }
            FaultEventKind::MemCleared => write!(f, "no corrupted copy left in memory hierarchy"),
            FaultEventKind::ArchVisible { fpm } => {
                write!(f, "architecturally visible as {fpm}")
            }
            FaultEventKind::Extinct => write!(f, "fault extinct (run now equals golden)"),
            FaultEventKind::PrunedExtinct => {
                write!(
                    f,
                    "fault extinct by golden-state re-convergence (run ended early)"
                )
            }
            FaultEventKind::ProvenHang => {
                write!(f, "hang proven (run ended early as Timeout)")
            }
            FaultEventKind::Ended { status } => write!(f, "run ended: {status}"),
        }
    }
}

/// Exact lifetime milestones, independent of the ring capacity.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LifetimeCounts {
    /// Speculative consumptions of corrupted state (first per unit-read
    /// is recorded as an event; this counts every one).
    pub consumed: u64,
    /// Register repairs (overwrite of the corrupted physical register).
    pub repaired: u64,
    /// Tainted in-flight instructions discarded by squashes.
    pub squashed: u64,
    /// Tainted stores that committed into the memory system.
    pub tainted_store_commits: u64,
    /// First architectural manifestation: `(fpm, cycle)`.
    pub first_visible: Option<(Fpm, u64)>,
    /// Cycle the fault was declared extinct, if it was.
    pub extinct_cycle: Option<u64>,
}

/// A bounded fault-lifetime event log plus exact milestone counters.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTrace {
    cap: usize,
    events: VecDeque<FaultEvent>,
    dropped: u64,
    consumed_units: [bool; 4],
    mem_was_live: bool,
    counts: LifetimeCounts,
}

impl FaultTrace {
    /// Creates an empty trace with the given ring capacity (≥ 1).
    pub fn new(cap: usize) -> FaultTrace {
        FaultTrace {
            cap: cap.max(1),
            events: VecDeque::new(),
            dropped: 0,
            consumed_units: [false; 4],
            mem_was_live: false,
            counts: LifetimeCounts::default(),
        }
    }

    /// Tracks memory-taint liveness across cycles and emits
    /// [`FaultEventKind::MemCleared`] on the live → dead transition (the
    /// last corrupted copy in the hierarchy was overwritten or evicted).
    pub(crate) fn note_mem_state(&mut self, cycle: u64, live: bool) {
        if self.mem_was_live && !live {
            self.push(cycle, FaultEventKind::MemCleared);
        }
        self.mem_was_live = live;
    }

    fn unit_idx(unit: FaultUnit) -> usize {
        match unit {
            FaultUnit::Rf => 0,
            FaultUnit::Lq => 1,
            FaultUnit::Mem => 2,
            FaultUnit::Fetch => 3,
        }
    }

    /// Records one event. Milestone counters are always exact; the ring
    /// keeps the most recent `cap` events. Consumption events are
    /// deduplicated per unit (the *first* consumption is the milestone;
    /// repeats only bump [`LifetimeCounts::consumed`]).
    pub fn push(&mut self, cycle: u64, kind: FaultEventKind) {
        match kind {
            FaultEventKind::Consumed { unit, .. } => {
                self.counts.consumed += 1;
                let i = Self::unit_idx(unit);
                if self.consumed_units[i] {
                    return; // first consumption per unit only
                }
                self.consumed_units[i] = true;
            }
            FaultEventKind::Repaired => self.counts.repaired += 1,
            FaultEventKind::Squashed { tainted } => self.counts.squashed += tainted as u64,
            FaultEventKind::TaintedStoreCommit { .. } => self.counts.tainted_store_commits += 1,
            FaultEventKind::ArchVisible { fpm } if self.counts.first_visible.is_none() => {
                self.counts.first_visible = Some((fpm, cycle));
            }
            FaultEventKind::Extinct | FaultEventKind::PrunedExtinct
                if self.counts.extinct_cycle.is_none() =>
            {
                self.counts.extinct_cycle = Some(cycle);
            }
            _ => {}
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(FaultEvent { cycle, kind });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Approximate heap bytes held by the event ring — what a
    /// memory-quota participant reports for this trace.
    pub fn ring_bytes(&self) -> usize {
        self.events.capacity() * std::mem::size_of::<FaultEvent>()
    }

    /// Sheds the in-RAM event ring under memory pressure: retained
    /// events are dropped (counted in [`FaultTrace::dropped`], so the
    /// loss is visible) and the ring's allocation is returned. The exact
    /// milestone [`LifetimeCounts`] are kept — they live outside the
    /// ring, so campaign classification and reconciliation survive the
    /// shed unchanged. Returns the bytes freed.
    pub fn shed_ring(&mut self) -> usize {
        let freed = self.ring_bytes();
        self.dropped += self.events.len() as u64;
        self.events = VecDeque::new();
        freed
    }

    /// The exact milestone counters.
    pub fn counts(&self) -> &LifetimeCounts {
        &self.counts
    }

    /// The first architectural manifestation, if any — must agree with
    /// the campaign's FPM classification for the same injection (asserted
    /// by the reconciliation test).
    pub fn first_visible(&self) -> Option<Fpm> {
        self.counts.first_visible.map(|(f, _)| f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_but_counts_stay_exact() {
        let mut t = FaultTrace::new(4);
        t.push(
            0,
            FaultEventKind::Injected {
                structure: HwStructure::RegisterFile,
                bit: 3,
            },
        );
        for c in 1..=10 {
            t.push(c, FaultEventKind::TaintedStoreCommit { addr: c });
        }
        t.push(11, FaultEventKind::ArchVisible { fpm: Fpm::Wd });
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 8);
        assert_eq!(t.counts().tainted_store_commits, 10);
        assert_eq!(t.first_visible(), Some(Fpm::Wd));
        // The most recent events survive.
        let last = t.events().last().unwrap();
        assert_eq!(last.kind, FaultEventKind::ArchVisible { fpm: Fpm::Wd });
    }

    #[test]
    fn consumption_deduplicates_per_unit() {
        let mut t = FaultTrace::new(64);
        for _ in 0..5 {
            t.push(
                1,
                FaultEventKind::Consumed {
                    fpm: Fpm::Wd,
                    unit: FaultUnit::Rf,
                },
            );
        }
        t.push(
            2,
            FaultEventKind::Consumed {
                fpm: Fpm::Wd,
                unit: FaultUnit::Mem,
            },
        );
        assert_eq!(t.len(), 2, "one event per unit");
        assert_eq!(t.counts().consumed, 6, "counter sees every consumption");
    }

    #[test]
    fn first_visible_and_extinct_latch() {
        let mut t = FaultTrace::new(8);
        t.push(5, FaultEventKind::ArchVisible { fpm: Fpm::Wi });
        t.push(9, FaultEventKind::ArchVisible { fpm: Fpm::Wd });
        t.push(12, FaultEventKind::Extinct);
        t.push(14, FaultEventKind::Extinct);
        assert_eq!(t.counts().first_visible, Some((Fpm::Wi, 5)));
        assert_eq!(t.counts().extinct_cycle, Some(12));
    }

    #[test]
    fn shed_ring_frees_events_but_keeps_exact_counts() {
        let mut t = FaultTrace::new(8);
        t.push(5, FaultEventKind::ArchVisible { fpm: Fpm::Wd });
        for c in 6..10 {
            t.push(c, FaultEventKind::TaintedStoreCommit { addr: c });
        }
        assert_eq!(t.len(), 5);
        let freed = t.shed_ring();
        assert!(freed > 0, "a populated ring frees its allocation");
        assert_eq!(t.len(), 0);
        assert_eq!(t.dropped(), 5, "shed events are counted as dropped");
        assert_eq!(t.ring_bytes(), 0);
        assert_eq!(
            t.counts().first_visible,
            Some((Fpm::Wd, 5)),
            "milestones survive the shed"
        );
        assert_eq!(t.counts().tainted_store_commits, 4);
    }
}
