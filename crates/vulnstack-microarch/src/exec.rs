//! Pure instruction semantics shared by the functional and out-of-order
//! cores, so the two engines cannot diverge.

use vulnstack_isa::{Instr, Isa, Op, TrapCause};

/// Truncates `v` to the ISA's register width (VA32 keeps the low 32 bits
/// zero-extended in the `u64` storage cell).
pub fn trunc(isa: Isa, v: u64) -> u64 {
    match isa {
        Isa::Va32 => v & 0xffff_ffff,
        Isa::Va64 => v,
    }
}

fn sext32(v: u32) -> u64 {
    v as i32 as i64 as u64
}

/// Computes the result of an ALU-class instruction (R, I, and M formats).
///
/// `rs1`/`rs2` are the source register values, `rd_old` the previous value
/// of the destination (needed by `MOVK`).
///
/// # Errors
///
/// Returns [`TrapCause::DivideByZero`] for zero divisors.
pub fn alu(i: &Instr, rs1: u64, rs2: u64, rd_old: u64, isa: Isa) -> Result<u64, TrapCause> {
    use Op::*;
    let imm = i.imm;
    let v32 = |x: u64| x as u32;
    let r = match i.op {
        Add => rs1.wrapping_add(rs2),
        Sub => rs1.wrapping_sub(rs2),
        And => rs1 & rs2,
        Or => rs1 | rs2,
        Xor => rs1 ^ rs2,
        Sll => match isa {
            Isa::Va32 => ((v32(rs1)) << (rs2 & 31)) as u64,
            Isa::Va64 => rs1 << (rs2 & 63),
        },
        Srl => match isa {
            Isa::Va32 => (v32(rs1) >> (rs2 & 31)) as u64,
            Isa::Va64 => rs1 >> (rs2 & 63),
        },
        Sra => match isa {
            Isa::Va32 => ((v32(rs1) as i32) >> (rs2 & 31)) as u32 as u64,
            Isa::Va64 => ((rs1 as i64) >> (rs2 & 63)) as u64,
        },
        Mul => rs1.wrapping_mul(rs2),
        Mulh => match isa {
            Isa::Va32 => (((v32(rs1) as i32 as i64) * (v32(rs2) as i32 as i64)) >> 32) as u64,
            Isa::Va64 => (((rs1 as i64 as i128) * (rs2 as i64 as i128)) >> 64) as u64,
        },
        Mulhu => match isa {
            Isa::Va32 => ((v32(rs1) as u64) * (v32(rs2) as u64)) >> 32,
            Isa::Va64 => (((rs1 as u128) * (rs2 as u128)) >> 64) as u64,
        },
        Div => match isa {
            Isa::Va32 => {
                let (a, b) = (v32(rs1) as i32, v32(rs2) as i32);
                if b == 0 {
                    return Err(TrapCause::DivideByZero);
                }
                a.wrapping_div(b) as u32 as u64
            }
            Isa::Va64 => {
                let (a, b) = (rs1 as i64, rs2 as i64);
                if b == 0 {
                    return Err(TrapCause::DivideByZero);
                }
                a.wrapping_div(b) as u64
            }
        },
        Divu => match isa {
            Isa::Va32 => {
                let (a, b) = (v32(rs1), v32(rs2));
                if b == 0 {
                    return Err(TrapCause::DivideByZero);
                }
                (a / b) as u64
            }
            Isa::Va64 => {
                if rs2 == 0 {
                    return Err(TrapCause::DivideByZero);
                }
                rs1 / rs2
            }
        },
        Rem => match isa {
            Isa::Va32 => {
                let (a, b) = (v32(rs1) as i32, v32(rs2) as i32);
                if b == 0 {
                    return Err(TrapCause::DivideByZero);
                }
                a.wrapping_rem(b) as u32 as u64
            }
            Isa::Va64 => {
                let (a, b) = (rs1 as i64, rs2 as i64);
                if b == 0 {
                    return Err(TrapCause::DivideByZero);
                }
                a.wrapping_rem(b) as u64
            }
        },
        Remu => match isa {
            Isa::Va32 => {
                let (a, b) = (v32(rs1), v32(rs2));
                if b == 0 {
                    return Err(TrapCause::DivideByZero);
                }
                (a % b) as u64
            }
            Isa::Va64 => {
                if rs2 == 0 {
                    return Err(TrapCause::DivideByZero);
                }
                rs1 % rs2
            }
        },
        Slt => match isa {
            Isa::Va32 => ((v32(rs1) as i32) < (v32(rs2) as i32)) as u64,
            Isa::Va64 => ((rs1 as i64) < (rs2 as i64)) as u64,
        },
        Sltu => match isa {
            Isa::Va32 => (v32(rs1) < v32(rs2)) as u64,
            Isa::Va64 => (rs1 < rs2) as u64,
        },
        Addi => rs1.wrapping_add(imm as u64),
        Andi => rs1 & (imm as u64),
        Ori => rs1 | (imm as u64),
        Xori => rs1 ^ (imm as u64),
        Slli => match isa {
            Isa::Va32 => ((v32(rs1)) << (imm as u32 & 31)) as u64,
            Isa::Va64 => rs1 << (imm as u32 & 63),
        },
        Srli => match isa {
            Isa::Va32 => (v32(rs1) >> (imm as u32 & 31)) as u64,
            Isa::Va64 => rs1 >> (imm as u32 & 63),
        },
        Srai => match isa {
            Isa::Va32 => ((v32(rs1) as i32) >> (imm as u32 & 31)) as u32 as u64,
            Isa::Va64 => ((rs1 as i64) >> (imm as u32 & 63)) as u64,
        },
        Slti => match isa {
            Isa::Va32 => ((v32(rs1) as i32) < imm as i32) as u64,
            Isa::Va64 => ((rs1 as i64) < imm) as u64,
        },
        Sltiu => match isa {
            Isa::Va32 => (v32(rs1) < imm as i32 as u32) as u64,
            Isa::Va64 => (rs1 < imm as u64) as u64,
        },
        Movz => (imm as u64 & 0xffff) << (16 * i.shift as u32),
        Movk => {
            let s = 16 * i.shift as u32;
            (rd_old & !(0xffffu64 << s)) | ((imm as u64 & 0xffff) << s)
        }

        // VA64 32-bit forms: operate on the low word, sign-extend.
        Addw => sext32(v32(rs1).wrapping_add(v32(rs2))),
        Subw => sext32(v32(rs1).wrapping_sub(v32(rs2))),
        Mulw => sext32(v32(rs1).wrapping_mul(v32(rs2))),
        Divw => {
            let (a, b) = (v32(rs1) as i32, v32(rs2) as i32);
            if b == 0 {
                return Err(TrapCause::DivideByZero);
            }
            sext32(a.wrapping_div(b) as u32)
        }
        Divuw => {
            let (a, b) = (v32(rs1), v32(rs2));
            if b == 0 {
                return Err(TrapCause::DivideByZero);
            }
            sext32(a / b)
        }
        Remw => {
            let (a, b) = (v32(rs1) as i32, v32(rs2) as i32);
            if b == 0 {
                return Err(TrapCause::DivideByZero);
            }
            sext32(a.wrapping_rem(b) as u32)
        }
        Remuw => {
            let (a, b) = (v32(rs1), v32(rs2));
            if b == 0 {
                return Err(TrapCause::DivideByZero);
            }
            sext32(a % b)
        }
        Sllw => sext32(v32(rs1) << (rs2 & 31)),
        Srlw => sext32(v32(rs1) >> (rs2 & 31)),
        Sraw => sext32(((v32(rs1) as i32) >> (rs2 & 31)) as u32),
        Addiw => sext32(v32(rs1).wrapping_add(imm as u32)),
        Slliw => sext32(v32(rs1) << (imm as u32 & 31)),
        Srliw => sext32(v32(rs1) >> (imm as u32 & 31)),
        Sraiw => sext32(((v32(rs1) as i32) >> (imm as u32 & 31)) as u32),

        other => unreachable!("alu() called with non-ALU op {other:?}"),
    };
    Ok(trunc(isa, r))
}

/// Evaluates a conditional branch.
pub fn branch_taken(op: Op, rs1: u64, rs2: u64, isa: Isa) -> bool {
    let (a, b) = (trunc(isa, rs1), trunc(isa, rs2));
    match (op, isa) {
        (Op::Beq, _) => a == b,
        (Op::Bne, _) => a != b,
        (Op::Blt, Isa::Va32) => (a as u32 as i32) < (b as u32 as i32),
        (Op::Blt, Isa::Va64) => (a as i64) < (b as i64),
        (Op::Bge, Isa::Va32) => (a as u32 as i32) >= (b as u32 as i32),
        (Op::Bge, Isa::Va64) => (a as i64) >= (b as i64),
        (Op::Bltu, _) => a < b,
        (Op::Bgeu, _) => a >= b,
        _ => unreachable!("branch_taken() called with non-branch {op:?}"),
    }
}

/// Extends loaded bytes to a register value per the load op and ISA.
pub fn load_extend(op: Op, raw: u64, isa: Isa) -> u64 {
    let v = match op {
        Op::Lb => raw as u8 as i8 as i64 as u64,
        Op::Lbu => raw as u8 as u64,
        Op::Lh => raw as u16 as i16 as i64 as u64,
        Op::Lhu => raw as u16 as u64,
        Op::Lw => match isa {
            Isa::Va32 => raw as u32 as u64,
            Isa::Va64 => raw as u32 as i32 as i64 as u64,
        },
        Op::Lwu => raw as u32 as u64,
        Op::Ld => raw,
        _ => unreachable!("load_extend() with non-load {op:?}"),
    };
    trunc(isa, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_isa::{Instr, Reg};

    fn alu_rr(op: Op, a: u64, b: u64, isa: Isa) -> u64 {
        alu(&Instr::alu_rr(op, Reg(1), Reg(2), Reg(3)), a, b, 0, isa).unwrap()
    }

    #[test]
    fn add_truncates_on_va32() {
        assert_eq!(alu_rr(Op::Add, 0xffff_ffff, 1, Isa::Va32), 0);
        assert_eq!(alu_rr(Op::Add, 0xffff_ffff, 1, Isa::Va64), 0x1_0000_0000);
    }

    #[test]
    fn w_forms_sign_extend() {
        assert_eq!(
            alu_rr(Op::Addw, 0x7fff_ffff, 1, Isa::Va64),
            0xffff_ffff_8000_0000
        );
        assert_eq!(alu_rr(Op::Subw, 0, 1, Isa::Va64), u64::MAX);
        assert_eq!(alu_rr(Op::Sllw, 1, 31, Isa::Va64), 0xffff_ffff_8000_0000);
        assert_eq!(alu_rr(Op::Srlw, 0xffff_ffff_8000_0000, 31, Isa::Va64), 1);
        assert_eq!(
            alu_rr(Op::Sraw, 0xffff_ffff_8000_0000, 31, Isa::Va64),
            u64::MAX
        );
    }

    #[test]
    fn division_semantics() {
        assert!(matches!(
            alu(
                &Instr::alu_rr(Op::Div, Reg(1), Reg(2), Reg(3)),
                5,
                0,
                0,
                Isa::Va32
            ),
            Err(TrapCause::DivideByZero)
        ));
        // i32::MIN / -1 wraps.
        assert_eq!(
            alu_rr(Op::Divw, 0xffff_ffff_8000_0000, u64::MAX, Isa::Va64),
            0xffff_ffff_8000_0000
        );
        assert_eq!(
            alu_rr(Op::Remw, 0xffff_ffff_8000_0000, u64::MAX, Isa::Va64),
            0
        );
        assert_eq!(
            alu_rr(Op::Div, 0x8000_0000, 0xffff_ffff, Isa::Va32),
            0x8000_0000
        );
    }

    #[test]
    fn mulh_variants() {
        assert_eq!(alu_rr(Op::Mulh, 0x10000, 0x10000, Isa::Va32), 1);
        assert_eq!(alu_rr(Op::Mulh, 0xffff_ffff, 1, Isa::Va32), 0xffff_ffff); // -1 * 1 -> high = -1
        assert_eq!(alu_rr(Op::Mulhu, 0xffff_ffff, 2, Isa::Va32), 1);
    }

    #[test]
    fn movz_movk() {
        let mz = Instr::mov_wide(Op::Movz, Reg(1), 0xBEEF, 1);
        assert_eq!(alu(&mz, 0, 0, 0, Isa::Va64).unwrap(), 0xBEEF_0000);
        let mk = Instr::mov_wide(Op::Movk, Reg(1), 0x1234, 0);
        assert_eq!(alu(&mk, 0, 0, 0xBEEF_0000, Isa::Va64).unwrap(), 0xBEEF_1234);
        // On VA32 a shift of 2 lands entirely above bit 31 -> zero.
        let mz32 = Instr::mov_wide(Op::Movz, Reg(1), 0xBEEF, 2);
        assert_eq!(alu(&mz32, 0, 0, 0, Isa::Va32).unwrap(), 0);
    }

    #[test]
    fn branches_respect_width() {
        assert!(branch_taken(Op::Blt, 0xffff_ffff, 0, Isa::Va32)); // -1 < 0 in 32-bit
        assert!(!branch_taken(Op::Bltu, 0xffff_ffff, 0, Isa::Va32));
        assert!(branch_taken(Op::Blt, u64::MAX, 0, Isa::Va64));
        assert!(branch_taken(Op::Beq, 5, 5, Isa::Va64));
        assert!(branch_taken(Op::Bgeu, 7, 7, Isa::Va32));
    }

    #[test]
    fn load_extension() {
        assert_eq!(load_extend(Op::Lb, 0x80, Isa::Va64), 0xffff_ffff_ffff_ff80);
        assert_eq!(load_extend(Op::Lbu, 0x80, Isa::Va64), 0x80);
        assert_eq!(load_extend(Op::Lh, 0x8000, Isa::Va32), 0xffff_8000);
        assert_eq!(
            load_extend(Op::Lw, 0x8000_0000, Isa::Va64),
            0xffff_ffff_8000_0000
        );
        assert_eq!(load_extend(Op::Lw, 0x8000_0000, Isa::Va32), 0x8000_0000);
        assert_eq!(load_extend(Op::Lwu, 0x8000_0000, Isa::Va64), 0x8000_0000);
    }

    #[test]
    fn sltiu_uses_sign_extended_immediate() {
        let i = Instr::alu_imm(Op::Sltiu, Reg(1), Reg(2), -1);
        // rs1 < 0xFFFF_FFFF (va32): true for anything but u32::MAX.
        assert_eq!(alu(&i, 5, 0, 0, Isa::Va32).unwrap(), 1);
        assert_eq!(alu(&i, 0xffff_ffff, 0, 0, Isa::Va32).unwrap(), 0);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use vulnstack_isa::{Instr, Op, Reg};

    fn rr(op: Op, a: u64, b: u64, isa: Isa) -> u64 {
        alu(&Instr::alu_rr(op, Reg(1), Reg(2), Reg(3)), a, b, 0, isa).unwrap()
    }

    #[test]
    fn full_width_shifts_on_va64() {
        assert_eq!(rr(Op::Sll, 1, 63, Isa::Va64), 1u64 << 63);
        assert_eq!(rr(Op::Srl, 1u64 << 63, 63, Isa::Va64), 1);
        assert_eq!(rr(Op::Sra, 1u64 << 63, 63, Isa::Va64), u64::MAX);
        // Counts wrap at the register width.
        assert_eq!(rr(Op::Sll, 1, 64, Isa::Va64), 1);
        assert_eq!(rr(Op::Sll, 1, 32, Isa::Va32), 1);
    }

    #[test]
    fn mulh_64bit_paths() {
        // (2^32)^2 >> 64 = 1 via the unsigned path.
        assert_eq!(rr(Op::Mulhu, 1u64 << 32, 1u64 << 32, Isa::Va64), 1);
        // Signed: (-1) * 1 -> high word all ones.
        assert_eq!(rr(Op::Mulh, u64::MAX, 1, Isa::Va64), u64::MAX);
    }

    #[test]
    fn movk_preserves_other_fields_on_va32() {
        let mk = Instr::mov_wide(Op::Movk, Reg(1), 0xAAAA, 1);
        let out = alu(&mk, 0, 0, 0x1234_5678, Isa::Va32).unwrap();
        assert_eq!(out, 0xAAAA_5678);
        // A shift landing above bit 31 erases nothing visible on VA32.
        let mk_hi = Instr::mov_wide(Op::Movk, Reg(1), 0xBBBB, 2);
        let out = alu(&mk_hi, 0, 0, 0x1234_5678, Isa::Va32).unwrap();
        assert_eq!(out, 0x1234_5678);
    }

    #[test]
    fn slti_signed_comparison_edges() {
        let i = Instr::alu_imm(Op::Slti, Reg(1), Reg(2), -1);
        // -2 < -1 in 32-bit signed.
        assert_eq!(alu(&i, 0xffff_fffe, 0, 0, Isa::Va32).unwrap(), 1);
        assert_eq!(alu(&i, 0, 0, 0, Isa::Va32).unwrap(), 0);
        // 64-bit: sign-extended -2.
        assert_eq!(alu(&i, u64::MAX - 1, 0, 0, Isa::Va64).unwrap(), 1);
    }

    #[test]
    fn divuw_zero_extends_operands() {
        // 0xFFFF_FFFF as unsigned 32-bit over 2.
        let i = Instr::alu_rr(Op::Divuw, Reg(1), Reg(2), Reg(3));
        let out = alu(&i, 0xffff_ffff_ffff_ffff, 2, 0, Isa::Va64).unwrap();
        assert_eq!(out, 0x7fff_ffff);
    }
}
