//! The cycle-level out-of-order core.
//!
//! Pipeline: fetch (L1i + bimodal predictor + RAS) → decode → rename
//! (R10K-style: RAT, circular free list, physical register file) →
//! dispatch (ROB + IQ + LSQ) → issue/execute (oldest-first, FU latencies,
//! conservative load disambiguation with store forwarding) → writeback →
//! in-order commit (stores write the cache at commit; traps, syscalls and
//! `ERET` serialize at the head).
//!
//! Branch mispredictions recover at execute from per-branch RAT + free
//! list snapshots. Exceptions rebuild the RAT from the retirement RAT.
//!
//! Microarchitectural faults are injected live into the physical register
//! file, the LSQ fields, or a cache data array (see [`OooCore::inject`]);
//! consumption is tracked so the campaign layer can classify each fault's
//! propagation model (WD / WI / WOI / ESC) at the first *committed* use —
//! the paper's HVF boundary.

use std::collections::VecDeque;

use vulnstack_isa::{classify_bit, BitClass, Instr, Isa, Op, Reg, Trap, TrapCause};
use vulnstack_kernel::kdata::{off, KStatus};
use vulnstack_kernel::memmap::{self, AccessKind};
use vulnstack_kernel::SystemImage;

use crate::cache::{Level, MemSystem};
use crate::config::CoreConfig;
use crate::exec;
use crate::func::Mode;
use crate::lifetime::{FaultEventKind, FaultTrace, FaultUnit};
use crate::outcome::{RunStatus, SimOutcome};

/// Fault propagation model of a hardware fault's first architecturally
/// visible manifestation (paper Table I).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Fpm {
    /// Wrong Data — corrupted register/memory content consumed.
    Wd,
    /// Wrong Instruction — corrupted opcode or control-flow bits executed.
    Wi,
    /// Wrong Operand or Immediate — corrupted operand field executed.
    Woi,
    /// Escaped — corrupted output drained by DMA without re-entering the
    /// pipeline.
    Esc,
}

impl Fpm {
    /// All models.
    pub const ALL: [Fpm; 4] = [Fpm::Wd, Fpm::Wi, Fpm::Woi, Fpm::Esc];

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            Fpm::Wd => "WD",
            Fpm::Wi => "WI",
            Fpm::Woi => "WOI",
            Fpm::Esc => "ESC",
        }
    }

    /// Inverse of [`Fpm::name`] (used to decode journaled campaign
    /// records).
    pub fn from_name(s: &str) -> Option<Fpm> {
        Fpm::ALL.into_iter().find(|f| f.name() == s)
    }
}

impl std::fmt::Display for Fpm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A microarchitectural fault-injection target structure.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum HwStructure {
    /// Physical integer register file.
    RegisterFile,
    /// Load/store queue fields (addresses and store data).
    Lsq,
    /// L1 instruction cache data array.
    L1i,
    /// L1 data cache data array.
    L1d,
    /// Unified L2 data array.
    L2,
}

impl HwStructure {
    /// All five structures studied in the paper.
    pub const ALL: [HwStructure; 5] = [
        HwStructure::RegisterFile,
        HwStructure::Lsq,
        HwStructure::L1i,
        HwStructure::L1d,
        HwStructure::L2,
    ];

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            HwStructure::RegisterFile => "RF",
            HwStructure::Lsq => "LSQ",
            HwStructure::L1i => "L1i",
            HwStructure::L1d => "L1d",
            HwStructure::L2 => "L2",
        }
    }

    /// Bit population of this structure under `cfg` (the injection
    /// sampling space).
    pub fn bits(self, cfg: &CoreConfig) -> u64 {
        match self {
            HwStructure::RegisterFile => cfg.rf_bits(),
            HwStructure::Lsq => cfg.lsq_bits(),
            HwStructure::L1i => cfg.l1i.data_bits(),
            HwStructure::L1d => cfg.l1d.data_bits(),
            HwStructure::L2 => cfg.l2.data_bits(),
        }
    }
}

impl std::fmt::Display for HwStructure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Runtime fault model for dynamic injection (ARMORY-style multi-model
/// campaigns). Mirrors the static `vulnstack-analyze` model enum; names
/// match so records and reports line up across the stack.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum FaultModel {
    /// Transient single-bit flip (the legacy model).
    BitFlip,
    /// Transient byte-wide corruption: XOR `0xFF` over one aligned byte.
    ByteCorrupt,
    /// One-shot instruction skip: the next successfully decoded
    /// instruction dispatches as a NOP.
    InstrSkip,
    /// Persistent stuck-at: the faulted cell re-asserts its stuck value
    /// on every subsequent write to the faulted register.
    StuckAt,
}

impl FaultModel {
    /// All four models.
    pub const ALL: [FaultModel; 4] = [
        FaultModel::BitFlip,
        FaultModel::ByteCorrupt,
        FaultModel::InstrSkip,
        FaultModel::StuckAt,
    ];

    /// Stable report/codec name (matches `vulnstack-analyze`).
    pub fn name(self) -> &'static str {
        match self {
            FaultModel::BitFlip => "bit-flip",
            FaultModel::ByteCorrupt => "byte-corrupt",
            FaultModel::InstrSkip => "instr-skip",
            FaultModel::StuckAt => "stuck-at",
        }
    }

    /// Inverse of [`FaultModel::name`] (journal record decode).
    pub fn from_name(s: &str) -> Option<FaultModel> {
        FaultModel::ALL.into_iter().find(|m| m.name() == s)
    }

    /// True for models whose corruption is a one-time value change that
    /// a subsequent write fully repairs (the transient *value* models).
    /// Stuck-at re-corrupts on writes; a pending skip is not a value
    /// corruption at all.
    pub fn transient_value(self) -> bool {
        matches!(self, FaultModel::BitFlip | FaultModel::ByteCorrupt)
    }

    /// True if this model can target `structure`. Byte corruption is
    /// modelled for the RF and LSQ storage arrays (cache lines already
    /// take flat-bit flips only); stuck-at cells are modelled in the RF;
    /// instruction skip is a dispatch-stage fault enumerated under the
    /// core's RF structure.
    pub fn applies_to(self, structure: HwStructure) -> bool {
        match self {
            FaultModel::BitFlip => true,
            FaultModel::ByteCorrupt => {
                matches!(structure, HwStructure::RegisterFile | HwStructure::Lsq)
            }
            FaultModel::InstrSkip | FaultModel::StuckAt => {
                matches!(structure, HwStructure::RegisterFile)
            }
        }
    }

    /// Size of this model's site space over `structure` under `cfg`:
    /// flat bits for bit-granular models, aligned bytes for byte
    /// corruption, and a single dispatch-slot site for instruction skip.
    pub fn sites(self, structure: HwStructure, cfg: &CoreConfig) -> u64 {
        match self {
            FaultModel::BitFlip | FaultModel::StuckAt => structure.bits(cfg),
            FaultModel::ByteCorrupt => structure.bits(cfg) / 8,
            FaultModel::InstrSkip => 1,
        }
    }
}

impl std::fmt::Display for FaultModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Decodes a flat register-file site bit into `(physical register,
/// bit-in-register)`, or `None` if `bit` is outside the RF bit
/// population (`nphys * xlen`). Shared by [`OooCore::inject`] and the
/// pruning layer's mirrored decode so the two can never disagree —
/// out-of-range sites are rejected instead of silently aliased.
pub fn rf_site(bit: u64, xlen: u32, nphys: usize) -> Option<(usize, u8)> {
    let preg = (bit / xlen as u64) as usize;
    if preg >= nphys {
        return None;
    }
    Some((preg, (bit % xlen as u64) as u8))
}

/// A decoded LSQ fault site: which queue, entry, and field bit a flat
/// LSQ site index addresses (see [`CoreConfig::lsq_bits`] for the
/// layout: all LQ address words, then per-SQ-entry address + data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LsqSite {
    /// Load-queue entry address bit.
    LqAddr {
        /// Entry index.
        entry: usize,
        /// Bit within the address word.
        bit: u8,
    },
    /// Store-queue entry address bit.
    SqAddr {
        /// Entry index.
        entry: usize,
        /// Bit within the address word.
        bit: u8,
    },
    /// Store-queue entry data bit.
    SqData {
        /// Entry index.
        entry: usize,
        /// Bit within the data word.
        bit: u8,
    },
}

/// Decodes a flat LSQ site bit, or `None` if `bit` is outside the LSQ
/// bit population. Shared by injection and pruning (see [`rf_site`]).
pub fn lsq_site(bit: u64, xlen: u32, lq_len: usize, sq_len: usize) -> Option<LsqSite> {
    let x = xlen as u64;
    let lq_bits = lq_len as u64 * x;
    if bit < lq_bits {
        return Some(LsqSite::LqAddr {
            entry: (bit / x) as usize,
            bit: (bit % x) as u8,
        });
    }
    let rest = bit - lq_bits;
    let entry = (rest / (2 * x)) as usize;
    if entry >= sq_len {
        return None;
    }
    let fld = rest % (2 * x);
    Some(if fld < x {
        LsqSite::SqAddr {
            entry,
            bit: fld as u8,
        }
    } else {
        LsqSite::SqData {
            entry,
            bit: (fld - x) as u8,
        }
    })
}

/// Outcome of a microarchitecture-level run, extending [`SimOutcome`] with
/// fault-propagation observations.
#[derive(Debug, Clone)]
pub struct OooOutcome {
    /// Base run outcome.
    pub sim: SimOutcome,
    /// First architecturally visible manifestation of the injected fault.
    pub fpm: Option<Fpm>,
    /// Cycle of that first manifestation.
    pub fpm_cycle: Option<u64>,
    /// Fault-lifetime event log, if [`OooCore::enable_fault_trace`] was
    /// called before the run.
    pub ftrace: Option<FaultTrace>,
}

const RAS_DEPTH: usize = 16;
/// Commit watchdog default: a pipeline wedged this long counts as a hang.
const WATCHDOG_DEFAULT: u64 = 200_000;

/// Commit-watchdog budget in cycles: `VULNSTACK_WATCHDOG` or
/// [`WATCHDOG_DEFAULT`]. Malformed or zero values warn on stderr and fall
/// back (a zero watchdog would classify every run as a hang). Read once
/// per process so the hot per-cycle check stays an atomic load.
fn watchdog_cycles() -> u64 {
    static CACHE: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *CACHE.get_or_init(
        || match crate::env_knob::<u64>("VULNSTACK_WATCHDOG", "cycle count") {
            Some(0) => {
                eprintln!(
                    "warning: ignoring VULNSTACK_WATCHDOG=0: must be positive; using default"
                );
                WATCHDOG_DEFAULT
            }
            Some(n) => n,
            None => WATCHDOG_DEFAULT,
        },
    )
}

type PReg = u16;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RobKind {
    Alu,
    Load,
    Store,
    Branch,
    Jump,
    Syscall,
    Eret,
    Halt,
    Nop,
    Mfsr,
    Mtsr,
    Invalid,
}

#[derive(Debug, Clone, PartialEq)]
struct RobEntry {
    seq: u64,
    pc: u64,
    instr: Instr,
    kind: RobKind,
    dest: Option<(Reg, PReg, PReg)>, // (arch, new phys, old phys)
    srcs: [Option<PReg>; 2],
    done: bool,
    exception: Option<Trap>,
    predicted_next: u64,
    snapshot: Option<(Vec<PReg>, u64)>, // (RAT copy, free-list head)
    lsq_slot: Option<usize>,
    mtsr_value: u64,
    taint: Option<Fpm>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct IqEntry {
    seq: u64,
    issued: bool,
}

#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct LqEntry {
    valid: bool,
    /// Owning instruction (diagnostics; ordering checks use the SQ side).
    #[allow(dead_code)]
    seq: u64,
    addr: u64,
    addr_ready: bool,
    taint: bool,
}

#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct SqEntry {
    valid: bool,
    seq: u64,
    addr: u64,
    data: u64,
    size: u32,
    ready: bool,
    taint: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct FetchedInstr {
    pc: u64,
    word: u32,
    ok: bool, // fetch permission
    predicted_next: u64,
    taint_bit: Option<u32>,
}

/// One access to a physical register during an instrumented golden run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfAccess {
    /// Core cycle of the access.
    pub cycle: u64,
    /// True for a write (rename-stage allocation targets count when the
    /// value arrives at writeback), false for a read (including
    /// speculative reads that are later squashed — a flipped bit those
    /// reads observed *was* consumed, so they bound dead intervals).
    pub write: bool,
}

/// Per-physical-register access log recorded during an instrumented
/// golden run ([`OooCore::enable_rf_log`]).
///
/// `read_phys`/`write_phys` are the sole funnels for register-file
/// values in the core (operand reads, writeback, CALL link writes, MFSR
/// commit), so the log is a complete def-use record: between two
/// consecutive entries for a register nothing reads or writes it, and a
/// bit flipped anywhere in that interval has exactly the same future as
/// a flip anywhere else in it. The pruning layer
/// (`vulnstack-gefin::prune`) builds fault-equivalence classes from
/// these intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct RfAccessLog {
    events: Vec<Vec<RfAccess>>,
}

impl RfAccessLog {
    fn new(nphys: usize) -> RfAccessLog {
        RfAccessLog {
            events: vec![Vec::new(); nphys],
        }
    }

    #[inline]
    fn note(&mut self, preg: usize, cycle: u64, write: bool) {
        self.events[preg].push(RfAccess { cycle, write });
    }

    /// Number of physical registers covered.
    pub fn num_pregs(&self) -> usize {
        self.events.len()
    }

    /// The access events of physical register `preg`, in execution order
    /// (cycles are nondecreasing; within a cycle, occurrence order).
    pub fn events(&self, preg: usize) -> &[RfAccess] {
        &self.events[preg]
    }
}

/// The out-of-order core.
///
/// The struct owns *every* bit of simulation state — pipeline structures,
/// rename tables, physical register file, caches, flat memory, branch
/// predictor, taint tracking — and the simulation draws on no external
/// entropy, so `Clone` is a perfect checkpoint: a clone stepped forward
/// is bit-identical to the original stepped forward (`PartialEq` makes
/// that directly checkable). See [`crate::snapshot::CheckpointStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct OooCore {
    cfg: CoreConfig,
    isa: Isa,
    /// Memory hierarchy (public for inspection by campaigns and tests).
    pub mem: MemSystem,
    user_text_end: u32,

    // Frontend.
    fetch_pc: u64,
    fetch_stall_until: u64,
    fetch_queue: VecDeque<FetchedInstr>,
    fetch_halted: bool,
    bp: Vec<u8>,
    btb: Vec<(u64, u64)>,
    ras: Vec<u64>,

    // Rename.
    rat: Vec<PReg>,
    rrat: Vec<PReg>,
    free_ring: Vec<PReg>,
    free_head: u64,
    free_tail: u64,
    phys: Vec<u64>,
    phys_ready: Vec<bool>,

    // Window.
    rob: VecDeque<RobEntry>,
    next_seq: u64,
    iq: Vec<IqEntry>,
    lq: Vec<LqEntry>,
    sq: Vec<SqEntry>,
    finish: Vec<(u64, u64, PReg, u64, Option<Fpm>)>, // (cycle, seq, preg, value, taint)

    // Architectural.
    mode: Mode,
    sysregs: [u64; vulnstack_isa::SysReg::COUNT],

    // Run state.
    cycle: u64,
    committed: u64,
    last_commit_cycle: u64,
    ended: Option<RunStatus>,

    // Fault tracking.
    rf_taint: Option<(usize, u8)>,
    // Armed stuck-at cell: (preg, bit, stuck value). Re-asserts on every
    // write to the register until the run ends (never extinct).
    stuck: Option<(usize, u8, bool)>,
    // Armed one-shot instruction skip, consumed by the next successfully
    // decoded dispatch.
    pending_skip: bool,
    fpm: Option<Fpm>,
    fpm_cycle: Option<u64>,
    // Fault-lifetime event trace (optional; `None` costs nothing — every
    // emission site is behind a taint branch or this gate).
    ftrace: Option<FaultTrace>,

    // ACE lifetime tracking (optional, for analytical AVF estimates).
    ace: Option<AceState>,

    // Optional commit trace (bounded).
    trace: Option<(usize, Vec<(u64, Instr)>)>,

    // Optional per-preg access log for fault-equivalence pruning
    // (fault-free instrumented runs only; `None` costs one branch in
    // read_phys/write_phys).
    rf_log: Option<Box<RfAccessLog>>,

    // Optional log of the cycle of every successfully decoded dispatch
    // (fault-free instrumented runs only) — the site space of the
    // instruction-skip model, used for skip equivalence classes.
    dispatch_log: Option<Vec<u64>>,
}

/// Lifetime accounting for ACE-style analytical AVF estimation.
///
/// A physical register is counted vulnerable from a write to its last
/// read before the next write (whole-register granularity — the classic
/// source of ACE pessimism). LSQ vulnerability is approximated by entry
/// occupancy.
#[derive(Debug, Clone, PartialEq)]
struct AceState {
    rf_def: Vec<u64>,
    rf_last_read: Vec<u64>,
    rf_acc_cycles: u64,
    lsq_occ_cycles: u64,
}

/// An analytical (ACE-style) AVF estimate from a fault-free run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AceEstimate {
    /// Register-file AVF upper bound (vulnerable register-cycles over
    /// capacity-cycles).
    pub rf_avf: f64,
    /// LSQ AVF upper bound (occupied entry-cycles over capacity-cycles).
    pub lsq_avf: f64,
    /// Cycles observed.
    pub cycles: u64,
}

impl OooCore {
    /// Builds a core for `cfg` with `image` loaded.
    ///
    /// # Panics
    ///
    /// Panics if the image's ISA does not match the configuration.
    pub fn new(cfg: &CoreConfig, image: &SystemImage) -> OooCore {
        assert_eq!(cfg.isa, image.isa, "image/config ISA mismatch");
        let nregs = cfg.isa.num_regs() as usize;
        let nphys = cfg.phys_regs as usize;
        assert!(
            nphys > nregs + 4,
            "need more physical than architectural registers"
        );
        let rat: Vec<PReg> = (0..nregs as PReg).collect();
        let mut free_ring = vec![0 as PReg; nphys];
        let mut free_tail = 0u64;
        for p in nregs as PReg..nphys as PReg {
            free_ring[free_tail as usize] = p;
            free_tail += 1;
        }
        OooCore {
            isa: cfg.isa,
            mem: MemSystem::new(cfg, image),
            user_text_end: image.user_text_end,
            fetch_pc: image.reset_pc as u64,
            fetch_stall_until: 0,
            fetch_queue: VecDeque::new(),
            fetch_halted: false,
            bp: vec![1; cfg.bp_entries as usize], // weakly not-taken
            btb: vec![(u64::MAX, 0); cfg.btb_entries as usize],
            ras: Vec::with_capacity(RAS_DEPTH),
            rat: rat.clone(),
            rrat: rat,
            free_ring,
            free_head: 0,
            free_tail,
            phys: vec![0; nphys],
            phys_ready: vec![true; nphys],
            rob: VecDeque::with_capacity(cfg.rob_entries as usize),
            next_seq: 0,
            iq: Vec::with_capacity(cfg.iq_entries as usize),
            lq: vec![LqEntry::default(); cfg.lq_entries as usize],
            sq: vec![SqEntry::default(); cfg.sq_entries as usize],
            finish: Vec::new(),
            mode: Mode::Kernel,
            sysregs: [0; vulnstack_isa::SysReg::COUNT],
            cycle: 0,
            committed: 0,
            last_commit_cycle: 0,
            ended: None,
            rf_taint: None,
            stuck: None,
            pending_skip: false,
            fpm: None,
            fpm_cycle: None,
            ftrace: None,
            ace: None,
            trace: None,
            rf_log: None,
            dispatch_log: None,
            cfg: cfg.clone(),
        }
    }

    /// Builds a core from a previously taken checkpoint (a clone of a
    /// fault-free core mid-run). The returned core resumes at the
    /// checkpoint's cycle and, stepped forward, is bit-identical to the
    /// core the checkpoint was taken from.
    pub fn from_checkpoint(checkpoint: &OooCore) -> OooCore {
        checkpoint.clone()
    }

    /// Records the first `n` committed instructions (pc + decoded form)
    /// for inspection.
    pub fn enable_trace(&mut self, n: usize) {
        self.trace = Some((n, Vec::with_capacity(n)));
    }

    /// The committed-instruction trace collected so far.
    pub fn trace(&self) -> &[(u64, Instr)] {
        self.trace.as_ref().map_or(&[], |(_, v)| v.as_slice())
    }

    /// Enables the fault-lifetime event trace with ring capacity `cap`
    /// (see [`crate::lifetime`]). Call before [`OooCore::inject`]; the
    /// log is returned in [`OooOutcome::ftrace`].
    pub fn enable_fault_trace(&mut self, cap: usize) {
        self.ftrace = Some(FaultTrace::new(cap));
    }

    /// The fault-lifetime trace collected so far, if enabled.
    pub fn fault_trace(&self) -> Option<&FaultTrace> {
        self.ftrace.as_ref()
    }

    /// Records that the campaign layer observed [`OooCore::fault_extinct`]
    /// and stopped simulating (the trace's terminal Masked milestone).
    pub fn note_fault_extinct(&mut self) {
        self.ftrace_push(FaultEventKind::Extinct);
    }

    /// Records that the early-termination engine proved extinction via
    /// [`OooCore::converged_with`] against a golden checkpoint and ended
    /// the run here.
    pub fn note_pruned_extinct(&mut self) {
        self.ftrace_push(FaultEventKind::PrunedExtinct);
    }

    /// Enables the per-preg access log (fault-free instrumented golden
    /// runs only; see [`RfAccessLog`]).
    pub fn enable_rf_log(&mut self) {
        self.rf_log = Some(Box::new(RfAccessLog::new(self.phys.len())));
    }

    /// Takes the access log collected so far, if enabled.
    pub fn take_rf_log(&mut self) -> Option<Box<RfAccessLog>> {
        self.rf_log.take()
    }

    /// Enables the decoded-dispatch cycle log (fault-free instrumented
    /// golden runs only) — one entry per successfully decoded dispatch,
    /// i.e. per potential instruction-skip firing point.
    pub fn enable_dispatch_log(&mut self) {
        self.dispatch_log = Some(Vec::new());
    }

    /// Takes the dispatch log collected so far, if enabled.
    pub fn take_dispatch_log(&mut self) -> Option<Vec<u64>> {
        self.dispatch_log.take()
    }

    /// First architecturally visible manifestation of the injected fault
    /// so far, if any.
    pub fn fpm(&self) -> Option<Fpm> {
        self.fpm
    }

    /// Cycle of that first manifestation.
    pub fn fpm_cycle(&self) -> Option<u64> {
        self.fpm_cycle
    }

    /// Bitmask of load-queue entries whose flat-bit flips are *armed*
    /// (entry valid with a generated address): exactly the entries whose
    /// flips [`OooCore::inject`] taints. Flips into any other LQ entry
    /// are rewritten before use or never read — provably Masked.
    pub fn lq_armed(&self) -> u32 {
        debug_assert!(self.lq.len() <= 32);
        let mut m = 0u32;
        for (i, e) in self.lq.iter().enumerate() {
            if e.valid && e.addr_ready {
                m |= 1u32 << i;
            }
        }
        m
    }

    /// Bitmask of store-queue entries whose flat-bit flips are armed
    /// (entry valid and executed); see [`OooCore::lq_armed`].
    pub fn sq_armed(&self) -> u32 {
        debug_assert!(self.sq.len() <= 32);
        let mut m = 0u32;
        for (i, e) in self.sq.iter().enumerate() {
            if e.valid && e.ready {
                m |= 1u32 << i;
            }
        }
        m
    }

    #[inline]
    fn ftrace_push(&mut self, kind: FaultEventKind) {
        if let Some(ft) = &mut self.ftrace {
            ft.push(self.cycle, kind);
        }
    }

    /// Enables ACE lifetime tracking (fault-free analytical runs).
    pub fn enable_ace(&mut self) {
        let n = self.phys.len();
        self.ace = Some(AceState {
            rf_def: vec![0; n],
            rf_last_read: vec![0; n],
            rf_acc_cycles: 0,
            lsq_occ_cycles: 0,
        });
    }

    /// Finalises and returns the ACE estimate.
    ///
    /// # Panics
    ///
    /// Panics if [`OooCore::enable_ace`] was not called before the run.
    pub fn ace_estimate(&self) -> AceEstimate {
        let ace = self.ace.as_ref().expect("enable_ace() before running");
        // Close out lifetimes still open at the end of the run.
        let mut acc = ace.rf_acc_cycles;
        for p in 0..self.phys.len() {
            if ace.rf_last_read[p] > ace.rf_def[p] {
                acc += ace.rf_last_read[p] - ace.rf_def[p];
            }
        }
        let cyc = self.cycle.max(1);
        let rf_capacity = (self.phys.len() as u64) * cyc;
        let lsq_capacity = (self.lq.len() + self.sq.len()) as u64 * cyc;
        AceEstimate {
            rf_avf: acc as f64 / rf_capacity as f64,
            lsq_avf: ace.lsq_occ_cycles as f64 / lsq_capacity as f64,
            cycles: self.cycle,
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Committed instruction count.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// True once the run has reached a terminal state.
    pub fn ended(&self) -> bool {
        self.ended.is_some()
    }

    /// Injects a single-bit fault into `structure` at flat bit index
    /// `bit` over the structure's bit population ([`HwStructure::bits`]).
    /// Equivalent to [`OooCore::inject_model`] with
    /// [`FaultModel::BitFlip`].
    pub fn inject(&mut self, structure: HwStructure, bit: u64) {
        self.inject_model(structure, bit, FaultModel::BitFlip);
    }

    /// Applies a value corruption (`delta` XOR) to the LSQ field that
    /// flat bit `bit` addresses, tainting the entry if it is armed.
    fn corrupt_lsq(&mut self, bit: u64, delta: u64) {
        let site = lsq_site(bit, self.isa.xlen(), self.lq.len(), self.sq.len())
            .unwrap_or_else(|| panic!("LSQ fault site bit {bit} out of range"));
        match site {
            LsqSite::LqAddr { entry, bit } => {
                self.lq[entry].addr ^= delta << bit;
                // The corruption only matters if the AGU already wrote
                // the address and the load has not yet used it; a hit
                // before address generation is overwritten (masked).
                if self.lq[entry].valid && self.lq[entry].addr_ready {
                    self.lq[entry].taint = true;
                }
            }
            LsqSite::SqAddr { entry, bit } => {
                self.sq[entry].addr ^= delta << bit;
                // Same masking rule: the fields are rewritten at
                // execute, so only armed (executed) entries carry the
                // corruption to commit.
                if self.sq[entry].valid && self.sq[entry].ready {
                    self.sq[entry].taint = true;
                }
            }
            LsqSite::SqData { entry, bit } => {
                self.sq[entry].data ^= delta << bit;
                if self.sq[entry].valid && self.sq[entry].ready {
                    self.sq[entry].taint = true;
                }
            }
        }
    }

    /// Injects a fault of `model` into `structure` at site index `bit`
    /// over the model's site space ([`FaultModel::sites`]): flat bits
    /// for bit-granular models, aligned byte indices for byte
    /// corruption, and the single site `0` for instruction skip.
    ///
    /// # Panics
    ///
    /// Panics if the model does not apply to the structure or the site
    /// index is out of range — out-of-range sites were previously
    /// aliased onto in-range bits by modulo wrapping, which double
    /// counts under exhaustive enumeration.
    pub fn inject_model(&mut self, structure: HwStructure, bit: u64, model: FaultModel) {
        assert!(
            model.applies_to(structure),
            "fault model {model} does not apply to {structure}"
        );
        let xlen = self.isa.xlen();
        match (model, structure) {
            (FaultModel::BitFlip, HwStructure::RegisterFile) => {
                let (preg, b) = rf_site(bit, xlen, self.phys.len())
                    .unwrap_or_else(|| panic!("RF fault site bit {bit} out of range"));
                self.phys[preg] ^= 1u64 << b;
                self.phys[preg] = exec::trunc(self.isa, self.phys[preg]);
                self.rf_taint = Some((preg, b));
            }
            (FaultModel::ByteCorrupt, HwStructure::RegisterFile) => {
                let (preg, b) = rf_site(bit * 8, xlen, self.phys.len())
                    .unwrap_or_else(|| panic!("RF fault site byte {bit} out of range"));
                self.phys[preg] ^= 0xFFu64 << b;
                self.phys[preg] = exec::trunc(self.isa, self.phys[preg]);
                self.rf_taint = Some((preg, b));
            }
            (FaultModel::StuckAt, HwStructure::RegisterFile) => {
                let (preg, b) = rf_site(bit, xlen, self.phys.len())
                    .unwrap_or_else(|| panic!("RF fault site bit {bit} out of range"));
                // The cell sticks at the complement of its current value
                // (the injection is the first manifestation of the
                // defect), so the initial corruption matches a bit flip.
                let stuck_val = (self.phys[preg] >> b) & 1 == 0;
                self.phys[preg] ^= 1u64 << b;
                self.phys[preg] = exec::trunc(self.isa, self.phys[preg]);
                self.rf_taint = Some((preg, b));
                self.stuck = Some((preg, b, stuck_val));
            }
            (FaultModel::InstrSkip, _) => {
                assert!(bit == 0, "instruction skip has a single site (bit 0)");
                self.pending_skip = true;
            }
            (FaultModel::BitFlip, HwStructure::Lsq) => self.corrupt_lsq(bit, 1),
            (FaultModel::ByteCorrupt, HwStructure::Lsq) => {
                // Byte sites are aligned; xlen is a multiple of 8, so a
                // byte never straddles an LSQ field boundary.
                self.corrupt_lsq(bit * 8, 0xFF);
            }
            (FaultModel::BitFlip, HwStructure::L1i) => {
                self.mem.flip_bit(Level::L1i, bit);
            }
            (FaultModel::BitFlip, HwStructure::L1d) => {
                self.mem.flip_bit(Level::L1d, bit);
            }
            (FaultModel::BitFlip, HwStructure::L2) => {
                self.mem.flip_bit(Level::L2, bit);
            }
            _ => unreachable!("applies_to checked above"),
        }
        if let Some(ft) = &mut self.ftrace {
            ft.push(self.cycle, FaultEventKind::Injected { structure, bit });
            let live = self.mem.taint().is_some_and(|t| t.live());
            ft.note_mem_state(self.cycle, live);
        }
    }

    fn record_fpm(&mut self, fpm: Fpm) {
        if self.fpm.is_none() {
            self.fpm = Some(fpm);
            self.fpm_cycle = Some(self.cycle);
            self.ftrace_push(FaultEventKind::ArchVisible { fpm });
        }
    }

    // ------------------------------------------------------------------
    // Rename helpers.
    // ------------------------------------------------------------------

    fn free_count(&self) -> u64 {
        self.free_tail - self.free_head
    }

    fn alloc_preg(&mut self) -> PReg {
        debug_assert!(self.free_count() > 0);
        let p = self.free_ring[(self.free_head % self.free_ring.len() as u64) as usize];
        self.free_head += 1;
        p
    }

    fn release_preg(&mut self, p: PReg) {
        let cap = self.free_ring.len() as u64;
        self.free_ring[(self.free_tail % cap) as usize] = p;
        self.free_tail += 1;
        debug_assert!(self.free_tail - self.free_head <= cap);
    }

    fn read_phys(&mut self, p: PReg, taint: &mut Option<Fpm>) -> u64 {
        if let Some(log) = &mut self.rf_log {
            log.note(p as usize, self.cycle, false);
        }
        if self.rf_taint.is_some_and(|(tp, _)| tp == p as usize) {
            taint.get_or_insert(Fpm::Wd);
            self.ftrace_push(FaultEventKind::Consumed {
                fpm: Fpm::Wd,
                unit: FaultUnit::Rf,
            });
        }
        self.phys[p as usize]
    }

    fn write_phys(&mut self, p: PReg, v: u64) {
        if let Some(log) = &mut self.rf_log {
            log.note(p as usize, self.cycle, true);
        }
        // Overwriting the corrupted register repairs it (masking).
        if self.rf_taint.is_some_and(|(tp, _)| tp == p as usize) {
            self.rf_taint = None;
            self.ftrace_push(FaultEventKind::Repaired);
        }
        if let Some(ace) = &mut self.ace {
            let i = p as usize;
            if ace.rf_last_read[i] > ace.rf_def[i] {
                ace.rf_acc_cycles += ace.rf_last_read[i] - ace.rf_def[i];
            }
            ace.rf_def[i] = self.cycle;
            ace.rf_last_read[i] = self.cycle;
        }
        self.phys[p as usize] = exec::trunc(self.isa, v);
        self.phys_ready[p as usize] = true;
        // A stuck-at cell re-asserts its stuck value on every write: if
        // the written value disagrees, the register is corrupted anew
        // (a fresh taint lifetime after the `Repaired` above).
        if let Some((sp, sb, sv)) = self.stuck {
            if sp == p as usize {
                let cur = self.phys[sp];
                let forced = (cur & !(1u64 << sb)) | (u64::from(sv) << sb);
                if forced != cur {
                    self.phys[sp] = forced;
                    self.rf_taint = Some((sp, sb));
                    self.ftrace_push(FaultEventKind::Reasserted);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Branch prediction.
    // ------------------------------------------------------------------

    fn bp_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.bp.len() - 1)
    }

    fn btb_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.btb.len() - 1)
    }

    fn predict(&mut self, pc: u64, instr: &Instr) -> u64 {
        match instr.op {
            Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu => {
                if self.bp[self.bp_index(pc)] >= 2 {
                    pc.wrapping_add(instr.imm as u64)
                } else {
                    pc + 4
                }
            }
            Op::Jmp => pc.wrapping_add(instr.imm as u64),
            Op::Call => {
                if self.ras.len() == RAS_DEPTH {
                    self.ras.remove(0);
                }
                self.ras.push(pc + 4);
                pc.wrapping_add(instr.imm as u64)
            }
            Op::Callr => {
                if self.ras.len() == RAS_DEPTH {
                    self.ras.remove(0);
                }
                self.ras.push(pc + 4);
                let (tag, target) = self.btb[self.btb_index(pc)];
                if tag == pc {
                    target
                } else {
                    pc + 4
                }
            }
            Op::Jmpr => {
                if instr.rs1 == self.isa.lr() {
                    self.ras.pop().unwrap_or(pc + 4)
                } else {
                    let (tag, target) = self.btb[self.btb_index(pc)];
                    if tag == pc {
                        target
                    } else {
                        pc + 4
                    }
                }
            }
            _ => pc + 4,
        }
    }

    fn train(&mut self, pc: u64, instr: &Instr, taken: bool, target: u64) {
        if instr.op.is_branch() {
            let i = self.bp_index(pc);
            let c = self.bp[i];
            self.bp[i] = if taken {
                (c + 1).min(3)
            } else {
                c.saturating_sub(1)
            };
        }
        if matches!(instr.op, Op::Callr | Op::Jmpr) {
            let i = self.btb_index(pc);
            self.btb[i] = (pc, target);
        }
    }

    fn fetchable(&self, pc: u64) -> bool {
        pc.is_multiple_of(4)
            && match self.mode {
                Mode::Kernel => pc + 4 <= memmap::MEM_SIZE as u64,
                Mode::User => {
                    memmap::user_access_ok(pc as u32, 4, AccessKind::Fetch, self.user_text_end)
                }
            }
    }

    // ------------------------------------------------------------------
    // Fetch.
    // ------------------------------------------------------------------

    fn fetch(&mut self) {
        if self.fetch_halted || self.cycle < self.fetch_stall_until {
            return;
        }
        for _ in 0..self.cfg.width {
            if self.fetch_queue.len() >= 2 * self.cfg.width as usize {
                break;
            }
            let pc = self.fetch_pc;
            if !self.fetchable(pc) {
                self.fetch_queue.push_back(FetchedInstr {
                    pc,
                    word: 0,
                    ok: false,
                    predicted_next: pc + 4,
                    taint_bit: None,
                });
                self.fetch_halted = true; // wait for the fault to commit
                return;
            }
            let (lat, word, tainted) = self.mem.fetch_word(pc as u32);
            let miss = lat > self.cfg.l1i.latency;
            if miss {
                self.fetch_stall_until = self.cycle + lat as u64;
            }
            let taint_bit = if tainted {
                let t = self.mem.taint().expect("tainted fetch implies taint state");
                Some((t.addr as u64 - pc) as u32 * 8 + t.bit_in_byte as u32)
            } else {
                None
            };
            let decode = Instr::decode(word, self.isa);
            let predicted_next = match &decode {
                Ok(i) => self.predict(pc, i),
                Err(_) => pc + 4,
            };
            self.fetch_queue.push_back(FetchedInstr {
                pc,
                word,
                ok: true,
                predicted_next,
                taint_bit,
            });
            self.fetch_pc = predicted_next;
            match &decode {
                Ok(i) if matches!(i.op, Op::Syscall | Op::Eret | Op::Halt) => {
                    // Serialize: stop fetching until commit redirects.
                    self.fetch_halted = true;
                    return;
                }
                Err(_) => {
                    self.fetch_halted = true;
                    return;
                }
                _ => {}
            }
            if predicted_next != pc + 4 || miss {
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Dispatch.
    // ------------------------------------------------------------------

    fn classify(instr: &Instr) -> RobKind {
        use vulnstack_isa::op::Format;
        match instr.op {
            Op::Syscall => RobKind::Syscall,
            Op::Eret => RobKind::Eret,
            Op::Halt => RobKind::Halt,
            Op::Nop => RobKind::Nop,
            Op::Mfsr => RobKind::Mfsr,
            Op::Mtsr => RobKind::Mtsr,
            Op::Call | Op::Jmp | Op::Callr | Op::Jmpr => RobKind::Jump,
            _ => match instr.op.format() {
                Format::B => RobKind::Branch,
                Format::Load => RobKind::Load,
                Format::Store => RobKind::Store,
                _ => RobKind::Alu,
            },
        }
    }

    fn dispatch(&mut self) {
        for _ in 0..self.cfg.width {
            if self.rob.len() >= self.cfg.rob_entries as usize {
                break;
            }
            let Some(front) = self.fetch_queue.front().copied() else {
                break;
            };

            let mut decode = if front.ok {
                Instr::decode(front.word, self.isa).ok()
            } else {
                None
            };
            let decoded = decode.is_some();
            // An armed instruction skip fires at the first successfully
            // decoded dispatch: the instruction enters the ROB as a NOP
            // (one-shot, even if later squashed off a wrong path). A
            // NOP needs no IQ/LSQ/rename resources, so the skipped
            // instruction's own resource stalls vanish with it.
            let skip_fired = self.pending_skip && decoded;
            if skip_fired {
                decode = Some(Instr::nop());
            }
            let kind = decode.as_ref().map_or(RobKind::Invalid, Self::classify);

            let needs_iq = !matches!(
                kind,
                RobKind::Nop | RobKind::Syscall | RobKind::Eret | RobKind::Halt | RobKind::Invalid
            );
            if needs_iq && self.iq.len() >= self.cfg.iq_entries as usize {
                break;
            }
            if kind == RobKind::Load && !self.lq.iter().any(|e| !e.valid) {
                break;
            }
            if kind == RobKind::Store && !self.sq.iter().any(|e| !e.valid) {
                break;
            }
            let instr = decode.unwrap_or_else(Instr::nop);
            let has_dest = decode.is_some() && instr.dest(self.isa).is_some();
            if has_dest && self.free_count() == 0 {
                break;
            }
            self.fetch_queue.pop_front();
            if decoded {
                if let Some(log) = &mut self.dispatch_log {
                    log.push(self.cycle);
                }
            }

            let seq = self.next_seq;
            self.next_seq += 1;

            let mut entry = RobEntry {
                seq,
                pc: front.pc,
                instr,
                kind,
                dest: None,
                srcs: [None; 2],
                done: false,
                exception: None,
                predicted_next: front.predicted_next,
                snapshot: None,
                lsq_slot: None,
                mtsr_value: 0,
                taint: None,
            };

            if kind == RobKind::Invalid {
                entry.exception = Some(if front.ok {
                    Trap::new(TrapCause::UndefinedInstruction, front.pc)
                } else {
                    Trap::with_addr(TrapCause::FetchFault, front.pc, front.pc)
                });
                entry.done = true;
                if let Some(bit) = front.taint_bit {
                    let fpm = match classify_bit(front.word, bit) {
                        BitClass::Instruction => Fpm::Wi,
                        BitClass::Operand => Fpm::Woi,
                        BitClass::Ignored => Fpm::Wi,
                    };
                    entry.taint = Some(fpm);
                    self.ftrace_push(FaultEventKind::Consumed {
                        fpm,
                        unit: FaultUnit::Fetch,
                    });
                }
                self.rob.push_back(entry);
                continue;
            }

            if let Some(bit) = front.taint_bit {
                entry.taint = match classify_bit(front.word, bit) {
                    BitClass::Instruction => Some(Fpm::Wi),
                    BitClass::Operand => Some(Fpm::Woi),
                    BitClass::Ignored => None, // decoder discards these bits
                };
                if let Some(fpm) = entry.taint {
                    self.ftrace_push(FaultEventKind::Consumed {
                        fpm,
                        unit: FaultUnit::Fetch,
                    });
                }
            }

            if skip_fired {
                self.pending_skip = false;
                entry.taint = Some(Fpm::Wi);
                self.ftrace_push(FaultEventKind::Consumed {
                    fpm: Fpm::Wi,
                    unit: FaultUnit::Fetch,
                });
            }

            if kind == RobKind::Branch || kind == RobKind::Jump {
                entry.snapshot = Some((self.rat.clone(), self.free_head));
            }

            // Rename sources (at most two architectural sources).
            let src_order = instr.regs_read();
            for (i, r) in src_order.iter().enumerate().take(2) {
                if self.isa.zero() == Some(*r) {
                    entry.srcs[i] = None; // constant zero
                } else {
                    entry.srcs[i] = Some(self.rat[r.index()]);
                }
            }

            if has_dest {
                let arch = instr.dest(self.isa).expect("checked");
                let newp = self.alloc_preg();
                let oldp = self.rat[arch.index()];
                self.rat[arch.index()] = newp;
                self.phys_ready[newp as usize] = false;
                entry.dest = Some((arch, newp, oldp));
            }

            match kind {
                RobKind::Load => {
                    let slot = self.lq.iter().position(|e| !e.valid).expect("checked");
                    self.lq[slot] = LqEntry {
                        valid: true,
                        seq,
                        addr: 0,
                        addr_ready: false,
                        taint: false,
                    };
                    entry.lsq_slot = Some(slot);
                }
                RobKind::Store => {
                    let slot = self.sq.iter().position(|e| !e.valid).expect("checked");
                    self.sq[slot] = SqEntry {
                        valid: true,
                        seq,
                        addr: 0,
                        data: 0,
                        size: instr.op.access_bytes() as u32,
                        ready: false,
                        taint: false,
                    };
                    entry.lsq_slot = Some(slot);
                }
                _ => {}
            }

            if needs_iq {
                self.iq.push(IqEntry { seq, issued: false });
            } else {
                entry.done = true;
            }
            self.rob.push_back(entry);
        }
    }

    // ------------------------------------------------------------------
    // Issue & execute.
    // ------------------------------------------------------------------

    fn rob_index(&self, seq: u64) -> Option<usize> {
        let head = self.rob.front()?.seq;
        if seq < head {
            return None;
        }
        let idx = (seq - head) as usize;
        if idx < self.rob.len() {
            Some(idx)
        } else {
            None
        }
    }

    fn rob_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        let idx = self.rob_index(seq)?;
        self.rob.get_mut(idx)
    }

    fn issue(&mut self) {
        // Purge entries whose ROB entry is gone (squashed) or already
        // complete (a branch that triggered recovery mid-issue).
        let head = self.rob.front().map(|e| e.seq);
        let rob_len = self.rob.len() as u64;
        let rob = &self.rob;
        self.iq.retain(|e| {
            let Some(h) = head else { return false };
            if e.seq < h || e.seq - h >= rob_len {
                return false;
            }
            !rob[(e.seq - h) as usize].done
        });

        let mut candidates: Vec<u64> = Vec::new();
        for e in &self.iq {
            if e.issued {
                continue;
            }
            let Some(idx) = self.rob_index(e.seq) else {
                continue;
            };
            let ready = self.rob[idx]
                .srcs
                .iter()
                .flatten()
                .all(|&p| self.phys_ready[p as usize]);
            if ready {
                candidates.push(e.seq);
            }
        }
        candidates.sort_unstable();

        let mut issued = 0u32;
        let mut finished: Vec<u64> = Vec::new();
        let mut squashed = false;
        for seq in candidates {
            if issued >= self.cfg.width {
                break;
            }
            match self.execute_one(seq) {
                ExecResult::Done => {
                    finished.push(seq);
                    issued += 1;
                }
                ExecResult::Retry => {}
                ExecResult::Squashed => {
                    // The mispredicted branch itself has executed; drop it
                    // (recovery already pruned everything younger).
                    finished.push(seq);
                    squashed = true;
                    break;
                }
            }
        }
        self.iq.retain(|e| !finished.contains(&e.seq));
        let _ = squashed;
    }

    fn read_srcs(&mut self, seq: u64, taint: &mut Option<Fpm>) -> [u64; 2] {
        let idx = self.rob_index(seq).expect("entry exists");
        let srcs = self.rob[idx].srcs;
        let mut vals = [0u64; 2];
        for (i, s) in srcs.iter().enumerate() {
            if let Some(p) = s {
                vals[i] = self.read_phys(*p, taint);
                if let Some(ace) = &mut self.ace {
                    ace.rf_last_read[*p as usize] = self.cycle;
                }
            }
        }
        vals
    }

    fn execute_one(&mut self, seq: u64) -> ExecResult {
        let idx = match self.rob_index(seq) {
            Some(i) => i,
            None => return ExecResult::Retry,
        };
        let entry = &self.rob[idx];
        let instr = entry.instr;
        let kind = entry.kind;
        let pc = entry.pc;
        let dest = entry.dest;
        let lsq_slot = entry.lsq_slot;
        let predicted = entry.predicted_next;

        let mut taint: Option<Fpm> = None;
        match kind {
            RobKind::Alu => {
                let vals = self.read_srcs(seq, &mut taint);
                let (a, b, rd_old) = if instr.op == Op::Movk {
                    (0, 0, vals[0])
                } else {
                    (vals[0], vals[1], 0)
                };
                let latency = instr.op.exec_latency() as u64;
                match exec::alu(&instr, a, b, rd_old, self.isa) {
                    Ok(v) => {
                        if let Some((_, newp, _)) = dest {
                            self.finish
                                .push((self.cycle + latency, seq, newp, v, taint));
                        } else {
                            self.mark_done(seq, taint);
                        }
                    }
                    Err(cause) => {
                        self.mark_exception(seq, Trap::new(cause, pc), taint);
                    }
                }
                ExecResult::Done
            }
            RobKind::Mfsr => {
                // Value is produced at commit (serialized with sysreg
                // state); execution just completes the entry.
                self.mark_done(seq, taint);
                ExecResult::Done
            }
            RobKind::Mtsr => {
                let vals = self.read_srcs(seq, &mut taint);
                let e = self.rob_mut(seq).expect("entry exists");
                e.mtsr_value = vals[0];
                self.mark_done(seq, taint);
                ExecResult::Done
            }
            RobKind::Branch | RobKind::Jump => {
                let vals = self.read_srcs(seq, &mut taint);
                let actual_next = match instr.op {
                    Op::Jmp | Op::Call => pc.wrapping_add(instr.imm as u64),
                    Op::Jmpr | Op::Callr => exec::trunc(self.isa, vals[0]),
                    _ => {
                        if exec::branch_taken(instr.op, vals[0], vals[1], self.isa) {
                            pc.wrapping_add(instr.imm as u64)
                        } else {
                            pc + 4
                        }
                    }
                };
                self.train(pc, &instr, actual_next != pc + 4, actual_next);
                if let Some((_, newp, _)) = dest {
                    // CALL/CALLR link value.
                    self.write_phys(newp, pc + 4);
                }
                self.mark_done(seq, taint);
                if actual_next != predicted {
                    self.recover_branch(seq, actual_next);
                    return ExecResult::Squashed;
                }
                ExecResult::Done
            }
            RobKind::Load => {
                let vals = self.read_srcs(seq, &mut taint);
                let slot = lsq_slot.expect("loads have LQ slots");
                if !self.lq[slot].addr_ready {
                    let addr0 = exec::trunc(self.isa, vals[0].wrapping_add(instr.imm as u64));
                    self.lq[slot].addr = addr0;
                    self.lq[slot].addr_ready = true;
                }
                // Conservative disambiguation: all older stores need
                // addresses first. While the load waits, its latched
                // address sits exposed in the LQ.
                if self.sq.iter().any(|s| s.valid && s.seq < seq && !s.ready) {
                    return ExecResult::Retry;
                }
                let addr = self.lq[slot].addr;
                if self.lq[slot].taint {
                    taint.get_or_insert(Fpm::Wd);
                    self.ftrace_push(FaultEventKind::Consumed {
                        fpm: Fpm::Wd,
                        unit: FaultUnit::Lq,
                    });
                }
                let size = instr.op.access_bytes() as u32;
                if let Some(trap) = self.mem_check(addr, size, AccessKind::Read, pc) {
                    self.mark_exception(seq, trap, taint);
                    return ExecResult::Done;
                }
                // Store-to-load forwarding from the youngest fully
                // containing older store.
                let mut forwarded: Option<(u64, bool)> = None;
                let mut best = 0u64;
                for s in &self.sq {
                    if !s.valid || s.seq >= seq || !s.ready {
                        continue;
                    }
                    let s_end = s.addr + s.size as u64;
                    let l_end = addr + size as u64;
                    if s.addr < l_end && addr < s_end {
                        if s.addr <= addr && l_end <= s_end {
                            if s.seq >= best {
                                best = s.seq;
                                let shift = (addr - s.addr) * 8;
                                let mask = if size == 8 {
                                    u64::MAX
                                } else {
                                    (1u64 << (size * 8)) - 1
                                };
                                forwarded = Some(((s.data >> shift) & mask, s.taint));
                            }
                        } else {
                            // Partial overlap: wait for the store to drain.
                            return ExecResult::Retry;
                        }
                    }
                }
                let (raw, latency, mem_taint) = match forwarded {
                    Some((v, t)) => (v, 1u32, t),
                    None => {
                        let (lat, v, t) = self.mem.load(addr as u32, size);
                        (v, lat, t)
                    }
                };
                if mem_taint {
                    taint.get_or_insert(Fpm::Wd);
                    self.ftrace_push(FaultEventKind::Consumed {
                        fpm: Fpm::Wd,
                        unit: FaultUnit::Mem,
                    });
                }
                let value = exec::load_extend(instr.op, raw, self.isa);
                if let Some((_, newp, _)) = dest {
                    self.finish
                        .push((self.cycle + latency as u64, seq, newp, value, taint));
                } else {
                    self.mark_done(seq, taint);
                }
                ExecResult::Done
            }
            RobKind::Store => {
                let vals = self.read_srcs(seq, &mut taint); // [data, base]
                let addr = exec::trunc(self.isa, vals[1].wrapping_add(instr.imm as u64));
                let size = instr.op.access_bytes() as u32;
                if let Some(trap) = self.mem_check(addr, size, AccessKind::Write, pc) {
                    self.mark_exception(seq, trap, taint);
                    return ExecResult::Done;
                }
                let slot = lsq_slot.expect("stores have SQ slots");
                let s = &mut self.sq[slot];
                s.addr = addr;
                s.data = vals[0];
                s.ready = true;
                // Rewriting the fields clears any pre-execute flip; the
                // entry is tainted only by corrupted register sources.
                s.taint = taint.is_some();
                self.mark_done(seq, taint);
                ExecResult::Done
            }
            _ => {
                self.mark_done(seq, None);
                ExecResult::Done
            }
        }
    }

    fn mark_done(&mut self, seq: u64, taint: Option<Fpm>) {
        if let Some(e) = self.rob_mut(seq) {
            e.done = true;
            if let Some(t) = taint {
                e.taint.get_or_insert(t);
            }
        }
    }

    fn mark_exception(&mut self, seq: u64, trap: Trap, taint: Option<Fpm>) {
        if let Some(e) = self.rob_mut(seq) {
            e.exception = Some(trap);
            e.done = true;
            if let Some(t) = taint {
                e.taint.get_or_insert(t);
            }
        }
    }

    fn mem_check(&self, addr: u64, size: u32, kind: AccessKind, pc: u64) -> Option<Trap> {
        if !addr.is_multiple_of(size as u64) {
            return Some(Trap::with_addr(TrapCause::MisalignedAccess, pc, addr));
        }
        let ok = match self.mode {
            Mode::Kernel => addr + size as u64 <= memmap::MEM_SIZE as u64,
            Mode::User => memmap::user_access_ok(addr as u32, size, kind, self.user_text_end),
        };
        if ok {
            None
        } else {
            Some(Trap::with_addr(TrapCause::AccessFault, pc, addr))
        }
    }

    // ------------------------------------------------------------------
    // Writeback.
    // ------------------------------------------------------------------

    fn writeback(&mut self) {
        let now = self.cycle;
        let mut done: Vec<(u64, PReg, u64, Option<Fpm>)> = Vec::new();
        self.finish.retain(|&(cyc, seq, preg, value, taint)| {
            if cyc <= now {
                done.push((seq, preg, value, taint));
                false
            } else {
                true
            }
        });
        for (seq, preg, value, taint) in done {
            if self.rob_index(seq).is_none() {
                continue; // squashed producer
            }
            self.write_phys(preg, value);
            self.mark_done(seq, taint);
        }
    }

    // ------------------------------------------------------------------
    // Recovery.
    // ------------------------------------------------------------------

    fn recover_branch(&mut self, branch_seq: u64, target: u64) {
        let idx = self.rob_index(branch_seq).expect("branch in ROB");
        let (rat, free_head) = self.rob[idx]
            .snapshot
            .clone()
            .expect("branches carry snapshots");
        self.rat = rat;
        self.free_head = free_head;
        // The snapshot predates the branch's own destination rename
        // (CALL's link register): re-apply it.
        if let Some((arch, newp, _old)) = self.rob[idx].dest {
            self.rat[arch.index()] = newp;
            self.free_head += 1;
        }
        let mut squashed_taint = 0u32;
        while self.rob.len() > idx + 1 {
            let e = self.rob.pop_back().expect("len checked");
            if e.taint.is_some() {
                squashed_taint += 1;
            }
            if let Some(slot) = e.lsq_slot {
                match e.kind {
                    RobKind::Load => self.lq[slot].valid = false,
                    RobKind::Store => self.sq[slot].valid = false,
                    _ => {}
                }
            }
        }
        if squashed_taint > 0 {
            self.ftrace_push(FaultEventKind::Squashed {
                tainted: squashed_taint,
            });
        }
        // Squashed sequence numbers are reused so the ROB stays seq-
        // contiguous (rob_index depends on it). All references to the
        // squashed range are purged right here.
        self.next_seq = branch_seq + 1;
        self.iq.retain(|e| e.seq <= branch_seq);
        self.finish.retain(|&(_, seq, _, _, _)| seq <= branch_seq);
        self.fetch_queue.clear();
        self.fetch_pc = target;
        self.fetch_halted = false;
        self.fetch_stall_until = 0;
    }

    fn flush_all(&mut self, next_pc: u64) {
        if self.ftrace.is_some() {
            let tainted = self.rob.iter().filter(|e| e.taint.is_some()).count() as u32;
            if tainted > 0 {
                self.ftrace_push(FaultEventKind::Squashed { tainted });
            }
        }
        self.rat = self.rrat.clone();
        let nregs = self.isa.num_regs() as usize;
        let live: Vec<PReg> = self.rrat[..nregs].to_vec();
        let free: Vec<PReg> = (0..self.phys.len() as PReg)
            .filter(|p| !live.contains(p))
            .collect();
        self.free_head = 0;
        self.free_tail = 0;
        for p in free {
            let cap = self.free_ring.len() as u64;
            self.free_ring[(self.free_tail % cap) as usize] = p;
            self.free_tail += 1;
        }
        self.rob.clear();
        self.iq.clear();
        self.finish.clear();
        for e in self.lq.iter_mut() {
            e.valid = false;
        }
        for e in self.sq.iter_mut() {
            e.valid = false;
        }
        self.fetch_queue.clear();
        self.fetch_pc = next_pc;
        self.fetch_halted = false;
        self.fetch_stall_until = 0;
        for &p in &self.rrat[..nregs] {
            self.phys_ready[p as usize] = true;
        }
    }

    fn raise_trap(&mut self, trap: Trap) {
        if self.mode == Mode::Kernel {
            self.ended = Some(RunStatus::KernelPanic);
            return;
        }
        self.sysregs[vulnstack_isa::SysReg::Epc.index() as usize] = trap.pc;
        self.sysregs[vulnstack_isa::SysReg::Cause.index() as usize] = trap.cause.code();
        self.sysregs[vulnstack_isa::SysReg::BadAddr.index() as usize] = trap.addr;
        self.mode = Mode::Kernel;
        self.flush_all(memmap::TRAP_VEC as u64);
    }

    // ------------------------------------------------------------------
    // Commit.
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        for _ in 0..self.cfg.width {
            let Some(head) = self.rob.front() else { return };
            if !head.done {
                return;
            }
            let entry = self.rob.pop_front().expect("head exists");
            self.last_commit_cycle = self.cycle;

            // Architectural visibility of the injected fault.
            if let Some(t) = entry.taint {
                self.record_fpm(t);
            }

            if let Some(trap) = entry.exception {
                self.raise_trap(trap);
                return;
            }

            self.committed += 1;
            if let Some((cap, v)) = &mut self.trace {
                if v.len() < *cap {
                    v.push((entry.pc, entry.instr));
                }
            }

            match entry.kind {
                RobKind::Syscall => {
                    self.raise_trap(Trap::new(TrapCause::Syscall, entry.pc));
                    return;
                }
                RobKind::Halt => {
                    if self.mode == Mode::User {
                        self.raise_trap(Trap::new(TrapCause::PrivilegeViolation, entry.pc));
                    } else {
                        self.ended = Some(self.read_kernel_status());
                    }
                    return;
                }
                RobKind::Eret => {
                    if self.mode == Mode::User {
                        self.raise_trap(Trap::new(TrapCause::PrivilegeViolation, entry.pc));
                        return;
                    }
                    self.mode = Mode::User;
                    let epc = self.sysregs[vulnstack_isa::SysReg::Epc.index() as usize];
                    // Update retirement state before the flush.
                    if let Some((arch, newp, oldp)) = entry.dest {
                        self.rrat[arch.index()] = newp;
                        self.release_preg(oldp);
                    }
                    self.flush_all(epc);
                    return;
                }
                RobKind::Mfsr => {
                    if self.mode == Mode::User {
                        self.raise_trap(Trap::new(TrapCause::PrivilegeViolation, entry.pc));
                        return;
                    }
                    let sr = entry.instr.sysreg().expect("decoded");
                    let v = self.sysregs[sr.index() as usize];
                    if let Some((_, newp, _)) = entry.dest {
                        self.write_phys(newp, v);
                    }
                }
                RobKind::Mtsr => {
                    if self.mode == Mode::User {
                        self.raise_trap(Trap::new(TrapCause::PrivilegeViolation, entry.pc));
                        return;
                    }
                    let sr = entry.instr.sysreg().expect("decoded");
                    self.sysregs[sr.index() as usize] = entry.mtsr_value;
                }
                RobKind::Store => {
                    let slot = entry.lsq_slot.expect("stores have slots");
                    let s = self.sq[slot];
                    if s.taint {
                        self.record_fpm(Fpm::Wd);
                        self.ftrace_push(FaultEventKind::TaintedStoreCommit { addr: s.addr });
                    }
                    // The address may have been corrupted in the SQ after
                    // the execute-time check; a store to an invalid
                    // address is a bus fault at commit.
                    if let Some(trap) = self.mem_check(s.addr, s.size, AccessKind::Write, entry.pc)
                    {
                        self.sq[slot].valid = false;
                        self.raise_trap(trap);
                        return;
                    }
                    self.mem.store(s.addr as u32, s.size, s.data);
                    self.sq[slot].valid = false;
                }
                RobKind::Load => {
                    let slot = entry.lsq_slot.expect("loads have slots");
                    self.lq[slot].valid = false;
                }
                _ => {}
            }

            if let Some((arch, newp, oldp)) = entry.dest {
                self.rrat[arch.index()] = newp;
                self.release_preg(oldp);
            }
        }
    }

    fn read_kernel_status(&mut self) -> RunStatus {
        let kd = memmap::KERNEL_DATA;
        let (status, t1) = self.mem.peek(kd + off::STATUS as u32, 4);
        let (code, t2) = self.mem.peek(kd + off::CODE as u32, 4);
        // A corrupted status/code word alters the observable outcome
        // without re-entering the pipeline: the ESC path.
        if t1 || t2 {
            self.record_fpm(Fpm::Esc);
        }
        match KStatus::from_word(status as u32) {
            Some(KStatus::Exited) => RunStatus::Exited(code as i32),
            Some(KStatus::Detected) => RunStatus::Detected(code as i32),
            Some(KStatus::Crashed) => RunStatus::Crashed(code as u32),
            _ => RunStatus::KernelPanic,
        }
    }

    fn drain_output(&mut self) -> Vec<u8> {
        let kd = memmap::KERNEL_DATA;
        let (outlen, len_taint) = self.mem.peek(kd + off::OUTLEN as u32, 4);
        if len_taint {
            self.record_fpm(Fpm::Esc);
        }
        let outlen = (outlen as u32).min(memmap::OUTPUT_CAP);
        let mut out = Vec::with_capacity(outlen as usize);
        let mut esc = false;
        for i in 0..outlen {
            let (b, tainted) = self.mem.peek(memmap::OUTPUT_BASE + i, 1);
            esc |= tainted;
            out.push(b as u8);
        }
        if esc {
            self.record_fpm(Fpm::Esc);
        }
        out
    }

    /// Advances one cycle.
    pub fn step_cycle(&mut self) {
        self.cycle += 1;
        if self.ace.is_some() {
            let occ = self.lq.iter().filter(|e| e.valid).count()
                + self.sq.iter().filter(|e| e.valid).count();
            if let Some(ace) = &mut self.ace {
                ace.lsq_occ_cycles += occ as u64;
            }
        }
        self.commit();
        if self.ended.is_some() {
            return;
        }
        self.writeback();
        self.issue();
        self.dispatch();
        self.fetch();
        if self.ftrace.is_some() {
            let live = self.mem.taint().is_some_and(|t| t.live());
            let cycle = self.cycle;
            if let Some(ft) = &mut self.ftrace {
                ft.note_mem_state(cycle, live);
            }
        }
        if self.cycle - self.last_commit_cycle > watchdog_cycles() {
            self.ended = Some(RunStatus::Timeout);
        }
    }

    /// Runs until `cycle` or a terminal state.
    pub fn run_until(&mut self, cycle: u64) {
        while self.ended.is_none() && self.cycle < cycle {
            self.step_cycle();
        }
    }

    /// Runs to completion (halt or `budget` cycles).
    pub fn run(mut self, budget: u64) -> OooOutcome {
        self.run_until(budget);
        self.finish()
    }

    /// True when an injected fault can no longer have any effect: no
    /// corrupted copy survives anywhere and nothing tainted is in flight.
    /// From this point the run is bit-identical to the golden run, so
    /// campaigns may classify it as Masked and stop early.
    pub fn fault_extinct(&self) -> bool {
        if self.fpm.is_some() || self.rf_taint.is_some() {
            return false;
        }
        // An armed stuck-at cell can re-corrupt any future write; an
        // armed skip fires at any future decoded dispatch. Neither is
        // ever extinct while armed.
        if self.stuck.is_some() || self.pending_skip {
            return false;
        }
        if self.mem.taint().is_some_and(|t| t.live()) {
            return false;
        }
        if self.lq.iter().any(|e| e.valid && e.taint) {
            return false;
        }
        if self.sq.iter().any(|e| e.valid && e.taint) {
            return false;
        }
        if self.rob.iter().any(|e| e.taint.is_some()) {
            return false;
        }
        if self.finish.iter().any(|(_, _, _, _, t)| t.is_some()) {
            return false;
        }
        true
    }

    /// Normalized LSQ comparison for [`OooCore::converged_with`]: valid
    /// flags must match and valid entries must be field-identical, but
    /// *invalid* entries are behaviorally empty — a squash clears only
    /// `valid` and dispatch rewrites every field before any read — so
    /// their stale contents are ignored.
    fn lsq_converged(&self, golden: &OooCore) -> bool {
        self.lq.len() == golden.lq.len()
            && self.sq.len() == golden.sq.len()
            && self
                .lq
                .iter()
                .zip(&golden.lq)
                .all(|(a, b)| a.valid == b.valid && (!a.valid || a == b))
            && self
                .sq
                .iter()
                .zip(&golden.sq)
                .all(|(a, b)| a.valid == b.valid && (!a.valid || a == b))
    }

    /// True if this (possibly faulty) core is *behaviorally identical* to
    /// `golden` — a fault-free core at the same cycle: every subsequent
    /// cycle of both cores is bit-identical, so the run's terminal status
    /// and output are already known to equal the golden run's.
    ///
    /// This is the early-termination convergence check. It is a
    /// hand-written comparison rather than the derived `PartialEq`
    /// because it must *exclude* observer-only state (`fpm`/`fpm_cycle`,
    /// the fault trace, ACE accounting, commit trace, RF access log,
    /// memory hit/miss counters, a dead memory-taint record) that a
    /// faulty run legitimately accumulates without diverging
    /// behaviorally, and *normalize* LSQ entries whose stale invalid
    /// contents are never read. Every behavioral field is compared
    /// exactly; any live tainted state anywhere is an immediate `false`.
    ///
    /// Conservative by design: a `false` never lies (the caller just
    /// keeps simulating), and a `true` is exact.
    pub fn converged_with(&self, golden: &OooCore) -> bool {
        // Cheap discriminators first.
        if self.cycle != golden.cycle
            || self.committed != golden.committed
            || self.ended != golden.ended
            || self.last_commit_cycle != golden.last_commit_cycle
        {
            return false;
        }
        // Live tainted state can still change the future — as can an
        // armed persistent stuck-at cell or a pending one-shot skip.
        if self.rf_taint.is_some() || self.stuck.is_some() || self.pending_skip {
            return false;
        }
        if !self.mem.converged_with(&golden.mem) {
            return false;
        }
        // Full behavioral-state comparison. Comparing against the golden
        // core also enforces taint freedom in flight: golden LSQ/ROB/
        // finish/fetch entries carry no taint, so any tainted in-flight
        // entry fails its field comparison.
        self.mode == golden.mode
            && self.sysregs == golden.sysregs
            && self.fetch_pc == golden.fetch_pc
            && self.fetch_stall_until == golden.fetch_stall_until
            && self.fetch_halted == golden.fetch_halted
            && self.fetch_queue == golden.fetch_queue
            && self.bp == golden.bp
            && self.btb == golden.btb
            && self.ras == golden.ras
            && self.rat == golden.rat
            && self.rrat == golden.rrat
            && self.free_ring == golden.free_ring
            && self.free_head == golden.free_head
            && self.free_tail == golden.free_tail
            && self.phys == golden.phys
            && self.phys_ready == golden.phys_ready
            && self.next_seq == golden.next_seq
            && self.iq == golden.iq
            && self.rob == golden.rob
            && self.finish == golden.finish
            && self.lsq_converged(golden)
    }

    /// Architectural (retirement-RAT) value of register `r` — the value
    /// the next committed instruction reading `r` will observe.
    pub(crate) fn arch_value(&self, r: Reg) -> u64 {
        self.phys[self.rrat[r.index()] as usize]
    }

    /// The core's ISA.
    pub(crate) fn isa(&self) -> Isa {
        self.isa
    }

    /// Maximum commits per cycle (the pipeline width).
    pub(crate) fn commit_width(&self) -> u32 {
        self.cfg.width
    }

    /// True while the core executes unprivileged user code.
    pub fn in_user_mode(&self) -> bool {
        self.mode == Mode::User
    }

    /// True while the commit trace is armed and below capacity: its last
    /// entry is the most recent commit, so trace-tail analyses line up
    /// with current retirement state ([`OooCore::arch_value`]).
    pub(crate) fn trace_recording(&self) -> bool {
        self.trace.as_ref().is_some_and(|(cap, v)| v.len() < *cap)
    }

    /// True if this core is provably *frozen*: `anchor` is a clone of
    /// this same run taken at an earlier cycle, and every behavioral
    /// field is identical, which proves the pipeline can never commit
    /// again — the run's terminal status is certainly `Timeout`.
    ///
    /// Soundness: the cycle transition function reads absolute time only
    /// through `fetch_stall_until` comparisons, `finish` completion
    /// cycles, and the commit watchdog. With the stall expired before the
    /// anchor (`fetch_stall_until <= anchor.cycle`; a re-arm inside the
    /// window would have left it *above* the anchor cycle, contradicting
    /// equality), `finish` empty at both endpoints, and no commits in the
    /// window (`committed`/`last_commit_cycle` equal), every intra-window
    /// event is cycle-shift covariant — so the state trajectory from
    /// `self` replays the anchor→self window forever. No commit can ever
    /// happen (one period has none), so `HALT` never retires and the
    /// watchdog's `Timeout` is the only reachable ending.
    ///
    /// Observer-only state (fault/commit traces, ACE, RF log, cache
    /// hit/miss counters via `MemSystem`'s derived equality — its access
    /// tick is part of the comparison, proving the window made *no*
    /// memory accesses) is deliberately strict here: extra strictness
    /// only costs missed detections, never soundness.
    pub fn frozen_with(&self, anchor: &OooCore) -> bool {
        self.cycle > anchor.cycle
            && self.ended.is_none()
            && anchor.ended.is_none()
            && self.committed == anchor.committed
            && self.last_commit_cycle == anchor.last_commit_cycle
            && self.fetch_stall_until == anchor.fetch_stall_until
            && self.fetch_stall_until <= anchor.cycle
            && self.finish.is_empty()
            && anchor.finish.is_empty()
            && self.mode == anchor.mode
            && self.sysregs == anchor.sysregs
            && self.fetch_pc == anchor.fetch_pc
            && self.fetch_halted == anchor.fetch_halted
            && self.fetch_queue == anchor.fetch_queue
            && self.bp == anchor.bp
            && self.btb == anchor.btb
            && self.ras == anchor.ras
            && self.rat == anchor.rat
            && self.rrat == anchor.rrat
            && self.free_ring == anchor.free_ring
            && self.free_head == anchor.free_head
            && self.free_tail == anchor.free_tail
            && self.phys == anchor.phys
            && self.phys_ready == anchor.phys_ready
            && self.next_seq == anchor.next_seq
            && self.iq == anchor.iq
            && self.rob == anchor.rob
            && self.lq == anchor.lq
            && self.sq == anchor.sq
            && self.rf_taint == anchor.rf_taint
            && self.stuck == anchor.stuck
            && self.pending_skip == anchor.pending_skip
            && self.fpm == anchor.fpm
            && self.fpm_cycle == anchor.fpm_cycle
            && self.mem == anchor.mem
    }

    /// Records that the early-termination engine proved the run cannot
    /// end before its budget ([`OooCore::frozen_with`] or
    /// [`OooCore::timeout_proven`]) and ended it here as the `Timeout` it
    /// was always going to be.
    pub fn note_proven_hang(&mut self) {
        self.ftrace_push(FaultEventKind::ProvenHang);
    }

    /// True if the affine non-termination prover ([`crate::runaway`])
    /// certifies that this run's terminal status is `Timeout`: the
    /// committed stream is locked into a loop that provably cannot
    /// branch out, trap, or halt before `budget` cycles elapse. Requires
    /// a recording commit trace ([`OooCore::enable_trace`]); returns
    /// `false` — never a wrong `true` — when the proof does not apply.
    ///
    /// Only sound while the *instruction* side of the memory system is
    /// pristine (no L1i/L2 fault that could make a future re-fetch of a
    /// loop pc decode differently than the trace recorded); the caller
    /// gates on the injected structure. Applies in both privilege modes
    /// — kernel hangs (e.g. a corrupted count in the output-copy loop)
    /// are proven under stricter store-range obligations.
    pub fn timeout_proven(&self, budget: u64) -> bool {
        if self.ended.is_some() || self.cycle >= budget {
            return false;
        }
        crate::runaway::cannot_end_before(self, budget)
    }

    /// Dumps pipeline state to stderr (debugging aid).
    pub fn dump_state(&self) {
        eprintln!(
            "cycle={} committed={} mode={:?} fetch_pc={:#x} halted={} stall_until={} rob={} iq={} fq={} free={}",
            self.cycle,
            self.committed,
            self.mode,
            self.fetch_pc,
            self.fetch_halted,
            self.fetch_stall_until,
            self.rob.len(),
            self.iq.len(),
            self.fetch_queue.len(),
            self.free_count(),
        );
        for (i, e) in self.rob.iter().take(6).enumerate() {
            eprintln!(
                "  rob[{i}] seq={} pc={:#x} {} kind={:?} done={} exc={:?} srcs={:?} dest={:?}",
                e.seq, e.pc, e.instr, e.kind, e.done, e.exception, e.srcs, e.dest
            );
        }
        for e in self.iq.iter().take(8) {
            if let Some(idx) = self.rob_index(e.seq) {
                let r = &self.rob[idx];
                let ready: Vec<bool> = r
                    .srcs
                    .iter()
                    .flatten()
                    .map(|&p| self.phys_ready[p as usize])
                    .collect();
                eprintln!("  iq seq={} {} ready={:?}", e.seq, r.instr, ready);
            }
        }
    }

    /// Consumes the core after a manual stepping session, producing the
    /// outcome (used by campaigns that inject mid-run).
    pub fn finish(mut self) -> OooOutcome {
        let status = self.ended.unwrap_or(RunStatus::Timeout);
        let output = self.drain_output();
        self.ftrace_push(FaultEventKind::Ended { status });
        OooOutcome {
            sim: SimOutcome {
                status,
                output,
                instrs: self.committed,
                cycles: self.cycle,
            },
            fpm: self.fpm,
            fpm_cycle: self.fpm_cycle,
            ftrace: self.ftrace,
        }
    }
}

enum ExecResult {
    Done,
    Retry,
    Squashed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreModel;
    use vulnstack_compiler::{compile, CompileOpts};
    use vulnstack_vir::ModuleBuilder;

    fn image_for(build: impl FnOnce(&mut vulnstack_vir::FuncBuilder), isa: Isa) -> SystemImage {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        build(&mut f);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        let c = compile(&m, isa, &CompileOpts::default()).unwrap();
        SystemImage::build(&c, &[]).unwrap()
    }

    fn model_for(isa: Isa) -> CoreModel {
        match isa {
            Isa::Va32 => CoreModel::A9,
            Isa::Va64 => CoreModel::A72,
        }
    }

    #[test]
    fn simple_program_exits_cleanly() {
        for isa in [Isa::Va32, Isa::Va64] {
            let img = image_for(|f| f.sys_exit(42), isa);
            let cfg = model_for(isa).config();
            let out = OooCore::new(&cfg, &img).run(2_000_000);
            assert_eq!(out.sim.status, RunStatus::Exited(42), "{isa}");
            assert!(out.fpm.is_none());
        }
    }

    #[test]
    fn loop_with_memory_matches_functional_core() {
        for isa in [Isa::Va32, Isa::Va64] {
            let img = image_for(
                |f| {
                    let sum = f.fresh();
                    f.set_c(sum, 0);
                    f.for_range(0, 100, |f, i| {
                        let x = f.mul(i, i);
                        let s = f.add(sum, x);
                        f.set(sum, s);
                    });
                    let slot = f.stack_slot(4, 4);
                    let p = f.slot_addr(slot);
                    f.store32(sum, p, 0);
                    f.sys_write(p, 4);
                    f.sys_exit(0);
                },
                isa,
            );
            let cfg = model_for(isa).config();
            let golden = crate::func::FuncCore::new(&img).run(10_000_000);
            let out = OooCore::new(&cfg, &img).run(10_000_000);
            assert_eq!(out.sim.status, golden.status, "{isa}");
            assert_eq!(out.sim.output, golden.output, "{isa}");
        }
    }

    #[test]
    fn recursion_and_branches_work() {
        for isa in [Isa::Va32, Isa::Va64] {
            let mut mb = ModuleBuilder::new("t");
            let fib = mb.declare("fib", 1);
            let mut f = mb.function("main", 0);
            let v = f.call(fib, &[vulnstack_vir::Operand::Imm(12)]);
            f.sys_exit(v);
            f.ret(None);
            mb.finish_function(f);
            let mut g = mb.function("fib", 1);
            let n = g.param(0);
            let res = g.fresh();
            let base = g.slt(n, 2);
            g.if_else(
                base,
                |g| g.set(res, n),
                |g| {
                    let a = g.sub(n, 1);
                    let x = g.call(fib, &[a.into()]);
                    let b = g.sub(n, 2);
                    let y = g.call(fib, &[b.into()]);
                    let s = g.add(x, y);
                    g.set(res, s);
                },
            );
            g.ret(Some(res.into()));
            mb.finish_function(g);
            let m = mb.finish().unwrap();
            let c = compile(&m, isa, &CompileOpts::default()).unwrap();
            let img = SystemImage::build(&c, &[]).unwrap();
            let cfg = model_for(isa).config();
            let out = OooCore::new(&cfg, &img).run(20_000_000);
            assert_eq!(out.sim.status, RunStatus::Exited(144), "{isa}");
        }
    }

    #[test]
    fn ipc_is_plausible() {
        let img = image_for(
            |f| {
                let sum = f.fresh();
                f.set_c(sum, 0);
                f.for_range(0, 1000, |f, i| {
                    let s = f.add(sum, i);
                    f.set(sum, s);
                });
                f.sys_exit(0);
            },
            Isa::Va64,
        );
        let cfg = CoreModel::A72.config();
        let out = OooCore::new(&cfg, &img).run(10_000_000);
        assert_eq!(out.sim.status, RunStatus::Exited(0));
        let ipc = out.sim.instrs as f64 / out.sim.cycles as f64;
        assert!(ipc > 0.3, "IPC {ipc:.2} too low — pipeline is wedged");
        assert!(
            ipc <= cfg.width as f64,
            "IPC {ipc:.2} exceeds machine width"
        );
    }

    #[test]
    fn rf_fault_in_dead_register_is_masked() {
        let img = image_for(|f| f.sys_exit(7), Isa::Va64);
        let cfg = CoreModel::A72.config();
        let mut core = OooCore::new(&cfg, &img);
        core.run_until(5);
        // The highest physical register is almost certainly unused this
        // early.
        let bit = (cfg.phys_regs as u64 - 1) * 64 + 17;
        core.inject(HwStructure::RegisterFile, bit);
        core.run_until(2_000_000);
        let out = core.finish();
        assert_eq!(out.sim.status, RunStatus::Exited(7));
        assert!(out.fpm.is_none(), "fault in a dead register must be masked");
    }

    #[test]
    fn injection_campaign_smoke_produces_mixed_outcomes() {
        // A statistical smoke test over a compute loop: across a sweep of
        // RF bit positions we expect at least one masked fault and at
        // least one visible manifestation.
        let img = image_for(
            |f| {
                let sum = f.fresh();
                f.set_c(sum, 1);
                f.for_range(0, 500, |f, i| {
                    let x = f.xor(sum, i);
                    let s = f.add(x, 3);
                    f.set(sum, s);
                });
                let slot = f.stack_slot(4, 4);
                let p = f.slot_addr(slot);
                f.store32(sum, p, 0);
                f.sys_write(p, 4);
                f.sys_exit(0);
            },
            Isa::Va64,
        );
        let cfg = CoreModel::A72.config();
        let golden = OooCore::new(&cfg, &img).run(10_000_000);
        assert_eq!(golden.sim.status, RunStatus::Exited(0));

        let mut masked = 0;
        let mut visible = 0;
        for k in 0..40u64 {
            let mut core = OooCore::new(&cfg, &img);
            core.run_until(200 + k * 37);
            core.inject(HwStructure::RegisterFile, (k * 131) % cfg.rf_bits());
            core.run_until(10_000_000);
            let out = core.finish();
            let same = out.sim.status == golden.sim.status && out.sim.output == golden.sim.output;
            if same && out.fpm.is_none() {
                masked += 1;
            }
            if out.fpm.is_some() || !same {
                visible += 1;
            }
        }
        assert!(masked > 0, "expected some masked faults");
        assert!(visible > 0, "expected some visible faults");
    }

    /// The RF and LSQ site decoders are bijective over the in-range
    /// site space: every flat bit maps to a distinct (unit, field, bit)
    /// target, so exhaustive enumeration never double-counts a cell.
    #[test]
    fn site_decode_is_bijective() {
        for isa in [Isa::Va32, Isa::Va64] {
            let cfg = model_for(isa).config();
            let xlen = isa.xlen();
            let nphys = cfg.phys_regs as usize;
            let mut seen = std::collections::HashSet::new();
            for bit in 0..cfg.rf_bits() {
                let (preg, b) = rf_site(bit, xlen, nphys).expect("in-range");
                assert!(preg < nphys && (b as u32) < xlen);
                assert!(seen.insert((preg, b)), "aliased RF site at bit {bit}");
            }
            assert_eq!(seen.len() as u64, cfg.rf_bits());
            assert!(rf_site(cfg.rf_bits(), xlen, nphys).is_none());

            let (lql, sql) = (cfg.lq_entries as usize, cfg.sq_entries as usize);
            let mut seen = std::collections::HashSet::new();
            for bit in 0..cfg.lsq_bits() {
                let site = lsq_site(bit, xlen, lql, sql).expect("in-range");
                assert!(seen.insert(site), "aliased LSQ site at bit {bit}");
            }
            assert_eq!(seen.len() as u64, cfg.lsq_bits());
            assert!(lsq_site(cfg.lsq_bits(), xlen, lql, sql).is_none());
        }
    }

    /// Out-of-range sites are rejected loudly instead of silently
    /// wrapping onto an in-range register (the old `%` aliasing).
    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rf_site_panics() {
        let img = image_for(|f| f.sys_exit(0), Isa::Va64);
        let cfg = CoreModel::A72.config();
        let mut core = OooCore::new(&cfg, &img);
        core.inject(HwStructure::RegisterFile, cfg.rf_bits());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_lsq_site_panics() {
        let img = image_for(|f| f.sys_exit(0), Isa::Va64);
        let cfg = CoreModel::A72.config();
        let mut core = OooCore::new(&cfg, &img);
        core.inject(HwStructure::Lsq, cfg.lsq_bits());
    }

    /// A stuck-at cell re-asserts over disagreeing writes: unlike a
    /// transient flip, overwriting the register does not end the fault.
    #[test]
    fn stuck_at_reasserts_on_writes() {
        let img = image_for(|f| f.sys_exit(0), Isa::Va64);
        let cfg = CoreModel::A72.config();
        let mut core = OooCore::new(&cfg, &img);
        // Pick an arbitrary high physical register and drive write_phys
        // directly: deterministic, independent of the program.
        let p: PReg = 40;
        let bit = 3u64;
        core.inject_model(
            HwStructure::RegisterFile,
            40 * cfg.isa.xlen() as u64 + bit,
            FaultModel::StuckAt,
        );
        let stuck_val = (core.phys[p as usize] >> bit) & 1;
        assert!(!core.fault_extinct(), "armed stuck-at is never extinct");
        // A write that disagrees with the stuck bit is re-corrupted.
        core.write_phys(p, (!stuck_val & 1) << bit);
        assert_eq!((core.phys[p as usize] >> bit) & 1, stuck_val);
        assert!(core.rf_taint.is_some(), "re-assert re-taints");
        // A write that agrees is stored exactly and clears the taint,
        // but the cell stays armed.
        core.write_phys(p, stuck_val << bit);
        assert_eq!((core.phys[p as usize] >> bit) & 1, stuck_val);
        assert!(core.rf_taint.is_none());
        assert!(!core.fault_extinct());
    }

    /// An injected instruction skip NOPs exactly one dispatched
    /// instruction; skipping the exit-status store changes the observed
    /// exit code.
    #[test]
    fn instr_skip_nops_one_dispatch() {
        for isa in [Isa::Va32, Isa::Va64] {
            let img = image_for(|f| f.sys_exit(42), isa);
            let cfg = model_for(isa).config();
            let golden = OooCore::new(&cfg, &img).run(2_000_000);
            assert_eq!(golden.sim.status, RunStatus::Exited(42), "{isa}");

            // Skip armed at cycle 0 must change the boot path's first
            // dispatched instruction; the run still terminates (trap,
            // different exit, or watchdog) and the skip is consumed.
            let mut core = OooCore::new(&cfg, &img);
            core.inject_model(HwStructure::RegisterFile, 0, FaultModel::InstrSkip);
            assert!(!core.fault_extinct(), "armed skip is never extinct");
            core.run_until(2_000_000);
            assert!(!core.pending_skip, "skip fires at the first dispatch");
            let out = core.finish();
            assert_eq!(
                out.fpm,
                Some(Fpm::Wi),
                "a committed skip manifests as a wrong instruction ({isa})"
            );
            let _ = out;
        }
    }

    /// The dispatch log of a golden run records every decoded dispatch
    /// cycle in nondecreasing order — the instruction-skip site space.
    #[test]
    fn dispatch_log_is_monotone_and_nonempty() {
        let img = image_for(|f| f.sys_exit(0), Isa::Va64);
        let cfg = CoreModel::A72.config();
        let mut core = OooCore::new(&cfg, &img);
        core.enable_dispatch_log();
        core.run_until(2_000_000);
        let log = core.take_dispatch_log().expect("enabled");
        assert!(!log.is_empty());
        assert!(log.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Byte corruption flips all eight bits of one aligned byte and is
    /// repaired (taint cleared) by an ordinary overwrite, like any
    /// transient value fault.
    #[test]
    fn byte_corrupt_flips_one_byte() {
        let img = image_for(|f| f.sys_exit(0), Isa::Va64);
        let cfg = CoreModel::A72.config();
        let mut core = OooCore::new(&cfg, &img);
        let p = 40usize;
        let before = core.phys[p];
        // Byte site: register 40, byte 2.
        let site = (40 * cfg.isa.xlen() as u64) / 8 + 2;
        core.inject_model(HwStructure::RegisterFile, site, FaultModel::ByteCorrupt);
        assert_eq!(core.phys[p] ^ before, 0xFFu64 << 16);
        assert!(core.rf_taint.is_some());
        core.write_phys(p as PReg, before);
        assert!(core.rf_taint.is_none());
        assert!(core.fault_extinct());
    }

    #[test]
    fn fault_model_names_roundtrip() {
        for m in FaultModel::ALL {
            assert_eq!(FaultModel::from_name(m.name()), Some(m));
        }
        assert_eq!(FaultModel::from_name("gamma-ray"), None);
    }
}
