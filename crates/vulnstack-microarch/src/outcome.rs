//! Terminal outcomes of full-system simulation runs.

use serde::{Deserialize, Serialize};

/// Why a full-system run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunStatus {
    /// Program called `exit(code)`.
    Exited(i32),
    /// A software fault-tolerance check fired (`detect(code)`).
    Detected(i32),
    /// The kernel reported a fatal trap or invalid syscall (the stored
    /// code is the trap cause / syscall number).
    Crashed(u32),
    /// A trap was raised while already in kernel mode (kernel panic), or
    /// the kernel itself misbehaved.
    KernelPanic,
    /// The run exceeded its cycle/instruction budget (hang, livelock).
    Timeout,
}

impl RunStatus {
    /// True for any crash-class ending (kernel-reported crash, panic, or
    /// timeout) — the paper's "Crash" fault-effect class.
    pub fn is_crash(self) -> bool {
        matches!(
            self,
            RunStatus::Crashed(_) | RunStatus::KernelPanic | RunStatus::Timeout
        )
    }
}

impl std::fmt::Display for RunStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunStatus::Exited(c) => write!(f, "exited({c})"),
            RunStatus::Detected(c) => write!(f, "detected({c})"),
            RunStatus::Crashed(c) => write!(f, "crashed(cause {c})"),
            RunStatus::KernelPanic => f.write_str("kernel panic"),
            RunStatus::Timeout => f.write_str("timeout (watchdog/budget)"),
        }
    }
}

/// Result of one full-system run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Terminal status.
    pub status: RunStatus,
    /// Program output drained from the output region (via DMA on the
    /// cycle-level core, from flat memory on the functional core).
    pub output: Vec<u8>,
    /// Dynamic instructions executed (committed, for the OoO core).
    pub instrs: u64,
    /// Cycles simulated (equals `instrs` on the functional core).
    pub cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_classification() {
        assert!(RunStatus::Crashed(3).is_crash());
        assert!(RunStatus::KernelPanic.is_crash());
        assert!(RunStatus::Timeout.is_crash());
        assert!(!RunStatus::Exited(0).is_crash());
        assert!(!RunStatus::Detected(1).is_crash());
    }
}
