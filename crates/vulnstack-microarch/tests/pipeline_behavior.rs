//! Behavioural tests of the out-of-order pipeline: branch prediction
//! effectiveness, store-to-load forwarding, serialization, and
//! property-based checks of the cache hierarchy against a flat-memory
//! reference model.

use proptest::prelude::*;
use vulnstack_compiler::{compile, CompileOpts};
use vulnstack_isa::Isa;
use vulnstack_kernel::memmap;
use vulnstack_kernel::SystemImage;
use vulnstack_microarch::cache::MemSystem;
use vulnstack_microarch::{CoreModel, OooCore, RunStatus};
use vulnstack_vir::ModuleBuilder;

fn image_for(build: impl FnOnce(&mut vulnstack_vir::FuncBuilder), isa: Isa) -> SystemImage {
    let mut mb = ModuleBuilder::new("t");
    let mut f = mb.function("main", 0);
    build(&mut f);
    f.ret(None);
    mb.finish_function(f);
    let m = mb.finish().unwrap();
    let c = compile(&m, isa, &CompileOpts::default()).unwrap();
    SystemImage::build(&c, &[]).unwrap()
}

#[test]
fn predictable_loop_beats_alternating_branches() {
    // A monotone loop branch trains the bimodal predictor; a
    // data-dependent alternating branch defeats it. Same instruction
    // counts, the alternating version must take more cycles.
    let steady = image_for(
        |f| {
            let acc = f.fresh();
            f.set_c(acc, 0);
            f.for_range(0, 3000, |f, i| {
                let s = f.add(acc, i);
                f.set(acc, s);
            });
            f.sys_exit(0);
        },
        Isa::Va64,
    );
    let alternating = image_for(
        |f| {
            let acc = f.fresh();
            f.set_c(acc, 0);
            f.for_range(0, 3000, |f, i| {
                let bit = f.and(i, 1);
                f.if_else(
                    bit,
                    |f| {
                        let s = f.add(acc, 3);
                        f.set(acc, s);
                    },
                    |f| {
                        let s = f.sub(acc, 2);
                        f.set(acc, s);
                    },
                );
            });
            f.sys_exit(0);
        },
        Isa::Va64,
    );
    let cfg = CoreModel::A72.config();
    let a = OooCore::new(&cfg, &steady).run(50_000_000).sim;
    let b = OooCore::new(&cfg, &alternating).run(50_000_000).sim;
    assert_eq!(a.status, RunStatus::Exited(0));
    assert_eq!(b.status, RunStatus::Exited(0));
    let cpi_a = a.cycles as f64 / a.instrs as f64;
    let cpi_b = b.cycles as f64 / b.instrs as f64;
    assert!(
        cpi_b > cpi_a * 1.02,
        "alternating branches should cost more: steady CPI {cpi_a:.3} vs alternating {cpi_b:.3}"
    );
}

#[test]
fn store_load_forwarding_preserves_values_under_pressure() {
    // Rapid same-address store/load pairs force forwarding from the SQ
    // (stores only reach the cache at commit).
    let img = image_for(
        |f| {
            let slot = f.stack_slot(8, 8);
            let p = f.slot_addr(slot);
            let acc = f.fresh();
            f.set_c(acc, 0);
            f.for_range(0, 500, |f, i| {
                let x = f.mul(i, 7);
                f.store32(x, p, 0);
                let y = f.load32(p, 0);
                f.store32(y, p, 4);
                let z = f.load32(p, 4);
                let s = f.add(acc, z);
                f.set(acc, s);
            });
            // acc = 7 * sum(0..500) = 7 * 124750.
            let expect = 7 * (499 * 500 / 2);
            let ok = f.eq(acc, expect);
            let code = f.select(ok, 0, 1);
            f.sys_exit(code);
        },
        Isa::Va64,
    );
    let cfg = CoreModel::A72.config();
    let out = OooCore::new(&cfg, &img).run(50_000_000);
    assert_eq!(
        out.sim.status,
        RunStatus::Exited(0),
        "forwarding corrupted a value"
    );
}

#[test]
fn byte_granular_forwarding_falls_back_correctly() {
    // Word store followed by byte loads of its pieces: the forwarding
    // path must extract the right sub-bytes.
    let img = image_for(
        |f| {
            let slot = f.stack_slot(4, 4);
            let p = f.slot_addr(slot);
            f.store32(0x0403_0201, p, 0);
            let b0 = f.load8u(p, 0);
            let b3 = f.load8u(p, 3);
            let sum = f.add(b0, b3); // 1 + 4
            let ok = f.eq(sum, 5);
            let code = f.select(ok, 0, 1);
            f.sys_exit(code);
        },
        Isa::Va64,
    );
    let cfg = CoreModel::A72.config();
    let out = OooCore::new(&cfg, &img).run(10_000_000);
    assert_eq!(out.sim.status, RunStatus::Exited(0));
}

#[test]
fn wider_machine_is_not_slower() {
    // A15 is A9 with more width/window/L2: same ISA, so the same binary
    // must commit the same instructions in no more cycles (allowing a
    // small latency-config tolerance).
    let w = vulnstack_workloads::WorkloadId::Fft.build();
    let c = compile(&w.module, Isa::Va32, &CompileOpts::default()).unwrap();
    let img = SystemImage::build(&c, &w.input).unwrap();
    let a9 = OooCore::new(&CoreModel::A9.config(), &img)
        .run(400_000_000)
        .sim;
    let a15 = OooCore::new(&CoreModel::A15.config(), &img)
        .run(400_000_000)
        .sim;
    assert_eq!(a9.instrs, a15.instrs);
    assert!(
        (a15.cycles as f64) < (a9.cycles as f64) * 1.10,
        "A15 ({}) should not be meaningfully slower than A9 ({})",
        a15.cycles,
        a9.cycles
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache hierarchy must be a transparent memory: any sequence of
    /// stores/loads returns exactly what a flat array would.
    #[test]
    fn cache_hierarchy_matches_flat_memory(
        ops in prop::collection::vec(
            (any::<u16>(), any::<u32>(), 0u8..3, any::<bool>()),
            1..120
        )
    ) {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        f.sys_exit(0);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        let c = compile(&m, Isa::Va32, &CompileOpts::default()).unwrap();
        let img = SystemImage::build(&c, &[]).unwrap();
        let cfg = CoreModel::A9.config();
        let mut ms = MemSystem::new(&cfg, &img);
        let mut flat = vec![0u8; memmap::MEM_SIZE as usize];
        img.write_into(&mut flat);

        // Confine to a 64 KiB window of user data, aligned per size.
        let base = memmap::USER_DATA;
        for (off, val, szsel, is_store) in ops {
            let size = 1u32 << szsel; // 1, 2, 4
            let addr = base + (off as u32 % 0x1_0000) / size * size;
            if is_store {
                ms.store(addr, size, val as u64);
                for i in 0..size {
                    flat[(addr + i) as usize] = (val >> (8 * i)) as u8;
                }
            } else {
                let (_, got, _) = ms.load(addr, size);
                let mut want = 0u64;
                for i in (0..size).rev() {
                    want = (want << 8) | flat[(addr + i) as usize] as u64;
                }
                prop_assert_eq!(got, want, "load {:#x} size {}", addr, size);
                // And the coherent peek agrees.
                let (p, _) = ms.peek(addr, size);
                prop_assert_eq!(p, want);
            }
        }
    }

    /// Flipping a bit and flipping it back must leave load results
    /// unchanged (cache fault injection is physically an XOR).
    #[test]
    fn double_flip_is_identity(bit in 0u64..(32 * 1024 * 8)) {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        f.sys_exit(0);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        let c = compile(&m, Isa::Va32, &CompileOpts::default()).unwrap();
        let img = SystemImage::build(&c, &[]).unwrap();
        let cfg = CoreModel::A9.config();
        let mut ms = MemSystem::new(&cfg, &img);
        let addr = memmap::USER_DATA + 0x40;
        ms.store(addr, 4, 0xFEED_F00D);
        ms.flip_bit(vulnstack_microarch::cache::Level::L1d, bit);
        ms.flip_bit(vulnstack_microarch::cache::Level::L1d, bit);
        let (_, v, _) = ms.load(addr, 4);
        prop_assert_eq!(v, 0xFEED_F00D);
    }
}

#[test]
fn cache_statistics_are_internally_consistent() {
    let w = vulnstack_workloads::WorkloadId::Crc32.build();
    let c = compile(&w.module, Isa::Va32, &CompileOpts::default()).unwrap();
    let img = SystemImage::build(&c, &w.input).unwrap();
    let cfg = CoreModel::A9.config();
    let mut core = OooCore::new(&cfg, &img);
    core.run_until(100_000_000);
    let s = core.mem.stats;
    // The run must fetch far more than it misses, and every L1 miss goes
    // to L2 (hits or misses there).
    assert!(s.l1i_hits > 100 * s.l1i_misses.max(1), "{s:?}");
    assert!(s.l1d_hits > s.l1d_misses, "{s:?}");
    assert!(
        s.l2_hits + s.l2_misses >= s.l1i_misses + s.l1d_misses,
        "L2 sees every L1 miss: {s:?}"
    );
    // crc32's 4 KiB input + 1 KiB table fit in L1d: misses bounded by
    // compulsory fills.
    assert!(s.l1d_misses < 400, "{s:?}");
}

mod targeted_l1i {
    use super::*;
    use vulnstack_microarch::cache::Level;
    use vulnstack_microarch::ooo::Fpm;

    /// Flip a chosen bit of a hot loop instruction in L1i and check the
    /// end-to-end FPM classification matches the bit's field class.
    fn run_with_l1i_flip(bit_in_word: u8) -> Option<Fpm> {
        let img = image_for(
            |f| {
                let acc = f.fresh();
                f.set_c(acc, 0);
                f.for_range(0, 4000, |f, i| {
                    let s = f.add(acc, i);
                    f.set(acc, s);
                });
                f.sys_exit(0);
            },
            Isa::Va64,
        );
        let cfg = CoreModel::A72.config();
        let mut core = OooCore::new(&cfg, &img);
        core.run_until(3000); // loop is hot, its line sits in L1i
                              // The loop body lives a few instructions after _start; find a
                              // cached text address by scanning.
                              // Address the byte holding the desired word bit (little-endian:
                              // byte 3 carries the opcode bits 31:24).
        let byte = (bit_in_word / 8) as u32;
        let bit = bit_in_word % 8;
        let mut flipped = false;
        for off in (0..256u32).step_by(4) {
            let addr = memmap::USER_TEXT + 0x40 + off + byte;
            if core.mem.flip_addr_bit(Level::L1i, addr, bit).is_some() {
                flipped = true;
                break;
            }
        }
        assert!(flipped, "loop text not resident in L1i");
        core.run_until(10_000_000);
        core.finish().fpm
    }

    #[test]
    fn opcode_bit_flip_classifies_as_wi() {
        // Word bit 31 = top opcode bit: if the fault manifests it must be
        // a Wrong Instruction.
        if let Some(fpm) = run_with_l1i_flip(31) {
            assert_eq!(fpm, Fpm::Wi, "opcode corruption must classify WI");
        }
    }

    #[test]
    fn immediate_bit_flip_classifies_as_woi() {
        // Word bit 2 sits in the low immediate/offset field of I-format
        // instructions (or in a WI-class field for control flow); accept
        // either software-visible class but never WD.
        if let Some(fpm) = run_with_l1i_flip(2) {
            assert!(
                fpm == Fpm::Woi || fpm == Fpm::Wi,
                "instruction-field corruption cannot be {fpm:?}"
            );
        }
    }
}
