//! Differential testing across execution layers: every workload must
//! produce byte-identical output when (a) interpreted as VIR and (b)
//! compiled to each ISA and run full-system (kernel included) on the
//! functional core. This is the property the whole cross-layer
//! vulnerability comparison rests on.

use vulnstack_compiler::{compile, CompileOpts};
use vulnstack_isa::Isa;
use vulnstack_kernel::SystemImage;
use vulnstack_microarch::{FuncCore, RunStatus};
use vulnstack_workloads::WorkloadId;

const BUDGET: u64 = 200_000_000;

fn run_compiled(id: WorkloadId, isa: Isa) -> (RunStatus, Vec<u8>, u64) {
    let w = id.build();
    let compiled = compile(&w.module, isa, &CompileOpts::default())
        .unwrap_or_else(|e| panic!("{id}/{isa}: compile failed: {e}"));
    let image = SystemImage::build(&compiled, &w.input)
        .unwrap_or_else(|e| panic!("{id}/{isa}: image failed: {e}"));
    let out = FuncCore::new(&image).run(BUDGET);
    (out.status, out.output, out.instrs)
}

#[test]
fn all_workloads_match_golden_on_va64() {
    for id in WorkloadId::ALL {
        let w = id.build();
        let (status, output, instrs) = run_compiled(id, Isa::Va64);
        assert_eq!(
            status,
            RunStatus::Exited(0),
            "{id}: bad status after {instrs} instrs"
        );
        assert_eq!(output, w.expected_output, "{id}: output mismatch on va64");
    }
}

#[test]
fn all_workloads_match_golden_on_va32() {
    for id in WorkloadId::ALL {
        let w = id.build();
        let (status, output, instrs) = run_compiled(id, Isa::Va32);
        assert_eq!(
            status,
            RunStatus::Exited(0),
            "{id}: bad status after {instrs} instrs"
        );
        assert_eq!(output, w.expected_output, "{id}: output mismatch on va32");
    }
}

#[test]
fn dynamic_instruction_counts_differ_across_isas() {
    // The ISAs must actually generate different code (register pressure,
    // W-form sequences): identical dynamic counts would suggest the
    // backends are not exercising their differences.
    let (_, _, n32) = run_compiled(WorkloadId::Sha, Isa::Va32);
    let (_, _, n64) = run_compiled(WorkloadId::Sha, Isa::Va64);
    assert_ne!(n32, n64);
}

#[test]
fn workload_sizes_fit_injection_budget() {
    // Full-system dynamic lengths stay small enough for thousands of
    // cycle-level injection runs per campaign.
    for id in WorkloadId::ALL {
        for isa in [Isa::Va32, Isa::Va64] {
            let (_, _, instrs) = run_compiled(id, isa);
            assert!(
                instrs < 8_000_000,
                "{id}/{isa}: {instrs} dynamic instructions is too heavy"
            );
        }
    }
}

mod ooo_diff {
    use super::*;
    use vulnstack_microarch::{CoreModel, OooCore};

    #[test]
    fn all_workloads_match_golden_on_every_core_model() {
        for model in CoreModel::ALL {
            let cfg = model.config();
            for id in WorkloadId::ALL {
                let w = id.build();
                let compiled = compile(&w.module, cfg.isa, &CompileOpts::default()).unwrap();
                let image = SystemImage::build(&compiled, &w.input).unwrap();
                let out = OooCore::new(&cfg, &image).run(BUDGET);
                assert_eq!(
                    out.sim.status,
                    RunStatus::Exited(0),
                    "{id}/{model}: bad status after {} instrs / {} cycles",
                    out.sim.instrs,
                    out.sim.cycles
                );
                assert_eq!(
                    out.sim.output, w.expected_output,
                    "{id}/{model}: output mismatch"
                );
                assert!(
                    out.fpm.is_none(),
                    "{id}/{model}: phantom FPM with no injection"
                );
                let ipc = out.sim.instrs as f64 / out.sim.cycles as f64;
                assert!(
                    ipc > 0.1 && ipc <= cfg.width as f64,
                    "{id}/{model}: IPC {ipc:.2}"
                );
            }
        }
    }

    #[test]
    fn microarchitectures_differ_in_cycles_not_instructions() {
        let w = WorkloadId::Sha.build();
        let mut cycles = Vec::new();
        for model in [CoreModel::A9, CoreModel::A15] {
            let cfg = model.config();
            let compiled = compile(&w.module, cfg.isa, &CompileOpts::default()).unwrap();
            let image = SystemImage::build(&compiled, &w.input).unwrap();
            let out = OooCore::new(&cfg, &image).run(BUDGET);
            cycles.push((out.sim.instrs, out.sim.cycles));
        }
        // Same ISA -> same committed instruction count; different
        // microarchitecture -> different cycle count.
        assert_eq!(cycles[0].0, cycles[1].0);
        assert_ne!(cycles[0].1, cycles[1].1);
    }
}
