//! End-to-end fault-semantics tests on the cycle-level core: the masking
//! and propagation rules the vulnerability stack is built on, exercised
//! one mechanism at a time with targeted flips.

use vulnstack_compiler::{compile, CompileOpts};
use vulnstack_isa::Isa;
use vulnstack_kernel::memmap;
use vulnstack_kernel::SystemImage;
use vulnstack_microarch::cache::Level;
use vulnstack_microarch::ooo::{Fpm, HwStructure};
use vulnstack_microarch::{CoreModel, OooCore, RunStatus};
use vulnstack_vir::ModuleBuilder;

/// A program that writes a marker, spins long enough for the campaign to
/// intervene, re-reads the marker, and reports it via the exit code.
fn marker_image(isa: Isa, spin: i32) -> SystemImage {
    let mut mb = ModuleBuilder::new("t");
    let g = mb.global_zeroed("marker", 64, 4);
    let mut f = mb.function("main", 0);
    let p = f.global_addr(g);
    f.store32(0x55, p, 0);
    let sink = f.fresh();
    f.set_c(sink, 0);
    f.for_range(0, spin, |f, i| {
        let s = f.add(sink, i);
        f.set(sink, s);
    });
    let v = f.load32(p, 0);
    f.sys_exit(v);
    f.ret(None);
    mb.finish_function(f);
    let m = mb.finish().unwrap();
    let c = compile(&m, isa, &CompileOpts::default()).unwrap();
    SystemImage::build(&c, &[]).unwrap()
}

fn marker_addr(core: &OooCore) -> u32 {
    // The marker global is the module's first global at the data base.
    let _ = core;
    memmap::USER_DATA
}

#[test]
fn l1d_corruption_of_live_data_manifests_as_wd_sdc() {
    let img = marker_image(Isa::Va64, 2000);
    let cfg = CoreModel::A72.config();
    let mut core = OooCore::new(&cfg, &img);
    // Let the store commit and the loop start.
    core.run_until(2000);
    let addr = marker_addr(&core);
    let r = core
        .mem
        .flip_addr_bit(Level::L1d, addr, 1)
        .expect("marker line resident in L1d");
    assert_eq!(r.addr, Some(addr));
    core.run_until(10_000_000);
    let out = core.finish();
    // The program re-reads the marker: corrupted exit code, classified WD.
    assert_eq!(out.sim.status, RunStatus::Exited(0x55 ^ 0x02));
    assert_eq!(out.fpm, Some(Fpm::Wd));
}

#[test]
fn overwrite_before_use_masks_the_fault() {
    // Same setup, but the program overwrites the marker after the spin
    // and before reading it.
    let mut mb = ModuleBuilder::new("t");
    let g = mb.global_zeroed("marker", 64, 4);
    let mut f = mb.function("main", 0);
    let p = f.global_addr(g);
    f.store32(0x55, p, 0);
    let sink = f.fresh();
    f.set_c(sink, 0);
    f.for_range(0, 2000, |f, i| {
        let s = f.add(sink, i);
        f.set(sink, s);
    });
    f.store32(0x77, p, 0); // overwrite repairs any corruption
    let v = f.load32(p, 0);
    f.sys_exit(v);
    f.ret(None);
    mb.finish_function(f);
    let m = mb.finish().unwrap();
    let c = compile(&m, Isa::Va64, &CompileOpts::default()).unwrap();
    let img = SystemImage::build(&c, &[]).unwrap();
    let cfg = CoreModel::A72.config();
    let mut core = OooCore::new(&cfg, &img);
    core.run_until(2000);
    core.mem
        .flip_addr_bit(Level::L1d, memmap::USER_DATA, 3)
        .expect("resident");
    core.run_until(10_000_000);
    let out = core.finish();
    assert_eq!(out.sim.status, RunStatus::Exited(0x77));
    assert!(
        out.fpm.is_none(),
        "overwritten corruption must stay invisible"
    );
}

#[test]
fn rf_fault_extinction_tracks_repair() {
    let img = marker_image(Isa::Va64, 3000);
    let cfg = CoreModel::A72.config();
    let mut core = OooCore::new(&cfg, &img);
    core.run_until(500);
    // Corrupt every physical register bit 0 one at a time is expensive;
    // flip one mid-range register and watch extinction: after the rename
    // cycle reallocates and rewrites it, the fault must be extinct unless
    // it manifested.
    core.inject(HwStructure::RegisterFile, 40 * 64 + 5);
    let mut extinct_seen = false;
    for _ in 0..200_000 {
        core.step_cycle();
        if core.ended() {
            break;
        }
        if core.fault_extinct() {
            extinct_seen = true;
            break;
        }
    }
    let out = core.finish();
    assert!(
        extinct_seen || out.fpm.is_some() || out.sim.status != RunStatus::Exited(0x55),
        "a register fault must either die (repair/rewrite) or manifest"
    );
}

#[test]
fn writeback_carries_corruption_into_l2_and_back() {
    // Corrupt a dirty L1d line, force eviction by sweeping conflicting
    // lines, then reload: the corrupted value must come back from L2.
    let mut mb = ModuleBuilder::new("t");
    // 9 * 8 KiB so that 9 lines alias the same A9 L1d set (4 ways).
    let g = mb.global_zeroed("arena", 9 * 8192, 4);
    let mut f = mb.function("main", 0);
    let p = f.global_addr(g);
    f.store32(0x11, p, 0);
    let sink = f.fresh();
    f.set_c(sink, 0);
    f.for_range(0, 800, |f, i| {
        let s = f.add(sink, i);
        f.set(sink, s);
    });
    // Sweep the aliases to evict the (dirty, corrupted) line.
    f.for_range(1, 9, |f, k| {
        let off = f.mul(k, 8192);
        let q = f.add(p, off);
        let v = f.load32(q, 0);
        let s = f.add(sink, v);
        f.set(sink, s);
    });
    let v = f.load32(p, 0);
    f.sys_exit(v);
    f.ret(None);
    mb.finish_function(f);
    let m = mb.finish().unwrap();
    let c = compile(&m, Isa::Va32, &CompileOpts::default()).unwrap();
    let img = SystemImage::build(&c, &[]).unwrap();
    let cfg = CoreModel::A9.config();
    let mut core = OooCore::new(&cfg, &img);
    core.run_until(1000); // store committed, still spinning
    core.mem
        .flip_addr_bit(Level::L1d, memmap::USER_DATA, 2)
        .expect("resident");
    core.run_until(10_000_000);
    let out = core.finish();
    assert_eq!(
        out.sim.status,
        RunStatus::Exited(0x11 ^ 0x04),
        "corruption must survive the eviction/refill round trip"
    );
    assert_eq!(out.fpm, Some(Fpm::Wd));
}
