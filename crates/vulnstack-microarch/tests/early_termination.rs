//! Soundness of pruned early termination at the core level.
//!
//! The pruning engine ends an injected run as Masked the moment the
//! architectural state re-converges with the golden checkpoint at the
//! same cycle (`OooCore::converged_with`). That is only sound if (a) the
//! continuation from a converged state really does retrace the golden
//! run — same `RunStatus`, same output, same already-latched FPM
//! milestones — and (b) the predicate refuses to fire while *anything*
//! the future can observe still differs, memory included, not just
//! registers. Both halves are checked here directly against the core,
//! with no campaign machinery in between.

use vulnstack_compiler::{compile, CompileOpts};
use vulnstack_isa::Isa;
use vulnstack_kernel::{memmap, SystemImage};
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::{
    CheckpointStore, CoreModel, FaultEventKind, FaultTrace, OooCore, RunStatus,
};
use vulnstack_vir::ModuleBuilder;

const INTERVAL: u64 = 256;
const MAX_SNAPSHOTS: usize = 64;
const BUDGET: u64 = 10_000_000;

/// A loop whose per-iteration intermediates are dead one iteration
/// later: `acc` is recomputed from clean inputs every pass and only the
/// final value reaches the output. A flip caught in the short
/// write-to-read window of an intermediate is consumed (FPM latches),
/// corrupts `acc` for exactly one iteration, and is then fully
/// overwritten — the machine state re-converges with the golden run
/// while the run is still far from its end. The zeroed global gives the
/// memory-divergence test a writable, cache-resident address.
fn rollover_image(isa: Isa) -> SystemImage {
    let mut mb = ModuleBuilder::new("t");
    let _pad = mb.global_zeroed("pad", 64, 4);
    let mut f = mb.function("main", 0);
    let acc = f.fresh();
    let a = f.fresh();
    f.set_c(acc, 1);
    f.set_c(a, 40503);
    f.for_range(0, 300, |f, i| {
        let x = f.xor(a, i);
        let y = f.add(x, 3);
        f.set(acc, y);
    });
    let slot = f.stack_slot(4, 4);
    let p = f.slot_addr(slot);
    f.store32(acc, p, 0);
    f.sys_write(p, 4);
    f.sys_exit(0);
    f.ret(None);
    mb.finish_function(f);
    let m = mb.finish().unwrap();
    let c = compile(&m, isa, &CompileOpts::default()).unwrap();
    SystemImage::build(&c, &[]).unwrap()
}

/// Runs one injected core boundary-by-boundary, applying exactly the
/// pruner's gate: probe only while the fault is architecturally visible
/// (`fpm` latched) and a golden snapshot exists at the current cycle.
/// Returns the core frozen at the first converged boundary.
fn probe_until_converged(
    image: &SystemImage,
    store: &CheckpointStore,
    cycle: u64,
    bit: u64,
) -> Option<(OooCore, u64)> {
    let cfg = CoreModel::A72.config();
    let mut core = OooCore::new(&cfg, image);
    core.run_until(cycle);
    if core.ended() || core.cycle() != cycle {
        return None;
    }
    core.enable_fault_trace(256);
    core.inject(HwStructure::RegisterFile, bit);
    loop {
        let boundary = (core.cycle() / store.interval() + 1) * store.interval();
        if boundary >= BUDGET {
            return None;
        }
        core.run_until(boundary);
        if core.ended() {
            return None;
        }
        if core.fpm().is_some() {
            if let Some(golden) = store.at_cycle(core.cycle()) {
                if core.converged_with(golden) {
                    let at = core.cycle();
                    return Some((core, at));
                }
            }
        }
        store.at_cycle(boundary)?;
    }
}

fn first_visible(trace: &FaultTrace) -> Option<(vulnstack_microarch::ooo::Fpm, u64)> {
    trace.counts().first_visible
}

#[test]
fn early_terminated_run_matches_the_full_run_it_replaces() {
    let image = rollover_image(Isa::Va64);
    let cfg = CoreModel::A72.config();
    let (store, golden) = CheckpointStore::record(&cfg, &image, INTERVAL, MAX_SNAPSHOTS, BUDGET);
    assert_eq!(golden.sim.status, RunStatus::Exited(0));
    let golden_cycles = golden.sim.cycles;
    assert!(golden_cycles > 2 * store.interval(), "program too short");

    // Deterministic grid search for a site where the pruner's gate
    // fires strictly before the program ends: the fault must have
    // become architecturally visible (FPM latched) *and* the machine
    // must have re-converged with the golden checkpoint.
    let bits = HwStructure::RegisterFile.bits(&cfg);
    let mut hit = None;
    'search: for bit in (0..bits).step_by(7) {
        for cycle in (store.interval()..golden_cycles).step_by(37) {
            if let Some((core, at)) = probe_until_converged(&image, &store, cycle, bit) {
                hit = Some((core, at, cycle, bit));
                break 'search;
            }
        }
    }
    let (core, conv_cycle, cycle, bit) = hit.expect(
        "no register-file site produced a visible-then-reconverged fault; \
         the early-termination path would be dead code",
    );
    assert!(
        conv_cycle < golden_cycles,
        "convergence at {conv_cycle} must beat the golden end {golden_cycles} to save anything"
    );
    assert_eq!(conv_cycle % store.interval(), 0);

    // The early record the pruner would emit at the converged boundary.
    let fpm_early = core.fpm();
    let fpm_cycle_early = core.fpm_cycle();
    assert!(fpm_early.is_some(), "probe is gated on a latched FPM");
    let mut early = core.clone();
    early.note_pruned_extinct();
    let early_trace = early.fault_trace().expect("trace enabled").clone();

    // Continue the *same* converged core to completion: the claim under
    // test is that this continuation retraces the golden run exactly.
    let mut full = core;
    full.run_until(golden_cycles * 8 + 500_000);
    let out = full.finish();
    assert_eq!(
        out.sim.status, golden.sim.status,
        "site (cycle {cycle}, bit {bit}): converged run must end with the golden status"
    );
    assert_eq!(
        out.sim.output, golden.sim.output,
        "site (cycle {cycle}, bit {bit}): converged run must produce the golden output"
    );
    // Milestones already latched at the early stop are final: running to
    // completion must not move or change them.
    assert_eq!(out.fpm, fpm_early);
    assert_eq!(out.fpm_cycle, fpm_cycle_early);
    let full_trace = out.ftrace.expect("trace enabled");
    assert_eq!(first_visible(&full_trace), first_visible(&early_trace));

    // The early trace records *why* the run ended: a PrunedExtinct event
    // at the converged boundary, latching the extinction cycle. The full
    // run never saw one.
    assert!(
        early_trace
            .events()
            .any(|e| e.kind == FaultEventKind::PrunedExtinct && e.cycle == conv_cycle),
        "early trace must carry PrunedExtinct at cycle {conv_cycle}"
    );
    assert_eq!(early_trace.counts().extinct_cycle, Some(conv_cycle));
    assert!(
        !full_trace
            .events()
            .any(|e| e.kind == FaultEventKind::PrunedExtinct),
        "the full run must not claim a pruned extinction"
    );
}

#[test]
fn convergence_refuses_when_memory_differs_even_with_identical_registers() {
    let image = rollover_image(Isa::Va64);
    let cfg = CoreModel::A72.config();
    let mut base = OooCore::new(&cfg, &image);
    base.run_until(512);
    assert!(!base.ended());
    let addr = memmap::USER_DATA; // the zeroed `pad` global

    // Two futures of the same machine perform the *same* access sequence
    // (identical cache/LRU evolution, identical registers and pipeline)
    // but deposit different data. Memory is then the only difference —
    // and it must be enough to veto termination.
    let mut a = base.clone();
    let mut b = base.clone();
    a.mem.store(addr, 4, 0xAAAA_AAAA);
    b.mem.store(addr, 4, 0x5555_5555);
    assert!(
        !a.converged_with(&b),
        "divergent memory with identical registers must block early termination"
    );
    assert!(
        !b.converged_with(&a),
        "the predicate must be symmetric here"
    );

    // Same stores, same values: now nothing differs and the predicate
    // must accept — proving the refusal above was the data, not the
    // store traffic itself.
    let mut c = base.clone();
    c.mem.store(addr, 4, 0xAAAA_AAAA);
    assert!(a.converged_with(&c));
    assert!(base.converged_with(&base.clone()));
}

/// A program whose only heavy work is a single 64 KiB `sys_write`: the
/// kernel's output-copy loop (a direct `beq count, zero` loop in the
/// trap handler, the same code a corrupted count turns into the most
/// expensive hang a campaign can draw) dominates the run, giving the
/// runaway prover a long kernel-mode affine loop to certify against.
fn big_write_image(isa: Isa) -> SystemImage {
    const LEN: i32 = 65_536;
    let mut mb = ModuleBuilder::new("w");
    let buf = mb.global_zeroed("buf", LEN as usize, 4);
    let mut f = mb.function("main", 0);
    let p = f.global_addr(buf);
    f.sys_write(p, LEN);
    f.sys_exit(0);
    f.ret(None);
    mb.finish_function(f);
    let m = mb.finish().unwrap();
    let c = compile(&m, isa, &CompileOpts::default()).unwrap();
    SystemImage::build(&c, &[]).unwrap()
}

#[test]
fn proven_hang_certificate_is_exact_on_the_kernel_copy_loop() {
    let image = big_write_image(Isa::Va64);
    let cfg = CoreModel::A72.config();

    // Reference run: the program is healthy and exits cleanly.
    let mut g = OooCore::new(&cfg, &image);
    g.run_until(BUDGET);
    assert!(g.ended(), "the 64 KiB write must finish within the budget");
    let gout = g.finish();
    assert_eq!(gout.sim.status, RunStatus::Exited(0));
    let end = gout.sim.cycles;

    // Scan the same run for a kernel-mode stop where the prover
    // certifies a deliberately small pseudo-budget: mid-copy, the loop
    // provably cannot finish within the next 30k cycles.
    const PSEUDO: u64 = 30_000;
    let mut core = OooCore::new(&cfg, &image);
    core.enable_fault_trace(16);
    let mut proved = None;
    while core.cycle() + 2_048 < end {
        core.run_until(core.cycle() + 1_024);
        if core.ended() {
            break;
        }
        if core.in_user_mode() {
            continue;
        }
        core.enable_trace(8_192);
        core.run_until(core.cycle() + 512);
        if core.ended() {
            break;
        }
        let budget = core.cycle() + PSEUDO;
        if core.timeout_proven(budget) {
            proved = Some(budget);
            break;
        }
    }
    let pseudo_budget = proved.expect(
        "the kernel copy loop must be certifiable mid-copy; \
         the proven-hang path would be dead code",
    );

    // Same machine state, a budget beyond the loop's real exit: the
    // congruence solver sees the exit inside the horizon and must
    // refuse — the certificate is about the budget, not the program.
    assert!(
        !core.timeout_proven(end + 1_000_000),
        "a budget past the loop's exit must not be certified"
    );

    // The pruner records the proof as a lifetime milestone.
    core.note_proven_hang();
    assert!(core
        .fault_trace()
        .expect("trace enabled")
        .events()
        .any(|e| e.kind == FaultEventKind::ProvenHang));

    // Exactness: the run really cannot end before the certified budget…
    core.run_until(pseudo_budget);
    assert!(
        !core.ended() || core.cycle() >= pseudo_budget,
        "certified Timeout, but the run ended at {} < {pseudo_budget}",
        core.cycle()
    );
    // …and afterwards it still finishes the copy and exits cleanly,
    // confirming nothing the prover touched perturbed the machine.
    core.run_until(BUDGET);
    assert!(core.ended());
    assert_eq!(core.finish().sim.status, RunStatus::Exited(0));
}

#[test]
fn prover_refuses_a_run_that_is_about_to_end() {
    // Mid-way through the 300-iteration user loop: the branch is fed by
    // a compare *result* (outside the affine fragment), and the run ends
    // well inside any certifiable budget. A `true` here would be a
    // soundness bug, which the tail of the test demonstrates directly.
    let image = rollover_image(Isa::Va64);
    let cfg = CoreModel::A72.config();
    let mut core = OooCore::new(&cfg, &image);
    core.run_until(1_024);
    assert!(!core.ended());
    core.enable_trace(8_192);
    core.run_until(core.cycle() + 512);
    assert!(!core.ended());
    let budget = core.cycle() + 1_000_000;
    assert!(
        !core.timeout_proven(budget),
        "a healthy run must never be certified as a hang"
    );
    core.run_until(budget);
    assert!(
        core.ended() && core.cycle() < budget,
        "the run was supposed to end before the probed budget"
    );
}

#[test]
fn frozen_detector_refuses_active_pipelines_and_empty_windows() {
    let image = rollover_image(Isa::Va64);
    let cfg = CoreModel::A72.config();
    let mut core = OooCore::new(&cfg, &image);
    core.run_until(512);
    assert!(!core.ended());
    let anchor = core.clone();
    // An empty window proves nothing: the detector needs strictly
    // elapsed cycles with bit-identical behavioral state.
    assert!(!core.frozen_with(&anchor));
    // A window in which the pipeline committed is the opposite of
    // frozen.
    core.run_until(1_024);
    assert!(!core.ended());
    assert!(!core.frozen_with(&anchor));
}
