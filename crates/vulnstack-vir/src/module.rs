//! Modules, functions, blocks and globals.

use serde::{Deserialize, Serialize};

use crate::instr::VInstr;
use crate::types::{BlockId, FuncId, GlobalId, SlotId};

/// A basic block: straight-line instructions ending in one terminator.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Block {
    /// Instructions, the last of which is a terminator once the function is
    /// finished.
    pub instrs: Vec<VInstr>,
}

/// A stack slot in a function frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameSlot {
    /// Slot size in bytes.
    pub size: u32,
    /// Required alignment in bytes (power of two).
    pub align: u32,
}

/// A function: parameters arrive in virtual registers `%0..%nparams`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Function name (diagnostics only).
    pub name: String,
    /// Number of parameters.
    pub num_params: u32,
    /// Total number of virtual registers used (params included).
    pub num_vregs: u32,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Frame slots addressable via [`VInstr::SlotAddr`].
    pub slots: Vec<FrameSlot>,
}

impl Function {
    /// Iterates over `(block id, instruction index, instruction)`.
    pub fn iter_instrs(&self) -> impl Iterator<Item = (BlockId, usize, &VInstr)> {
        self.blocks.iter().enumerate().flat_map(|(b, blk)| {
            blk.instrs
                .iter()
                .enumerate()
                .map(move |(i, ins)| (BlockId(b as u32), i, ins))
        })
    }

    /// Total static instruction count.
    pub fn num_instrs(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Frame size in bytes with each slot aligned, itself rounded up to 16.
    pub fn frame_size(&self) -> u32 {
        let mut off = 0u32;
        for s in &self.slots {
            off = (off + s.align - 1) & !(s.align - 1);
            off += s.size;
        }
        (off + 15) & !15
    }

    /// Byte offset of `slot` within the frame.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn slot_offset(&self, slot: SlotId) -> u32 {
        let mut off = 0u32;
        for (i, s) in self.slots.iter().enumerate() {
            off = (off + s.align - 1) & !(s.align - 1);
            if i == slot.0 as usize {
                return off;
            }
            off += s.size;
        }
        panic!("slot {slot:?} out of range");
    }
}

/// A module-level global data object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Global {
    /// Name (diagnostics only).
    pub name: String,
    /// Initial contents; the global's size equals `init.len()`.
    pub init: Vec<u8>,
    /// Required alignment (power of two).
    pub align: u32,
}

/// A VIR module: functions plus global data. Execution starts at
/// [`Module::entry`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Functions; [`FuncId`] indexes this vector.
    pub functions: Vec<Function>,
    /// Globals; [`GlobalId`] indexes this vector.
    pub globals: Vec<Global>,
    /// The entry function (conventionally `main`).
    pub entry: FuncId,
}

impl Module {
    /// Looks up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// The entry function.
    pub fn entry_function(&self) -> &Function {
        &self.functions[self.entry.0 as usize]
    }

    /// Total static instruction count over all functions.
    pub fn num_instrs(&self) -> usize {
        self.functions.iter().map(|f| f.num_instrs()).sum()
    }

    /// Resolves a global.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_layout_respects_alignment() {
        let f = Function {
            name: "t".into(),
            num_params: 0,
            num_vregs: 0,
            blocks: vec![],
            slots: vec![
                FrameSlot { size: 1, align: 1 },
                FrameSlot { size: 4, align: 4 },
                FrameSlot { size: 8, align: 8 },
            ],
        };
        assert_eq!(f.slot_offset(SlotId(0)), 0);
        assert_eq!(f.slot_offset(SlotId(1)), 4);
        assert_eq!(f.slot_offset(SlotId(2)), 8);
        assert_eq!(f.frame_size(), 16);
    }

    #[test]
    fn frame_size_rounds_to_16() {
        let f = Function {
            name: "t".into(),
            num_params: 0,
            num_vregs: 0,
            blocks: vec![],
            slots: vec![FrameSlot { size: 20, align: 4 }],
        };
        assert_eq!(f.frame_size(), 32);
    }
}

impl std::fmt::Display for Function {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fn {}({} params, {} vregs) {{",
            self.name, self.num_params, self.num_vregs
        )?;
        for (i, s) in self.slots.iter().enumerate() {
            writeln!(f, "  slot{i}: {} bytes align {}", s.size, s.align)?;
        }
        for (b, blk) in self.blocks.iter().enumerate() {
            writeln!(f, "bb{b}:")?;
            for ins in &blk.instrs {
                writeln!(f, "  {ins}")?;
            }
        }
        write!(f, "}}")
    }
}

impl std::fmt::Display for Module {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "module {} ({} functions, {} globals)",
            self.name,
            self.functions.len(),
            self.globals.len()
        )?;
        for (i, g) in self.globals.iter().enumerate() {
            writeln!(
                f,
                "g{i}: {} = {} bytes align {}",
                g.name,
                g.init.len(),
                g.align
            )?;
        }
        for func in &self.functions {
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod display_tests {
    use crate::builder::ModuleBuilder;

    #[test]
    fn module_display_contains_structure() {
        let mut mb = ModuleBuilder::new("demo");
        let _g = mb.global_words("tbl", &[1, 2]);
        let mut f = mb.function("main", 0);
        let a = f.c(1);
        let _ = f.add(a, 2);
        f.sys_exit(0);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        let s = m.to_string();
        assert!(s.contains("module demo"));
        assert!(s.contains("fn main"));
        assert!(s.contains("bb0:"));
        assert!(s.contains("const 1"));
        assert!(s.contains("g0: tbl"));
    }
}
