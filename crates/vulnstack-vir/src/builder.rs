//! Ergonomic construction of VIR modules.
//!
//! The builder is the authoring surface for the workload suite: it keeps
//! workload code close to the shape of the original C sources while staying
//! plain Rust.

use std::collections::HashMap;

use vulnstack_isa::Syscall;

use crate::instr::VInstr;
use crate::module::{Block, FrameSlot, Function, Global, Module};
use crate::types::{BinOp, BlockId, CmpPred, FuncId, GlobalId, MemWidth, Operand, SlotId, VReg};
use crate::verify::{verify_module, VerifyError};

/// Builds a [`Module`]: declare globals and functions, fill each function
/// with a [`FuncBuilder`], then [`ModuleBuilder::finish`].
#[derive(Debug)]
pub struct ModuleBuilder {
    name: String,
    functions: Vec<Option<Function>>,
    fn_names: HashMap<String, FuncId>,
    fn_params: Vec<u32>,
    globals: Vec<Global>,
}

impl ModuleBuilder {
    /// Creates an empty module builder.
    pub fn new(name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder {
            name: name.into(),
            functions: Vec::new(),
            fn_names: HashMap::new(),
            fn_params: Vec::new(),
            globals: Vec::new(),
        }
    }

    /// Forward-declares a function so it can be called before its body is
    /// built. Declaring the same name twice returns the same id.
    ///
    /// # Panics
    ///
    /// Panics if re-declared with a different parameter count.
    pub fn declare(&mut self, name: &str, num_params: u32) -> FuncId {
        if let Some(&id) = self.fn_names.get(name) {
            assert_eq!(
                self.fn_params[id.0 as usize], num_params,
                "function {name} re-declared with different arity"
            );
            return id;
        }
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(None);
        self.fn_params.push(num_params);
        self.fn_names.insert(name.to_string(), id);
        id
    }

    /// Starts building the body of `name` (declaring it if necessary).
    pub fn function(&mut self, name: &str, num_params: u32) -> FuncBuilder {
        let id = self.declare(name, num_params);
        FuncBuilder::new(id, name, num_params)
    }

    /// Installs a finished function body.
    ///
    /// # Panics
    ///
    /// Panics if the body was already installed.
    pub fn finish_function(&mut self, fb: FuncBuilder) {
        let slot = &mut self.functions[fb.id.0 as usize];
        assert!(slot.is_none(), "function {} defined twice", fb.f.name);
        *slot = Some(fb.f);
    }

    /// Adds an initialised global.
    pub fn global(&mut self, name: &str, init: Vec<u8>, align: u32) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Global {
            name: name.to_string(),
            init,
            align,
        });
        id
    }

    /// Adds a zero-initialised global of `size` bytes.
    pub fn global_zeroed(&mut self, name: &str, size: usize, align: u32) -> GlobalId {
        self.global(name, vec![0; size], align)
    }

    /// Adds a global initialised from 32-bit little-endian words.
    pub fn global_words(&mut self, name: &str, words: &[i32]) -> GlobalId {
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.global(name, bytes, 4)
    }

    /// Finalises the module, verifying it.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] if a declared function has no body, `main`
    /// is missing, or any structural rule is violated.
    pub fn finish(self) -> Result<Module, VerifyError> {
        let mut functions = Vec::with_capacity(self.functions.len());
        for (i, f) in self.functions.into_iter().enumerate() {
            match f {
                Some(f) => functions.push(f),
                None => {
                    let name = self
                        .fn_names
                        .iter()
                        .find(|(_, id)| id.0 as usize == i)
                        .map(|(n, _)| n.clone())
                        .unwrap_or_default();
                    return Err(VerifyError::MissingBody { name });
                }
            }
        }
        let entry = *self.fn_names.get("main").ok_or(VerifyError::MissingBody {
            name: "main".into(),
        })?;
        let module = Module {
            name: self.name,
            functions,
            globals: self.globals,
            entry,
        };
        verify_module(&module)?;
        Ok(module)
    }
}

/// Builds one function body block-by-block.
///
/// Value-producing helpers allocate a fresh virtual register and return it.
/// Loop variables are modelled by allocating a register with
/// [`FuncBuilder::fresh`] and re-assigning it with [`FuncBuilder::set`] /
/// [`FuncBuilder::set_c`].
#[derive(Debug)]
pub struct FuncBuilder {
    id: FuncId,
    f: Function,
    cur: BlockId,
}

impl FuncBuilder {
    fn new(id: FuncId, name: &str, num_params: u32) -> FuncBuilder {
        FuncBuilder {
            id,
            f: Function {
                name: name.to_string(),
                num_params,
                num_vregs: num_params,
                blocks: vec![Block::default()],
                slots: Vec::new(),
            },
            cur: BlockId(0),
        }
    }

    /// This function's id (usable for recursive calls).
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// The i-th parameter register.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: u32) -> VReg {
        assert!(i < self.f.num_params, "param {i} out of range");
        VReg(i)
    }

    /// Allocates a fresh virtual register (uninitialised).
    pub fn fresh(&mut self) -> VReg {
        let r = VReg(self.f.num_vregs);
        self.f.num_vregs += 1;
        r
    }

    /// Allocates a new basic block.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.f.blocks.len() as u32);
        self.f.blocks.push(Block::default());
        id
    }

    /// Switches the insertion point to `bb`.
    pub fn switch_to(&mut self, bb: BlockId) {
        self.cur = bb;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Adds a frame slot of `size` bytes with `align` alignment.
    pub fn stack_slot(&mut self, size: u32, align: u32) -> SlotId {
        assert!(align.is_power_of_two());
        let id = SlotId(self.f.slots.len() as u32);
        self.f.slots.push(FrameSlot { size, align });
        id
    }

    fn emit(&mut self, i: VInstr) {
        self.f.blocks[self.cur.0 as usize].instrs.push(i);
    }

    fn emit_val(&mut self, mk: impl FnOnce(VReg) -> VInstr) -> VReg {
        let dst = self.fresh();
        self.emit(mk(dst));
        dst
    }

    /// Emits a constant.
    pub fn c(&mut self, value: i32) -> VReg {
        self.emit_val(|dst| VInstr::Const { dst, value })
    }

    /// Emits a binary operation.
    pub fn bin(&mut self, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        let (a, b) = (a.into(), b.into());
        self.emit_val(|dst| VInstr::Bin { dst, op, a, b })
    }

    /// Re-assigns `dst = src` (copy).
    pub fn set(&mut self, dst: VReg, src: impl Into<Operand>) {
        let a = src.into();
        self.emit(VInstr::Bin {
            dst,
            op: BinOp::Add,
            a,
            b: Operand::Imm(0),
        });
    }

    /// Re-assigns `dst = value` (constant).
    pub fn set_c(&mut self, dst: VReg, value: i32) {
        self.emit(VInstr::Const { dst, value });
    }

    /// Emits a comparison producing 0/1.
    pub fn cmp(&mut self, pred: CmpPred, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        let (a, b) = (a.into(), b.into());
        self.emit_val(|dst| VInstr::Cmp { dst, pred, a, b })
    }

    /// Emits `select cond, a, b`.
    pub fn select(
        &mut self,
        cond: impl Into<Operand>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> VReg {
        let (cond, a, b) = (cond.into(), a.into(), b.into());
        self.emit_val(|dst| VInstr::Select { dst, cond, a, b })
    }

    /// Emits a load.
    pub fn load(&mut self, width: MemWidth, base: impl Into<Operand>, offset: i32) -> VReg {
        let base = base.into();
        self.emit_val(|dst| VInstr::Load {
            dst,
            width,
            base,
            offset,
        })
    }

    /// Emits a store.
    pub fn store(
        &mut self,
        width: MemWidth,
        value: impl Into<Operand>,
        base: impl Into<Operand>,
        offset: i32,
    ) {
        let (value, base) = (value.into(), base.into());
        self.emit(VInstr::Store {
            width,
            value,
            base,
            offset,
        });
    }

    /// Emits `&global`.
    pub fn global_addr(&mut self, global: GlobalId) -> VReg {
        self.emit_val(|dst| VInstr::GlobalAddr { dst, global })
    }

    /// Emits `&slot`.
    pub fn slot_addr(&mut self, slot: SlotId) -> VReg {
        self.emit_val(|dst| VInstr::SlotAddr { dst, slot })
    }

    /// Emits a call whose result is captured.
    pub fn call(&mut self, func: FuncId, args: &[Operand]) -> VReg {
        let args = args.to_vec();
        self.emit_val(|dst| VInstr::Call {
            dst: Some(dst),
            func,
            args,
        })
    }

    /// Emits a call discarding any result.
    pub fn call_void(&mut self, func: FuncId, args: &[Operand]) {
        self.emit(VInstr::Call {
            dst: None,
            func,
            args: args.to_vec(),
        });
    }

    /// Emits `write(ptr, len)`.
    pub fn sys_write(&mut self, ptr: impl Into<Operand>, len: impl Into<Operand>) {
        let args = vec![ptr.into(), len.into()];
        self.emit(VInstr::Syscall {
            dst: None,
            sc: Syscall::Write,
            args,
        });
    }

    /// Emits `read(ptr, len) -> copied`.
    pub fn sys_read(&mut self, ptr: impl Into<Operand>, len: impl Into<Operand>) -> VReg {
        let args = vec![ptr.into(), len.into()];
        self.emit_val(|dst| VInstr::Syscall {
            dst: Some(dst),
            sc: Syscall::Read,
            args,
        })
    }

    /// Emits `brk(delta) -> old_break`.
    pub fn sys_brk(&mut self, delta: impl Into<Operand>) -> VReg {
        let args = vec![delta.into()];
        self.emit_val(|dst| VInstr::Syscall {
            dst: Some(dst),
            sc: Syscall::Brk,
            args,
        })
    }

    /// Emits `exit(code)`.
    pub fn sys_exit(&mut self, code: impl Into<Operand>) {
        let args = vec![code.into()];
        self.emit(VInstr::Syscall {
            dst: None,
            sc: Syscall::Exit,
            args,
        });
    }

    /// Emits `detect(code)` — fault-tolerance check failure.
    pub fn sys_detect(&mut self, code: impl Into<Operand>) {
        let args = vec![code.into()];
        self.emit(VInstr::Syscall {
            dst: None,
            sc: Syscall::Detect,
            args,
        });
    }

    /// Emits an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.emit(VInstr::Br { target });
    }

    /// Emits a conditional branch on `cond != 0`.
    pub fn cond_br(&mut self, cond: impl Into<Operand>, then_bb: BlockId, else_bb: BlockId) {
        let cond = cond.into();
        self.emit(VInstr::CondBr {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Emits a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.emit(VInstr::Ret { value });
    }

    // Convenience arithmetic wrappers -------------------------------------

    /// `a + b`.
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Add, a, b)
    }
    /// `a - b`.
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Sub, a, b)
    }
    /// `a * b` (low 32 bits).
    pub fn mul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Mul, a, b)
    }
    /// High half of the signed product.
    pub fn mulhs(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::MulHS, a, b)
    }
    /// Signed division.
    pub fn divs(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::DivS, a, b)
    }
    /// Unsigned division.
    pub fn divu(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::DivU, a, b)
    }
    /// Signed remainder.
    pub fn rems(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::RemS, a, b)
    }
    /// Unsigned remainder.
    pub fn remu(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::RemU, a, b)
    }
    /// Bitwise AND.
    pub fn and(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::And, a, b)
    }
    /// Bitwise OR.
    pub fn or(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Or, a, b)
    }
    /// Bitwise XOR.
    pub fn xor(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Xor, a, b)
    }
    /// Left shift.
    pub fn shl(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Shl, a, b)
    }
    /// Logical right shift.
    pub fn shrl(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::ShrL, a, b)
    }
    /// Arithmetic right shift.
    pub fn shra(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::ShrA, a, b)
    }

    // Convenience comparison wrappers --------------------------------------

    /// `a == b`.
    pub fn eq(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.cmp(CmpPred::Eq, a, b)
    }
    /// `a != b`.
    pub fn ne(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.cmp(CmpPred::Ne, a, b)
    }
    /// Signed `a < b`.
    pub fn slt(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.cmp(CmpPred::SLt, a, b)
    }
    /// Signed `a >= b`.
    pub fn sge(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.cmp(CmpPred::SGe, a, b)
    }
    /// Unsigned `a < b`.
    pub fn ult(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.cmp(CmpPred::ULt, a, b)
    }

    // Convenience memory wrappers -------------------------------------------

    /// 32-bit load.
    pub fn load32(&mut self, base: impl Into<Operand>, offset: i32) -> VReg {
        self.load(MemWidth::W, base, offset)
    }
    /// Unsigned byte load.
    pub fn load8u(&mut self, base: impl Into<Operand>, offset: i32) -> VReg {
        self.load(MemWidth::BU, base, offset)
    }
    /// Signed byte load.
    pub fn load8s(&mut self, base: impl Into<Operand>, offset: i32) -> VReg {
        self.load(MemWidth::B, base, offset)
    }
    /// Unsigned halfword load.
    pub fn load16u(&mut self, base: impl Into<Operand>, offset: i32) -> VReg {
        self.load(MemWidth::HU, base, offset)
    }
    // Structured control-flow helpers -------------------------------------

    /// Emits `for (i = start; i < end; i++) body(i)` with a signed
    /// comparison. `end` is evaluated once, before the loop. The insertion
    /// point ends in the loop-exit block.
    pub fn for_range(
        &mut self,
        start: impl Into<Operand>,
        end: impl Into<Operand>,
        body: impl FnOnce(&mut FuncBuilder, VReg),
    ) {
        let (start, end) = (start.into(), end.into());
        let i = self.fresh();
        self.set(i, start);
        let head = self.new_block();
        let body_bb = self.new_block();
        let exit = self.new_block();
        self.br(head);
        self.switch_to(head);
        let c = self.cmp(CmpPred::SLt, i, end);
        self.cond_br(c, body_bb, exit);
        self.switch_to(body_bb);
        body(self, i);
        let i2 = self.add(i, 1);
        self.set(i, i2);
        self.br(head);
        self.switch_to(exit);
    }

    /// Emits `while (cond()) body()`. `cond` runs at the loop head each
    /// iteration and returns the loop-continue flag register. The insertion
    /// point ends in the loop-exit block.
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut FuncBuilder) -> VReg,
        body: impl FnOnce(&mut FuncBuilder),
    ) {
        let head = self.new_block();
        let body_bb = self.new_block();
        let exit = self.new_block();
        self.br(head);
        self.switch_to(head);
        let c = cond(self);
        self.cond_br(c, body_bb, exit);
        self.switch_to(body_bb);
        body(self);
        self.br(head);
        self.switch_to(exit);
    }

    /// Emits `if (cond != 0) then_body()` with no else branch. The
    /// insertion point ends in the join block.
    pub fn if_then(&mut self, cond: impl Into<Operand>, then_body: impl FnOnce(&mut FuncBuilder)) {
        let cond = cond.into();
        let then_bb = self.new_block();
        let join = self.new_block();
        self.cond_br(cond, then_bb, join);
        self.switch_to(then_bb);
        then_body(self);
        self.br(join);
        self.switch_to(join);
    }

    /// Emits `if (cond != 0) then_body() else else_body()`. The insertion
    /// point ends in the join block.
    pub fn if_else(
        &mut self,
        cond: impl Into<Operand>,
        then_body: impl FnOnce(&mut FuncBuilder),
        else_body: impl FnOnce(&mut FuncBuilder),
    ) {
        let cond = cond.into();
        let then_bb = self.new_block();
        let else_bb = self.new_block();
        let join = self.new_block();
        self.cond_br(cond, then_bb, else_bb);
        self.switch_to(then_bb);
        then_body(self);
        self.br(join);
        self.switch_to(else_bb);
        else_body(self);
        self.br(join);
        self.switch_to(join);
    }

    /// 32-bit store.
    pub fn store32(&mut self, value: impl Into<Operand>, base: impl Into<Operand>, offset: i32) {
        self.store(MemWidth::W, value, base, offset);
    }
    /// Byte store.
    pub fn store8(&mut self, value: impl Into<Operand>, base: impl Into<Operand>, offset: i32) {
        self.store(MemWidth::B, value, base, offset);
    }
    /// Halfword store.
    pub fn store16(&mut self, value: impl Into<Operand>, base: impl Into<Operand>, offset: i32) {
        self.store(MemWidth::H, value, base, offset);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_minimal_module() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        let a = f.c(1);
        let b = f.add(a, 2);
        f.sys_exit(b);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.entry_function().name, "main");
        assert_eq!(m.num_instrs(), 4);
    }

    #[test]
    fn missing_main_is_rejected() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("helper", 0);
        f.ret(None);
        mb.finish_function(f);
        assert!(mb.finish().is_err());
    }

    #[test]
    fn missing_body_is_rejected() {
        let mut mb = ModuleBuilder::new("t");
        mb.declare("ghost", 1);
        let mut f = mb.function("main", 0);
        f.ret(None);
        mb.finish_function(f);
        assert!(matches!(mb.finish(), Err(VerifyError::MissingBody { .. })));
    }

    #[test]
    fn declare_is_idempotent() {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.declare("f", 2);
        let b = mb.declare("f", 2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "different arity")]
    fn declare_arity_mismatch_panics() {
        let mut mb = ModuleBuilder::new("t");
        mb.declare("f", 2);
        mb.declare("f", 3);
    }
}

#[cfg(test)]
mod control_flow_tests {
    use super::*;
    use crate::interp::{Interpreter, RunStatus};

    fn run_main(build: impl FnOnce(&mut FuncBuilder)) -> i32 {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        build(&mut f);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        match Interpreter::new(&m).run().unwrap().status {
            RunStatus::Exited(c) => c,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_range_covers_exact_bounds() {
        let got = run_main(|f| {
            let acc = f.fresh();
            f.set_c(acc, 0);
            f.for_range(3, 7, |f, i| {
                let s = f.add(acc, i);
                f.set(acc, s);
            });
            f.sys_exit(acc);
        });
        assert_eq!(got, 3 + 4 + 5 + 6);
    }

    #[test]
    fn for_range_with_empty_interval_runs_zero_times() {
        let got = run_main(|f| {
            let acc = f.fresh();
            f.set_c(acc, 42);
            f.for_range(5, 5, |f, _| f.set_c(acc, -1));
            f.for_range(9, 2, |f, _| f.set_c(acc, -2));
            f.sys_exit(acc);
        });
        assert_eq!(got, 42);
    }

    #[test]
    fn while_loop_runs_until_condition_fails() {
        let got = run_main(|f| {
            let x = f.fresh();
            f.set_c(x, 1);
            f.while_loop(
                |f| f.slt(x, 100),
                |f| {
                    let d = f.mul(x, 2);
                    f.set(x, d);
                },
            );
            f.sys_exit(x);
        });
        assert_eq!(got, 128);
    }

    #[test]
    fn nested_if_else_joins_correctly() {
        let got = run_main(|f| {
            let out = f.fresh();
            f.set_c(out, 0);
            let a = f.c(1);
            f.if_else(
                a,
                |f| {
                    let b = f.c(0);
                    f.if_else(b, |f| f.set_c(out, 10), |f| f.set_c(out, 20));
                },
                |f| f.set_c(out, 30),
            );
            let plus = f.add(out, 1);
            f.sys_exit(plus);
        });
        assert_eq!(got, 21);
    }

    #[test]
    fn if_then_skips_when_false() {
        let got = run_main(|f| {
            let out = f.fresh();
            f.set_c(out, 5);
            let z = f.c(0);
            f.if_then(z, |f| f.set_c(out, 99));
            f.sys_exit(out);
        });
        assert_eq!(got, 5);
    }
}
