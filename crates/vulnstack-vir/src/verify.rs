//! Structural verification of VIR modules.

use crate::instr::VInstr;
use crate::module::{Function, Module};
use crate::types::{FuncId, Operand, VReg};

/// A structural defect found in a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A declared function has no body (or `main` is absent).
    MissingBody { name: String },
    /// A block is empty.
    EmptyBlock { func: String, block: u32 },
    /// A block does not end with a terminator.
    NoTerminator { func: String, block: u32 },
    /// A terminator appears before the end of a block.
    EarlyTerminator {
        func: String,
        block: u32,
        index: usize,
    },
    /// A branch targets a nonexistent block.
    BadBlockTarget {
        func: String,
        block: u32,
        target: u32,
    },
    /// A call references a nonexistent function.
    BadCallee { func: String, callee: u32 },
    /// A call passes the wrong number of arguments.
    BadArity {
        func: String,
        callee: String,
        expected: u32,
        got: usize,
    },
    /// A register index exceeds the function's register count.
    BadVReg { func: String, vreg: u32 },
    /// A global or slot reference is out of range.
    BadRef {
        func: String,
        what: &'static str,
        index: u32,
    },
    /// The entry function must take no parameters.
    EntryHasParams { name: String },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::MissingBody { name } => write!(f, "function {name} has no body"),
            VerifyError::EmptyBlock { func, block } => write!(f, "{func}: bb{block} is empty"),
            VerifyError::NoTerminator { func, block } => {
                write!(f, "{func}: bb{block} does not end with a terminator")
            }
            VerifyError::EarlyTerminator { func, block, index } => {
                write!(
                    f,
                    "{func}: bb{block} has a terminator at index {index} before the end"
                )
            }
            VerifyError::BadBlockTarget {
                func,
                block,
                target,
            } => {
                write!(f, "{func}: bb{block} branches to nonexistent bb{target}")
            }
            VerifyError::BadCallee { func, callee } => {
                write!(f, "{func}: call to nonexistent function f{callee}")
            }
            VerifyError::BadArity {
                func,
                callee,
                expected,
                got,
            } => {
                write!(
                    f,
                    "{func}: call to {callee} with {got} args (expects {expected})"
                )
            }
            VerifyError::BadVReg { func, vreg } => {
                write!(f, "{func}: register %{vreg} out of range")
            }
            VerifyError::BadRef { func, what, index } => {
                write!(f, "{func}: {what} reference {index} out of range")
            }
            VerifyError::EntryHasParams { name } => {
                write!(f, "entry function {name} must take no parameters")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies structural invariants of an entire module.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    let entry = m.entry_function();
    if entry.num_params != 0 {
        return Err(VerifyError::EntryHasParams {
            name: entry.name.clone(),
        });
    }
    for f in &m.functions {
        verify_function(m, f)?;
    }
    Ok(())
}

fn check_reg(f: &Function, r: VReg) -> Result<(), VerifyError> {
    if r.0 < f.num_vregs {
        Ok(())
    } else {
        Err(VerifyError::BadVReg {
            func: f.name.clone(),
            vreg: r.0,
        })
    }
}

fn check_operand(f: &Function, o: &Operand) -> Result<(), VerifyError> {
    match o {
        Operand::Reg(r) => check_reg(f, *r),
        Operand::Imm(_) => Ok(()),
    }
}

/// Verifies one function.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_function(m: &Module, f: &Function) -> Result<(), VerifyError> {
    let nblocks = f.blocks.len() as u32;
    for (b, blk) in f.blocks.iter().enumerate() {
        let b = b as u32;
        let Some(last) = blk.instrs.last() else {
            return Err(VerifyError::EmptyBlock {
                func: f.name.clone(),
                block: b,
            });
        };
        if !last.is_terminator() {
            return Err(VerifyError::NoTerminator {
                func: f.name.clone(),
                block: b,
            });
        }
        for (i, ins) in blk.instrs.iter().enumerate() {
            if ins.is_terminator() && i + 1 != blk.instrs.len() {
                return Err(VerifyError::EarlyTerminator {
                    func: f.name.clone(),
                    block: b,
                    index: i,
                });
            }
            if let Some(d) = ins.dst() {
                check_reg(f, d)?;
            }
            for u in ins.uses() {
                check_reg(f, u)?;
            }
            match ins {
                VInstr::Br { target } if target.0 >= nblocks => {
                    return Err(VerifyError::BadBlockTarget {
                        func: f.name.clone(),
                        block: b,
                        target: target.0,
                    });
                }
                VInstr::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    check_operand(f, cond)?;
                    for t in [then_bb, else_bb] {
                        if t.0 >= nblocks {
                            return Err(VerifyError::BadBlockTarget {
                                func: f.name.clone(),
                                block: b,
                                target: t.0,
                            });
                        }
                    }
                }
                VInstr::Call {
                    func: callee, args, ..
                } => {
                    let Some(cf) = m.functions.get(callee.0 as usize) else {
                        return Err(VerifyError::BadCallee {
                            func: f.name.clone(),
                            callee: callee.0,
                        });
                    };
                    if cf.num_params as usize != args.len() {
                        return Err(VerifyError::BadArity {
                            func: f.name.clone(),
                            callee: cf.name.clone(),
                            expected: cf.num_params,
                            got: args.len(),
                        });
                    }
                }
                VInstr::GlobalAddr { global, .. } if global.0 as usize >= m.globals.len() => {
                    return Err(VerifyError::BadRef {
                        func: f.name.clone(),
                        what: "global",
                        index: global.0,
                    });
                }
                VInstr::SlotAddr { slot, .. } if slot.0 as usize >= f.slots.len() => {
                    return Err(VerifyError::BadRef {
                        func: f.name.clone(),
                        what: "slot",
                        index: slot.0,
                    });
                }
                _ => {}
            }
        }
    }
    // Calls are checked for arity above; also make sure FuncId values used
    // in the module's entry are within range (already guaranteed by
    // construction through the builder).
    let _ = FuncId(0);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::module::Block;
    use crate::types::BlockId;

    fn tiny() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        f.ret(None);
        mb.finish_function(f);
        mb.finish().unwrap()
    }

    #[test]
    fn valid_module_passes() {
        assert!(verify_module(&tiny()).is_ok());
    }

    #[test]
    fn empty_block_rejected() {
        let mut m = tiny();
        m.functions[0].blocks.push(Block::default());
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::EmptyBlock { .. })
        ));
    }

    #[test]
    fn missing_terminator_rejected() {
        let mut m = tiny();
        m.functions[0].blocks[0].instrs = vec![VInstr::Const {
            dst: VReg(0),
            value: 1,
        }];
        m.functions[0].num_vregs = 1;
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::NoTerminator { .. })
        ));
    }

    #[test]
    fn early_terminator_rejected() {
        let mut m = tiny();
        m.functions[0].blocks[0].instrs =
            vec![VInstr::Ret { value: None }, VInstr::Ret { value: None }];
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::EarlyTerminator { .. })
        ));
    }

    #[test]
    fn bad_branch_target_rejected() {
        let mut m = tiny();
        m.functions[0].blocks[0].instrs = vec![VInstr::Br { target: BlockId(7) }];
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::BadBlockTarget { .. })
        ));
    }

    #[test]
    fn bad_vreg_rejected() {
        let mut m = tiny();
        m.functions[0].blocks[0].instrs = vec![
            VInstr::Const {
                dst: VReg(99),
                value: 1,
            },
            VInstr::Ret { value: None },
        ];
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::BadVReg { vreg: 99, .. })
        ));
    }

    #[test]
    fn entry_with_params_rejected() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 1);
        f.ret(None);
        mb.finish_function(f);
        assert!(matches!(
            mb.finish(),
            Err(VerifyError::EntryHasParams { .. })
        ));
    }

    #[test]
    fn call_arity_checked() {
        let mut mb = ModuleBuilder::new("t");
        let callee = mb.declare("two", 2);
        let mut f = mb.function("main", 0);
        f.call_void(callee, &[Operand::Imm(1)]);
        f.ret(None);
        mb.finish_function(f);
        let mut g = mb.function("two", 2);
        g.ret(None);
        mb.finish_function(g);
        assert!(matches!(mb.finish(), Err(VerifyError::BadArity { .. })));
    }
}
