//! # vulnstack-vir
//!
//! **VIR** is the workspace's intermediate representation — the analogue of
//! LLVM IR in the paper's software-level (SVF) measurement flow. The ten
//! workloads are authored as VIR modules; from there they take two paths:
//!
//! 1. *Interpretation* ([`interp::Interpreter`]) — the substrate for the
//!    LLFI-style software-level fault injector (`vulnstack-llfi`), which
//!    flips bits in the destination values of dynamic IR instructions.
//! 2. *Compilation* (`vulnstack-compiler`) — lowering to VA32/VA64 machine
//!    code executed by the microarchitectural simulator for PVF/HVF/AVF
//!    measurements.
//!
//! All integer arithmetic in VIR has **32-bit semantics** (results are
//! sign-extended into the 64-bit storage cell, RISC-V "W" style). This makes
//! a workload's output bit-identical whether interpreted, compiled for VA32,
//! or compiled for VA64 — the property the paper relies on when comparing
//! vulnerability factors of "the exact same source workloads" across layers
//! and ISAs.
//!
//! # Example
//!
//! ```
//! use vulnstack_vir::builder::ModuleBuilder;
//! use vulnstack_vir::interp::{Interpreter, RunStatus};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let mut f = mb.function("main", 0);
//! let v = f.c(41);
//! let v1 = f.add(v, 1);
//! let buf = f.stack_slot(4, 4);
//! let p = f.slot_addr(buf);
//! f.store32(v1, p, 0);
//! f.sys_write(p, 4);
//! f.sys_exit(0);
//! f.ret(None);
//! mb.finish_function(f);
//! let module = mb.finish().unwrap();
//!
//! let out = Interpreter::new(&module).run().unwrap();
//! assert_eq!(out.status, RunStatus::Exited(0));
//! assert_eq!(out.output, 42i32.to_le_bytes());
//! ```

pub mod builder;
pub mod instr;
pub mod interp;
pub mod module;
pub mod types;
pub mod verify;

pub use builder::{FuncBuilder, ModuleBuilder};
pub use instr::VInstr;
pub use module::{Block, Function, Global, Module};
pub use types::{BinOp, BlockId, CmpPred, FuncId, GlobalId, MemWidth, Operand, SlotId, VReg};
