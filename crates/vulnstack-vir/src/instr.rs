//! VIR instructions.

use serde::{Deserialize, Serialize};
use vulnstack_isa::Syscall;

use crate::types::{BinOp, BlockId, CmpPred, FuncId, GlobalId, MemWidth, Operand, SlotId, VReg};

/// Coarse instruction class, used for per-class vulnerability breakdowns
/// (e.g. which kinds of IR instructions produce SDCs under SVF).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InstrClass {
    /// Constants and address materialisation.
    Value,
    /// Arithmetic/logic/shift operations.
    Arith,
    /// Comparisons and selects.
    Compare,
    /// Memory loads.
    Load,
    /// Memory stores.
    Store,
    /// Calls and returns.
    Call,
    /// System calls.
    Syscall,
    /// Control transfer.
    Branch,
}

impl InstrClass {
    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            InstrClass::Value => "value",
            InstrClass::Arith => "arith",
            InstrClass::Compare => "compare",
            InstrClass::Load => "load",
            InstrClass::Store => "store",
            InstrClass::Call => "call",
            InstrClass::Syscall => "syscall",
            InstrClass::Branch => "branch",
        }
    }
}

impl std::fmt::Display for InstrClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A VIR instruction.
///
/// Instructions either compute a value into a destination register, access
/// memory, or transfer control. Every basic block ends with exactly one
/// terminator ([`VInstr::Br`], [`VInstr::CondBr`] or [`VInstr::Ret`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum VInstr {
    /// `dst = value`.
    Const { dst: VReg, value: i32 },
    /// `dst = a <op> b`.
    Bin {
        dst: VReg,
        op: BinOp,
        a: Operand,
        b: Operand,
    },
    /// `dst = (a <pred> b) ? 1 : 0`.
    Cmp {
        dst: VReg,
        pred: CmpPred,
        a: Operand,
        b: Operand,
    },
    /// `dst = cond != 0 ? a : b`.
    Select {
        dst: VReg,
        cond: Operand,
        a: Operand,
        b: Operand,
    },
    /// `dst = mem[base + offset]` with `width` extension.
    Load {
        dst: VReg,
        width: MemWidth,
        base: Operand,
        offset: i32,
    },
    /// `mem[base + offset] = value` (low `width` bytes).
    Store {
        width: MemWidth,
        value: Operand,
        base: Operand,
        offset: i32,
    },
    /// `dst = &global`.
    GlobalAddr { dst: VReg, global: GlobalId },
    /// `dst = &frame_slot`.
    SlotAddr { dst: VReg, slot: SlotId },
    /// Call `func(args...)`; the callee's return value (if any) lands in
    /// `dst`.
    Call {
        dst: Option<VReg>,
        func: FuncId,
        args: Vec<Operand>,
    },
    /// Invoke a kernel service.
    Syscall {
        dst: Option<VReg>,
        sc: Syscall,
        args: Vec<Operand>,
    },
    /// Unconditional jump.
    Br { target: BlockId },
    /// Two-way conditional jump on `cond != 0`.
    CondBr {
        cond: Operand,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Return from the current function.
    Ret { value: Option<Operand> },
}

impl VInstr {
    /// The destination register written by this instruction, if any.
    pub fn dst(&self) -> Option<VReg> {
        match self {
            VInstr::Const { dst, .. }
            | VInstr::Bin { dst, .. }
            | VInstr::Cmp { dst, .. }
            | VInstr::Select { dst, .. }
            | VInstr::Load { dst, .. }
            | VInstr::GlobalAddr { dst, .. }
            | VInstr::SlotAddr { dst, .. } => Some(*dst),
            VInstr::Call { dst, .. } | VInstr::Syscall { dst, .. } => *dst,
            _ => None,
        }
    }

    /// All register operands read by this instruction.
    pub fn uses(&self) -> Vec<VReg> {
        fn reg(o: &Operand, out: &mut Vec<VReg>) {
            if let Operand::Reg(r) = o {
                out.push(*r);
            }
        }
        let mut out = Vec::new();
        match self {
            VInstr::Bin { a, b, .. } | VInstr::Cmp { a, b, .. } => {
                reg(a, &mut out);
                reg(b, &mut out);
            }
            VInstr::Select { cond, a, b, .. } => {
                reg(cond, &mut out);
                reg(a, &mut out);
                reg(b, &mut out);
            }
            VInstr::Load { base, .. } => reg(base, &mut out),
            VInstr::Store { value, base, .. } => {
                reg(value, &mut out);
                reg(base, &mut out);
            }
            VInstr::Call { args, .. } | VInstr::Syscall { args, .. } => {
                for a in args {
                    reg(a, &mut out);
                }
            }
            VInstr::CondBr { cond, .. } => reg(cond, &mut out),
            VInstr::Ret { value: Some(v) } => reg(v, &mut out),
            _ => {}
        }
        out
    }

    /// True if this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            VInstr::Br { .. } | VInstr::CondBr { .. } | VInstr::Ret { .. }
        )
    }

    /// True if a software-level (LLFI-style) injector may target this
    /// instruction's destination: every value-producing instruction.
    pub fn is_injectable(&self) -> bool {
        self.dst().is_some()
    }

    /// The coarse class of this instruction.
    pub fn class(&self) -> InstrClass {
        match self {
            VInstr::Const { .. } | VInstr::GlobalAddr { .. } | VInstr::SlotAddr { .. } => {
                InstrClass::Value
            }
            VInstr::Bin { .. } => InstrClass::Arith,
            VInstr::Cmp { .. } | VInstr::Select { .. } => InstrClass::Compare,
            VInstr::Load { .. } => InstrClass::Load,
            VInstr::Store { .. } => InstrClass::Store,
            VInstr::Call { .. } | VInstr::Ret { .. } => InstrClass::Call,
            VInstr::Syscall { .. } => InstrClass::Syscall,
            VInstr::Br { .. } | VInstr::CondBr { .. } => InstrClass::Branch,
        }
    }
}

impl std::fmt::Display for VInstr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VInstr::Const { dst, value } => write!(f, "{dst} = const {value}"),
            VInstr::Bin { dst, op, a, b } => write!(f, "{dst} = {} {a}, {b}", op.mnemonic()),
            VInstr::Cmp { dst, pred, a, b } => {
                write!(f, "{dst} = cmp.{} {a}, {b}", pred.mnemonic())
            }
            VInstr::Select { dst, cond, a, b } => write!(f, "{dst} = select {cond}, {a}, {b}"),
            VInstr::Load {
                dst,
                width,
                base,
                offset,
            } => {
                write!(f, "{dst} = load.{:?} [{base} + {offset}]", width)
            }
            VInstr::Store {
                width,
                value,
                base,
                offset,
            } => {
                write!(f, "store.{:?} {value}, [{base} + {offset}]", width)
            }
            VInstr::GlobalAddr { dst, global } => write!(f, "{dst} = &g{}", global.0),
            VInstr::SlotAddr { dst, slot } => write!(f, "{dst} = &slot{}", slot.0),
            VInstr::Call { dst, func, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                write!(f, "call f{}(", func.0)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            VInstr::Syscall { dst, sc, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                write!(f, "syscall {:?}(", sc)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            VInstr::Br { target } => write!(f, "br {target}"),
            VInstr::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                write!(f, "condbr {cond}, {then_bb}, {else_bb}")
            }
            VInstr::Ret { value } => match value {
                Some(v) => write!(f, "ret {v}"),
                None => write!(f, "ret"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dst_and_uses() {
        let i = VInstr::Bin {
            dst: VReg(5),
            op: BinOp::Add,
            a: Operand::Reg(VReg(1)),
            b: Operand::Imm(2),
        };
        assert_eq!(i.dst(), Some(VReg(5)));
        assert_eq!(i.uses(), vec![VReg(1)]);
        assert!(i.is_injectable());
        assert!(!i.is_terminator());

        let s = VInstr::Store {
            width: MemWidth::W,
            value: Operand::Reg(VReg(2)),
            base: Operand::Reg(VReg(3)),
            offset: 4,
        };
        assert_eq!(s.dst(), None);
        assert_eq!(s.uses(), vec![VReg(2), VReg(3)]);
        assert!(!s.is_injectable());

        let r = VInstr::Ret {
            value: Some(Operand::Reg(VReg(9))),
        };
        assert!(r.is_terminator());
        assert_eq!(r.uses(), vec![VReg(9)]);
    }

    #[test]
    fn display_is_nonempty() {
        let i = VInstr::Call {
            dst: Some(VReg(1)),
            func: FuncId(2),
            args: vec![Operand::Imm(3)],
        };
        assert_eq!(i.to_string(), "%1 = call f2(3)");
    }
}
