//! Identifier and operator types for VIR.

use serde::{Deserialize, Serialize};

/// A virtual register. VIR is not SSA: a register may be assigned multiple
/// times (loop induction variables are simply re-written).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct VReg(pub u32);

impl std::fmt::Display for VReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Index of a basic block inside a function.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct BlockId(pub u32);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Index of a function inside a module.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct FuncId(pub u32);

/// Index of a global inside a module.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct GlobalId(pub u32);

/// Index of a stack slot inside a function's frame.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SlotId(pub u32);

/// An instruction operand: a virtual register or a 32-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// Value of a virtual register.
    Reg(VReg),
    /// Immediate constant (32-bit semantics).
    Imm(i32),
}

impl From<VReg> for Operand {
    fn from(r: VReg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::Imm(v)
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Binary integer operations (32-bit semantics; results sign-extended).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// High 32 bits of the signed 64-bit product.
    MulHS,
    /// High 32 bits of the unsigned 64-bit product.
    MulHU,
    /// Signed division. `i32::MIN / -1` wraps to `i32::MIN`.
    DivS,
    /// Unsigned division.
    DivU,
    /// Signed remainder. `i32::MIN % -1` is `0`.
    RemS,
    /// Unsigned remainder.
    RemU,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Left shift (count masked to 5 bits).
    Shl,
    /// Logical right shift (count masked to 5 bits).
    ShrL,
    /// Arithmetic right shift (count masked to 5 bits).
    ShrA,
}

impl BinOp {
    /// True if the operation traps on a zero right-hand side.
    pub fn traps_on_zero(self) -> bool {
        matches!(self, BinOp::DivS | BinOp::DivU | BinOp::RemS | BinOp::RemU)
    }

    /// Lowercase mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::MulHS => "mulhs",
            BinOp::MulHU => "mulhu",
            BinOp::DivS => "divs",
            BinOp::DivU => "divu",
            BinOp::RemS => "rems",
            BinOp::RemU => "remu",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::ShrL => "shrl",
            BinOp::ShrA => "shra",
        }
    }

    /// Evaluates the operation with 32-bit semantics.
    ///
    /// Returns `None` for division/remainder by zero (the caller raises a
    /// divide-by-zero trap).
    pub fn eval(self, a: i32, b: i32) -> Option<i32> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::MulHS => ((a as i64).wrapping_mul(b as i64) >> 32) as i32,
            BinOp::MulHU => (((a as u32 as u64).wrapping_mul(b as u32 as u64)) >> 32) as i32,
            BinOp::DivS => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            BinOp::DivU => {
                if b == 0 {
                    return None;
                }
                ((a as u32) / (b as u32)) as i32
            }
            BinOp::RemS => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            BinOp::RemU => {
                if b == 0 {
                    return None;
                }
                ((a as u32) % (b as u32)) as i32
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32 & 31),
            BinOp::ShrL => ((a as u32) >> (b as u32 & 31)) as i32,
            BinOp::ShrA => a.wrapping_shr(b as u32 & 31),
        })
    }
}

/// Comparison predicates; result is 1 or 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    SLt,
    /// Signed less-or-equal.
    SLe,
    /// Signed greater-than.
    SGt,
    /// Signed greater-or-equal.
    SGe,
    /// Unsigned less-than.
    ULt,
    /// Unsigned less-or-equal.
    ULe,
    /// Unsigned greater-than.
    UGt,
    /// Unsigned greater-or-equal.
    UGe,
}

impl CmpPred {
    /// Evaluates the predicate on 32-bit values.
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            CmpPred::Eq => a == b,
            CmpPred::Ne => a != b,
            CmpPred::SLt => a < b,
            CmpPred::SLe => a <= b,
            CmpPred::SGt => a > b,
            CmpPred::SGe => a >= b,
            CmpPred::ULt => (a as u32) < (b as u32),
            CmpPred::ULe => (a as u32) <= (b as u32),
            CmpPred::UGt => (a as u32) > (b as u32),
            CmpPred::UGe => (a as u32) >= (b as u32),
        }
    }

    /// Lowercase mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::SLt => "slt",
            CmpPred::SLe => "sle",
            CmpPred::SGt => "sgt",
            CmpPred::SGe => "sge",
            CmpPred::ULt => "ult",
            CmpPred::ULe => "ule",
            CmpPred::UGt => "ugt",
            CmpPred::UGe => "uge",
        }
    }
}

/// Memory access widths for loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemWidth {
    /// Signed byte.
    B,
    /// Unsigned byte.
    BU,
    /// Signed halfword.
    H,
    /// Unsigned halfword.
    HU,
    /// 32-bit word.
    W,
}

impl MemWidth {
    /// Access size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B | MemWidth::BU => 1,
            MemWidth::H | MemWidth::HU => 2,
            MemWidth::W => 4,
        }
    }

    /// True if loads of this width sign-extend.
    pub fn signed(self) -> bool {
        matches!(self, MemWidth::B | MemWidth::H | MemWidth::W)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_arithmetic() {
        assert_eq!(BinOp::Add.eval(i32::MAX, 1), Some(i32::MIN));
        assert_eq!(BinOp::Sub.eval(0, i32::MIN), Some(i32::MIN));
        assert_eq!(BinOp::Mul.eval(0x10000, 0x10000), Some(0));
        assert_eq!(BinOp::MulHS.eval(0x10000, 0x10000), Some(1));
        assert_eq!(BinOp::MulHS.eval(-1, 1), Some(-1));
        assert_eq!(BinOp::MulHU.eval(-1, 2), Some(1));
        assert_eq!(BinOp::DivS.eval(7, -2), Some(-3));
        assert_eq!(BinOp::DivS.eval(i32::MIN, -1), Some(i32::MIN));
        assert_eq!(BinOp::RemS.eval(i32::MIN, -1), Some(0));
        assert_eq!(BinOp::DivU.eval(-2, 3), Some(((u32::MAX - 1) / 3) as i32));
        assert_eq!(BinOp::DivS.eval(1, 0), None);
        assert_eq!(BinOp::RemU.eval(1, 0), None);
    }

    #[test]
    fn binop_shifts_mask_count() {
        assert_eq!(BinOp::Shl.eval(1, 33), Some(2));
        assert_eq!(BinOp::ShrL.eval(-1, 28), Some(0xf));
        assert_eq!(BinOp::ShrA.eval(-16, 2), Some(-4));
    }

    #[test]
    fn cmp_signed_vs_unsigned() {
        assert!(CmpPred::SLt.eval(-1, 0));
        assert!(!CmpPred::ULt.eval(-1, 0));
        assert!(CmpPred::UGt.eval(-1, 0));
        assert!(CmpPred::Eq.eval(5, 5));
        assert!(CmpPred::Ne.eval(5, 6));
        assert!(CmpPred::SGe.eval(5, 5));
        assert!(CmpPred::ULe.eval(5, 5));
    }

    #[test]
    fn memwidth_properties() {
        assert_eq!(MemWidth::B.bytes(), 1);
        assert_eq!(MemWidth::HU.bytes(), 2);
        assert_eq!(MemWidth::W.bytes(), 4);
        assert!(MemWidth::H.signed());
        assert!(!MemWidth::BU.signed());
    }

    #[test]
    fn operand_conversions() {
        let r: Operand = VReg(3).into();
        assert_eq!(r, Operand::Reg(VReg(3)));
        let i: Operand = 7i32.into();
        assert_eq!(i, Operand::Imm(7));
    }
}
