//! The VIR interpreter — the execution substrate for software-level (SVF)
//! fault injection.
//!
//! The interpreter runs *user code only* (syscalls are serviced by the host,
//! with no interpreted kernel instructions) which is exactly the visibility
//! LLFI-style software injectors have: they can corrupt the destination
//! value of one dynamic IR instruction, and they never see kernel
//! activity, microarchitectural residency, or escaped faults.

use vulnstack_isa::{Syscall, TrapCause};

use crate::instr::VInstr;
use crate::module::Module;
use crate::types::{BlockId, FuncId, MemWidth, Operand, VReg};

/// Base of the data address space (a null guard page sits below).
pub const MEM_BASE: u32 = 0x1000;
/// Top of the interpreter stack; frames grow downwards from here.
pub const STACK_TOP: u32 = 0x40_0000;
/// Total modelled memory.
pub const MEM_SIZE: u32 = STACK_TOP;
/// Guard gap kept between the heap break and the deepest stack frame.
const STACK_GUARD: u32 = 0x1000;
/// Cap on accumulated program output, bounding memory under faults.
const OUTPUT_CAP: usize = 1 << 22;

/// What a software-level fault does to the targeted dynamic
/// instruction. This is VIR's own copy of the runtime fault-model
/// vocabulary (`vulnstack-vir` depends only on the ISA crate, so it
/// cannot name `vulnstack_microarch::FaultModel`); `vulnstack-llfi`
/// converts between the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwFaultModel {
    /// Flip one bit of the destination value (the classic LLFI fault).
    #[default]
    BitFlip,
    /// XOR the destination byte containing `bit` with `0xFF`.
    ByteCorrupt,
    /// Suppress the destination write entirely: the register keeps its
    /// stale value, as if the instruction were skipped.
    InstrSkip,
    /// Flip `bit` and leave the destination register's cell stuck at
    /// the flipped value: every later write to the same register in the
    /// same function re-asserts it.
    StuckAt,
}

/// A single software-level fault: corrupt, under `model`, the
/// destination value of the `target`-th dynamic *injectable*
/// (value-producing) instruction.
///
/// Bit indices are 0..=31 because VIR values have 32-bit semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwFault {
    /// Zero-based dynamic index among injectable instructions.
    pub target: u64,
    /// Bit to corrupt in the 32-bit destination value (selects the
    /// byte for [`SwFaultModel::ByteCorrupt`]; ignored by
    /// [`SwFaultModel::InstrSkip`]).
    pub bit: u8,
    /// How the destination is corrupted.
    pub model: SwFaultModel,
}

impl SwFault {
    /// The legacy single-bit transient flip.
    pub fn flip(target: u64, bit: u8) -> SwFault {
        SwFault {
            target,
            bit,
            model: SwFaultModel::BitFlip,
        }
    }
}

/// Terminal status of an interpreted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The program called `exit(code)` or returned from `main`.
    Exited(i32),
    /// A fault-tolerance check called `detect(code)`.
    Detected(i32),
    /// A trap was raised (the software-level analogue of a crash).
    Trapped(TrapCause),
    /// The instruction budget was exhausted (livelock/deadlock analogue).
    Timeout,
}

/// Result of interpreting a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Why the run ended.
    pub status: RunStatus,
    /// Bytes the program wrote via the `write` syscall.
    pub output: Vec<u8>,
    /// Dynamic instructions executed.
    pub dyn_instrs: u64,
    /// Dynamic *injectable* (value-producing) instructions executed — the
    /// sampling population for software-level fault injection.
    pub injectable: u64,
    /// Class of the instruction the armed fault actually hit, if it fired.
    pub injected_class: Option<crate::instr::InstrClass>,
    /// Function containing the injected instruction, if the fault fired.
    pub injected_func: Option<FuncId>,
}

#[derive(Debug)]
struct Frame {
    func: FuncId,
    block: BlockId,
    idx: usize,
    regs: Vec<i64>,
    frame_base: u32,
    ret_dst: Option<VReg>,
}

/// Interprets a verified [`Module`].
///
/// # Example
///
/// ```
/// use vulnstack_vir::builder::ModuleBuilder;
/// use vulnstack_vir::interp::{Interpreter, RunStatus};
///
/// let mut mb = ModuleBuilder::new("m");
/// let mut f = mb.function("main", 0);
/// f.sys_exit(7);
/// f.ret(None);
/// mb.finish_function(f);
/// let m = mb.finish().unwrap();
/// let out = Interpreter::new(&m).run().unwrap();
/// assert_eq!(out.status, RunStatus::Exited(7));
/// ```
#[derive(Debug)]
pub struct Interpreter<'m> {
    module: &'m Module,
    mem: Vec<u8>,
    brk: u32,
    global_addrs: Vec<u32>,
    input: Vec<u8>,
    input_pos: usize,
    output: Vec<u8>,
    budget: u64,
    fault: Option<SwFault>,
    /// Armed stuck-at cell: `(func, vreg, bit, value)` — re-asserted
    /// over every later commit to that register in that function.
    stuck: Option<(FuncId, VReg, u8, bool)>,
    dyn_instrs: u64,
    injectable: u64,
    injected_class: Option<crate::instr::InstrClass>,
    injected_func: Option<FuncId>,
}

/// Error for interpreter misconfiguration (as opposed to program traps,
/// which are reported through [`RunStatus`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The module's globals do not fit in the modelled memory.
    GlobalsTooLarge { needed: u32, available: u32 },
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::GlobalsTooLarge { needed, available } => {
                write!(f, "globals need {needed} bytes, only {available} available")
            }
        }
    }
}

impl std::error::Error for InterpError {}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter for `module` with an empty input stream and a
    /// default budget of 512M dynamic instructions.
    pub fn new(module: &'m Module) -> Interpreter<'m> {
        let mut mem = vec![0u8; MEM_SIZE as usize];
        let mut global_addrs = Vec::with_capacity(module.globals.len());
        let mut cursor = MEM_BASE;
        for g in &module.globals {
            let a = g.align.max(1);
            cursor = (cursor + a - 1) & !(a - 1);
            global_addrs.push(cursor);
            let end = cursor as usize + g.init.len();
            if end <= mem.len() {
                mem[cursor as usize..end].copy_from_slice(&g.init);
            }
            cursor = end as u32;
        }
        let brk = (cursor + 15) & !15;
        Interpreter {
            module,
            mem,
            brk,
            global_addrs,
            input: Vec::new(),
            input_pos: 0,
            output: Vec::new(),
            budget: 512_000_000,
            fault: None,
            stuck: None,
            dyn_instrs: 0,
            injectable: 0,
            injected_class: None,
            injected_func: None,
        }
    }

    /// Supplies the program input consumed by the `read` syscall.
    pub fn with_input(mut self, input: Vec<u8>) -> Self {
        self.input = input;
        self
    }

    /// Sets the dynamic-instruction budget after which the run times out.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Arms a software-level fault.
    pub fn with_fault(mut self, fault: SwFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// The address at which `global` was placed.
    pub fn global_addr(&self, g: crate::types::GlobalId) -> u32 {
        self.global_addrs[g.0 as usize]
    }

    fn check_access(&self, addr: i64, len: u64, stack_floor: u32) -> Result<u32, TrapCause> {
        if addr < 0 || addr as u64 + len > u32::MAX as u64 {
            return Err(TrapCause::AccessFault);
        }
        let a = addr as u32;
        if !a.is_multiple_of(len as u32) {
            return Err(TrapCause::MisalignedAccess);
        }
        let end = a + len as u32;
        let in_data = a >= MEM_BASE && end <= self.brk;
        let in_stack = a >= stack_floor && end <= STACK_TOP;
        if in_data || in_stack {
            Ok(a)
        } else {
            Err(TrapCause::AccessFault)
        }
    }

    fn load(&self, addr: u32, width: MemWidth) -> i64 {
        let a = addr as usize;
        match width {
            MemWidth::B => self.mem[a] as i8 as i64,
            MemWidth::BU => self.mem[a] as i64,
            MemWidth::H => i16::from_le_bytes([self.mem[a], self.mem[a + 1]]) as i64,
            MemWidth::HU => u16::from_le_bytes([self.mem[a], self.mem[a + 1]]) as i64,
            MemWidth::W => i32::from_le_bytes([
                self.mem[a],
                self.mem[a + 1],
                self.mem[a + 2],
                self.mem[a + 3],
            ]) as i64,
        }
    }

    fn store(&mut self, addr: u32, width: MemWidth, value: i64) {
        let a = addr as usize;
        match width.bytes() {
            1 => self.mem[a] = value as u8,
            2 => self.mem[a..a + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            _ => self.mem[a..a + 4].copy_from_slice(&(value as u32).to_le_bytes()),
        }
    }

    fn read_range(&self, addr: u32, len: u32, stack_floor: u32) -> Result<&[u8], TrapCause> {
        if len == 0 {
            return Ok(&[]);
        }
        let end = addr.checked_add(len).ok_or(TrapCause::AccessFault)?;
        let in_data = addr >= MEM_BASE && end <= self.brk;
        let in_stack = addr >= stack_floor && end <= STACK_TOP;
        if in_data || in_stack {
            Ok(&self.mem[addr as usize..end as usize])
        } else {
            Err(TrapCause::AccessFault)
        }
    }

    /// Runs the module to completion.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError`] only for setup problems; program-level traps
    /// and timeouts are reported in the returned [`RunOutcome`].
    pub fn run(mut self) -> Result<RunOutcome, InterpError> {
        if self.brk >= STACK_TOP / 2 {
            return Err(InterpError::GlobalsTooLarge {
                needed: self.brk - MEM_BASE,
                available: STACK_TOP / 2,
            });
        }
        let entry = self.module.entry;
        let entry_fn = &self.module.functions[entry.0 as usize];
        let frame_base = STACK_TOP - entry_fn.frame_size();
        let mut stack: Vec<Frame> = vec![Frame {
            func: entry,
            block: BlockId(0),
            idx: 0,
            regs: vec![0; entry_fn.num_vregs as usize],
            frame_base,
            ret_dst: None,
        }];

        let status = loop {
            match self.step(&mut stack) {
                StepResult::Continue => {}
                StepResult::Finished(s) => break s,
            }
            if self.dyn_instrs > self.budget {
                break RunStatus::Timeout;
            }
        };

        Ok(RunOutcome {
            status,
            output: std::mem::take(&mut self.output),
            dyn_instrs: self.dyn_instrs,
            injectable: self.injectable,
            injected_class: self.injected_class,
            injected_func: self.injected_func,
        })
    }

    fn step(&mut self, stack: &mut Vec<Frame>) -> StepResult {
        let frame = stack
            .last_mut()
            .expect("call stack never empty while running");
        let func = &self.module.functions[frame.func.0 as usize];
        let block = &func.blocks[frame.block.0 as usize];
        let ins = &block.instrs[frame.idx];
        self.dyn_instrs += 1;

        let stack_floor = frame.frame_base;
        let get = |regs: &[i64], o: &Operand| -> i32 {
            match o {
                Operand::Reg(r) => regs[r.0 as usize] as i32,
                Operand::Imm(v) => *v,
            }
        };

        // Compute the value (if any), detect traps, then commit.
        let mut trap: Option<TrapCause> = None;
        let mut wrote: Option<(VReg, i64)> = None;
        let mut next: Option<BlockId> = None;

        match ins {
            VInstr::Const { dst, value } => wrote = Some((*dst, *value as i64)),
            VInstr::Bin { dst, op, a, b } => {
                let (x, y) = (get(&frame.regs, a), get(&frame.regs, b));
                match op.eval(x, y) {
                    Some(v) => wrote = Some((*dst, v as i64)),
                    None => trap = Some(TrapCause::DivideByZero),
                }
            }
            VInstr::Cmp { dst, pred, a, b } => {
                let v = pred.eval(get(&frame.regs, a), get(&frame.regs, b));
                wrote = Some((*dst, v as i64));
            }
            VInstr::Select { dst, cond, a, b } => {
                let v = if get(&frame.regs, cond) != 0 {
                    get(&frame.regs, a)
                } else {
                    get(&frame.regs, b)
                };
                wrote = Some((*dst, v as i64));
            }
            VInstr::Load {
                dst,
                width,
                base,
                offset,
            } => {
                let addr = get(&frame.regs, base) as i64 + *offset as i64;
                match self.check_access(addr, width.bytes(), stack_floor) {
                    Ok(a) => wrote = Some((*dst, self.load(a, *width))),
                    Err(t) => trap = Some(t),
                }
            }
            VInstr::Store {
                width,
                value,
                base,
                offset,
            } => {
                let addr = get(&frame.regs, base) as i64 + *offset as i64;
                let v = get(&frame.regs, value) as i64;
                match self.check_access(addr, width.bytes(), stack_floor) {
                    Ok(a) => self.store(a, *width, v),
                    Err(t) => trap = Some(t),
                }
            }
            VInstr::GlobalAddr { dst, global } => {
                wrote = Some((*dst, self.global_addrs[global.0 as usize] as i64));
            }
            VInstr::SlotAddr { dst, slot } => {
                let off = func.slot_offset(*slot);
                wrote = Some((*dst, (frame.frame_base + off) as i64));
            }
            VInstr::Br { target } => next = Some(*target),
            VInstr::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                next = Some(if get(&frame.regs, cond) != 0 {
                    *then_bb
                } else {
                    *else_bb
                });
            }
            VInstr::Call {
                dst,
                func: callee,
                args,
            } => {
                let callee_fn = &self.module.functions[callee.0 as usize];
                let new_base = frame.frame_base.checked_sub(callee_fn.frame_size());
                let Some(new_base) = new_base else {
                    return StepResult::Finished(RunStatus::Trapped(TrapCause::AccessFault));
                };
                if new_base < self.brk + STACK_GUARD {
                    return StepResult::Finished(RunStatus::Trapped(TrapCause::AccessFault));
                }
                let mut regs = vec![0i64; callee_fn.num_vregs as usize];
                for (i, a) in args.iter().enumerate() {
                    regs[i] = get(&frame.regs, a) as i64;
                }
                frame.idx += 1;
                let new_frame = Frame {
                    func: *callee,
                    block: BlockId(0),
                    idx: 0,
                    regs,
                    frame_base: new_base,
                    ret_dst: *dst,
                };
                stack.push(new_frame);
                return StepResult::Continue;
            }
            VInstr::Syscall { dst, sc, args } => {
                let a0 = args.first().map_or(0, |a| get(&frame.regs, a));
                let a1 = args.get(1).map_or(0, |a| get(&frame.regs, a));
                match sc {
                    Syscall::Exit => return StepResult::Finished(RunStatus::Exited(a0)),
                    Syscall::Detect => return StepResult::Finished(RunStatus::Detected(a0)),
                    Syscall::Write => {
                        let (ptr, len) = (a0 as u32, a1 as u32);
                        match self.read_range(ptr, len, stack_floor) {
                            Ok(bytes) => {
                                let room = OUTPUT_CAP.saturating_sub(self.output.len());
                                let take = bytes.len().min(room);
                                let chunk = bytes[..take].to_vec();
                                self.output.extend_from_slice(&chunk);
                            }
                            Err(t) => trap = Some(t),
                        }
                    }
                    Syscall::Read => {
                        let (ptr, len) = (a0 as u32, a1 as u32);
                        let remaining = self.input.len() - self.input_pos;
                        let n = remaining.min(len as usize);
                        let end = ptr.checked_add(n as u32);
                        let valid = end.is_some()
                            && ((ptr >= MEM_BASE && end.unwrap() <= self.brk)
                                || (ptr >= stack_floor && end.unwrap() <= STACK_TOP));
                        if n > 0 && !valid {
                            trap = Some(TrapCause::AccessFault);
                        } else {
                            let src = self.input[self.input_pos..self.input_pos + n].to_vec();
                            self.mem[ptr as usize..ptr as usize + n].copy_from_slice(&src);
                            self.input_pos += n;
                            if let Some(d) = dst {
                                wrote = Some((*d, n as i64));
                            }
                        }
                    }
                    Syscall::Brk => {
                        let old = self.brk;
                        let delta = a0 as i64;
                        let new = old as i64 + delta;
                        let limit = (stack_floor.saturating_sub(STACK_GUARD)) as i64;
                        if new >= MEM_BASE as i64 && new < limit {
                            self.brk = new as u32;
                            if let Some(d) = dst {
                                wrote = Some((*d, old as i64));
                            }
                        } else if let Some(d) = dst {
                            wrote = Some((*d, -1));
                        }
                    }
                }
            }
            VInstr::Ret { value } => {
                let v = value.as_ref().map(|o| get(&frame.regs, o) as i64);
                let ret_dst = frame.ret_dst;
                stack.pop();
                match stack.last_mut() {
                    None => {
                        return StepResult::Finished(RunStatus::Exited(v.unwrap_or(0) as i32));
                    }
                    Some(caller) => {
                        if let Some(d) = ret_dst {
                            caller.regs[d.0 as usize] = v.unwrap_or(0);
                        }
                        return StepResult::Continue;
                    }
                }
            }
        }

        if let Some(t) = trap {
            return StepResult::Finished(RunStatus::Trapped(t));
        }

        // Commit the destination value, applying the armed software fault if
        // this is the chosen dynamic injectable instruction.
        let frame = stack.last_mut().expect("frame");
        if let Some((dst, mut v)) = wrote {
            let mut suppress = false;
            if let Some(fault) = self.fault {
                if self.injectable == fault.target {
                    let b = fault.bit & 31;
                    match fault.model {
                        SwFaultModel::BitFlip => v = ((v as i32) ^ (1i32 << b)) as i64,
                        SwFaultModel::ByteCorrupt => {
                            v = ((v as i32) ^ (0xFFi32 << (b & !7))) as i64;
                        }
                        SwFaultModel::InstrSkip => suppress = true,
                        SwFaultModel::StuckAt => {
                            let val = (v as i32 >> b) & 1 == 0;
                            v = ((v as i32) ^ (1i32 << b)) as i64;
                            self.stuck = Some((frame.func, dst, b, val));
                        }
                    }
                    self.injected_class = Some(ins.class());
                    self.injected_func = Some(frame.func);
                }
            }
            // A stuck cell re-asserts over every commit to its register
            // (idempotent over the arming write itself).
            if let Some((sf, sr, sb, sv)) = self.stuck {
                if sf == frame.func && sr == dst {
                    let forced = ((v as i32) & !(1i32 << sb)) | (i32::from(sv) << sb);
                    v = forced as i64;
                }
            }
            self.injectable += 1;
            if !suppress {
                frame.regs[dst.0 as usize] = v;
            }
        } else if ins_counts_injectable(ins) {
            // Syscalls with an unused destination still count (LLFI counts
            // the instruction, not the register write).
            self.injectable += 1;
        }

        match next {
            Some(bb) => {
                frame.block = bb;
                frame.idx = 0;
            }
            None => frame.idx += 1,
        }
        StepResult::Continue
    }
}

fn ins_counts_injectable(ins: &VInstr) -> bool {
    matches!(ins, VInstr::Syscall { dst: Some(_), .. })
}

enum StepResult {
    Continue,
    Finished(RunStatus),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::CmpPred;

    fn run(m: &Module) -> RunOutcome {
        Interpreter::new(m).run().unwrap()
    }

    #[test]
    fn arithmetic_and_exit() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        let a = f.c(20);
        let b = f.mul(a, 2);
        let c = f.add(b, 2);
        f.sys_exit(c);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        assert_eq!(run(&m).status, RunStatus::Exited(42));
    }

    #[test]
    fn loop_sums_and_writes_output() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        let sum = f.fresh();
        let i = f.fresh();
        f.set_c(sum, 0);
        f.set_c(i, 0);
        let head = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        f.br(head);
        f.switch_to(head);
        let c = f.cmp(CmpPred::SLt, i, 10);
        f.cond_br(c, body, done);
        f.switch_to(body);
        let s2 = f.add(sum, i);
        f.set(sum, s2);
        let i2 = f.add(i, 1);
        f.set(i, i2);
        f.br(head);
        f.switch_to(done);
        let slot = f.stack_slot(4, 4);
        let p = f.slot_addr(slot);
        f.store32(sum, p, 0);
        f.sys_write(p, 4);
        f.sys_exit(0);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        let out = run(&m);
        assert_eq!(out.status, RunStatus::Exited(0));
        assert_eq!(out.output, 45i32.to_le_bytes());
    }

    #[test]
    fn function_calls_pass_args_and_return() {
        let mut mb = ModuleBuilder::new("t");
        let sq = mb.declare("square", 1);
        let mut f = mb.function("main", 0);
        let v = f.call(sq, &[Operand::Imm(9)]);
        f.sys_exit(v);
        f.ret(None);
        mb.finish_function(f);
        let mut g = mb.function("square", 1);
        let p = g.param(0);
        let r = g.mul(p, p);
        g.ret(Some(r.into()));
        mb.finish_function(g);
        let m = mb.finish().unwrap();
        assert_eq!(run(&m).status, RunStatus::Exited(81));
    }

    #[test]
    fn division_by_zero_traps() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        let z = f.c(0);
        let d = f.divs(5, z);
        f.sys_exit(d);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        assert_eq!(run(&m).status, RunStatus::Trapped(TrapCause::DivideByZero));
    }

    #[test]
    fn wild_pointer_access_faults() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        let p = f.c(0x10); // inside the null guard page
        let v = f.load32(p, 0);
        f.sys_exit(v);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        assert_eq!(run(&m).status, RunStatus::Trapped(TrapCause::AccessFault));
    }

    #[test]
    fn misaligned_access_traps() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global_zeroed("buf", 8, 4);
        let mut f = mb.function("main", 0);
        let p = f.global_addr(g);
        let v = f.load32(p, 2);
        f.sys_exit(v);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        assert_eq!(
            run(&m).status,
            RunStatus::Trapped(TrapCause::MisalignedAccess)
        );
    }

    #[test]
    fn infinite_loop_times_out() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        let spin = f.new_block();
        f.br(spin);
        f.switch_to(spin);
        f.br(spin);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        let out = Interpreter::new(&m).with_budget(10_000).run().unwrap();
        assert_eq!(out.status, RunStatus::Timeout);
    }

    #[test]
    fn globals_are_initialised_and_read() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global_words("tbl", &[10, 20, 30]);
        let mut f = mb.function("main", 0);
        let p = f.global_addr(g);
        let v = f.load32(p, 8);
        f.sys_exit(v);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        assert_eq!(run(&m).status, RunStatus::Exited(30));
    }

    #[test]
    fn read_syscall_copies_input() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global_zeroed("buf", 16, 4);
        let mut f = mb.function("main", 0);
        let p = f.global_addr(g);
        let n = f.sys_read(p, 16);
        let v = f.load8u(p, 0);
        let s = f.add(n, v);
        f.sys_exit(s);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        let out = Interpreter::new(&m)
            .with_input(vec![7, 8, 9])
            .run()
            .unwrap();
        // 3 bytes copied, first byte is 7 -> exit code 10.
        assert_eq!(out.status, RunStatus::Exited(10));
    }

    #[test]
    fn brk_grows_heap() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        let base = f.sys_brk(64);
        f.store32(0x1234, base, 0);
        let v = f.load32(base, 0);
        f.sys_exit(v);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        assert_eq!(run(&m).status, RunStatus::Exited(0x1234));
    }

    #[test]
    fn detect_syscall_reports_detected() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        f.sys_detect(3);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        assert_eq!(run(&m).status, RunStatus::Detected(3));
    }

    #[test]
    fn software_fault_flips_destination_bit() {
        // main: a = 0; exit(a). Fault on the Const's destination bit 5 -> 32.
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        let a = f.c(0);
        f.sys_exit(a);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        let out = Interpreter::new(&m)
            .with_fault(SwFault::flip(0, 5))
            .run()
            .unwrap();
        assert_eq!(out.status, RunStatus::Exited(32));
    }

    #[test]
    fn byte_corrupt_fault_inverts_the_whole_byte() {
        // main: a = 0; exit(a). Byte 1 (bits 8..16) inverted -> 0xFF00.
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        let a = f.c(0);
        f.sys_exit(a);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        let out = Interpreter::new(&m)
            .with_fault(SwFault {
                target: 0,
                bit: 11,
                model: SwFaultModel::ByteCorrupt,
            })
            .run()
            .unwrap();
        assert_eq!(out.status, RunStatus::Exited(0xFF00));
    }

    #[test]
    fn instr_skip_fault_keeps_the_stale_value() {
        // main: a = 7; a = 42 (skipped); exit(a) -> 7.
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        let a = f.fresh();
        f.set_c(a, 7);
        f.set_c(a, 42);
        f.sys_exit(a);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        let out = Interpreter::new(&m)
            .with_fault(SwFault {
                target: 1,
                bit: 0,
                model: SwFaultModel::InstrSkip,
            })
            .run()
            .unwrap();
        assert_eq!(out.status, RunStatus::Exited(7));
        assert!(out.injected_class.is_some(), "skip still counts as fired");
    }

    #[test]
    fn stuck_at_fault_reasserts_over_later_writes() {
        // main: a = 0 (stuck: bit 3 forced to 1); a = 0 again; exit(a).
        // The second write is re-corrupted, so the exit code stays 8.
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        let a = f.fresh();
        f.set_c(a, 0);
        f.set_c(a, 0);
        f.sys_exit(a);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        let out = Interpreter::new(&m)
            .with_fault(SwFault {
                target: 0,
                bit: 3,
                model: SwFaultModel::StuckAt,
            })
            .run()
            .unwrap();
        assert_eq!(out.status, RunStatus::Exited(8));
        // The transient flip of the same site is repaired by the second
        // write instead.
        let transient = Interpreter::new(&m)
            .with_fault(SwFault::flip(0, 3))
            .run()
            .unwrap();
        assert_eq!(transient.status, RunStatus::Exited(0));
    }

    #[test]
    fn injectable_count_is_stable() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        let a = f.c(1);
        let b = f.add(a, 2);
        let c = f.xor(b, 3);
        f.sys_exit(c);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        let o1 = run(&m);
        let o2 = run(&m);
        assert_eq!(o1.injectable, 3);
        assert_eq!(o1.injectable, o2.injectable);
        assert_eq!(o1.dyn_instrs, o2.dyn_instrs);
    }

    #[test]
    fn recursion_overflows_to_access_fault() {
        let mut mb = ModuleBuilder::new("t");
        let rec = mb.declare("rec", 1);
        let mut f = mb.function("main", 0);
        f.call_void(rec, &[Operand::Imm(0)]);
        f.sys_exit(0);
        f.ret(None);
        mb.finish_function(f);
        let mut g = mb.function("rec", 1);
        let _big = g.stack_slot(4096, 4);
        let p = g.param(0);
        let p1 = g.add(p, 1);
        g.call_void(rec, &[p1.into()]);
        g.ret(None);
        mb.finish_function(g);
        let m = mb.finish().unwrap();
        assert_eq!(run(&m).status, RunStatus::Trapped(TrapCause::AccessFault));
    }
}
