//! Soundness oracle for dead-interval pruning, over *random* programs.
//!
//! The class table claims some fault sites are Masked without simulating
//! them. The unit tests check that claim on the fixed benchmark
//! workloads; this property test re-derives it on randomly generated
//! small VIR programs — different register pressure, different loop
//! shapes, both ISAs — by actually injecting every site the table calls
//! dead and requiring the full runner to come back `(Masked, None,
//! None)`. Any unsound classification rule (an off-by-one in the gap
//! search, a missed access path into the register file) shows up here as
//! a concrete counterexample program.
//!
//! The proptest shim is deterministic (seeded from the test name), so CI
//! runs a fixed corpus.

use proptest::prelude::*;
use vulnstack_compiler::{compile, CompileOpts};
use vulnstack_core::effects::FaultEffect;
use vulnstack_gefin::avf::run_one;
use vulnstack_gefin::{draw_sites, static_classifier, ClassTable, Prepared, SiteClass};
use vulnstack_isa::Isa;
use vulnstack_kernel::SystemImage;
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::snapshot::{self, CheckpointStore};
use vulnstack_microarch::{CoreModel, RunStatus};
use vulnstack_vir::ModuleBuilder;

/// One random ALU step inside the generated loop: `(op, dst, a, b)`
/// selectors, clamped into range by the builder.
type Step = (u8, usize, usize, usize);

const NVARS: usize = 4;

/// Builds a terminating random program: `NVARS` seeded accumulators, a
/// bounded loop applying the generated ALU steps, then a store +
/// `sys_write` of one accumulator so faults can reach the output, and a
/// clean exit.
fn build_program(steps: &[Step], iters: u64, init: u32, isa: Isa) -> SystemImage {
    let mut mb = ModuleBuilder::new("rand");
    let mut f = mb.function("main", 0);
    let vars: Vec<_> = (0..NVARS).map(|_| f.fresh()).collect();
    for (j, &v) in vars.iter().enumerate() {
        f.set_c(v, (init % 251) as i32 + j as i32 * 7 + 1);
    }
    let steps = steps.to_vec();
    f.for_range(0, iters as i32, |f, i| {
        for &(op, dst, a, b) in &steps {
            let (dst, a, b) = (dst % NVARS, a % NVARS, b % NVARS);
            let (x, y) = (vars[a], vars[b]);
            let t = match op % 5 {
                0 => f.add(x, y),
                1 => f.sub(x, y),
                2 => f.mul(x, y),
                3 => f.xor(x, y),
                _ => f.add(x, i),
            };
            f.set(vars[dst], t);
        }
    });
    let slot = f.stack_slot(4, 4);
    let p = f.slot_addr(slot);
    f.store32(vars[0], p, 0);
    f.sys_write(p, 4);
    f.sys_exit(0);
    f.ret(None);
    mb.finish_function(f);
    let m = mb.finish().unwrap();
    let c = compile(&m, isa, &CompileOpts::default()).unwrap();
    SystemImage::build(&c, &[]).unwrap()
}

/// Prepares the random program the same way [`Prepared::new`] prepares a
/// benchmark workload (golden run, checkpoints, budget), with the golden
/// output as its own expected output — the engine's standing assumption.
fn prepare(image: SystemImage, model: CoreModel) -> Option<Prepared> {
    let cfg = model.config();
    let (checkpoints, out) = CheckpointStore::record(
        &cfg,
        &image,
        snapshot::DEFAULT_INTERVAL,
        snapshot::DEFAULT_MAX_SNAPSHOTS,
        5_000_000,
    );
    let golden = out.sim;
    if golden.status != RunStatus::Exited(0) {
        return None;
    }
    let budget = golden.cycles * 8 + 500_000;
    let expected_output = golden.output.clone();
    Some(Prepared {
        cfg,
        image,
        golden,
        expected_output,
        budget,
        checkpoints,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn every_dead_classified_site_is_confirmed_masked_by_injection(
        steps in prop::collection::vec((0u8..5, 0usize..NVARS, 0usize..NVARS, 0usize..NVARS), 2..10),
        iters in 8u64..40,
        init in any::<u32>(),
        isa_sel in 0u8..2,
        site_seed in any::<u64>(),
    ) {
        let (isa, model) = if isa_sel == 0 {
            (Isa::Va32, CoreModel::A9)
        } else {
            (Isa::Va64, CoreModel::A72)
        };
        let image = build_program(&steps, iters, init, isa);
        let prep = match prepare(image, model) {
            Some(p) => p,
            None => {
                return Err(TestCaseError::fail(
                    "generated program did not exit cleanly".to_string(),
                ))
            }
        };
        let table = ClassTable::build(&prep, HwStructure::RegisterFile);
        for (cycle, bit) in draw_sites(&prep, HwStructure::RegisterFile, 24, site_seed) {
            if table.classify(cycle, bit) == SiteClass::DeadMasked {
                let r = run_one(&prep, HwStructure::RegisterFile, cycle, bit);
                prop_assert_eq!(
                    (r.effect, r.fpm, r.fpm_cycle),
                    (FaultEffect::Masked, None, None),
                    "unsound dead classification at cycle {} bit {} (iters={}, isa={:?})",
                    cycle, bit, iters, isa
                );
            }
        }
    }

    /// The full three-rung soundness lattice of the static pruning
    /// oracle, on random programs over both ISAs:
    ///
    /// ```text
    /// static-dead  ⊆  dynamic-dead (ClassTable)  ⊆  injection-Masked
    /// ```
    ///
    /// Rung 1 is checked on every sampled site (classification is free);
    /// rung 2 is checked by injecting every statically-dead site for
    /// real and requiring `(Masked, None, None)` — which also empirically
    /// pins the classifier's W^X assumption (no executable word is
    /// rewritten mid-run).
    #[test]
    fn static_dead_sites_are_dynamically_dead_and_injection_masked(
        steps in prop::collection::vec((0u8..5, 0usize..NVARS, 0usize..NVARS, 0usize..NVARS), 2..10),
        iters in 8u64..40,
        init in any::<u32>(),
        isa_sel in 0u8..2,
        site_seed in any::<u64>(),
    ) {
        let (isa, model) = if isa_sel == 0 {
            (Isa::Va32, CoreModel::A9)
        } else {
            (Isa::Va64, CoreModel::A72)
        };
        let image = build_program(&steps, iters, init, isa);
        let prep = match prepare(image, model) {
            Some(p) => p,
            None => {
                return Err(TestCaseError::fail(
                    "generated program did not exit cleanly".to_string(),
                ))
            }
        };
        let oracle = static_classifier(&prep.image);
        let nphys = prep.cfg.phys_regs as usize;
        let table = ClassTable::build(&prep, HwStructure::RegisterFile);
        for (cycle, bit) in draw_sites(&prep, HwStructure::RegisterFile, 24, site_seed) {
            if !oracle.rf_bit_dead(bit, nphys) {
                continue;
            }
            // Rung 1: static-dead ⊆ dynamic-dead.
            prop_assert_eq!(
                table.classify(cycle, bit),
                SiteClass::DeadMasked,
                "static-dead site (cycle {}, bit {}) not dynamically dead (isa={:?})",
                cycle, bit, isa
            );
            // Rung 2: static-dead ⊆ injection-Masked, by real injection.
            let r = run_one(&prep, HwStructure::RegisterFile, cycle, bit);
            prop_assert_eq!(
                (r.effect, r.fpm, r.fpm_cycle),
                (FaultEffect::Masked, None, None),
                "static-dead site (cycle {}, bit {}) manifested under injection (isa={:?})",
                cycle, bit, isa
            );
        }
    }
}
