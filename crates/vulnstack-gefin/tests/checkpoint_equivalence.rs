//! The checkpoint layer's determinism contract: warm-starting an
//! injection from a golden-run checkpoint must be indistinguishable from
//! re-simulating the fault-free prefix from cycle 0 — identical restored
//! core state field-by-field, identical per-injection records, identical
//! campaign tallies, at any thread count.

use vulnstack_gefin::avf::run_one_with;
use vulnstack_gefin::{avf_campaign_with, InjectEngine, Prepared};
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::{CoreModel, OooCore};
use vulnstack_workloads::WorkloadId;

/// The (workload, core, structure) triples under test: a VA64 and a VA32
/// model, register/LSQ/cache targets.
fn triples() -> Vec<(WorkloadId, CoreModel, HwStructure)> {
    vec![
        (WorkloadId::Crc32, CoreModel::A72, HwStructure::RegisterFile),
        (WorkloadId::Qsort, CoreModel::A9, HwStructure::L1d),
        (WorkloadId::Crc32, CoreModel::A72, HwStructure::Lsq),
    ]
}

#[test]
fn restore_at_cycle_equals_run_until_cycle_field_by_field() {
    for (id, model, _) in triples() {
        let w = id.build();
        let prep = Prepared::new(&w, model).unwrap();
        let interval = prep.checkpoints.interval();
        let targets = [
            1,
            interval / 2,
            interval,
            interval + 1,
            prep.golden.cycles / 2,
            prep.golden.cycles - 1,
        ];
        for &c in &targets {
            let restored = prep.core_at(c);
            let mut scratch = prep.core_from_scratch();
            scratch.run_until(c);
            // OooCore's PartialEq covers every field: pipeline structures,
            // rename state, physical RF, caches, memory, predictor,
            // statistics, taint.
            assert!(
                restored == scratch,
                "{id}/{model}: restored state diverges from scratch at cycle {c}"
            );
            assert_eq!(restored.cycle(), c.min(prep.golden.cycles));
        }
    }
}

#[test]
fn checkpointed_campaign_reproduces_from_scratch_records_exactly() {
    for (id, model, structure) in triples() {
        let w = id.build();
        let prep = Prepared::new(&w, model).unwrap();
        let n = 16;
        let seed = 2021;
        let scratch = avf_campaign_with(&prep, structure, n, seed, 2, InjectEngine::FromScratch);
        for threads in [1, 4] {
            let ckpt = avf_campaign_with(
                &prep,
                structure,
                n,
                seed,
                threads,
                InjectEngine::Checkpointed,
            );
            assert_eq!(
                scratch.records, ckpt.records,
                "{id}/{model}/{structure}: records differ at threads={threads}"
            );
            assert_eq!(scratch.tally, ckpt.tally);
            assert_eq!(scratch.fpm.hvf(), ckpt.fpm.hvf());
        }
    }
}

#[test]
fn single_injections_match_across_engines_at_checkpoint_boundaries() {
    let w = WorkloadId::Crc32.build();
    let prep = Prepared::new(&w, CoreModel::A72).unwrap();
    let interval = prep.checkpoints.interval();
    // Injection cycles straddling checkpoint boundaries, where an
    // off-by-one in restore would first show.
    for cycle in [1, interval - 1, interval, interval + 1, 2 * interval] {
        let cycle = cycle.min(prep.golden.cycles);
        for bit in [0u64, 1337, 4096] {
            let a = run_one_with(
                &prep,
                HwStructure::RegisterFile,
                cycle,
                bit,
                InjectEngine::FromScratch,
            );
            let b = run_one_with(
                &prep,
                HwStructure::RegisterFile,
                cycle,
                bit,
                InjectEngine::Checkpointed,
            );
            assert_eq!(a, b, "divergence at cycle {cycle}, bit {bit}");
        }
    }
}

#[test]
fn from_checkpoint_constructor_is_a_faithful_copy() {
    let w = WorkloadId::Crc32.build();
    let prep = Prepared::new(&w, CoreModel::A72).unwrap();
    let snap = prep.checkpoints.nearest(prep.golden.cycles / 2);
    let copy = OooCore::from_checkpoint(snap);
    assert!(&copy == snap);
    // Stepping the copy must not be able to affect the original: run the
    // copy forward and re-compare against a second copy.
    let mut run = OooCore::from_checkpoint(snap);
    run.run_until(snap.cycle() + 100);
    assert!(OooCore::from_checkpoint(snap) == copy);
}
