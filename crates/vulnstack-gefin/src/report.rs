//! Machine-readable campaign reports shared by every front end.
//!
//! The `avf --json` report used to be hand-built inside the CLI binary,
//! which made it impossible for any other front end (the `vulnstack-serve`
//! daemon, tests) to promise byte-identical output. It lives here now:
//! the CLI and the daemon call the same function over the same campaign
//! results, so `cmp` on their JSON files is a meaningful equivalence
//! check, not a formatting lottery.

use std::fmt::Write as _;

use vulnstack_core::{FpmDist, Tally};
use vulnstack_microarch::FaultModel;

use crate::prune::InjectionPlan;

/// One structure's per-model campaign tallies, as reported and exported:
/// `(structure name, per-model (model, tally, FPM distribution))`.
pub type ModelReport = (&'static str, Vec<(FaultModel, Tally, FpmDist)>);

/// The canonical JSON report for an AVF campaign: per-structure,
/// per-model tallies plus the plan that produced them. Trailing newline
/// included — the output is written to files verbatim and compared with
/// `cmp`.
pub fn avf_report_json(
    workload: &str,
    plan: &InjectionPlan,
    per_structure: &[ModelReport],
) -> String {
    let mut s = String::new();
    let plan_detail = match *plan {
        InjectionPlan::Exhaustive { cycle } => format!("exhaustive@{cycle}"),
        _ => plan.name().to_string(),
    };
    let _ = write!(
        s,
        "{{\"workload\":\"{workload}\",\"plan\":\"{plan_detail}\",\"structures\":["
    );
    for (i, (st, tallies)) in per_structure.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{{\"structure\":\"{st}\",\"models\":[");
        for (j, (m, tally, fpm)) in tallies.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"model\":\"{}\",\"injections\":{},\"masked\":{},\"sdc\":{},\
                 \"crash\":{},\"detected\":{},\"avf\":{:.6},\"hvf\":{:.6}}}",
                m.name(),
                tally.total(),
                tally.masked,
                tally.sdc,
                tally.crash,
                tally.detected,
                tally.vf().total(),
                fpm.hvf()
            );
        }
        s.push_str("]}");
    }
    s.push_str("]}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_core::effects::FaultEffect;

    #[test]
    fn report_shape_is_stable() {
        let mut tally = Tally::default();
        tally.add(FaultEffect::Masked);
        tally.add(FaultEffect::Sdc);
        let report: Vec<ModelReport> =
            vec![("RF", vec![(FaultModel::BitFlip, tally, FpmDist::default())])];
        let json = avf_report_json("crc32", &InjectionPlan::Sampled { n: 2, seed: 1 }, &report);
        assert!(json.starts_with("{\"workload\":\"crc32\",\"plan\":\"sampled\""));
        assert!(json.contains("\"structure\":\"RF\""));
        assert!(json.contains("\"model\":\"bit-flip\",\"injections\":2,\"masked\":1,\"sdc\":1"));
        assert!(json.ends_with("]}\n"));
    }

    #[test]
    fn exhaustive_plan_records_its_cycle() {
        let json = avf_report_json("sha", &InjectionPlan::Exhaustive { cycle: 41 }, &[]);
        assert!(json.contains("\"plan\":\"exhaustive@41\""));
    }
}
