//! # vulnstack-gefin
//!
//! Statistical fault-injection campaigns in the style of GeFIN (the
//! paper's gem5-based injector):
//!
//! * **AVF/HVF campaigns** ([`avf`]) — single-bit transient faults in the
//!   physical register file, the LSQ, or a cache data array of the
//!   cycle-level out-of-order core, uniformly sampled over (bit × cycle)
//!   as in Leveugle et al. Each run yields both the end-to-end fault
//!   effect (AVF) and the first architectural manifestation (HVF + FPM).
//! * **PVF campaigns** ([`pvf`]) — persistent single-bit faults in
//!   *architectural* state (registers, program-flow memory, or encoded
//!   instructions split into WD / WOI / WI populations), executed on the
//!   functional full-system core, kernel included.
//!
//! Campaigns are deterministic for a given seed and embarrassingly
//! parallel: fault sites are pre-drawn, sorted by injection cycle for
//! checkpoint locality, and distributed over a work-stealing scheduler
//! (`vulnstack_core::sched`) whose results are scattered back to
//! sampling order — so the output is bit-identical at any thread count.
//! Microarchitectural runs warm-start from golden-run checkpoints
//! (`vulnstack_microarch::snapshot`) instead of re-simulating the
//! fault-free prefix from cycle 0.

pub mod ace;
pub mod avf;
pub mod compare;
pub mod prepare;
pub mod prune;
pub mod pvf;
pub mod report;
pub mod sweep;

pub use ace::ace_analysis;
pub use avf::{
    avf_campaign, avf_campaign_metered, avf_campaign_models, avf_campaign_models_resumable,
    avf_campaign_models_streamed, avf_campaign_planned, avf_campaign_resumable,
    avf_campaign_resumable_planned, avf_campaign_traced, avf_campaign_with, canonical_models,
    decode_record, draw_model_sites, draw_sites, encode_record, per_model_tallies, run_one_model,
    run_one_traced, AvfCampaignResult, AvfResumed, AvfStreamed, InjectEngine, InjectionRecord,
    ModelSite,
};
pub use compare::{static_vs_dynamic, StaticDynamicComparison};
pub use prepare::{FuncPrepared, Prepared};
pub use prune::{
    early_term_enabled, plan_model_sites, plan_sites, prune_default, static_classifier, ClassKey,
    ClassTable, InjectionPlan, PruneStats, Pruner, SiteClass,
};
pub use pvf::{
    pvf_campaign, pvf_campaign_metered, pvf_campaign_resumable, pvf_campaign_streamed, PvfMode,
    PvfResumed, PvfStreamed,
};
pub use report::{avf_report_json, ModelReport};
pub use sweep::{
    temporal_campaign, temporal_campaign_metered, temporal_campaign_pruned,
    temporal_campaign_resumable, temporal_campaign_resumable_pruned, temporal_campaign_streamed,
    TemporalProfile, TemporalResumed, TemporalStreamed,
};

// The warn-on-malformed env-knob parser now lives in `vulnstack-microarch`
// (the one crate every engine already depends on), so the CLI and the
// microarchitecture's own knobs share it.
pub(crate) use vulnstack_microarch::env_knob;

/// Returns the number of worker threads to use: `VULNSTACK_THREADS` or
/// the available parallelism (capped at 16). A malformed value warns on
/// stderr and falls back.
pub fn default_threads() -> usize {
    if let Some(n) = env_knob::<usize>("VULNSTACK_THREADS", "thread count") {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(16)
}

/// Returns the per-structure fault count: `VULNSTACK_FAULTS` or the given
/// default. The paper used 2,000; the bench harness defaults lower to
/// keep full-figure reproduction runs tractable. A malformed value warns
/// on stderr and falls back.
pub fn default_faults(default: usize) -> usize {
    if let Some(n) = env_knob::<usize>("VULNSTACK_FAULTS", "fault count") {
        return n.max(1);
    }
    default
}
