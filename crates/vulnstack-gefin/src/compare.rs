//! Cross-layer comparison of the three register-file vulnerability
//! estimates the stack can produce for one workload, ordered by cost and
//! pessimism (the paper's §II.A):
//!
//! * **static PVF** (`vulnstack-analyze`) — zero executions, pure binary
//!   analysis; the most pessimistic: liveness cannot see logical masking
//!   and its block-frequency model cannot see data-dependent control flow;
//! * **dynamic ACE** ([`crate::ace_analysis`]) — one fault-free
//!   cycle-level run, lifetime accounting over the physical register file;
//! * **injection AVF** ([`crate::avf_campaign`]) — thousands of faulty
//!   runs; the ground truth the other two bound from above.

use vulnstack_analyze::analyze;
use vulnstack_compiler::{compile, CompileOpts};
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::CoreModel;
use vulnstack_workloads::Workload;

use crate::ace::ace_analysis;
use crate::avf::avf_campaign;
use crate::prepare::{PrepareError, Prepared};

/// The three register-file vulnerability estimates for one workload on one
/// core model.
#[derive(Debug, Clone)]
pub struct StaticDynamicComparison {
    /// Core model the dynamic estimates ran on.
    pub model: CoreModel,
    /// Static PVF of the architectural register file (no execution).
    pub static_rf_pvf: f64,
    /// ACE-style analytical AVF of the physical register file (one run).
    pub ace_rf_avf: f64,
    /// Injection-measured register-file AVF, if a campaign was requested.
    pub injected_rf_avf: Option<f64>,
    /// Cycles of the fault-free ACE run.
    pub cycles: u64,
    /// Number of lint findings the static pass reported.
    pub lint_count: usize,
}

impl StaticDynamicComparison {
    /// Whether the pessimism ordering `static >= ACE >= injection` holds
    /// (`slack` relaxes the lower comparisons for sampling noise, e.g.
    /// `0.8` accepts `ACE >= 0.8 * injected`).
    pub fn ordering_holds(&self, slack: f64) -> bool {
        let upper = self.static_rf_pvf >= self.ace_rf_avf * slack;
        let lower = match self.injected_rf_avf {
            Some(inj) => self.ace_rf_avf >= inj * slack,
            None => true,
        };
        upper && lower
    }
}

/// Computes all three estimates for `workload` on `model`.
///
/// `inj_faults` of `0` skips the injection campaign (the comparison then
/// only covers static PVF vs. dynamic ACE).
///
/// # Errors
///
/// Returns [`PrepareError`] if compilation or the golden run fails.
pub fn static_vs_dynamic(
    workload: &Workload,
    model: CoreModel,
    inj_faults: usize,
    seed: u64,
    threads: usize,
) -> Result<StaticDynamicComparison, PrepareError> {
    let cfg = model.config();
    let compiled = compile(&workload.module, cfg.isa, &CompileOpts::default())
        .map_err(|e| PrepareError::Compile(e.to_string()))?;
    let sa = analyze(&compiled);

    let prep = Prepared::new(workload, model)?;
    let ace = ace_analysis(&prep);
    let injected_rf_avf = if inj_faults > 0 {
        let campaign = avf_campaign(&prep, HwStructure::RegisterFile, inj_faults, seed, threads);
        Some(campaign.avf().total())
    } else {
        None
    };

    Ok(StaticDynamicComparison {
        model,
        static_rf_pvf: sa.pvf.rf_pvf,
        ace_rf_avf: ace.rf_avf,
        injected_rf_avf,
        cycles: ace.cycles,
        lint_count: sa.lints.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_workloads::WorkloadId;

    #[test]
    fn static_bounds_dynamic_ace_on_crc32() {
        let w = WorkloadId::Crc32.build();
        let cmp = static_vs_dynamic(&w, CoreModel::A72, 0, 1, 1).unwrap();
        assert!(cmp.static_rf_pvf > 0.0 && cmp.static_rf_pvf < 1.0);
        assert!(cmp.ace_rf_avf > 0.0 && cmp.ace_rf_avf < 1.0);
        assert!(
            cmp.static_rf_pvf >= cmp.ace_rf_avf,
            "static {:.4} < ACE {:.4}",
            cmp.static_rf_pvf,
            cmp.ace_rf_avf
        );
        assert!(cmp.ordering_holds(1.0));
        assert_eq!(cmp.lint_count, 0);
    }
}
