//! Equivalence-class fault-site pruning and exactness-checked early
//! termination.
//!
//! A statistical AVF campaign spends most of its cycles discovering, one
//! full simulation at a time, that a flipped bit was never going to
//! matter. This module removes that cost without changing a single
//! record, using two independent accelerations that are both *exact* —
//! the pruned campaign's per-site `(effect, fpm, fpm_cycle)` records are
//! bit-identical to the unpruned campaign's (asserted by
//! `tests/prune_equivalence.rs`):
//!
//! 1. **Dead-interval classification** ([`ClassTable`]). One extra
//!    *instrumented* golden run records, per physical register, the full
//!    cycle-ordered read/write access sequence ([`RfAccessLog`]), and,
//!    per cycle, which LSQ entries are *armed* (the only entries whose
//!    flips [`OooCore::inject`] taints). A register-file flip whose next
//!    access is a write — or that is never accessed again — is provably
//!    Masked: the corrupt value is repaired before any read, or never
//!    read at all, so the faulty run retraces the golden run and the
//!    campaign records `(Masked, None, None)` without simulating. An
//!    un-armed LSQ flip lands in a field that dispatch or execute
//!    rewrites before any use: same verdict, same zero cost.
//! 2. **Pilot injections per equivalence class.** Two same-bit flips
//!    injected at different cycles inside the same access gap (no
//!    intervening access to that register) build bit-identical faulty
//!    machines from the later cycle onward, so they share one outcome
//!    triple. The pruner runs the first such site it meets as the
//!    class *pilot* and serves every other member from a memo keyed by
//!    [`ClassKey`] `(bit, gap)`. Each record still carries its own
//!    `(cycle, bit)`; only the outcome triple is shared — which is
//!    exactly what an individual simulation of each member would have
//!    produced.
//!
//! On top of both, the pruner's injection runner adds **early
//! termination**: once the faulty bit has been overwritten or squashed
//! and the *whole architectural state* re-converges with the golden
//! checkpoint at the same cycle ([`OooCore::converged_with`] at a
//! [`CheckpointStore::at_cycle`] boundary), the remaining simulation is
//! known to retrace the golden run, so the run ends immediately with
//! `effect = Masked` and the already-latched `fpm`/`fpm_cycle`. The
//! check only fires for runs whose fault already manifested
//! (`fpm.is_some()`); taint-free convergence is caught earlier and
//! cheaper by [`OooCore::fault_extinct`]. The lifetime trace records the
//! proof as a [`FaultEventKind::PrunedExtinct`] milestone.
//!
//! Convergence only catches runs that return to the golden trajectory.
//! The opposite extreme — runs the fault locked into a hang — are the
//! single most expensive outcome (they simulate to the full cycle
//! budget), and for those the runner adds **proven-hang termination**.
//! `FaultEffect::classify` maps `Timeout` to `Crash` without consulting
//! the output, and `fpm`/`fpm_cycle` latch at first manifestation, so an
//! exact record needs only a *proof* of the `Timeout` status. Two proof
//! rules run at scheduled attempt points (doubling back-off) once a
//! manifested run outlives twice the golden cycle count:
//!
//! * **Frozen wedge** ([`OooCore::frozen_with`]): the core is compared
//!   against a clone of *itself* taken earlier in the same run; if every
//!   behavioral field is identical across a nonempty cycle window, the
//!   pipeline state is cycle-shift covariant and can never commit again
//!   — the commit watchdog's `Timeout` is the only reachable ending.
//! * **Runaway affine loop** ([`OooCore::timeout_proven`]): the
//!   committed-trace tail is locked into a periodic body whose registers
//!   evolve affinely; an exact congruence solve over the branch operands
//!   plus memory-range obligations proves the stream cannot branch out,
//!   trap, or halt before the budget. Only attempted for injected
//!   structures that cannot corrupt the instruction stream
//!   (register file, LSQ): a poisoned L1i/L2 line could make a future
//!   re-fetch decode differently than the trace recorded.
//!
//! Both rules prove the status *either way*: if commits continue the
//! budget expires, and if they stall the watchdog fires — `Timeout`
//! regardless. The lifetime trace records the proof as a
//! [`FaultEventKind::ProvenHang`] milestone, and the record returned is
//! `(Crash, fpm, fpm_cycle)` — exactly what `finish()` at the budget
//! would have produced.
//!
//! Knobs: `VULNSTACK_EARLY_TERM=0` disables the convergence probe and
//! the hang proofs inside the pruned runner (`1`/unset enables both);
//! `VULNSTACK_PRUNE=1` makes the CLI default to the pruned plan.
//!
//! [`RfAccessLog`]: vulnstack_microarch::ooo::RfAccessLog
//! [`FaultEventKind::PrunedExtinct`]: vulnstack_microarch::lifetime::FaultEventKind::PrunedExtinct
//! [`FaultEventKind::ProvenHang`]: vulnstack_microarch::lifetime::FaultEventKind::ProvenHang
//! [`CheckpointStore::at_cycle`]: vulnstack_microarch::snapshot::CheckpointStore::at_cycle

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use vulnstack_analyze::StaticClassifier;
use vulnstack_core::effects::FaultEffect;
use vulnstack_core::trace::CampaignMetrics;
use vulnstack_kernel::{memmap, SystemImage};
use vulnstack_microarch::ooo::{lsq_site, rf_site, Fpm, HwStructure, LsqSite, RfAccess};
use vulnstack_microarch::{FaultModel, OooCore, RunStatus};

use crate::avf::{InjectionRecord, ModelSite};
use crate::prepare::Prepared;

/// Builds the static pruning oracle for an image: scans every
/// *executable* segment (kernel boot stub, trap handler, user text) and
/// proves architectural registers dead that no executable word names.
/// See [`StaticClassifier`] for the soundness argument; the lattice
/// `static-dead ⊆ dynamic-dead ⊆ injection-Masked` is enforced by
/// `tests/prune_soundness.rs`.
pub fn static_classifier(image: &SystemImage) -> StaticClassifier {
    let exec_bases = [memmap::KERNEL_BOOT, memmap::TRAP_VEC, memmap::USER_TEXT];
    let words: Vec<Vec<u32>> = image
        .segments
        .iter()
        .filter(|(base, _)| exec_bases.contains(base))
        .map(|(_, bytes)| {
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect()
        })
        .collect();
    StaticClassifier::build(image.isa, words.iter().map(|w| w.as_slice()))
}

/// Identity of a register-file equivalence class: all injections of
/// `bit` under `model` whose next *relevant* event is the same one
/// (`gap` = index of that event). For the value models the relevant
/// sequence is the target register's access log (same gap ⇒ no
/// intervening access ⇒ identical pre-injection value ⇒ identical
/// faulty machine from the later cycle onward). For
/// [`FaultModel::InstrSkip`] it is the golden run's decoded-dispatch
/// sequence: the pending skip is behaviorally latent until the next
/// decoded dispatch fires it, so two injections ahead of the same
/// dispatch event build identical machines at that dispatch. Every
/// member produces the same `(effect, fpm, fpm_cycle)` triple, so one
/// pilot simulation settles the whole class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassKey {
    /// The fault model of every member.
    pub model: FaultModel,
    /// Site index within the model's own site space (flat bit for
    /// bit-flip/stuck-at, byte index for byte corruption, `0` for the
    /// single instruction-skip site).
    pub bit: u64,
    /// Index of the next relevant event in the model's sequence.
    pub gap: u64,
}

/// Classification of one `(cycle, bit)` fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteClass {
    /// Provably Masked from the golden run's access intervals; recorded
    /// as `(Masked, None, None)` with zero simulation.
    DeadMasked,
    /// Member of a register-file equivalence class; one pilot injection
    /// settles every member.
    Equiv(ClassKey),
    /// No pruning argument applies; simulated individually.
    Singleton,
}

/// Per-cycle armed-entry masks of the LSQ along the golden run
/// (`lq`/`sq` bit `i` set ⇔ entry `i`'s flips would be tainted by
/// [`vulnstack_microarch::OooCore::inject`] at the end of that cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct ArmedMask {
    lq: u32,
    sq: u32,
}

/// Streaming FNV-1a (same constants as `vulnstack_core::journal::fnv1a64`,
/// asserted by a unit test) so large class tables hash without building
/// one contiguous byte buffer.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// The golden run's fault-site equivalence structure for one
/// `(workload, core, structure)` triple, built from a single
/// instrumented re-run of the golden execution.
///
/// Deterministic: the simulator draws no external entropy, so two builds
/// over the same [`Prepared`] produce identical tables — which is what
/// lets resumed campaigns verify agreement through the journal's
/// `class-table` metadata digest instead of re-serialising the table.
#[derive(Debug)]
pub struct ClassTable {
    structure: HwStructure,
    golden_cycles: u64,
    xlen: u64,
    /// Per-preg cycle-ordered access events (RF only; the in-vector
    /// order is execution order, so same-cycle write-then-read sequences
    /// classify correctly).
    rf_events: Vec<Vec<RfAccess>>,
    /// Cycles at which the golden run dispatched a *decoded*
    /// instruction, in order (RF only; the instruction-skip model's
    /// event sequence).
    dispatch_cycles: Vec<u64>,
    lq_len: usize,
    sq_len: usize,
    /// Armed masks indexed by cycle, `0..=golden_cycles` (LSQ only).
    armed: Vec<ArmedMask>,
    digest: u64,
}

impl ClassTable {
    /// Builds the table by re-running the golden execution once with
    /// instrumentation: the RF access log for [`HwStructure::RegisterFile`],
    /// per-cycle armed masks for [`HwStructure::Lsq`]. Cache structures
    /// need no table (every site is a [`SiteClass::Singleton`]) and cost
    /// nothing here.
    ///
    /// # Panics
    ///
    /// Panics if the instrumented run fails to retrace the reference
    /// golden run (observer hooks must never perturb simulation).
    pub fn build(prep: &Prepared, structure: HwStructure) -> ClassTable {
        let xlen = prep.cfg.isa.xlen() as u64;
        let mut rf_events: Vec<Vec<RfAccess>> = Vec::new();
        let mut dispatch_cycles: Vec<u64> = Vec::new();
        let mut armed: Vec<ArmedMask> = Vec::new();
        match structure {
            HwStructure::RegisterFile => {
                let mut core = prep.core_from_scratch();
                core.enable_rf_log();
                core.enable_dispatch_log();
                core.run_until(prep.budget);
                assert_eq!(
                    core.cycle(),
                    prep.golden.cycles,
                    "instrumented golden run diverged from the reference golden run"
                );
                let log = core.take_rf_log().expect("rf log was enabled");
                rf_events = (0..log.num_pregs())
                    .map(|p| log.events(p).to_vec())
                    .collect();
                dispatch_cycles = core.take_dispatch_log().expect("dispatch log was enabled");
            }
            HwStructure::Lsq => {
                // Step the golden run cycle by cycle, sampling which LSQ
                // entries are armed at the end of each cycle — exactly
                // the state an injection at that cycle sees, since
                // `run_one` injects after `run_until(cycle)` returns.
                let mut core = prep.core_from_scratch();
                armed.push(ArmedMask {
                    lq: core.lq_armed(),
                    sq: core.sq_armed(),
                });
                for c in 1..=prep.golden.cycles {
                    core.run_until(c);
                    armed.push(ArmedMask {
                        lq: core.lq_armed(),
                        sq: core.sq_armed(),
                    });
                }
                assert_eq!(
                    core.cycle(),
                    prep.golden.cycles,
                    "instrumented golden run diverged from the reference golden run"
                );
            }
            HwStructure::L1i | HwStructure::L1d | HwStructure::L2 => {}
        }
        let mut t = ClassTable {
            structure,
            golden_cycles: prep.golden.cycles,
            xlen,
            rf_events,
            dispatch_cycles,
            lq_len: prep.cfg.lq_entries as usize,
            sq_len: prep.cfg.sq_entries as usize,
            armed,
            digest: 0,
        };
        t.digest = t.compute_digest();
        t
    }

    /// Canonical content digest, used as the journal's `class-table`
    /// metadata payload so a resumed campaign refuses to mix records
    /// pruned under a different table.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    fn compute_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.bytes(self.structure.name().as_bytes());
        h.u64(self.golden_cycles);
        h.u64(self.xlen);
        h.u64(self.rf_events.len() as u64);
        for ev in &self.rf_events {
            h.u64(ev.len() as u64);
            for e in ev {
                h.u64(e.cycle);
                h.u64(e.write as u64);
            }
        }
        h.u64(self.dispatch_cycles.len() as u64);
        for &c in &self.dispatch_cycles {
            h.u64(c);
        }
        h.u64(self.lq_len as u64);
        h.u64(self.sq_len as u64);
        h.u64(self.armed.len() as u64);
        for m in &self.armed {
            h.u64(m.lq as u64);
            h.u64(m.sq as u64);
        }
        h.0
    }

    /// Classifies a bit-flip injection of `bit` at the end of `cycle`:
    /// [`ClassTable::classify_model`] under the legacy model.
    pub fn classify(&self, cycle: u64, bit: u64) -> SiteClass {
        self.classify_model(cycle, bit, FaultModel::BitFlip)
    }

    /// Classifies an injection of site `bit` under `model` at the end of
    /// `cycle`.
    ///
    /// The decode shares [`rf_site`]/[`lsq_site`] with
    /// [`vulnstack_microarch::OooCore::inject_model`], so a site the
    /// core would reject panics here with the same message instead of
    /// silently wrapping onto a different register (the historical
    /// `%`-wrap / SQ-clamp mirror bugs). Cycles past the golden run's
    /// end clamp to the terminal state — an ended core no longer
    /// changes, so the terminal masks are exact for them.
    ///
    /// Per-model dead rules differ where the fault's *persistence*
    /// does: a transient value corruption (bit-flip, byte corruption)
    /// is dead when the next access is a write — the corruption is
    /// repaired before any read — or when no access remains. A
    /// stuck-at cell is dead only when **every** remaining access is a
    /// write: the cell re-asserts over each of them, so any later read
    /// observes the corruption no matter how many writes preceded it.
    /// An instruction skip is dead only when the golden run dispatches
    /// no further decoded instruction (the pending skip never fires).
    ///
    /// # Panics
    ///
    /// Panics when `model` does not apply to this structure, or when
    /// the site index is outside `model`'s site space (mirroring
    /// `inject_model`).
    pub fn classify_model(&self, cycle: u64, bit: u64, model: FaultModel) -> SiteClass {
        assert!(
            model.applies_to(self.structure),
            "{model} does not apply to {}",
            self.structure
        );
        match self.structure {
            HwStructure::RegisterFile => {
                if model == FaultModel::InstrSkip {
                    assert_eq!(bit, 0, "instruction skip has a single site");
                    let gap = self.dispatch_cycles.partition_point(|&dc| dc <= cycle);
                    return if gap == self.dispatch_cycles.len() {
                        SiteClass::DeadMasked
                    } else {
                        SiteClass::Equiv(ClassKey {
                            model,
                            bit,
                            gap: gap as u64,
                        })
                    };
                }
                let flat = if model == FaultModel::ByteCorrupt {
                    bit * 8
                } else {
                    bit
                };
                let (preg, _) = rf_site(flat, self.xlen as u32, self.rf_events.len())
                    .unwrap_or_else(|| panic!("RF fault site bit {bit} out of range"));
                let ev = &self.rf_events[preg];
                // First access strictly after the injection point: the
                // corruption happens after all of `cycle`'s events.
                let gap = ev.partition_point(|e| e.cycle <= cycle);
                let dead = if model == FaultModel::StuckAt {
                    ev[gap..].iter().all(|e| e.write)
                } else {
                    gap == ev.len() || ev[gap].write
                };
                if dead {
                    SiteClass::DeadMasked
                } else {
                    SiteClass::Equiv(ClassKey {
                        model,
                        bit,
                        gap: gap as u64,
                    })
                }
            }
            HwStructure::Lsq => {
                let m = self.armed[cycle.min(self.golden_cycles) as usize];
                let flat = if model == FaultModel::ByteCorrupt {
                    bit * 8
                } else {
                    bit
                };
                let site = lsq_site(flat, self.xlen as u32, self.lq_len, self.sq_len)
                    .unwrap_or_else(|| panic!("LSQ fault site bit {bit} out of range"));
                let entry_armed = match site {
                    LsqSite::LqAddr { entry, .. } => m.lq & (1u32 << entry) != 0,
                    LsqSite::SqAddr { entry, .. } | LsqSite::SqData { entry, .. } => {
                        m.sq & (1u32 << entry) != 0
                    }
                };
                if entry_armed {
                    // Armed LSQ corruptions have no interval argument
                    // (the entry drains within a few cycles); simulate
                    // each.
                    SiteClass::Singleton
                } else {
                    SiteClass::DeadMasked
                }
            }
            HwStructure::L1i | HwStructure::L1d | HwStructure::L2 => SiteClass::Singleton,
        }
    }

    /// Fraction of (physical register × cycle) space where a flip is
    /// *live* (classified [`SiteClass::Equiv`], i.e. the next access is
    /// a read) — the dynamic counterpart of the static analyzer's
    /// register-file PVF, which must bound it from above
    /// (`vulnstack-analyze` liveness cannot see logical masking, so it
    /// over-approximates). `None` for non-RF tables.
    pub fn rf_dynamic_live_fraction(&self) -> Option<f64> {
        if self.structure != HwStructure::RegisterFile {
            return None;
        }
        let mut live = 0u64;
        for ev in &self.rf_events {
            for (i, e) in ev.iter().enumerate() {
                if !e.write {
                    // Injection cycles classified into this read's gap:
                    // `prev.cycle ..= e.cycle - 1`, clipped to the
                    // campaign's sampling range (cycles start at 1).
                    let lo = if i == 0 { 1 } else { ev[i - 1].cycle.max(1) };
                    live += e.cycle.saturating_sub(lo);
                }
            }
        }
        let space = self.rf_events.len() as u64 * self.golden_cycles.max(1);
        Some(live as f64 / space as f64)
    }

    /// The target structure.
    pub fn structure(&self) -> HwStructure {
        self.structure
    }
}

/// Snapshot of a pruner's accounting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PruneStats {
    /// Sites served in total.
    pub sites: u64,
    /// Sites classified Masked from the table alone (zero simulation).
    /// Includes the statically-proven subset counted by `static_dead`.
    pub dead_masked: u64,
    /// Sites proven Masked by the *static* oracle before the dynamic
    /// table was even consulted (a subset of `dead_masked`).
    pub static_dead: u64,
    /// Class pilot simulations actually run.
    pub pilot_runs: u64,
    /// Sites served from a class pilot's memoized triple.
    pub memo_hits: u64,
    /// Sites simulated individually (no pruning argument).
    pub singleton_runs: u64,
    /// Simulated runs ended early by the convergence probe.
    pub early_terminated: u64,
    /// Simulated runs ended early by a hang proof (frozen wedge or
    /// runaway affine loop): the terminal `Timeout` was certified
    /// without simulating to the budget.
    pub runaway_terminated: u64,
    /// Dynamic RF live fraction from the class table (RF campaigns
    /// only); the static analyzer's `rf_pvf` must be ≥ this.
    pub dynamic_rf_live_fraction: Option<f64>,
    /// Fraction of the physical register file the static oracle proves
    /// dead with zero simulation (RF campaigns only); the complement of
    /// this is an upper bound on `dynamic_rf_live_fraction`.
    pub static_rf_dead_fraction: Option<f64>,
}

impl PruneStats {
    /// Sites that needed no individual simulation.
    pub fn sites_pruned(&self) -> u64 {
        self.dead_masked + self.memo_hits
    }
}

/// Reads the `VULNSTACK_EARLY_TERM` knob: `0` disables the convergence
/// probe in the pruned runner, anything else (or unset) enables it.
pub fn early_term_enabled() -> bool {
    crate::env_knob::<u64>("VULNSTACK_EARLY_TERM", "0/1 flag") != Some(0)
}

/// Reads the `VULNSTACK_PRUNE` knob: `1` (any non-zero) makes pruned
/// execution the CLI default.
pub fn prune_default() -> bool {
    crate::env_knob::<u64>("VULNSTACK_PRUNE", "0/1 flag").is_some_and(|v| v != 0)
}

/// The memoized outcome triple of a class pilot: exactly the fields of
/// an [`InjectionRecord`] that are shared across the class (each member
/// still carries its own `(cycle, bit)`).
type OutcomeTriple = (FaultEffect, Option<Fpm>, Option<u64>);

/// A memoizing, exactness-preserving injection executor: a drop-in
/// replacement for the plain per-site runner that serves provably-dead
/// sites from the [`ClassTable`], equivalence-class members from one
/// pilot simulation, and everything else from an early-terminating
/// individual run. Thread-safe; records are a pure function of
/// `(cycle, bit)`, so campaign output is independent of thread count,
/// work order, and which worker happens to run a class pilot.
#[derive(Debug)]
pub struct Pruner<'a> {
    prep: &'a Prepared,
    structure: HwStructure,
    table: ClassTable,
    /// Static pruning oracle, consulted before the dynamic table (RF
    /// campaigns only — the static argument says nothing about LSQ or
    /// cache sites).
    static_pre: Option<StaticClassifier>,
    /// Physical register count, for the static oracle's flat-bit decode.
    nphys: usize,
    early_term: bool,
    memo: Mutex<HashMap<ClassKey, OutcomeTriple>>,
    sites: AtomicU64,
    dead_masked: AtomicU64,
    static_dead: AtomicU64,
    pilot_runs: AtomicU64,
    memo_hits: AtomicU64,
    singleton_runs: AtomicU64,
    early_terminated: AtomicU64,
    runaway_terminated: AtomicU64,
}

impl<'a> Pruner<'a> {
    /// Builds the class table and a pruner over it, with early
    /// termination controlled by `VULNSTACK_EARLY_TERM` (default on).
    pub fn new(prep: &'a Prepared, structure: HwStructure) -> Pruner<'a> {
        Pruner::with_early_term(prep, structure, early_term_enabled())
    }

    /// [`Pruner::new`] with early termination forced on or off (the
    /// equivalence tests exercise both).
    pub fn with_early_term(
        prep: &'a Prepared,
        structure: HwStructure,
        early_term: bool,
    ) -> Pruner<'a> {
        let static_pre =
            (structure == HwStructure::RegisterFile).then(|| static_classifier(&prep.image));
        Pruner {
            prep,
            structure,
            table: ClassTable::build(prep, structure),
            static_pre,
            nphys: prep.cfg.phys_regs as usize,
            early_term,
            memo: Mutex::new(HashMap::new()),
            sites: AtomicU64::new(0),
            dead_masked: AtomicU64::new(0),
            static_dead: AtomicU64::new(0),
            pilot_runs: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            singleton_runs: AtomicU64::new(0),
            early_terminated: AtomicU64::new(0),
            runaway_terminated: AtomicU64::new(0),
        }
    }

    /// The class table the pruner consults.
    pub fn table(&self) -> &ClassTable {
        &self.table
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> PruneStats {
        PruneStats {
            sites: self.sites.load(Ordering::Relaxed),
            dead_masked: self.dead_masked.load(Ordering::Relaxed),
            static_dead: self.static_dead.load(Ordering::Relaxed),
            pilot_runs: self.pilot_runs.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            singleton_runs: self.singleton_runs.load(Ordering::Relaxed),
            early_terminated: self.early_terminated.load(Ordering::Relaxed),
            runaway_terminated: self.runaway_terminated.load(Ordering::Relaxed),
            dynamic_rf_live_fraction: self.table.rf_dynamic_live_fraction(),
            static_rf_dead_fraction: self
                .static_pre
                .as_ref()
                .map(|c| c.static_dead_fraction(self.nphys)),
        }
    }

    /// The static oracle, if one applies to this structure.
    pub fn static_oracle(&self) -> Option<&StaticClassifier> {
        self.static_pre.as_ref()
    }

    /// Serves one bit-flip site, bit-identical to
    /// `run_one(prep, structure, cycle, bit)` but as cheap as the class
    /// table allows: [`Pruner::run_site_model`] under the legacy model.
    pub fn run_site(
        &self,
        cycle: u64,
        bit: u64,
        metrics: Option<&CampaignMetrics>,
    ) -> InjectionRecord {
        self.run_site_model(cycle, bit, FaultModel::BitFlip, metrics)
    }

    /// Serves one `(site, model)` pair, bit-identical to
    /// `run_one_model(prep, structure, site)` but as cheap as the class
    /// table allows.
    pub fn run_site_model(
        &self,
        cycle: u64,
        bit: u64,
        model: FaultModel,
        metrics: Option<&CampaignMetrics>,
    ) -> InjectionRecord {
        self.sites.fetch_add(1, Ordering::Relaxed);
        // Static pre-filter: a site landing in a physical register the
        // oracle proves never-accessed needs neither the dynamic table
        // nor a simulation. Such a register has an empty access log, so
        // the table would agree (`static-dead ⊆ dynamic-dead`); the
        // record is identical, the classification just costs less. The
        // argument covers every *value* model — a corruption (even a
        // persistent one) in a register that is never read nor written
        // is never consumed — but says nothing about instruction skips,
        // which corrupt no register at all.
        if model != FaultModel::InstrSkip {
            if let Some(c) = &self.static_pre {
                let flat = if model == FaultModel::ByteCorrupt {
                    bit * 8
                } else {
                    bit
                };
                if c.rf_bit_dead(flat, self.nphys) {
                    self.static_dead.fetch_add(1, Ordering::Relaxed);
                    self.dead_masked.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = metrics {
                        m.record_pruned_dead();
                    }
                    return InjectionRecord {
                        cycle,
                        bit,
                        model,
                        effect: FaultEffect::Masked,
                        fpm: None,
                        fpm_cycle: None,
                    };
                }
            }
        }
        match self.table.classify_model(cycle, bit, model) {
            SiteClass::DeadMasked => {
                self.dead_masked.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = metrics {
                    m.record_pruned_dead();
                }
                InjectionRecord {
                    cycle,
                    bit,
                    model,
                    effect: FaultEffect::Masked,
                    fpm: None,
                    fpm_cycle: None,
                }
            }
            SiteClass::Equiv(key) => {
                if let Some(&(effect, fpm, fpm_cycle)) = self.memo.lock().unwrap().get(&key) {
                    self.memo_hits.fetch_add(1, Ordering::Relaxed);
                    return InjectionRecord {
                        cycle,
                        bit,
                        model,
                        effect,
                        fpm,
                        fpm_cycle,
                    };
                }
                // Miss: run the pilot at this member's own cycle. Two
                // workers racing on the same class both compute the
                // identical triple, so the double insert is idempotent
                // and the memo never influences record values.
                self.pilot_runs.fetch_add(1, Ordering::Relaxed);
                let rec = self.run_injected(cycle, bit, model, metrics);
                self.memo
                    .lock()
                    .unwrap()
                    .insert(key, (rec.effect, rec.fpm, rec.fpm_cycle));
                rec
            }
            SiteClass::Singleton => {
                self.singleton_runs.fetch_add(1, Ordering::Relaxed);
                self.run_injected(cycle, bit, model, metrics)
            }
        }
    }

    /// The pruner's individual-injection runner: the plain slice loop of
    /// `run_one_inner` plus the convergence probe. Probes happen only at
    /// checkpoint boundaries (the only cycles with comparable golden
    /// state) and only once the fault has architecturally manifested —
    /// a taint-free fault that dies quietly is caught first, and far
    /// cheaper, by `fault_extinct`. The probe schedule never changes
    /// record values: an early-terminated run returns exactly the
    /// `(Masked, fpm, fpm_cycle)` the full run would have produced.
    fn run_injected(
        &self,
        cycle: u64,
        bit: u64,
        model: FaultModel,
        metrics: Option<&CampaignMetrics>,
    ) -> InjectionRecord {
        let prep = self.prep;
        let mut core = prep.checkpoints.restore(cycle);
        if let Some(m) = metrics {
            m.record_restore_distance(prep.checkpoints.restore_distance(cycle));
        }
        core.run_until(cycle);
        core.inject_model(self.structure, bit, model);
        let interval = prep.checkpoints.interval();
        // Proven-hang termination: armed once a manifested run outlives
        // twice the golden cycle count, and only for injected structures
        // that cannot corrupt the *instruction* stream (an L1i/L2 flip
        // could make a future re-fetch decode differently than the
        // committed trace recorded, which would break the runaway
        // prover's extrapolation; RF/LSQ taint reaches memory only
        // through stores, which never land in user text) — and only for
        // transient value models: a stuck-at cell can re-corrupt writes
        // the runaway prover's affine extrapolation assumed clean, and a
        // still-pending skip can NOP an instruction the extrapolated
        // stream expects to execute.
        let hang_proofs = self.early_term
            && model.transient_value()
            && matches!(self.structure, HwStructure::RegisterFile | HwStructure::Lsq);
        let runaway_after = prep.golden.cycles.saturating_mul(2);
        // Each proof attempt needs a commit-trace window and a frozen
        // anchor gathered over the immediately preceding cycles: both are
        // armed PREARM cycles before the attempt, so the trace is still
        // recording (tail aligned with retirement state) at attempt time.
        const PREARM: u64 = 2_048;
        const TRACE_CAP: usize = 2_048 * 8 + 64; // PREARM × max width + slack
        const MAX_PROOF_GAP: u64 = 65_536;
        let mut proof_gap = interval.max(512);
        let mut next_proof: Option<u64> = None;
        let mut anchor: Option<OooCore> = None;
        let mut slice = 256u64;
        loop {
            if hang_proofs && next_proof.is_none() && core.fpm().is_some() {
                next_proof = Some(core.cycle().max(runaway_after) + proof_gap);
            }
            let mut next = (core.cycle() + slice).min(prep.budget);
            if self.early_term {
                // Also stop at the next checkpoint boundary so the
                // convergence probe gets a comparable golden state.
                let boundary = (core.cycle() / interval + 1) * interval;
                next = next.min(boundary);
            }
            if let Some(np) = next_proof {
                // Stop exactly at the arm point and the attempt point.
                // Extra stops never change simulation results: the
                // stepper is deterministic and the trace/anchor are
                // observer-only state.
                let arm_at = np.saturating_sub(PREARM);
                next = next.min(if core.cycle() < arm_at { arm_at } else { np });
            }
            slice = (slice * 2).min(4_096);
            core.run_until(next);
            if core.ended() || core.cycle() >= prep.budget {
                break;
            }
            if let Some(np) = next_proof {
                if core.cycle() >= np {
                    let frozen = anchor.as_ref().is_some_and(|a| core.frozen_with(a));
                    if frozen || core.timeout_proven(prep.budget) {
                        // Terminal status proven Timeout either way the
                        // pipeline goes (commits continue → budget;
                        // commits stall → watchdog), `classify` maps
                        // Timeout → Crash without consulting output, and
                        // `fpm`/`fpm_cycle` are already latched. Never
                        // call `finish()` here.
                        core.note_proven_hang();
                        self.runaway_terminated.fetch_add(1, Ordering::Relaxed);
                        if let Some(m) = metrics {
                            m.record_early_terminated();
                            // The proven status is Timeout, so keep the
                            // watchdog/budget-expiry metric consistent
                            // with what the full run would have counted.
                            m.record_watchdog_expiry();
                        }
                        return InjectionRecord {
                            cycle,
                            bit,
                            model,
                            effect: FaultEffect::Crash,
                            fpm: core.fpm(),
                            fpm_cycle: core.fpm_cycle(),
                        };
                    }
                    // Proof failed: back off (bounding prover cost on
                    // runs that genuinely churn) and re-arm later.
                    anchor = None;
                    proof_gap = (proof_gap * 2).min(MAX_PROOF_GAP);
                    next_proof = Some(core.cycle() + proof_gap);
                } else if anchor.is_none() && core.cycle() >= np.saturating_sub(PREARM) {
                    core.enable_trace(TRACE_CAP);
                    anchor = Some(core.clone());
                }
            }
            if core.fault_extinct() {
                if let Some(m) = metrics {
                    m.record_extinct_early();
                }
                core.note_fault_extinct();
                return InjectionRecord {
                    cycle,
                    bit,
                    model,
                    effect: FaultEffect::Masked,
                    fpm: None,
                    fpm_cycle: None,
                };
            }
            if self.early_term && core.fpm().is_some() {
                if let Some(golden) = prep.checkpoints.at_cycle(core.cycle()) {
                    if core.converged_with(golden) {
                        // The rest of the run retraces the golden run:
                        // terminal status and output are already known,
                        // and `fpm`/`fpm_cycle` are latched (first
                        // manifestation only). Never call `finish()`
                        // here — draining output mid-run would peek
                        // memory the real run only reads at its end.
                        core.note_pruned_extinct();
                        self.early_terminated.fetch_add(1, Ordering::Relaxed);
                        if let Some(m) = metrics {
                            m.record_early_terminated();
                        }
                        return InjectionRecord {
                            cycle,
                            bit,
                            model,
                            effect: FaultEffect::Masked,
                            fpm: core.fpm(),
                            fpm_cycle: core.fpm_cycle(),
                        };
                    }
                }
            }
        }
        let out = core.finish();
        if let Some(m) = metrics {
            if out.sim.status == RunStatus::Timeout {
                m.record_watchdog_expiry();
            }
        }
        let effect = FaultEffect::classify(
            out.sim.status,
            &out.sim.output,
            prep.golden.status,
            &prep.expected_output,
        );
        InjectionRecord {
            cycle,
            bit,
            model,
            effect,
            fpm: out.fpm,
            fpm_cycle: out.fpm_cycle,
        }
    }
}

/// How a campaign chooses and executes its fault sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionPlan {
    /// Every bit of the structure, all injected at one fixed cycle
    /// (exhaustive over space, not time). The legacy `(cycle, bit)`
    /// planner executes it unpruned; the model-aware campaigns run it
    /// through the [`Pruner`], whose per-model dead/equivalence
    /// arguments keep an all-(site, model)-pairs sweep tractable.
    Exhaustive {
        /// The single injection cycle.
        cycle: u64,
    },
    /// `n` uniformly-sampled `(cycle, bit)` sites (the classic
    /// campaign); executed unpruned.
    Sampled {
        /// Number of fault sites.
        n: usize,
        /// Sampling seed.
        seed: u64,
    },
    /// The *same* `n` sites as [`InjectionPlan::Sampled`] with the same
    /// seed, executed through the [`Pruner`] — bit-identical records,
    /// fraction of the wall clock.
    Pruned {
        /// Number of fault sites.
        n: usize,
        /// Sampling seed.
        seed: u64,
    },
}

impl InjectionPlan {
    /// Report name.
    pub fn name(&self) -> &'static str {
        match self {
            InjectionPlan::Exhaustive { .. } => "exhaustive",
            InjectionPlan::Sampled { .. } => "sampled",
            InjectionPlan::Pruned { .. } => "pruned",
        }
    }

    /// True if this plan executes through the pruner.
    pub fn is_pruned(&self) -> bool {
        matches!(self, InjectionPlan::Pruned { .. })
    }
}

/// Materialises a plan's fault sites. [`InjectionPlan::Sampled`] and
/// [`InjectionPlan::Pruned`] with the same `(n, seed)` yield the same
/// sites — pruning changes execution, never the sample.
pub fn plan_sites(
    prep: &Prepared,
    structure: HwStructure,
    plan: &InjectionPlan,
) -> Vec<(u64, u64)> {
    match *plan {
        InjectionPlan::Exhaustive { cycle } => {
            let bits = structure.bits(&prep.cfg);
            (0..bits).map(|b| (cycle, b)).collect()
        }
        InjectionPlan::Sampled { n, seed } | InjectionPlan::Pruned { n, seed } => {
            crate::avf::draw_sites(prep, structure, n, seed)
        }
    }
}

/// Materialises a plan's `(site, model)` pairs over a model set. An
/// [`InjectionPlan::Exhaustive`] plan enumerates, per applicable model
/// in canonical order, that model's *entire* site space at the fixed
/// cycle — the ARMORY-style exhaustive multi-model campaign, meant to
/// be executed through the [`Pruner`]. Sampling plans defer to
/// [`crate::avf::draw_model_sites`], which is bit-identical to the
/// legacy sample for `[FaultModel::BitFlip]`.
///
/// # Panics
///
/// Panics when no model in `models` applies to `structure`.
pub fn plan_model_sites(
    prep: &Prepared,
    structure: HwStructure,
    plan: &InjectionPlan,
    models: &[FaultModel],
) -> Vec<ModelSite> {
    match *plan {
        InjectionPlan::Exhaustive { cycle } => {
            let models = crate::avf::canonical_models(models, structure);
            assert!(!models.is_empty(), "no fault model applies to {structure}");
            models
                .into_iter()
                .flat_map(|model| {
                    (0..model.sites(structure, &prep.cfg)).map(move |bit| ModelSite {
                        cycle,
                        bit,
                        model,
                    })
                })
                .collect()
        }
        InjectionPlan::Sampled { n, seed } | InjectionPlan::Pruned { n, seed } => {
            crate::avf::draw_model_sites(prep, structure, n, seed, models)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avf::{draw_sites, run_one};
    use vulnstack_analyze::analyze;
    use vulnstack_compiler::{compile, CompileOpts};
    use vulnstack_microarch::CoreModel;
    use vulnstack_workloads::WorkloadId;

    #[test]
    fn streaming_fnv_matches_journal_fnv() {
        let data = b"vulnstack class table digest";
        let mut h = Fnv::new();
        h.bytes(data);
        assert_eq!(h.0, vulnstack_core::journal::fnv1a64(data));
    }

    #[test]
    fn class_table_is_deterministic_and_structure_specific() {
        let w = WorkloadId::Crc32.build();
        let prep = Prepared::new(&w, CoreModel::A9).unwrap();
        let a = ClassTable::build(&prep, HwStructure::RegisterFile);
        let b = ClassTable::build(&prep, HwStructure::RegisterFile);
        assert_eq!(a.digest(), b.digest(), "same build must digest equal");
        let lsq = ClassTable::build(&prep, HwStructure::Lsq);
        assert_ne!(a.digest(), lsq.digest());
    }

    #[test]
    fn rf_pruned_records_match_individual_runs() {
        let w = WorkloadId::Crc32.build();
        let prep = Prepared::new(&w, CoreModel::A72).unwrap();
        let pruner = Pruner::new(&prep, HwStructure::RegisterFile);
        for (c, b) in draw_sites(&prep, HwStructure::RegisterFile, 48, 23) {
            assert_eq!(
                pruner.run_site(c, b, None),
                run_one(&prep, HwStructure::RegisterFile, c, b),
                "pruned record diverged at cycle {c} bit {b}"
            );
        }
        let stats = pruner.stats();
        assert_eq!(stats.sites, 48);
        assert!(
            stats.dead_masked > 0,
            "a mostly-dead register file must yield dead sites: {stats:?}"
        );
    }

    #[test]
    fn lsq_pruned_records_match_individual_runs() {
        let w = WorkloadId::Qsort.build();
        let prep = Prepared::new(&w, CoreModel::A9).unwrap();
        let pruner = Pruner::new(&prep, HwStructure::Lsq);
        for (c, b) in draw_sites(&prep, HwStructure::Lsq, 32, 5) {
            assert_eq!(
                pruner.run_site(c, b, None),
                run_one(&prep, HwStructure::Lsq, c, b),
                "pruned record diverged at cycle {c} bit {b}"
            );
        }
        assert!(pruner.stats().dead_masked > 0);
    }

    #[test]
    fn dead_classification_is_confirmed_by_injection() {
        // A deterministic slice of the proptest oracle: every site the
        // table calls dead must come back (Masked, None, None) from a
        // real injection.
        let w = WorkloadId::Crc32.build();
        let prep = Prepared::new(&w, CoreModel::A9).unwrap();
        let table = ClassTable::build(&prep, HwStructure::RegisterFile);
        let mut dead_checked = 0;
        for (c, b) in draw_sites(&prep, HwStructure::RegisterFile, 64, 91) {
            if table.classify(c, b) == SiteClass::DeadMasked {
                let r = run_one(&prep, HwStructure::RegisterFile, c, b);
                assert_eq!(
                    (r.effect, r.fpm, r.fpm_cycle),
                    (FaultEffect::Masked, None, None),
                    "dead-classified site (cycle {c}, bit {b}) was not masked"
                );
                dead_checked += 1;
            }
        }
        assert!(dead_checked > 0, "sample contained no dead sites");
    }

    #[test]
    fn memo_serves_class_members_without_resimulating() {
        let w = WorkloadId::Crc32.build();
        let prep = Prepared::new(&w, CoreModel::A72).unwrap();
        let pruner = Pruner::new(&prep, HwStructure::RegisterFile);
        let table = ClassTable::build(&prep, HwStructure::RegisterFile);
        // Find one equivalence class with at least two member cycles
        // (bounded scan: any busy register yields one within a few
        // hundred cycles of the run's start).
        let mut member: Option<(u64, u64, u64)> = None;
        'outer: for bit in 0..HwStructure::RegisterFile.bits(&prep.cfg).min(4096) {
            for c in 1..prep.golden.cycles.min(5_000) {
                if let SiteClass::Equiv(k) = table.classify(c, bit) {
                    if table.classify(c + 1, bit) == SiteClass::Equiv(k) {
                        member = Some((bit, c, c + 1));
                        break 'outer;
                    }
                }
            }
        }
        let (bit, c1, c2) = member.expect("no two-member class found");
        let a = pruner.run_site(c1, bit, None);
        let b = pruner.run_site(c2, bit, None);
        assert_eq!(
            (a.effect, a.fpm, a.fpm_cycle),
            (b.effect, b.fpm, b.fpm_cycle)
        );
        assert_eq!(b.cycle, c2, "memo hits keep their own site identity");
        let stats = pruner.stats();
        assert_eq!(stats.pilot_runs, 1);
        assert_eq!(stats.memo_hits, 1);
        // The memoized triple equals an individual simulation's.
        assert_eq!(b, run_one(&prep, HwStructure::RegisterFile, c2, bit));
    }

    #[test]
    fn static_dead_sites_are_a_subset_of_dynamic_dead() {
        // The first rung of the soundness lattice, checked directly:
        // every register-file site the static oracle prunes must also be
        // DeadMasked by the dynamic class table.
        let w = WorkloadId::Crc32.build();
        let prep = Prepared::new(&w, CoreModel::A72).unwrap();
        let oracle = static_classifier(&prep.image);
        let nphys = prep.cfg.phys_regs as usize;
        assert!(
            !oracle.dead_regs().is_empty(),
            "a 32-register ISA program must leave some registers untouched"
        );
        let table = ClassTable::build(&prep, HwStructure::RegisterFile);
        for (c, b) in draw_sites(&prep, HwStructure::RegisterFile, 256, 7) {
            if oracle.rf_bit_dead(b, nphys) {
                assert_eq!(
                    table.classify(c, b),
                    SiteClass::DeadMasked,
                    "static-dead site (cycle {c}, bit {b}) not dynamically dead"
                );
            }
        }
    }

    #[test]
    fn static_prefilter_counts_into_dead_masked() {
        let w = WorkloadId::Crc32.build();
        let prep = Prepared::new(&w, CoreModel::A72).unwrap();
        let pruner = Pruner::new(&prep, HwStructure::RegisterFile);
        for (c, b) in draw_sites(&prep, HwStructure::RegisterFile, 96, 41) {
            pruner.run_site(c, b, None);
        }
        let stats = pruner.stats();
        assert!(
            stats.static_dead > 0,
            "no statically-proven sites: {stats:?}"
        );
        assert!(stats.static_dead <= stats.dead_masked);
        let frac = stats.static_rf_dead_fraction.expect("RF campaign");
        assert!(frac > 0.0 && frac < 1.0, "fraction {frac}");
    }

    #[test]
    fn static_rf_pvf_bounds_dynamic_live_fraction() {
        // vulnstack-analyze liveness must agree with (over-approximate)
        // the dynamic view the class table measures: static analysis
        // cannot see logical masking or physical-register dilution, so
        // its architectural RF PVF sits above the physical live
        // fraction.
        let w = WorkloadId::Crc32.build();
        let model = CoreModel::A72;
        let prep = Prepared::new(&w, model).unwrap();
        let table = ClassTable::build(&prep, HwStructure::RegisterFile);
        let dynamic = table.rf_dynamic_live_fraction().unwrap();
        assert!(dynamic > 0.0 && dynamic < 1.0, "dynamic {dynamic}");
        let compiled = compile(&w.module, model.config().isa, &CompileOpts::default()).unwrap();
        let static_pvf = analyze(&compiled).pvf.rf_pvf;
        assert!(
            static_pvf >= dynamic,
            "static {static_pvf:.4} < dynamic {dynamic:.4}"
        );
    }

    #[test]
    fn plan_sites_shapes() {
        let w = WorkloadId::Crc32.build();
        let prep = Prepared::new(&w, CoreModel::A9).unwrap();
        let s = plan_sites(
            &prep,
            HwStructure::RegisterFile,
            &InjectionPlan::Sampled { n: 10, seed: 3 },
        );
        let p = plan_sites(
            &prep,
            HwStructure::RegisterFile,
            &InjectionPlan::Pruned { n: 10, seed: 3 },
        );
        assert_eq!(s, p, "pruning must not change the sample");
        let e = plan_sites(
            &prep,
            HwStructure::Lsq,
            &InjectionPlan::Exhaustive { cycle: 40 },
        );
        assert_eq!(e.len() as u64, HwStructure::Lsq.bits(&prep.cfg));
        assert!(e.iter().all(|&(c, _)| c == 40));
    }
}
